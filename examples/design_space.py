#!/usr/bin/env python
"""Design-space exploration: K, Cmax and the period/area trade-off.

Sweeps the two knobs the paper fixes (LUT size K = 5, resynthesis cut
bound Cmax = 15) on one benchmark controller and prints the resulting
clock-period / LUT-count frontier, including the area-recovery stage.
Also demonstrates the criticality report that explains *why* a given
period is the limit.

Run:  python examples/design_space.py
"""

from repro.bench.suite import build
from repro.core.area import map_with_area_recovery
from repro.core.slack import report
from repro.core.turbomap import turbomap
from repro.core.turbosyn import turbosyn


def main() -> None:
    name = "bbara"
    circuit = build(name)
    print(f"subject: {name} {circuit.stats()}")
    print()
    print(report(circuit, k=5))
    print()

    print("--- K sweep (Cmax = 15) ---")
    print(f"{'K':>3s} {'TurboMap phi':>13s} {'TurboSYN phi':>13s} {'TS LUTs':>8s}")
    for k in (3, 4, 5, 6):
        tm = turbomap(circuit, k)
        ts = turbosyn(circuit, k, upper_bound=tm.phi)
        print(f"{k:3d} {tm.phi:13d} {ts.phi:13d} {ts.n_luts:8d}")
    print()

    print("--- Cmax sweep (K = 5) ---")
    print(f"{'Cmax':>5s} {'phi':>5s} {'LUTs':>6s}")
    for cmax in (5, 7, 9, 12, 15):
        ts = turbosyn(circuit, 5, cmax=cmax)
        print(f"{cmax:5d} {ts.phi:5d} {ts.n_luts:6d}")
    print()

    print("--- area recovery at the optimum (K = 5) ---")
    ts = turbosyn(circuit, 5)
    recovered = map_with_area_recovery(circuit, ts.phi, ts.labels, 5)
    print(
        f"raw TurboSYN: {ts.n_luts} LUTs; after label relaxation + "
        f"packing: {recovered.n_gates} LUTs (phi stays {ts.phi})"
    )


if __name__ == "__main__":
    main()
