#!/usr/bin/env python
"""The paper's Figure 1 story: a critical loop that resynthesis breaks.

Figure 1 of the paper illustrates why combining functional decomposition
with retiming matters: for a target MDR ratio of 1, a loop exists that no
structural LUT mapping (even with retiming, i.e. TurboMap) can realize,
yet the loop's logic is Boolean-decomposable — the part of the cone that
does not depend on the loop variable can be hoisted *off* the loop into
side LUTs, after which a single LUT per register remains on the cycle.

This script builds that situation explicitly, walks through the label
computation of both algorithms, and prints the resulting loop structure.

Run:  python examples/paper_figure1.py
"""

from repro import SeqCircuit, TruthTable
from repro.core.labels import LabelSolver
from repro.core.seqdecomp import find_seq_resynthesis
from repro.core.turbomap import turbomap
from repro.core.turbosyn import turbosyn
from repro.retime.mdr import min_feasible_period

AND2 = TruthTable.from_function(2, lambda a, b: a and b)


def build_figure1_circuit() -> SeqCircuit:
    """A loop of 8 AND gates, each also reading a distinct PI, 1 register.

    For a target MDR ratio of 1 the whole loop must collapse into one
    LUT per register; structurally that LUT would need all 8 external
    inputs plus the loop input — 9 > K = 5.  But the cone function is
    ``loop AND x0 AND ... AND x7``: the external conjunction decomposes
    into side LUTs, leaving ``loop AND t`` on the cycle.
    """
    c = SeqCircuit("figure1")
    xs = [c.add_pi(f"x{i}") for i in range(8)]
    g = [c.add_gate_placeholder(f"g{i}", AND2) for i in range(8)]
    for i in range(8):
        weight = 1 if i == 0 else 0
        c.set_fanins(g[i], [(g[(i - 1) % 8], weight), (xs[i], 0)])
    c.add_po("o", g[7])
    c.check()
    return c


def main() -> None:
    circuit = build_figure1_circuit()
    print(f"circuit: {circuit}")
    print(f"unmapped MDR bound: {min_feasible_period(circuit)}")
    print()

    print("--- label computation at target phi = 1 ---")
    plain = LabelSolver(circuit, k=5, phi=1, pld=True).run()
    print(f"TurboMap labels (no resynthesis): feasible = {plain.feasible}")
    if not plain.feasible:
        names = [circuit.name_of(v) for v in plain.failed_scc]
        print(f"  positive loop detected through: {', '.join(names)}")

    def resyn_hook(solver, v, big_l):
        entry = find_seq_resynthesis(
            solver.circuit, v, solver.phi, solver.labels, big_l, solver.k
        )
        if entry is not None and v == circuit.id_of("g7"):
            cut_names = [f"{circuit.name_of(u)}^{w}" for u, w in entry.cut]
            print(
                f"  g7 resynthesized over sequential cut {cut_names}: "
                f"{len(entry.tree.luts)} LUTs meet label {big_l}"
            )
        return entry is not None

    with_resyn = LabelSolver(
        circuit, k=5, phi=1, resyn_hook=resyn_hook, pld=True
    ).run()
    print(f"TurboSYN labels (with decomposition): feasible = {with_resyn.feasible}")
    print()

    print("--- full algorithms ---")
    tm = turbomap(circuit, k=5)
    ts = turbosyn(circuit, k=5)
    print(f"TurboMap : phi = {tm.phi}, {tm.n_luts} LUTs")
    print(f"TurboSYN : phi = {ts.phi}, {ts.n_luts} LUTs")
    print()

    print("TurboSYN's mapped loop structure:")
    mapped = ts.mapped
    for comp in mapped.sccs():
        if len(comp) > 1 or any(
            pin.src == comp[0] for pin in mapped.fanins(comp[0])
        ):
            for v in comp:
                pins = ", ".join(
                    f"{mapped.name_of(p.src)}(w={p.weight})"
                    for p in mapped.fanins(v)
                )
                print(f"  loop LUT {mapped.name_of(v)} <- {pins}")
    print(
        f"\nresult: the critical loop now carries "
        f"{min_feasible_period(mapped)} LUT level(s) per register — the "
        f"paper's MDR ratio 1."
    )


if __name__ == "__main__":
    main()
