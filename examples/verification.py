#!/usr/bin/env python
"""The verification story: four ways to trust a transformed circuit.

Sequential synthesis transformations interact with initial states in
subtle ways (the classical retiming caveat); this walkthrough shows the
four complementary techniques this library uses, from strongest to most
scalable, on one resettable controller:

1. exact bounded unrolling (truth tables over per-cycle PI copies),
2. ROBDD combinational equivalence (wide cones, register-cut views),
3. reset-synchronized random simulation (end-to-end, any transformation),
4. the structural retiming certificate (proof by construction).

Run:  python examples/verification.py
"""

from repro import (
    pipeline_and_retime,
    simulation_equivalent,
    turbosyn,
    unrolled_equivalent,
)
from repro.bench.fsm import fsm_to_circuit, random_fsm
from repro.core.flowsyn_s import split_at_registers
from repro.comb.flowsyn import flowsyn
from repro.verify.bdd_equiv import combinational_equivalent
from repro.verify.equiv import retiming_consistent

ONES = (1 << 64) - 1


def main() -> None:
    fsm = random_fsm("vdemo", 6, 3, 2, seed=17, split_depth=3)
    circuit = fsm_to_circuit(fsm, with_reset=True)
    print(f"subject: {circuit}")
    result = turbosyn(circuit, k=5)
    print(f"TurboSYN: phi = {result.phi}, {result.n_luts} LUTs")
    print()

    print("1. exact bounded unrolling (2 cycles, all input histories):")
    from repro import flowsyn_s

    fs = flowsyn_s(circuit, k=5)
    exact = unrolled_equivalent(circuit, fs.mapped, cycles=2)
    print(f"   FlowSYN-s (register positions frozen): "
          f"{'PASS' if exact else 'FAIL'}")
    crossing = unrolled_equivalent(circuit, result.mapped, cycles=2)
    print(f"   TurboSYN from power-up: "
          f"{'matches' if crossing else 'differs'} — sequential cuts "
          f"absorb logic across registers, perturbing the first cycles; "
          f"this is expected (and why checks 3 and 4 exist)")

    print("2. ROBDD equivalence of the register-cut combinational view:")
    comb = split_at_registers(circuit)
    remapped = flowsyn(comb, k=5).mapped
    bdd_ok = combinational_equivalent(comb, remapped)
    print(f"   FlowSYN view ({len(comb.pis)} PIs, beyond dense tables): "
          f"{'PASS' if bdd_ok else 'FAIL'}")

    print("3. reset-synchronized simulation through the *whole* flow:")
    pipe = pipeline_and_retime(result.mapped, minimize_ffs=True)
    sim_ok = simulation_equivalent(
        circuit,
        pipe.circuit,
        cycles=90,
        warmup=30,
        po_lags=pipe.po_lags,
        sync_inputs={"rst": ONES},
        sync_cycles=12,
    )
    print(f"   mapped + pipelined + retimed + FF-minimized: "
          f"{'PASS' if sim_ok else 'FAIL'}")

    print("4. structural retiming certificate (initial-state agnostic):")
    cert = retiming_consistent(result.mapped, pipe.circuit, pipe.retiming.r)
    print(f"   retimed network is retime(mapped, r) exactly: "
          f"{'PASS' if cert else 'FAIL'}")

    print()
    print(
        f"final: clock period {pipe.circuit.clock_period()} "
        f"(subject bound would be "
        f"{circuit.clock_period()} unretimed), "
        f"{pipe.circuit.n_ffs} FFs after register minimization"
    )


if __name__ == "__main__":
    main()
