#!/usr/bin/env python
"""Quickstart: map a sequential circuit with TurboSYN.

Builds a small sequential circuit (an accumulator-style loop plus some
feed-forward logic), runs the three mappers of the paper's Table 1, and
finishes with pipelining + retiming and an equivalence check.

Run:  python examples/quickstart.py
"""

from repro import SeqCircuit, TruthTable, flowsyn_s, turbomap, turbosyn
from repro.retime.mdr import min_feasible_period
from repro.retime.pipeline import pipeline_and_retime
from repro.verify.equiv import simulation_equivalent

AND2 = TruthTable.from_function(2, lambda a, b: a and b)
XOR2 = TruthTable.from_function(2, lambda a, b: a != b)


def build_circuit() -> SeqCircuit:
    """An 8-stage self-timed loop gated by primary inputs.

    Every loop gate consumes one external input, so a K-LUT can only
    swallow K-1 loop stages structurally — but the AND/XOR chain is
    Boolean-decomposable, which is TurboSYN's opening.
    """
    c = SeqCircuit("quickstart")
    xs = [c.add_pi(f"x{i}") for i in range(8)]
    loop = [
        c.add_gate_placeholder(f"g{i}", AND2 if i % 2 else XOR2)
        for i in range(8)
    ]
    for i in range(8):
        weight = 1 if i == 0 else 0  # a single register on the back edge
        c.set_fanins(loop[i], [(loop[(i - 1) % 8], weight), (xs[i], 0)])
    # A feed-forward tail: pipelining will fix whatever depth it has.
    tail = loop[-1]
    for i in range(4):
        tail = c.add_gate(f"t{i}", XOR2, [(tail, 0), (xs[i], 0)])
    c.add_po("y", tail)
    c.check()
    return c


def main() -> None:
    circuit = build_circuit()
    print(f"subject circuit: {circuit}")
    print(f"identity-mapping clock period bound: {min_feasible_period(circuit)}")
    print()

    for label, mapper in [
        ("FlowSYN-s ", flowsyn_s),
        ("TurboMap  ", turbomap),
        ("TurboSYN  ", turbosyn),
    ]:
        result = mapper(circuit, k=5)
        print(
            f"{label}: minimum clock period phi = {result.phi}, "
            f"{result.n_luts} LUTs"
        )

    print()
    best = turbosyn(circuit, k=5)
    pipe = pipeline_and_retime(best.mapped)
    print(
        f"after pipelining + retiming: measured clock period "
        f"{pipe.circuit.clock_period()} (phi = {best.phi})"
    )
    lags = {name: lag for name, lag in pipe.po_lags.items() if lag}
    if lags:
        print(f"pipeline latency added per output: {lags}")
    ok = simulation_equivalent(
        circuit, pipe.circuit, cycles=80, warmup=16, po_lags=pipe.po_lags
    )
    print(f"random-simulation equivalence check: {'PASS' if ok else 'FAIL'}")


if __name__ == "__main__":
    main()
