#!/usr/bin/env python
"""Datapath mapping: carry loops, retiming modes and pipeline latency.

Uses the ISCAS-like generators to build an accumulator + counter + LFSR
datapath and shows:

* why loops bound the clock period (the exact rational MDR ratio and the
  critical cycle through the accumulator carry chain),
* strict retiming (Leiserson-Saxe, I/O latency preserved) versus
  pipelining + retiming (the paper's setting),
* the per-output latency pipelining introduces, verified by lag-aligned
  simulation.

Run:  python examples/datapath_retiming.py
"""

from repro.bench.datapath import datapath_circuit
from repro.core.turbomap import turbomap
from repro.core.turbosyn import turbosyn
from repro.retime.leiserson import RetimingInfeasible, min_period_retiming
from repro.retime.mdr import critical_ratio_cycle, mdr_ratio, min_feasible_period
from repro.retime.pipeline import pipeline_and_retime
from repro.verify.equiv import simulation_equivalent


def main() -> None:
    circuit = datapath_circuit("dp_demo", width=12, seed=5, n_blocks=4)
    print(f"datapath: {circuit}")
    print(f"clock period as generated: {circuit.clock_period()}")

    ratio = mdr_ratio(circuit)
    print(f"exact MDR ratio (gate-level): {ratio} "
          f"-> integer bound {min_feasible_period(circuit)}")
    cycle = critical_ratio_cycle(circuit)
    if cycle:
        names = [circuit.name_of(v) for v in cycle]
        shown = ", ".join(names[:6]) + (" ..." if len(names) > 6 else "")
        print(f"critical cycle ({len(cycle)} gates): {shown}")
    print()

    tm = turbomap(circuit, k=5)
    ts = turbosyn(circuit, k=5, upper_bound=tm.phi)
    print(f"TurboMap : phi = {tm.phi}, {tm.n_luts} LUTs")
    print(f"TurboSYN : phi = {ts.phi}, {ts.n_luts} LUTs")
    mapped = ts.mapped
    print()

    print("--- strict retiming (I/O latency preserved) ---")
    try:
        strict = min_period_retiming(mapped, allow_pipelining=False)
        print(f"best strict clock period: {strict.period}")
    except (RetimingInfeasible, ValueError) as exc:
        print(f"strict retiming unavailable: {exc}")

    print("--- pipelining + retiming (the paper's setting) ---")
    pipe = pipeline_and_retime(mapped)
    print(f"clock period: {pipe.circuit.clock_period()} (MDR bound {pipe.phi})")
    lags = {name: lag for name, lag in pipe.po_lags.items() if lag}
    print(f"pipeline latency per output: {lags or 'none needed'}")

    ok = simulation_equivalent(
        circuit, pipe.circuit, cycles=120, warmup=24, po_lags=pipe.po_lags
    )
    print(f"lag-aligned equivalence vs the gate level: {'PASS' if ok else 'FAIL'}")


if __name__ == "__main__":
    main()
