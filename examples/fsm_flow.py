#!/usr/bin/env python
"""Full FSM flow: KISS2 -> synthesis -> mapping -> retiming -> verification.

Mirrors the paper's experimental setup end to end on one controller:

1. a state transition graph in KISS2 text (what the MCNC benchmarks are),
2. structural synthesis into a 2-bounded gate network
   (the SIS + dmig front-end stand-in),
3. the three mappers of Table 1,
4. pipelining + retiming of the winner,
5. an oracle check of the final netlist against the abstract FSM.

Run:  python examples/fsm_flow.py
"""

from repro.bench.fsm import fsm_to_circuit, simulate_fsm_circuit
from repro.core.flowsyn_s import flowsyn_s
from repro.core.turbomap import turbomap
from repro.core.turbosyn import turbosyn
from repro.netlist.blif import write_blif
from repro.netlist.kiss import read_kiss, write_kiss
from repro.retime.pipeline import pipeline_and_retime
from repro.verify.equiv import simulation_equivalent

# A compact traffic-light-ish controller with cube-guarded transitions
# (disjoint per state, SIS first-match semantics).
KISS_TEXT = """
.i 3
.o 2
.s 4
.r green
0-- green  green  00
1-0 green  yellow 01
1-1 green  allred 01
--- yellow red    01
0-- red    red    10
1-- red    allred 10
-0- allred green  11
-1- allred red    11
.e
"""


def main() -> None:
    fsm = read_kiss(KISS_TEXT)
    print(f"FSM: {fsm.num_states} states, {fsm.num_inputs} inputs, "
          f"{fsm.num_outputs} outputs, reset = {fsm.reset_state}")
    print("KISS2 round-trip check:",
          read_kiss(write_kiss(fsm)).transitions == fsm.transitions)

    circuit = fsm_to_circuit(fsm, name="traffic")
    print(f"synthesized gate network: {circuit}")
    assert simulate_fsm_circuit(fsm, circuit, steps=200, seed=7)
    print("gate network tracks the STG: PASS")
    print()

    results = {}
    for label, mapper in [
        ("FlowSYN-s", flowsyn_s),
        ("TurboMap", turbomap),
        ("TurboSYN", turbosyn),
    ]:
        results[label] = mapper(circuit, k=5)
        print(
            f"{label:10s}: phi = {results[label].phi}, "
            f"{results[label].n_luts} LUTs"
        )

    best = results["TurboSYN"]
    pipe = pipeline_and_retime(best.mapped)
    print(
        f"\nTurboSYN + pipelining + retiming: clock period "
        f"{pipe.circuit.clock_period()}"
    )
    ok = simulation_equivalent(
        circuit, pipe.circuit, cycles=100, warmup=16, po_lags=pipe.po_lags
    )
    print(f"final netlist equivalent to gate network: {'PASS' if ok else 'FAIL'}")

    blif = write_blif(pipe.circuit)
    print(f"\nfinal BLIF netlist: {len(blif.splitlines())} lines "
          f"({pipe.circuit.n_gates} LUTs, {pipe.circuit.n_ffs} FFs)")


if __name__ == "__main__":
    main()
