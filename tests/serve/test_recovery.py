"""Crash-only recovery: interrupt the service at journaled fault points,
restart from the same state directory, and prove the differential —
every job terminal, every result bit-identical to the cold run."""

import pytest

from repro.resilience import faultinject
from repro.resilience.faultinject import Fault, FaultPlan
from repro.serve.chaos import DEFAULT_SITES, run_interrupt_differential
from repro.serve.jobs import JobSpec
from repro.serve.service import MappingService


def _abandon(service):
    """Drop a wounded service the way a crash would: journal fh closed
    (the OS would do that), nothing else cleaned up, no terminal records."""
    service._journal.close()


@pytest.mark.parametrize("site", DEFAULT_SITES)
def test_crash_at_site_recovers_bit_identical(tmp_path, quick_blif, site):
    report = run_interrupt_differential(
        str(tmp_path), [quick_blif], algorithms=("turbomap",),
        sites=(site,), k=4,
    )
    entry = report["sites"][site]
    assert report["ok"], entry
    assert entry["crashes"] >= 1
    assert entry["mismatches"] == []


def test_turbosyn_survives_a_mid_suite_crash(tmp_path, quick_blif):
    # The two-stage algorithm: the bound probes and the bound itself are
    # journaled, so a crash between the stages resumes without re-running
    # the bound search.
    report = run_interrupt_differential(
        str(tmp_path), [quick_blif], algorithms=("turbosyn",),
        sites=("journal-append",), at=4, k=4,
    )
    entry = report["sites"]["journal-append"]
    assert report["ok"], entry
    assert entry["resumed_with_checkpoints"] >= 1


def test_resumed_job_adopts_journaled_probe_checkpoints(
    tmp_path, quick_blif
):
    state = str(tmp_path / "state")
    service = MappingService(state)
    circuit_id = service.store.put(quick_blif)
    view = service.submit(JobSpec(
        circuit_id=circuit_id, algorithm="turbomap", k=4
    ))
    # Crash on the third journal append — the first probe checkpoint.
    # The fault fires *after* the fsync, so the probe is durable but the
    # search never advances past it.
    faultinject.install(FaultPlan(faults=[
        Fault(site="journal-append", action="interrupt", at=2, fires=1)
    ]))
    try:
        with pytest.raises(KeyboardInterrupt):
            service.run_job_inline(view["id"])
    finally:
        faultinject.clear()
    _abandon(service)

    recovered = MappingService(state)
    try:
        assert recovered.recovered["replayed_pending"] == [view["id"]]
        resumed = recovered.status(view["id"])
        assert resumed["state"] == "queued"
        assert resumed["attempts"] == 1  # the crashed attempt was journaled
        assert resumed["probes_journaled"] >= 1
        done = recovered.run_job_inline(view["id"])
        assert done["state"] == "done"
        assert done["attempts"] == 2
    finally:
        recovered.stop(drain=False, timeout=1.0)


def test_torn_journal_tail_does_not_block_recovery(tmp_path, quick_blif):
    state = str(tmp_path / "state")
    service = MappingService(state)
    circuit_id = service.store.put(quick_blif)
    view = service.submit(JobSpec(
        circuit_id=circuit_id, algorithm="flowsyn-s", k=4
    ))
    _abandon(service)
    journal_path = service._journal.path
    with open(journal_path, "ab") as fh:
        fh.write(b'{"type": "done", "job": "j0')  # crash mid-append

    recovered = MappingService(state)
    try:
        # The torn line was dropped and truncated away on open (the
        # injected fragment is distinctive: real records have no spaces).
        with open(journal_path, "rb") as fh:
            assert b'"job": "j0' not in fh.read()
        # The accepted job survives and runs.
        assert recovered.status(view["id"])["state"] == "queued"
        done = recovered.run_job_inline(view["id"])
        assert done["state"] == "done"
    finally:
        recovered.stop(drain=False, timeout=1.0)


def test_cancel_request_survives_a_crash(tmp_path, quick_blif):
    state = str(tmp_path / "state")
    service = MappingService(state)
    circuit_id = service.store.put(quick_blif)
    view = service.submit(JobSpec(
        circuit_id=circuit_id, algorithm="turbomap", k=4
    ))
    service.cancel(view["id"])
    _abandon(service)

    recovered = MappingService(state)
    try:
        done = recovered.run_job_inline(view["id"])
        assert done["state"] == "cancelled"
    finally:
        recovered.stop(drain=False, timeout=1.0)


def test_finished_jobs_are_not_resurrected(tmp_path, quick_blif):
    state = str(tmp_path / "state")
    service = MappingService(state)
    view = service.submit_circuit(quick_blif, algorithm="flowsyn-s", k=4)
    done = service.run_job_inline(view["id"])
    _abandon(service)

    recovered = MappingService(state)
    try:
        assert recovered.recovered["replayed_pending"] == []
        replayed = recovered.status(view["id"])
        assert replayed["state"] == "done"
        assert replayed["result"]["signature"] == done["result"]["signature"]
    finally:
        recovered.stop(drain=False, timeout=1.0)


def test_compaction_preserves_the_job_table(tmp_path, quick_blif):
    state = str(tmp_path / "state")
    service = MappingService(state)
    view = service.submit_circuit(quick_blif, algorithm="flowsyn-s", k=4)
    done = service.run_job_inline(view["id"])
    pending = service.submit_circuit(quick_blif, algorithm="turbomap", k=4)
    _abandon(service)

    # A tiny threshold forces compaction on the next recovery.
    recovered = MappingService(state, compact_threshold=1)
    try:
        assert recovered.status(view["id"])["result"] == done["result"]
        assert recovered.status(pending["id"])["state"] == "queued"
        after = recovered.run_job_inline(pending["id"])
        assert after["state"] == "done"
    finally:
        recovered.stop(drain=False, timeout=1.0)
