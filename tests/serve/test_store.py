"""Content-addressed store: dedup, blob reuse, KERN-audited hygiene."""

import pytest

from repro.netlist.blif import read_blif
from repro.resilience import faultinject
from repro.resilience.faultinject import Fault, FaultPlan, InjectedFault
from repro.serve.store import CircuitStore, StoreError


@pytest.fixture()
def store(tmp_path) -> CircuitStore:
    return CircuitStore(str(tmp_path / "store"))


class TestDedup:
    def test_same_text_same_id(self, store, quick_blif):
        assert store.put(quick_blif) == store.put(quick_blif)
        assert len(store.circuit_ids()) == 1

    def test_formatting_differences_dedup(self, store, quick_blif):
        # The address covers the canonical netlist, not its formatting:
        # extra comments and blank lines hash to the same circuit.
        noisy = "# a comment\n\n" + quick_blif.replace("\n", "\n\n")
        assert store.put(noisy) == store.put(quick_blif)

    def test_different_circuits_get_different_ids(
        self, store, quick_blif, other_blif
    ):
        assert store.put(quick_blif) != store.put(other_blif)

    def test_accepts_parsed_circuits_identically(self, store, quick_blif):
        circuit, _ = read_blif(quick_blif)
        assert store.put(circuit) == store.put(quick_blif)


class TestLoad:
    def test_round_trip_reuses_blob(self, store, quick_blif):
        circuit_id = store.put(quick_blif)
        circuit, meta = store.load(circuit_id)
        assert meta["blob_reused"] is True
        assert meta["recompiled"] is False
        assert circuit.n_gates > 0
        assert store.blob_hits == 1
        assert store.blob_recompiles == 0

    def test_blob_bytes_are_the_compiled_kernel(self, store, quick_blif):
        circuit_id = store.put(quick_blif)
        circuit, _ = store.load(circuit_id)
        assert store.blob(circuit_id) == circuit.compiled().to_bytes()

    def test_unknown_id_raises_store_error(self, store):
        with pytest.raises(StoreError):
            store.load("deadbeef" * 8)
        with pytest.raises(StoreError):
            store.blob("deadbeef" * 8)


class TestHygiene:
    """Satellite: corrupted CSR blobs are rejected on load (KERN pack)
    and the job proceeds on a fresh compile, healing the blob."""

    def test_truncated_blob_recompiles_and_heals(self, store, quick_blif):
        circuit_id = store.put(quick_blif)
        blob_path = store._csr_path(circuit_id)
        good = open(blob_path, "rb").read()
        with open(blob_path, "wb") as fh:
            fh.write(good[: len(good) // 3])
        _, meta = store.load(circuit_id)
        assert meta["recompiled"] is True
        assert meta["blob_error"]
        assert store.blob_recompiles == 1
        # Healed: the rewritten blob passes the audit next time.
        _, meta2 = store.load(circuit_id)
        assert meta2["blob_reused"] is True
        assert open(blob_path, "rb").read() == good

    def test_garbage_blob_recompiles(self, store, quick_blif):
        circuit_id = store.put(quick_blif)
        with open(store._csr_path(circuit_id), "wb") as fh:
            fh.write(b"this is not a CSR kernel")
        _, meta = store.load(circuit_id)
        assert meta["recompiled"] is True

    def test_foreign_blob_fails_the_kern_audit(
        self, store, quick_blif, other_blif
    ):
        # A *valid* kernel for the wrong circuit: only the KERN001-005
        # audit (not deserialization) can catch this corruption class.
        id_a = store.put(quick_blif)
        id_b = store.put(other_blif)
        with open(store._csr_path(id_b), "rb") as fh:
            foreign = fh.read()
        with open(store._csr_path(id_a), "wb") as fh:
            fh.write(foreign)
        _, meta = store.load(id_a)
        assert meta["recompiled"] is True

    def test_missing_blob_recompiles_from_blif(self, store, quick_blif):
        import os

        circuit_id = store.put(quick_blif)
        os.unlink(store._csr_path(circuit_id))
        circuit, meta = store.load(circuit_id)
        assert meta["recompiled"] is True
        assert circuit.compiled() is not None


class TestFaultSite:
    def test_store_put_fires_after_both_artifacts(self, store, quick_blif):
        faultinject.install(
            FaultPlan([Fault("store-put", "raise")])
        )
        with pytest.raises(InjectedFault):
            store.put(quick_blif)
        faultinject.clear()
        # Crash window semantics: the entry is complete (both artifacts
        # durable), only the caller's acknowledgement was lost.
        (circuit_id,) = store.circuit_ids()
        _, meta = store.load(circuit_id)
        assert meta["blob_reused"] is True
        # Re-putting after the crash dedups onto the existing entry.
        assert store.put(quick_blif) == circuit_id
