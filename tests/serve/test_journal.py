"""The WAL primitive: append-fsync-act, torn tails, compaction."""

import json
import os
import threading

import pytest

from repro.resilience import faultinject
from repro.resilience.faultinject import Fault, FaultPlan, InjectedFault
from repro.serve.journal import Journal


def path_of(tmp_path) -> str:
    return str(tmp_path / "journal.jsonl")


class TestAppendReplay:
    def test_append_assigns_monotone_seq(self, tmp_path):
        journal, records = Journal.open(path_of(tmp_path))
        assert records == []
        assert journal.append({"type": "accept", "job": "j1"}) == 1
        assert journal.append({"type": "start", "job": "j1"}) == 2
        assert journal.seq == 2

    def test_replay_round_trips_records(self, tmp_path):
        journal, _ = Journal.open(path_of(tmp_path))
        journal.append({"type": "accept", "job": "j1", "spec": {"k": 4}})
        journal.append({"type": "done", "job": "j1"})
        journal.close()
        replayed, records = Journal.open(path_of(tmp_path))
        assert [r["type"] for r in records] == ["accept", "done"]
        assert records[0]["spec"] == {"k": 4}
        assert [r["seq"] for r in records] == [1, 2]
        assert replayed.seq == 2

    def test_seq_continues_after_reopen(self, tmp_path):
        journal, _ = Journal.open(path_of(tmp_path))
        journal.append({"type": "accept", "job": "j1"})
        journal.close()
        journal, _ = Journal.open(path_of(tmp_path))
        assert journal.append({"type": "start", "job": "j1"}) == 2

    def test_record_on_disk_before_append_returns(self, tmp_path):
        # WAL discipline: the fault site fires *after* write+fsync, so a
        # crash there leaves the record durable but unacted-on.
        journal, _ = Journal.open(path_of(tmp_path))
        faultinject.install(
            FaultPlan([Fault("journal-append", "raise", match="accept:*")])
        )
        with pytest.raises(InjectedFault):
            journal.append({"type": "accept", "job": "j9"})
        journal.close()
        _, records = Journal.open(path_of(tmp_path))
        assert [r["job"] for r in records] == ["j9"]


class TestConcurrentAppend:
    def test_parallel_appends_stay_atomic_and_monotone(self, tmp_path):
        # Lane threads journal probe checkpoints concurrently; a torn or
        # duplicate-seq line would truncate the replay at the damage.
        journal, _ = Journal.open(path_of(tmp_path))
        n_threads, per_thread = 8, 25
        barrier = threading.Barrier(n_threads)

        def hammer(worker: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                journal.append(
                    {"type": "probe", "job": f"w{worker}", "phi": i}
                )

        threads = [
            threading.Thread(target=hammer, args=(w,))
            for w in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        journal.close()
        _, records = Journal.open(path_of(tmp_path))
        total = n_threads * per_thread
        # Every append survived (no interleaved/torn lines lost replay)
        # and seqs are exactly 1..N with no duplicates.
        assert len(records) == total
        assert [r["seq"] for r in records] == list(range(1, total + 1))
        per_worker = {}
        for record in records:
            per_worker.setdefault(record["job"], []).append(record["phi"])
        assert all(
            phis == sorted(phis) for phis in per_worker.values()
        )  # per-thread order preserved


class TestTornTail:
    def test_partial_last_line_is_dropped_and_truncated(self, tmp_path):
        journal, _ = Journal.open(path_of(tmp_path))
        journal.append({"type": "accept", "job": "j1"})
        journal.close()
        with open(path_of(tmp_path), "a") as fh:
            fh.write('{"type": "start", "job": "j1", "se')  # torn mid-write
        journal, records = Journal.open(path_of(tmp_path))
        assert [r["type"] for r in records] == ["accept"]
        # The torn bytes are gone: the next append produces a clean file.
        journal.append({"type": "start", "job": "j1"})
        journal.close()
        lines = open(path_of(tmp_path)).read().splitlines()
        assert [json.loads(line)["type"] for line in lines] == [
            "accept", "start",
        ]

    def test_corrupt_middle_line_stops_replay_at_last_good(self, tmp_path):
        journal, _ = Journal.open(path_of(tmp_path))
        journal.append({"type": "accept", "job": "j1"})
        journal.append({"type": "accept", "job": "j2"})
        journal.close()
        raw = open(path_of(tmp_path)).read().splitlines()
        with open(path_of(tmp_path), "w") as fh:
            fh.write(raw[0] + "\n")
            fh.write("NOT JSON AT ALL\n")
            fh.write(raw[1] + "\n")
        _, records = Journal.open(path_of(tmp_path))
        # Everything from the corruption on is untrusted (prefix
        # integrity): only j1 survives.
        assert [r["job"] for r in records] == ["j1"]

    def test_empty_file_replays_to_nothing(self, tmp_path):
        open(path_of(tmp_path), "w").close()
        journal, records = Journal.open(path_of(tmp_path))
        assert records == []
        assert journal.seq == 0


class TestCompact:
    def test_compact_preserves_seq_and_content(self, tmp_path):
        journal, _ = Journal.open(path_of(tmp_path))
        for job in ("j1", "j2", "j3"):
            journal.append({"type": "accept", "job": job})
        journal.append({"type": "done", "job": "j1"})
        size_before = journal.size_bytes()
        journal.compact([
            {"type": "accept", "job": "j2", "seq": 2},
            {"type": "accept", "job": "j3", "seq": 3},
        ])
        assert journal.size_bytes() < size_before
        # seq keeps counting from the pre-compaction high-water mark.
        assert journal.append({"type": "start", "job": "j2"}) == 5
        journal.close()
        _, records = Journal.open(path_of(tmp_path))
        assert [(r["type"], r["seq"]) for r in records] == [
            ("compact", 4), ("accept", 2), ("accept", 3), ("start", 5),
        ]

    def test_high_water_mark_survives_compaction_and_reopen(self, tmp_path):
        # The highest-seq records (notes, superseded probes) may not be
        # in the live snapshot at all; the compaction header must still
        # pin the high-water mark so a replayed seq never regresses.
        journal, _ = Journal.open(path_of(tmp_path))
        journal.append({"type": "accept", "job": "j1"})  # seq 1
        for _ in range(5):
            journal.append({"type": "note", "job": "j1"})  # seq 2..6
        journal.compact([{"type": "accept", "job": "j1", "seq": 1}])
        journal.close()
        reopened, records = Journal.open(path_of(tmp_path))
        assert records[0] == {"type": "compact", "high_water": 6, "seq": 6}
        assert reopened.append({"type": "start", "job": "j1"}) == 7

    def test_compact_is_atomic_under_injected_crash(self, tmp_path):
        journal, _ = Journal.open(path_of(tmp_path))
        journal.append({"type": "accept", "job": "j1"})
        faultinject.install(FaultPlan([
            Fault("artifact-write", "raise", match=path_of(tmp_path))
        ]))
        with pytest.raises(InjectedFault):
            journal.compact([])
        faultinject.clear()
        # The old journal survived the interrupted compaction intact.
        _, records = Journal.open(path_of(tmp_path))
        assert [r["job"] for r in records] == ["j1"]
        assert not [
            name for name in os.listdir(tmp_path) if name != "journal.jsonl"
        ]
