"""The HTTP surface: a real ServeServer on an ephemeral port, driven
through ServeClient.  Admission control must answer 429 + Retry-After,
never hang; everything else maps to structured JSON."""

import asyncio
import json
import socket
import threading
import urllib.request

import pytest

from repro.serve.client import QueueFull, ServeClient, ServeError
from repro.serve.server import ServeServer
from repro.serve.service import MappingService


class _Served:
    """A server on port 0 with its event loop on a daemon thread."""

    def __init__(self, service: MappingService) -> None:
        self.server = ServeServer(service, port=0)
        self.loop = asyncio.new_event_loop()
        ready = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            ready.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert ready.wait(10.0), "server did not start"
        self.client = ServeClient(port=self.server.port, timeout=30.0)

    def close(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(30.0)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10.0)
        self.loop.close()


@pytest.fixture()
def served(tmp_path):
    box = _Served(MappingService(str(tmp_path / "state"), max_queue=3))
    yield box.client
    box.close()


@pytest.fixture()
def queued_only(tmp_path, monkeypatch):
    """A served instance whose scheduler lanes never start: submissions
    pile up deterministically, which is what admission tests need."""
    service = MappingService(str(tmp_path / "q-state"), max_queue=3)
    monkeypatch.setattr(service, "start", lambda: None)
    box = _Served(service)
    yield box.client
    box.close()


class TestHealth:
    def test_healthz(self, served):
        health = served.healthz()
        assert health["status"] == "ok"
        assert health["journal"]["seq"] == 0

    def test_readyz_reports_capacity(self, queued_only, quick_blif):
        assert queued_only.readyz()["ready"] is True
        for _ in range(3):
            queued_only.submit(blif=quick_blif, algorithm="flowsyn-s", k=4)
        with pytest.raises(ServeError) as info:
            queued_only.readyz()
        assert info.value.status == 503
        assert info.value.body["ready"] is False


class TestJobs:
    def test_submit_wait_result_round_trip(self, served, quick_blif):
        circuit_id = served.upload_circuit(quick_blif)
        view = served.submit(
            circuit_id=circuit_id, algorithm="turbomap", k=4
        )
        assert view["state"] in ("queued", "running")
        done = served.wait(view["id"], timeout=120.0)
        assert done["state"] == "done"
        artifact = served.result(view["id"])
        assert artifact["signature"] == done["result"]["signature"]
        assert artifact["run"]["job"]["id"] == view["id"]

    def test_inline_blif_submission(self, served, other_blif):
        view = served.submit(blif=other_blif, algorithm="flowsyn-s", k=4)
        done = served.wait(view["id"], timeout=120.0)
        assert done["state"] == "done"

    def test_suite_fans_out_per_circuit_and_algorithm(
        self, queued_only, quick_blif
    ):
        views = queued_only.submit_suite(
            [{"blif": quick_blif}], ["turbomap", "flowsyn-s"], k=4
        )
        assert len(views) == 2
        algos = {view["spec"]["algorithm"] for view in views}
        assert algos == {"turbomap", "flowsyn-s"}

    def test_cancel_over_http(self, queued_only, quick_blif):
        view = queued_only.submit(
            blif=quick_blif, algorithm="turbomap", k=4
        )
        cancelled = queued_only.cancel(view["id"])
        assert cancelled["cancel_requested"] is True

    def test_bounded_wait_returns_live_state(self, queued_only, quick_blif):
        # No lanes running: the wait can never complete, so the bounded
        # server-side wait must return the live (queued) view, not hang.
        view = queued_only.submit(
            blif=quick_blif, algorithm="turbomap", k=4
        )
        live = queued_only.status(view["id"])
        assert live["state"] == "queued"
        out = queued_only._request(
            "GET", f"/jobs/{view['id']}?wait=0.2"
        )
        assert out["state"] == "queued"

    def test_events_expose_the_job_event_log(self, queued_only, quick_blif):
        view = queued_only.submit(blif=quick_blif, algorithm="turbomap", k=4)
        events = queued_only.events()
        accepts = [e for e in events if e["type"] == "accept"]
        assert [e["job"] for e in accepts] == [view["id"]]


class TestAdmissionOverHttp:
    def test_429_with_retry_after_header(self, queued_only, quick_blif):
        circuit_id = queued_only.upload_circuit(quick_blif)
        for _ in range(3):
            queued_only.submit(circuit_id=circuit_id, k=4)
        with pytest.raises(QueueFull) as info:
            queued_only.submit(circuit_id=circuit_id, k=4)
        assert info.value.status == 429
        assert info.value.body["error"] == "queue_full"
        assert info.value.retry_after >= 1.0
        # The header is there too, for clients that only read headers.
        request = urllib.request.Request(
            queued_only.base + "/jobs",
            data=b'{"circuit_id": "%s"}' % circuit_id.encode(),
            method="POST", headers={"Content-Type": "application/json"},
        )
        try:
            urllib.request.urlopen(request, timeout=10.0)
            pytest.fail("expected HTTP 429")
        except urllib.error.HTTPError as exc:
            assert exc.code == 429
            assert int(exc.headers["Retry-After"]) >= 1
            exc.close()


class TestOversizeUpload:
    def test_oversize_content_length_is_413_and_closes(self, queued_only):
        # The server must answer 413 *without* reading the oversized
        # body, and close the connection so the unread bytes can never
        # desync a keep-alive stream.
        port = int(queued_only.base.rsplit(":", 1)[1])
        with socket.create_connection(("127.0.0.1", port), timeout=10.0) as sock:
            sock.sendall(
                b"POST /circuits HTTP/1.1\r\n"
                b"Host: localhost\r\n"
                b"Content-Length: 999999999999\r\n"
                b"\r\n"
                b".model partial"  # a sliver of the body, never the rest
            )
            sock.settimeout(10.0)
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break  # server closed: the desync window is gone
                raw += chunk
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 413 ")
        assert b"Connection: close" in head
        payload = json.loads(body)
        assert payload["error"] == "payload_too_large"
        assert payload["content_length"] == 999999999999


class TestErrorMapping:
    def test_unknown_job_is_404(self, served):
        with pytest.raises(ServeError) as info:
            served.status("j999999")
        assert info.value.status == 404

    def test_bad_spec_is_400(self, served, quick_blif):
        circuit_id = served.upload_circuit(quick_blif)
        with pytest.raises(ServeError) as info:
            served.submit(circuit_id=circuit_id, fidelity="max")
        assert info.value.status == 400
        assert "unknown job spec field" in info.value.body["message"]

    def test_unknown_circuit_is_400(self, served):
        with pytest.raises(ServeError) as info:
            served.submit(circuit_id="not-a-circuit")
        assert info.value.status == 400

    def test_unknown_route_is_404(self, served):
        with pytest.raises(ServeError) as info:
            served._request("GET", "/totally/elsewhere")
        assert info.value.status == 404

    def test_wrong_method_is_405(self, served):
        with pytest.raises(ServeError) as info:
            served._request("DELETE", "/jobs")
        assert info.value.status == 405
