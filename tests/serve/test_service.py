"""MappingService behavior: happy path, admission, cancellation,
degradation, store healing, schema-6 reports."""

import json

import pytest

from repro.serve.jobs import JobBudget, JobSpec
from repro.serve.service import AdmissionRejected, MappingService, artifact_signature


@pytest.fixture()
def service(tmp_path):
    svc = MappingService(str(tmp_path / "state"), max_queue=3)
    yield svc
    svc.stop(drain=False, timeout=1.0)


class TestHappyPath:
    def test_submit_and_run_turbomap(self, service, quick_blif):
        view = service.submit_circuit(quick_blif, algorithm="turbomap", k=4)
        assert view["state"] == "queued"
        done = service.run_job_inline(view["id"])
        assert done["state"] == "done"
        result = done["result"]
        assert result["phi"] >= 1
        assert result["luts"] > 0
        assert not result["degraded"]
        artifact = service.result(view["id"])
        assert artifact["signature"] == result["signature"]
        assert artifact["run"]["job"]["id"] == view["id"]
        assert artifact["run"]["job"]["attempts"] == 1
        assert artifact["mapped_blif"].startswith(".model")

    def test_flowsyn_s_runs_without_probe_checkpoints(
        self, service, other_blif
    ):
        view = service.submit_circuit(other_blif, algorithm="flowsyn-s", k=4)
        done = service.run_job_inline(view["id"])
        assert done["state"] == "done"
        assert done["probes_journaled"] == 0

    def test_duplicate_upload_shares_the_store_entry(
        self, service, quick_blif
    ):
        a = service.submit_circuit(quick_blif, algorithm="flowsyn-s", k=4)
        b = service.submit_circuit(quick_blif, algorithm="turbomap", k=4)
        assert a["spec"]["circuit_id"] == b["spec"]["circuit_id"]
        assert len(service.store.circuit_ids()) == 1

    def test_signature_covers_results_not_timings(self):
        base = {
            "run": {"phi": 3, "luts": 10, "degraded": False,
                    "certificate": {"verified": True, "t_verify": 0.5}},
            "labels": [1, 2], "mapped_blif": ".model m\n.end\n",
        }
        slower = json.loads(json.dumps(base))
        slower["run"]["certificate"]["t_verify"] = 99.0
        assert artifact_signature(base) == artifact_signature(slower)
        changed = json.loads(json.dumps(base))
        changed["run"]["phi"] = 4
        assert artifact_signature(base) != artifact_signature(changed)


class TestAdmission:
    def test_queue_full_rejects_with_retry_after(self, service, quick_blif):
        circuit_id = service.store.put(quick_blif)
        for _ in range(3):  # max_queue=3
            service.submit(JobSpec(circuit_id=circuit_id, k=4))
        with pytest.raises(AdmissionRejected) as info:
            service.submit(JobSpec(circuit_id=circuit_id, k=4))
        rejection = info.value.to_dict()
        assert rejection["error"] == "queue_full"
        assert rejection["pending"] == 3
        assert rejection["retry_after"] >= 1.0
        assert service.stats.snapshot()["rejected"] == 1

    def test_rejection_is_not_journaled(self, service, quick_blif):
        circuit_id = service.store.put(quick_blif)
        for _ in range(3):
            service.submit(JobSpec(circuit_id=circuit_id, k=4))
        seq_before = service._journal.seq
        with pytest.raises(AdmissionRejected):
            service.submit(JobSpec(circuit_id=circuit_id, k=4))
        assert service._journal.seq == seq_before

    def test_capacity_returns_after_jobs_finish(self, service, quick_blif):
        circuit_id = service.store.put(quick_blif)
        views = [
            service.submit(JobSpec(
                circuit_id=circuit_id, algorithm="flowsyn-s", k=4
            ))
            for _ in range(3)
        ]
        assert not service.ready()["ready"]
        for view in views:
            service.run_job_inline(view["id"])
        assert service.ready()["ready"]

    def test_unknown_circuit_is_rejected_up_front(self, service):
        with pytest.raises(ValueError, match="unknown circuit"):
            service.submit(JobSpec(circuit_id="no-such-circuit"))

    def test_draining_service_refuses_jobs(self, tmp_path, quick_blif):
        svc = MappingService(str(tmp_path / "drain-state"))
        circuit_id = svc.store.put(quick_blif)
        svc.stop(drain=True, timeout=1.0)
        with pytest.raises(RuntimeError, match="draining"):
            svc.submit(JobSpec(circuit_id=circuit_id))


class TestCancellation:
    def test_cancel_queued_job_never_runs(self, service, quick_blif):
        view = service.submit_circuit(quick_blif, algorithm="turbomap", k=4)
        service.cancel(view["id"])
        done = service.run_job_inline(view["id"])
        assert done["state"] == "cancelled"
        assert service.stats.snapshot()["cancelled"] == 1

    def test_cancelled_queued_job_result_is_a_structured_error(
        self, service, quick_blif
    ):
        # No artifact was ever written: result() must say so, not leak
        # a FileNotFoundError (which the HTTP layer would map to 500).
        view = service.submit_circuit(quick_blif, algorithm="turbomap", k=4)
        service.cancel(view["id"])
        service.run_job_inline(view["id"])
        with pytest.raises(ValueError, match="without a result artifact"):
            service.result(view["id"])

    def test_cancel_mid_run_degrades_with_cancelled_reason(
        self, service, quick_blif
    ):
        # Inject a budget whose cancel event is already set: the search
        # hits it at the first probe boundary and degrades (or reports
        # exhaustion), never runs to completion silently.
        cancelled = JobBudget()
        cancelled.cancel()
        service._budget_factory = lambda spec: cancelled
        view = service.submit_circuit(quick_blif, algorithm="turbomap", k=4)
        done = service.run_job_inline(view["id"])
        assert done["state"] == "cancelled"

    def test_cancel_terminal_job_is_a_no_op(self, service, other_blif):
        view = service.submit_circuit(other_blif, algorithm="flowsyn-s", k=4)
        service.run_job_inline(view["id"])
        assert service.cancel(view["id"])["state"] == "done"


class TestDuplicateEnqueue:
    def test_running_job_is_not_claimed_twice(self, service, quick_blif):
        # A duplicate enqueue (recovery + a racing lane) must bounce off
        # the queued→running claim: only QUEUED jobs may be picked up.
        view = service.submit_circuit(quick_blif, algorithm="turbomap", k=4)
        job = service._jobs[view["id"]]
        job.state = "running"  # lane A claimed it
        seq_before = service._journal.seq
        done = service.run_job_inline(view["id"])  # lane B's duplicate
        assert done["state"] == "running"  # untouched, no second run
        assert service._journal.seq == seq_before  # no duplicate records
        job.state = "queued"  # hand it back; it runs exactly once
        assert service.run_job_inline(view["id"])["state"] == "done"
        assert service.status(view["id"])["attempts"] == 1


class TestDegradation:
    def test_deadline_pressure_fails_with_structured_reason(
        self, service, quick_blif
    ):
        # A pre-expired budget: no feasible phi can be probed at all, so
        # the job fails with a structured budget_exhausted error rather
        # than hanging.
        class Expired(JobBudget):
            def expired(self):
                return True

            def check(self):
                from repro.resilience.budget import DeadlineExpired

                raise DeadlineExpired("deadline")

            def begin_probe(self):
                self.check()

        service._budget_factory = lambda spec: Expired(deadline=0.0)
        view = service.submit_circuit(quick_blif, algorithm="turbomap", k=4)
        done = service.run_job_inline(view["id"])
        assert done["state"] == "failed"
        assert done["error"]["reason"] == "budget_exhausted"

    def test_open_breaker_clamps_parallel_jobs_to_sequential(
        self, service, quick_blif
    ):
        breaker = service.scheduler.breakers[0]
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        assert not breaker.allow()
        view = service.submit_circuit(
            quick_blif, algorithm="turbomap", k=4, workers=2
        )
        done = service.run_job_inline(view["id"])
        assert done["state"] == "done"
        artifact = service.result(view["id"])
        # Graceful degradation: served, but probed sequentially.
        assert artifact["run"]["workers"] == 1
        notes = [
            event for event in service.journal_events()
            if event.get("what") == "breaker-degraded"
        ]
        assert len(notes) == 1


class TestStoreHealing:
    def test_corrupt_blob_heals_and_is_noted(self, service, quick_blif):
        view = service.submit_circuit(quick_blif, algorithm="turbomap", k=4)
        blob_path = service.store._csr_path(view["spec"]["circuit_id"])
        with open(blob_path, "wb") as fh:
            fh.write(b"corrupted beyond recognition")
        done = service.run_job_inline(view["id"])
        assert done["state"] == "done"
        artifact = service.result(view["id"])
        assert artifact["store"]["recompiled"] is True
        assert service.store.blob_recompiles == 1
        heals = [
            event for event in service.journal_events()
            if event.get("what") == "store-heal"
        ]
        assert len(heals) == 1


class TestReport:
    def test_schema_6_report_with_job_and_service_envelopes(
        self, service, quick_blif, other_blif
    ):
        for blif in (quick_blif, other_blif):
            view = service.submit_circuit(blif, algorithm="turbomap", k=4)
            service.run_job_inline(view["id"])
        report = service.report()
        assert report["schema"] == 8
        assert len(report["runs"]) == 2
        for run in report["runs"]:
            assert run["job"]["signature"]
            assert run["job"]["attempts"] == 1
        assert report["service"]["status"] == "ok"
        assert report["service"]["stats"]["completed"] == 2

    def test_failed_jobs_land_in_report_errors(self, service, quick_blif):
        class Expired(JobBudget):
            def check(self):
                from repro.resilience.budget import DeadlineExpired

                raise DeadlineExpired("deadline")

            def begin_probe(self):
                self.check()

        service._budget_factory = lambda spec: Expired()
        view = service.submit_circuit(quick_blif, algorithm="turbomap", k=4)
        service.run_job_inline(view["id"])
        report = service.report()
        assert report["runs"] == []
        (error,) = report["errors"]
        assert error["job"] == view["id"]
        assert error["error"] == "BudgetExhausted"


class TestHealth:
    def test_health_shape(self, service, quick_blif):
        view = service.submit_circuit(quick_blif, algorithm="flowsyn-s", k=4)
        service.run_job_inline(view["id"])
        health = service.health()
        assert health["status"] == "ok"
        assert health["jobs"] == {"done": 1}
        assert health["journal"]["seq"] >= 3  # accept + start + done
        assert health["store"]["circuits"] == 1
        assert len(health["breakers"]) == 1
        assert health["recovered"]["records"] == 0
