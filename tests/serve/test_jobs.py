"""Job specs, cancellable budgets, probe serialization, service stats."""

import pytest

from repro.resilience.budget import DeadlineExpired
from repro.serve.jobs import (
    JobBudget,
    JobSpec,
    ServiceStats,
    deserialize_probes,
    retry_after_estimate,
    serialize_probes,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestJobSpec:
    def test_round_trips_through_dict(self):
        spec = JobSpec(circuit_id="abc", algorithm="turbosyn", k=4, workers=2)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            JobSpec(circuit_id="abc", algorithm="magic")

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown job spec field"):
            JobSpec.from_dict({"circuit_id": "abc", "fidelity": "max"})

    def test_rejects_silly_bounds(self):
        with pytest.raises(ValueError):
            JobSpec(circuit_id="abc", k=0)
        with pytest.raises(ValueError):
            JobSpec(circuit_id="abc", workers=0)


class TestJobBudget:
    def test_cancel_is_observed_at_probe_boundaries(self):
        budget = JobBudget(deadline=100.0, clock=FakeClock())
        budget.start()
        budget.check()  # fine before cancellation
        budget.cancel()
        assert budget.cancelled
        assert budget.expired()
        with pytest.raises(DeadlineExpired):
            budget.check()
        with pytest.raises(DeadlineExpired):
            budget.begin_probe()

    def test_exhaust_reports_cancelled_reason(self):
        budget = JobBudget()
        budget.cancel()
        budget.exhaust(DeadlineExpired("job cancelled"))
        assert budget.exhausted
        assert budget.reason == "cancelled"
        assert budget.events[-1]["kind"] == "cancelled"

    def test_uncancelled_budget_behaves_like_plain_budget(self):
        clock = FakeClock()
        budget = JobBudget(deadline=2.0, clock=clock)
        budget.start()
        clock.advance(2.5)
        assert budget.expired()
        budget.exhaust(DeadlineExpired("too slow"))
        assert budget.reason == "deadline"  # not "cancelled"

    def test_deadline_rides_the_injected_clock(self):
        clock = FakeClock(t=500.0)
        budget = JobBudget(deadline=1.0, probe_timeout=0.5, clock=clock)
        budget.start()
        assert budget.begin_probe() == pytest.approx(0.5)
        clock.advance(0.8)
        assert budget.begin_probe() == pytest.approx(0.2)


class TestProbeSerialization:
    def test_round_trip_restores_int_phi_keys(self):
        probes = {
            "main": {3: {"feasible": True, "labels": [0, 1]},
                     7: {"feasible": False, "labels": [2, 9]}},
            "bound": {5: {"feasible": True, "labels": [1]}},
        }
        assert deserialize_probes(serialize_probes(probes)) == probes

    def test_serialized_form_is_json_key_safe(self):
        import json

        probes = {"main": {12: {"feasible": True, "labels": []}}}
        assert json.loads(json.dumps(serialize_probes(probes))) == {
            "main": {"12": {"feasible": True, "labels": []}}
        }


class TestStats:
    def test_counters_and_snapshot(self):
        stats = ServiceStats()
        stats.bump("submitted")
        stats.bump("submitted")
        stats.bump("rejected")
        snap = stats.snapshot()
        assert snap["submitted"] == 2
        assert snap["rejected"] == 1

    def test_duration_ewma_converges_toward_observations(self):
        stats = ServiceStats()
        for _ in range(40):
            stats.observe_duration(10.0)
        assert stats.snapshot()["avg_job_seconds"] == pytest.approx(10.0, rel=0.01)


class TestRetryAfter:
    def test_scales_with_pending_and_clamps(self):
        assert retry_after_estimate(0, 5.0) == 1.0  # floor
        assert retry_after_estimate(4, 2.0) == pytest.approx(8.0)
        assert retry_after_estimate(1000, 60.0) == 60.0  # ceiling
