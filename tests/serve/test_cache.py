"""Service outcome sidecar: warm jobs, journal notes, health, recovery."""

import json
import os

import pytest

from repro.serve.service import MappingService


@pytest.fixture()
def service(tmp_path):
    svc = MappingService(str(tmp_path / "state"))
    yield svc
    svc.stop(drain=False, timeout=1.0)


def run(service, blif, **kw):
    view = service.submit_circuit(blif, algorithm="turbomap", k=4, **kw)
    done = service.run_job_inline(view["id"])
    assert done["state"] == "done"
    return done


def journal_notes(state_dir):
    path = os.path.join(state_dir, "journal.jsonl")
    notes = []
    with open(path) as fh:
        for line in fh:
            record = json.loads(line)
            if record.get("type") == "note":
                notes.append(record)
    return notes


class TestWarmJobs:
    def test_repeat_job_serves_from_the_sidecar(self, service, quick_blif):
        first = run(service, quick_blif)
        second = run(service, quick_blif)
        # Same circuit, same config: identical answer, cached probes.
        assert second["result"]["signature"] == first["result"]["signature"]
        assert second["result"]["phi"] == first["result"]["phi"]
        notes = journal_notes(service.state_dir)
        assert notes, "warm job did not journal a cache-hit note"
        note = notes[-1]
        assert note["what"] == "cache-hit"
        assert note["hits"] > 0 and note["probes_skipped"] > 0

    def test_cold_job_journals_no_note(self, service, quick_blif):
        run(service, quick_blif)
        assert journal_notes(service.state_dir) == []

    def test_sidecar_lives_under_the_store(self, service, quick_blif):
        run(service, quick_blif)
        outcomes_dir = os.path.join(service.state_dir, "store", "outcomes")
        assert os.path.isdir(outcomes_dir)
        assert service.cache.stats()["entries"] >= 1


class TestHealth:
    def test_health_reports_outcome_stats(self, service, quick_blif):
        stats = service.health()["store"]["outcomes"]
        for field in ("entries", "bytes", "hits", "misses"):
            assert field in stats
        run(service, quick_blif)
        run(service, quick_blif)
        warm = service.health()["store"]["outcomes"]
        assert warm["entries"] >= 1
        assert warm["hits"] > 0


class TestRecovery:
    def test_notes_replay_as_no_ops(self, tmp_path, quick_blif):
        state = str(tmp_path / "state")
        svc = MappingService(state)
        try:
            run(svc, quick_blif)
            run(svc, quick_blif)  # journals a cache-hit note
        finally:
            svc.stop(drain=False, timeout=1.0)

        revived = MappingService(state)
        try:
            # Both jobs recover as done; the note neither creates a
            # phantom job nor disturbs the replayed terminal states.
            jobs = revived.jobs()
            assert len(jobs) == 2
            assert all(j["state"] == "done" for j in jobs)
        finally:
            revived.stop(drain=False, timeout=1.0)

    def test_sidecar_outlives_restart(self, tmp_path, quick_blif):
        state = str(tmp_path / "state")
        svc = MappingService(state)
        try:
            run(svc, quick_blif)
        finally:
            svc.stop(drain=False, timeout=1.0)

        revived = MappingService(state)
        try:
            done = run(revived, quick_blif)
            notes = journal_notes(revived.state_dir)
            assert notes and notes[-1]["what"] == "cache-hit"
            assert done["result"]["phi"] >= 1
        finally:
            revived.stop(drain=False, timeout=1.0)
