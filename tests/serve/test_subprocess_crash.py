"""The end-to-end crash differential: a real ``python -m repro.serve``
process, a real ``kill`` fault (``os._exit`` mid-journal-append), a real
restart, and a bit-identical verdict.  One test — the CI smoke job runs
the bigger sweep; this keeps the property under ``pytest -x``."""

import json
import os

from repro.serve.chaos import demo_blif, run_kill_differential


def test_sigkill_mid_journal_append_recovers_bit_identical(tmp_path):
    blif_path = str(tmp_path / "demo.blif")
    with open(blif_path, "w", encoding="utf-8") as fh:
        fh.write(demo_blif(30, seed=7))

    report = run_kill_differential(
        str(tmp_path / "state"),
        [blif_path],
        algorithms=("turbomap",),
        kill_site="journal-append",
        kill_at=2,
        timeout=180.0,
        k=4,
    )
    assert report["ok"], json.dumps(report, indent=2)
    assert report["chaos"]["restarts"] >= 1  # the kill actually fired
    assert report["mismatches"] == []
    # The chaos journal — the structured job-event log — survives for
    # post-mortems (and for the CI artifact upload).
    with open(report["journal"], encoding="utf-8") as fh:
        kinds = {json.loads(line)["type"] for line in fh if line.strip()}
    assert {"accept", "start", "done"} <= kinds
    assert os.path.getsize(report["journal"]) > 0
