"""Shared fixtures for the serve tests: fault isolation + quick circuits."""

import pytest

from repro.resilience import faultinject
from repro.serve.chaos import demo_blif


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """Isolate the process-global fault plan (and its env hook) per test."""
    monkeypatch.delenv(faultinject.ENV_PLAN, raising=False)
    faultinject.reset()
    yield
    faultinject.clear()


@pytest.fixture(scope="session")
def quick_blif() -> str:
    """A small deterministic sequential circuit (multi-probe search)."""
    return demo_blif(40, seed=5)


@pytest.fixture(scope="session")
def other_blif() -> str:
    """A second circuit with a different content id."""
    return demo_blif(30, seed=9)
