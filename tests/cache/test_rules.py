"""CACHE rule pack: audits of on-disk outcome-cache entries."""

import json
import os
import shutil

import pytest

from repro.analysis.cacherules import audit_cache
from repro.cache.store import (
    OutcomeCache,
    cache_key,
    encode_labels,
    entry_checksum,
    final_signature,
)
from repro.core.labels import LabelOutcome, LabelStats
from tests.helpers import random_seq_circuit


@pytest.fixture()
def circuit():
    return random_seq_circuit(4, 24, seed=11)


@pytest.fixture()
def populated(tmp_path, circuit):
    """A cache holding one coherent entry with a witnessed final."""
    cache = OutcomeCache(tmp_path)
    key = cache_key(circuit, 4, False)
    n = len(circuit)

    def put(phi, feasible):
        cache.put_outcome(
            key,
            phi,
            LabelOutcome(
                feasible=feasible, labels=[phi] * n, stats=LabelStats()
            ),
        )

    put(2, False)
    put(3, True)
    cache.put_final(
        key,
        3,
        final_signature(3, [3] * n, ".model x\n.end\n"),
        {"phi": 3, "feasible": True},
        {"phi": 3, "feasible": True},
    )
    return cache, key, cache._entry_path(key)


def mutate(path, fn, fix_checksum=True):
    entry = json.load(open(path))
    fn(entry)
    if fix_checksum:
        entry["checksum"] = entry_checksum(entry)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(entry, fh, sort_keys=True, separators=(",", ":"))


def codes(diags):
    return sorted({d.rule_id for d in diags})


class TestCleanCache:
    def test_clean_cache_audits_clean(self, populated):
        cache, _key, _path = populated
        assert audit_cache(cache) == []

    def test_accepts_a_plain_root_path(self, populated, tmp_path):
        _cache, _key, _path = populated
        assert audit_cache(str(tmp_path)) == []

    def test_empty_root_audits_clean(self, tmp_path):
        assert audit_cache(os.path.join(tmp_path, "nothing-here")) == []


class TestCache001:
    def test_unparseable_entry(self, populated):
        cache, _key, path = populated
        with open(path, "w") as fh:
            fh.write("{ truncated")
        assert codes(audit_cache(cache)) == ["CACHE001"]

    def test_renamed_entry_breaks_the_content_address(self, populated):
        cache, _key, path = populated
        moved = os.path.join(os.path.dirname(path), "0" * 64 + "-bad.json")
        shutil.move(path, moved)
        assert "CACHE001" in codes(audit_cache(cache))

    def test_checksum_tamper(self, populated):
        cache, _key, path = populated
        mutate(
            path,
            lambda e: e["phis"]["3"].update(feasible=False),
            fix_checksum=False,
        )
        assert "CACHE001" in codes(audit_cache(cache))


class TestCache002:
    def test_wrong_label_length(self, populated):
        cache, _key, path = populated
        mutate(
            path, lambda e: e["phis"]["3"].update(labels=encode_labels([1]))
        )
        assert "CACHE002" in codes(audit_cache(cache))

    def test_negative_label(self, populated, circuit):
        cache, _key, path = populated
        n = len(circuit)
        mutate(
            path,
            lambda e: e["phis"]["3"].update(
                labels=encode_labels([-1] + [0] * (n - 1))
            ),
        )
        assert "CACHE002" in codes(audit_cache(cache))

    def test_misaligned_blob(self, populated):
        import base64

        cache, _key, path = populated
        blob = base64.b64encode(b"\x01\x02\x03").decode("ascii")
        mutate(path, lambda e: e["phis"]["3"].update(labels=blob))
        assert "CACHE002" in codes(audit_cache(cache))


class TestCache003:
    def test_non_monotone_verdicts(self, populated, circuit):
        cache, _key, path = populated
        n = len(circuit)

        def flip(entry):
            # feasible at 3 but *also* infeasible at 5: impossible.
            entry["phis"]["5"] = {
                "feasible": False,
                "labels": encode_labels([0] * n),
            }

        mutate(path, flip)
        assert "CACHE003" in codes(audit_cache(cache))

    def test_unwitnessed_final(self, populated):
        cache, _key, path = populated
        mutate(path, lambda e: e["phis"].pop("2"))
        assert "CACHE003" in codes(audit_cache(cache))

    def test_certificate_phi_mismatch(self, populated):
        cache, _key, path = populated
        mutate(
            path,
            lambda e: e["final"]["schedule_certificate"].update(phi=9),
        )
        assert "CACHE003" in codes(audit_cache(cache))

    def test_infeasible_certificate_rejected(self, populated):
        cache, _key, path = populated
        mutate(
            path,
            lambda e: e["final"]["cycle_certificate"].update(feasible=False),
        )
        assert "CACHE003" in codes(audit_cache(cache))


class TestSchemaSkip:
    def test_foreign_schema_entries_are_skipped(self, populated):
        cache, _key, path = populated
        mutate(path, lambda e: e.update(schema=999))
        assert audit_cache(cache) == []

    def test_select_filters_rules(self, populated):
        cache, _key, path = populated
        with open(path, "w") as fh:
            fh.write("not json")
        assert audit_cache(cache, select=["CACHE002"]) == []
        assert codes(audit_cache(cache, select=["CACHE001"])) == ["CACHE001"]
