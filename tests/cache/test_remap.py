"""Cache and incremental repair: warm base replay, identical repairs."""

from repro.cache.store import OutcomeCache
from repro.core.turbomap import turbomap
from repro.incremental.fuzz import mapped_signature
from repro.incremental.session import remap
from tests.helpers import random_seq_circuit

K = 4


def _bump_pin(circuit, gate_index: int = -1) -> None:
    g = circuit.gates[gate_index]
    pin = circuit.fanins(g)[0]
    assert circuit.rewire_pin(g, 0, pin.src, pin.weight + 1)


def _edited(seed=41):
    """(pre-edit baseline run inputs, journaled edits) for one bump."""
    circuit = random_seq_circuit(4, 16, seed=seed)
    circuit.begin_journal()
    circuit.take_journal()
    return circuit


def test_warm_base_then_identical_repair(tmp_path):
    cache = OutcomeCache(tmp_path)

    # First process: map the base circuit (populates the cache).
    base = _edited()
    turbomap(base.copy(), K, cache=cache)

    # Second process (fresh instance over the same directory): the base
    # fixpoint replays from the store, then the repair proceeds on top.
    circuit = _edited()
    warm_cache = OutcomeCache(tmp_path)
    prev = turbomap(circuit, K, cache=warm_cache)
    assert prev.total_stats.flow_queries == 0  # O(verify) base replay
    assert prev.total_stats.outcome_cache_hits > 0

    compiled = circuit.compiled()
    _bump_pin(circuit)
    edits = circuit.take_journal()
    inc = remap(
        circuit, prev, edits, k=K, compiled=compiled, cache=warm_cache
    )

    # Reference: the same repair without any cache.
    reference_circuit = _edited()
    reference_prev = turbomap(reference_circuit, K)
    reference_compiled = reference_circuit.compiled()
    _bump_pin(reference_circuit)
    reference_edits = reference_circuit.take_journal()
    cold = remap(
        reference_circuit,
        reference_prev,
        reference_edits,
        k=K,
        compiled=reference_compiled,
    )

    assert inc.phi == cold.phi
    assert list(inc.labels) == list(cold.labels)
    assert mapped_signature(inc.mapped) == mapped_signature(cold.mapped)
    assert inc.incremental


def test_edited_circuit_never_replays_the_base_final(tmp_path):
    """The edit changes the content id: the base final must not leak
    into the post-edit search, even with the cache attached."""
    cache = OutcomeCache(tmp_path)
    circuit = _edited()
    prev = turbomap(circuit, K, cache=cache)
    compiled = circuit.compiled()
    _bump_pin(circuit)
    edits = circuit.take_journal()
    inc = remap(circuit, prev, edits, k=K, compiled=compiled, cache=cache)

    cold = turbomap(circuit.copy(), K)
    assert inc.phi == cold.phi
    assert mapped_signature(inc.mapped) == mapped_signature(cold.mapped)


def test_repair_outcomes_are_written_for_the_edited_circuit(tmp_path):
    cache = OutcomeCache(tmp_path)
    circuit = _edited()
    prev = turbomap(circuit, K, cache=cache)
    compiled = circuit.compiled()
    _bump_pin(circuit)
    edits = circuit.take_journal()
    remap(circuit, prev, edits, k=K, compiled=compiled, cache=cache)
    # Both the base and the edited circuit now hold entries: a future
    # cold map of the *edited* netlist starts warm too.
    assert cache.stats()["entries"] >= 2
