"""Cache maintenance CLI: stats/clear/audit/warmcheck and delegation."""

import json

import pytest

from repro.cache.__main__ import main, warm_run_deltas
from repro.cache.store import OutcomeCache, cache_key
from repro.core.labels import LabelOutcome, LabelStats
from tests.helpers import random_seq_circuit


def seed_cache(root):
    cache = OutcomeCache(root)
    circuit = random_seq_circuit(4, 24, seed=11)
    key = cache_key(circuit, 4, False)
    cache.put_outcome(
        key,
        3,
        LabelOutcome(
            feasible=True, labels=[0] * len(circuit), stats=LabelStats()
        ),
    )
    return cache, key


def run(circuit, phi, *, hits=0, flow=100, algorithm="turbomap", workers=1):
    return {
        "circuit": circuit,
        "algorithm": algorithm,
        "workers": workers,
        "phi": phi,
        "seconds": 0.1,
        "stats": {"outcome_cache_hits": hits, "flow_queries": flow},
    }


def report(*runs):
    return {"runs": list(runs)}


class TestWarmRunDeltas:
    def test_clean_pair_has_no_problems(self):
        cold = report(run("bbara", 5), run("keyb", 7))
        warm = report(
            run("bbara", 5, hits=3, flow=0), run("keyb", 7, hits=4, flow=0)
        )
        problems, lines = warm_run_deltas(cold, warm)
        assert problems == []
        assert lines[-1].startswith("TOTAL flow 200 -> 0")

    def test_phi_drift_is_a_problem(self):
        cold = report(run("bbara", 5))
        warm = report(run("bbara", 6, hits=3, flow=0))
        problems, _lines = warm_run_deltas(cold, warm)
        assert any("phi drifted 5 -> 6" in p for p in problems)

    def test_no_hits_is_a_problem(self):
        cold = report(run("bbara", 5))
        warm = report(run("bbara", 5, hits=0, flow=0))
        problems, _lines = warm_run_deltas(cold, warm)
        assert any("no outcome_cache_hits" in p for p in problems)

    def test_no_flow_reduction_is_a_problem(self):
        cold = report(run("bbara", 5, flow=100))
        warm = report(run("bbara", 5, hits=3, flow=100))
        problems, _lines = warm_run_deltas(cold, warm)
        assert any("did not reduce flow queries" in p for p in problems)

    def test_mismatched_run_sets_are_a_problem(self):
        cold = report(run("bbara", 5))
        warm = report(run("keyb", 7, hits=1, flow=0))
        problems, _lines = warm_run_deltas(cold, warm)
        assert any("run sets differ" in p for p in problems)

    def test_runs_keyed_by_circuit_algorithm_workers(self):
        # Same circuit at two worker counts must pair with itself.
        cold = report(
            run("bbara", 5, workers=1, flow=60),
            run("bbara", 5, workers=4, flow=80),
        )
        warm = report(
            run("bbara", 5, workers=4, hits=2, flow=0),
            run("bbara", 5, workers=1, hits=2, flow=0),
        )
        problems, _lines = warm_run_deltas(cold, warm)
        assert problems == []


class TestMainCommands:
    def test_stats(self, tmp_path, capsys):
        seed_cache(tmp_path)
        assert main(["stats", str(tmp_path)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1

    def test_clear(self, tmp_path, capsys):
        seed_cache(tmp_path)
        assert main(["clear", str(tmp_path)]) == 0
        assert "cleared 1 cache entries" in capsys.readouterr().out
        assert OutcomeCache(tmp_path).stats()["entries"] == 0

    def test_audit_clean_exits_zero(self, tmp_path, capsys):
        seed_cache(tmp_path)
        assert main(["audit", str(tmp_path)]) == 0
        assert "0 errors" in capsys.readouterr().out

    def test_audit_corrupt_exits_one(self, tmp_path, capsys):
        cache, key = seed_cache(tmp_path)
        with open(cache._entry_path(key), "w") as fh:
            fh.write("not json")
        assert main(["audit", str(tmp_path)]) == 1
        assert "CACHE001" in capsys.readouterr().out

    def test_warmcheck_against_real_reports(self, tmp_path, capsys):
        from repro.perf.report import suite_report

        cold = suite_report([run("bbara", 5, flow=100)])
        warm = suite_report([run("bbara", 5, hits=2, flow=0)])
        first = tmp_path / "cold.json"
        second = tmp_path / "warm.json"
        first.write_text(json.dumps(cold))
        second.write_text(json.dumps(warm))
        assert main(["warmcheck", str(first), str(second)]) == 0
        assert "warmcheck OK" in capsys.readouterr().out

    def test_warmcheck_fails_on_drift(self, tmp_path, capsys):
        from repro.perf.report import suite_report

        cold = suite_report([run("bbara", 5, flow=100)])
        warm = suite_report([run("bbara", 6, hits=2, flow=0)])
        first = tmp_path / "cold.json"
        second = tmp_path / "warm.json"
        first.write_text(json.dumps(cold))
        second.write_text(json.dumps(warm))
        assert main(["warmcheck", str(first), str(second)]) == 1
        assert "FAIL" in capsys.readouterr().err


class TestReproCliDelegation:
    def test_repro_cache_subcommand_delegates(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        seed_cache(tmp_path)
        assert repro_main(["cache", "stats", str(tmp_path)]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 1
