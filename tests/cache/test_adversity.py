"""Cache adversity: corruption, schema drift, lock contention, poison.

The store's contract under hostile disk state: a corrupted or
truncated entry heals to a miss (never an exception, never a wrong
answer), a different schema version is ignored in place, concurrent
writers merge instead of clobbering, and a poisoned final fails
re-verification and falls back to a bit-identical cold search.
"""

import json
import multiprocessing
import os

import pytest

from repro.cache.store import (
    OutcomeCache,
    cache_key,
    entry_checksum,
)
from repro.core.labels import LabelOutcome, LabelStats
from repro.core.turbomap import turbomap
from repro.netlist.blif import write_blif
from tests.helpers import random_seq_circuit


@pytest.fixture()
def circuit():
    return random_seq_circuit(4, 24, seed=11)


@pytest.fixture()
def key(circuit):
    return cache_key(circuit, 4, False)


def outcome(n, feasible=True):
    return LabelOutcome(
        feasible=feasible,
        labels=[i % 3 for i in range(n)],
        stats=LabelStats(),
    )


def entry_path(cache, key):
    return cache._entry_path(key)


def rewrite(path, entry, fix_checksum=True):
    """Rewrite an entry file, optionally re-signing it so only the
    *semantic* mutation (not the checksum guard) is under test."""
    if fix_checksum:
        entry["checksum"] = entry_checksum(entry)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(entry, fh, sort_keys=True, separators=(",", ":"))


class TestCorruptionHeals:
    def seeded(self, tmp_path, circuit, key):
        cache = OutcomeCache(tmp_path)
        cache.put_outcome(key, 3, outcome(len(circuit)))
        return cache, entry_path(cache, key)

    def assert_healed(self, tmp_path, key, path):
        fresh = OutcomeCache(tmp_path)
        assert fresh.get_outcome(key, 3) is None
        assert fresh.healed == 1
        assert not os.path.exists(path)

    def test_garbage_bytes(self, tmp_path, circuit, key):
        _cache, path = self.seeded(tmp_path, circuit, key)
        with open(path, "w") as fh:
            fh.write("\x00\xff not json at all")
        self.assert_healed(tmp_path, key, path)

    def test_truncated_json(self, tmp_path, circuit, key):
        _cache, path = self.seeded(tmp_path, circuit, key)
        text = open(path).read()
        with open(path, "w") as fh:
            fh.write(text[: len(text) // 2])
        self.assert_healed(tmp_path, key, path)

    def test_bitrot_fails_checksum(self, tmp_path, circuit, key):
        _cache, path = self.seeded(tmp_path, circuit, key)
        entry = json.load(open(path))
        entry["phis"]["3"]["feasible"] = False  # flip without re-signing
        rewrite(path, entry, fix_checksum=False)
        self.assert_healed(tmp_path, key, path)

    def test_wrong_label_count_fails_validation(
        self, tmp_path, circuit, key
    ):
        from repro.cache.store import encode_labels

        _cache, path = self.seeded(tmp_path, circuit, key)
        entry = json.load(open(path))
        entry["phis"]["3"]["labels"] = encode_labels([1, 2, 3])
        rewrite(path, entry)  # checksum valid: deeper validation catches it
        self.assert_healed(tmp_path, key, path)

    def test_key_mismatch_heals(self, tmp_path, circuit, key):
        _cache, path = self.seeded(tmp_path, circuit, key)
        entry = json.load(open(path))
        entry["key"]["k"] = 9  # answers for a key it does not address
        rewrite(path, entry)
        self.assert_healed(tmp_path, key, path)


class TestSchemaMismatchIgnored:
    def test_foreign_schema_survives_untouched(self, tmp_path, circuit, key):
        cache = OutcomeCache(tmp_path)
        cache.put_outcome(key, 3, outcome(len(circuit)))
        path = entry_path(cache, key)
        entry = json.load(open(path))
        entry["schema"] = 999  # a future writer's entry
        rewrite(path, entry)

        fresh = OutcomeCache(tmp_path)
        assert fresh.get_outcome(key, 3) is None  # acts as a cold cache
        assert fresh.ignored == 1
        assert fresh.healed == 0
        assert os.path.exists(path)  # never deleted: not ours to heal

    def test_writer_replaces_foreign_entry_atomically(
        self, tmp_path, circuit, key
    ):
        cache = OutcomeCache(tmp_path)
        cache.put_outcome(key, 3, outcome(len(circuit)))
        path = entry_path(cache, key)
        entry = json.load(open(path))
        entry["schema"] = 999
        rewrite(path, entry)

        fresh = OutcomeCache(tmp_path)
        fresh.put_outcome(key, 4, outcome(len(circuit)))
        # The merge read ignored the foreign entry and started fresh;
        # the write took the slot over at the current schema.
        assert fresh.get_outcome(key, 4) is not None
        assert json.load(open(path))["schema"] != 999


def _hammer(root, blif_text, start, count):
    """One writer process: merge `count` phis into the shared entry."""
    from repro.netlist.blif import read_blif

    circuit, _info = read_blif(blif_text)
    cache = OutcomeCache(root)
    key = cache_key(circuit, 4, False)
    n = len(circuit)
    for offset in range(count):
        phi = start + offset
        cache.put_outcome(
            key,
            phi,
            LabelOutcome(
                feasible=phi >= 10,
                labels=[phi % 7] * n,
                stats=LabelStats(),
            ),
        )


class TestLockHammer:
    def test_concurrent_writers_merge_all_phis(self, tmp_path, circuit):
        from repro.netlist.blif import read_blif

        blif_text = write_blif(circuit)
        # Adopt the children's view: read_blif materializes nodes the
        # builder elides, and key.n / label lengths must agree.
        circuit, _info = read_blif(blif_text)
        per_proc = 8
        procs = [
            multiprocessing.Process(
                target=_hammer,
                args=(str(tmp_path), blif_text, 1 + i * per_proc, per_proc),
            )
            for i in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
            assert p.exitcode == 0
        cache = OutcomeCache(tmp_path)
        key = cache_key(circuit, 4, False)
        # Read-modify-write under the file lock: no phi lost to a
        # clobbered merge, and the surviving entry validates.
        for phi in range(1, 1 + 4 * per_proc):
            got = cache.get_outcome(key, phi)
            assert got is not None, f"phi={phi} lost in the merge"
            assert got.labels == [phi % 7] * len(circuit)
        assert cache.healed == 0


class TestPoisonedFinal:
    def test_replay_mismatch_falls_back_cold(self, tmp_path):
        circuit = random_seq_circuit(4, 30, seed=7)
        cache = OutcomeCache(tmp_path)
        cold = turbomap(circuit.copy(), 4, cache=cache)

        key = cache_key(circuit, 4, False)
        path = entry_path(cache, key)
        entry = json.load(open(path))
        assert entry["final"] is not None
        entry["final"]["signature"] = "0" * 64  # poison, correctly signed
        rewrite(path, entry)

        warm_cache = OutcomeCache(tmp_path)
        warm = turbomap(circuit.copy(), 4, cache=warm_cache)
        # The replayed result failed the signature check: the entry was
        # healed and the run fell back to a cold search — same answer.
        assert warm.phi == cold.phi
        assert list(warm.labels) == list(cold.labels)
        assert write_blif(warm.mapped) == write_blif(cold.mapped)
        assert warm_cache.healed >= 1

    def test_unverified_runs_never_write_finals(self, tmp_path):
        circuit = random_seq_circuit(4, 30, seed=7)
        cache = OutcomeCache(tmp_path)
        turbomap(circuit.copy(), 4, check=False, cache=cache)
        key = cache_key(circuit, 4, False)
        assert cache.get_final(key) is None
