"""Cold-vs-warm differential: the cache must change time, not answers.

For every circuit in the quick suite, a warm rerun against the cache
populated by the cold run must produce bit-identical phi, labels, and
mapped BLIF — while performing *zero* label-fixpoint probes (the
acceptance bar for the persistent cache) — and a cache-less run must be
bit-identical to the cold one (the cache is invisible when absent).
"""

import pytest

from repro.bench.suite import build, quick_subset
from repro.cache.store import OutcomeCache
from repro.core.turbomap import turbomap
from repro.core.turbosyn import turbosyn
from repro.netlist.blif import write_blif
from tests.helpers import random_seq_circuit


def fingerprint(result):
    return (result.phi, list(result.labels), write_blif(result.mapped))


@pytest.mark.parametrize("name", quick_subset())
def test_turbomap_warm_rerun_is_bit_identical(tmp_path, name):
    circuit = build(name)
    cache = OutcomeCache(tmp_path)

    cold = turbomap(circuit.copy(), 4, cache=cache)
    bare = turbomap(circuit.copy(), 4)
    warm = turbomap(circuit.copy(), 4, cache=cache)

    assert fingerprint(bare) == fingerprint(cold)  # cache-less == cold
    assert fingerprint(warm) == fingerprint(cold)  # warm == cold

    cold_stats = cold.total_stats
    warm_stats = warm.total_stats
    assert cold_stats.outcome_cache_hits == 0
    # The whole point: a warm rerun re-verifies but never re-searches.
    assert warm_stats.flow_queries == 0
    assert warm_stats.outcome_cache_hits > 0
    assert warm_stats.cache_probes_skipped > 0


@pytest.mark.parametrize("workers", [1, 2])
def test_parallel_search_shares_the_same_cache(tmp_path, workers):
    circuit = build("dk16")
    cache = OutcomeCache(tmp_path)
    cold = turbomap(circuit.copy(), 4, cache=cache)
    warm = turbomap(circuit.copy(), 4, workers=workers, cache=cache)
    # Worker count is excluded from the key: the parallel searcher
    # replays the same sequential-seeded entry.
    assert fingerprint(warm) == fingerprint(cold)
    assert warm.total_stats.flow_queries == 0


@pytest.mark.parametrize("seed", [3, 9])
def test_turbosyn_warm_rerun_is_bit_identical(tmp_path, seed):
    circuit = random_seq_circuit(4, 26, seed=seed)
    cache = OutcomeCache(tmp_path)

    cold = turbosyn(circuit.copy(), 4, cache=cache)
    warm = turbosyn(circuit.copy(), 4, cache=cache)

    assert fingerprint(warm) == fingerprint(cold)
    assert warm.total_stats.flow_queries == 0
    assert warm.total_stats.outcome_cache_hits > 0


def test_partial_cache_still_prunes(tmp_path):
    """A cache with probe verdicts but no final still narrows the
    search: the warm run does strictly less flow work than cold."""
    circuit = build("bbara")
    cache = OutcomeCache(tmp_path)
    cold = turbomap(circuit.copy(), 4, cache=cache)

    # Drop the final so only per-phi verdicts remain.
    from repro.cache.store import cache_key

    key = cache_key(circuit, 4, False)
    import json

    path = cache._entry_path(key)
    entry = json.load(open(path))
    entry["final"] = None
    from repro.cache.store import entry_checksum

    entry["checksum"] = entry_checksum(entry)
    with open(path, "w") as fh:
        json.dump(entry, fh, sort_keys=True, separators=(",", ":"))

    warm = turbomap(circuit.copy(), 4, cache=OutcomeCache(tmp_path))
    assert fingerprint(warm) == fingerprint(cold)
    assert 0 < warm.total_stats.flow_queries < cold.total_stats.flow_queries
