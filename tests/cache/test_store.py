"""Outcome-cache store: keys, round trips, seeds, floors, finals, LRU."""

import os

import pytest

from repro.cache.store import (
    CACHE_SCHEMA,
    CacheKey,
    OutcomeCache,
    cache_key,
    circuit_content_id,
    decode_labels,
    encode_labels,
    final_signature,
)
from repro.core.labels import LabelOutcome, LabelStats
from tests.helpers import lfsr, random_seq_circuit


@pytest.fixture()
def circuit():
    return random_seq_circuit(4, 24, seed=11)


@pytest.fixture()
def key(circuit):
    return cache_key(circuit, 4, False)


def outcome(n, feasible=True, base=0, failed=()):
    return LabelOutcome(
        feasible=feasible,
        labels=[base + (i % 3) for i in range(n)],
        stats=LabelStats(),
        failed_scc=list(failed),
    )


class TestKey:
    def test_content_id_is_canonical_blif_sha(self, circuit):
        a = circuit_content_id(circuit)
        b = circuit_content_id(circuit)
        assert a == b and len(a) == 64

    def test_distinct_circuits_distinct_ids(self, circuit):
        other = lfsr(5, (0, 2))
        assert circuit_content_id(circuit) != circuit_content_id(other)

    def test_cmax_normalized_away_without_resynthesis(self, circuit):
        # TurboMap never consults cmax: keying on it would split
        # identical result sets into distinct entries.
        a = cache_key(circuit, 4, False, cmax=15)
        b = cache_key(circuit, 4, False, cmax=7)
        assert a == b and a.cmax is None

    def test_cmax_kept_under_resynthesis(self, circuit):
        a = cache_key(circuit, 4, True, cmax=15)
        b = cache_key(circuit, 4, True, cmax=7)
        assert a != b and a.cmax == 15

    def test_config_id_differs_per_option(self, circuit):
        base = cache_key(circuit, 4, False)
        assert base.config_id != cache_key(circuit, 5, False).config_id
        assert base.config_id != cache_key(circuit, 4, True).config_id
        assert (
            base.config_id
            != cache_key(circuit, 4, False, pld=False).config_id
        )

    def test_explicit_circuit_id_skips_serialization(self, circuit):
        direct = cache_key(circuit, 4, False)
        via_id = cache_key(
            circuit, 4, False, circuit_id=circuit_content_id(circuit)
        )
        assert direct == via_id

    def test_key_roundtrips_through_dict(self, key):
        rebuilt = CacheKey(
            circuit_id=key.to_dict()["circuit"],
            n=key.to_dict()["n"],
            k=key.to_dict()["k"],
            resynthesize=key.to_dict()["resynthesize"],
            cmax=key.to_dict()["cmax"],
            pld=key.to_dict()["pld"],
            extra_depth=key.to_dict()["extra_depth"],
            io_constrained=key.to_dict()["io_constrained"],
            max_copies=key.to_dict()["max_copies"],
        )
        assert rebuilt == key and rebuilt.config_id == key.config_id


class TestLabelCodec:
    def test_roundtrip(self):
        labels = [0, 1, 5, 1 << 20, 3]
        assert decode_labels(encode_labels(labels)) == labels

    def test_empty(self):
        assert decode_labels(encode_labels([])) == []

    def test_misaligned_blob_rejected(self):
        import base64

        blob = base64.b64encode(b"\x01\x02\x03").decode("ascii")
        with pytest.raises(ValueError):
            decode_labels(blob)


class TestOutcomes:
    def test_miss_then_roundtrip(self, tmp_path, circuit, key):
        cache = OutcomeCache(tmp_path)
        assert cache.get_outcome(key, 3) is None
        assert cache.misses == 1
        put = outcome(len(circuit), feasible=False, failed=[2, 5])
        cache.put_outcome(key, 3, put)
        got = cache.get_outcome(key, 3)
        assert got is not None
        assert got.feasible is False
        assert got.labels == put.labels
        assert got.failed_scc == [2, 5]
        assert cache.hits == 1 and cache.puts == 1

    def test_adopted_stats_are_fresh(self, tmp_path, circuit, key):
        cache = OutcomeCache(tmp_path)
        rich = outcome(len(circuit))
        rich.stats.flow_queries = 999
        rich.stats.updates = 123
        cache.put_outcome(key, 2, rich)
        got = cache.get_outcome(key, 2)
        # Telemetry honesty: a cache hit must not replay the solver
        # counters of the run that produced the entry.
        assert got.stats.flow_queries == 0 and got.stats.updates == 0

    def test_shared_across_instances(self, tmp_path, circuit, key):
        OutcomeCache(tmp_path).put_outcome(key, 4, outcome(len(circuit)))
        fresh = OutcomeCache(tmp_path)
        assert fresh.get_outcome(key, 4) is not None

    def test_keys_are_isolated(self, tmp_path, circuit):
        cache = OutcomeCache(tmp_path)
        k4 = cache_key(circuit, 4, False)
        k5 = cache_key(circuit, 5, False)
        cache.put_outcome(k4, 2, outcome(len(circuit)))
        assert cache.get_outcome(k5, 2) is None


class TestSeedsAndFloor:
    def test_nearest_seed_picks_tightest_feasible_above(
        self, tmp_path, circuit, key
    ):
        cache = OutcomeCache(tmp_path)
        n = len(circuit)
        cache.put_outcome(key, 9, outcome(n, base=9))
        cache.put_outcome(key, 6, outcome(n, base=6))
        cache.put_outcome(key, 5, outcome(n, feasible=False, base=5))
        got = cache.nearest_seed(key, 4)
        assert got is not None
        phi, labels = got
        assert phi == 6 and labels == outcome(n, base=6).labels
        assert cache.seeds == 1

    def test_nearest_seed_ignores_at_or_below(self, tmp_path, circuit, key):
        cache = OutcomeCache(tmp_path)
        cache.put_outcome(key, 4, outcome(len(circuit)))
        assert cache.nearest_seed(key, 4) is None

    def test_verified_floor(self, tmp_path, circuit, key):
        cache = OutcomeCache(tmp_path)
        assert cache.verified_floor(key) == 1
        n = len(circuit)
        cache.put_outcome(key, 2, outcome(n, feasible=False))
        cache.put_outcome(key, 4, outcome(n, feasible=False))
        cache.put_outcome(key, 7, outcome(n, feasible=True))
        assert cache.verified_floor(key) == 5


class TestFinals:
    def sig(self):
        return final_signature(3, [1, 2, 3], ".model x\n.end\n")

    def test_unwitnessed_final_not_served(self, tmp_path, circuit, key):
        cache = OutcomeCache(tmp_path)
        cache.put_final(key, 3, self.sig())
        # No feasible verdict at 3 and no infeasible one at 2: the
        # final is *a* feasible period at best, not *the* minimum.
        assert cache.get_final(key) is None
        cache.put_outcome(key, 3, outcome(len(circuit)))
        assert cache.get_final(key) is None

    def test_witnessed_final_served(self, tmp_path, circuit, key):
        cache = OutcomeCache(tmp_path)
        n = len(circuit)
        cache.put_outcome(key, 3, outcome(n, feasible=True))
        cache.put_outcome(key, 2, outcome(n, feasible=False))
        cache.put_final(key, 3, self.sig(), {"phi": 3}, {"phi": 3})
        final = cache.get_final(key)
        assert final is not None
        assert final["phi"] == 3 and final["signature"] == self.sig()
        assert final["schedule_certificate"] == {"phi": 3}
        assert cache.final_hits == 1

    def test_phi_one_needs_no_lower_witness(self, tmp_path, circuit, key):
        cache = OutcomeCache(tmp_path)
        cache.put_outcome(key, 1, outcome(len(circuit)))
        cache.put_final(key, 1, self.sig())
        assert cache.get_final(key) is not None

    def test_invalidate_heals_the_entry(self, tmp_path, circuit, key):
        cache = OutcomeCache(tmp_path)
        cache.put_outcome(key, 2, outcome(len(circuit)))
        cache.invalidate(key)
        assert cache.get_outcome(key, 2) is None
        assert cache.healed == 1


class TestMaintenance:
    def three_keys(self, cache):
        keys = []
        for seed in (1, 2, 3):
            c = random_seq_circuit(4, 20, seed=seed)
            k = cache_key(c, 4, False)
            cache.put_outcome(k, 2, outcome(len(c)))
            keys.append(k)
        return keys

    def test_lru_eviction_bounds_size(self, tmp_path):
        cache = OutcomeCache(tmp_path, max_bytes=1)
        self.three_keys(cache)
        # Every put re-runs eviction; with a 1-byte bound at most one
        # entry (the newest) survives each pass.
        assert cache.stats()["entries"] <= 1
        assert cache.evictions >= 2

    def test_touch_on_hit_protects_hot_entries(self, tmp_path):
        cache = OutcomeCache(tmp_path)
        k1, k2, k3 = self.three_keys(cache)
        size = cache.stats()["bytes"]
        os.utime(cache._entry_path(k1), (1, 1))
        os.utime(cache._entry_path(k2), (2, 2))
        cache.get_outcome(k1, 2)  # touch: k1 is now the hottest
        cache.max_bytes = size - 1  # force one eviction on next put
        cache.put_outcome(k3, 3, cache.get_outcome(k3, 2))
        assert cache.get_outcome(k1, 2) is not None  # survived
        assert cache.get_outcome(k2, 2) is None  # the cold one went

    def test_clear(self, tmp_path):
        cache = OutcomeCache(tmp_path)
        self.three_keys(cache)
        assert cache.clear() == 3
        assert cache.stats()["entries"] == 0

    def test_stats_shape(self, tmp_path):
        stats = OutcomeCache(tmp_path).stats()
        assert stats["schema"] == CACHE_SCHEMA
        for field in (
            "entries", "bytes", "max_bytes", "hits", "misses", "seeds",
            "final_hits", "puts", "healed", "ignored", "evictions",
        ):
            assert field in stats
