"""Driver-level cache behavior: replay, floors, and finalization gates."""

import pytest

from repro.cache.store import OutcomeCache, cache_key
from repro.core.labels import LabelOutcome, LabelStats
from repro.core.turbomap import turbomap
from repro.netlist.blif import write_blif
from repro.resilience.budget import Budget


@pytest.fixture()
def circuit():
    # A suite circuit with phi > 1 so searches actually bisect and the
    # minimality witness at phi - 1 exists.
    from repro.bench.suite import build

    return build("dk16")


def test_exact_hit_replays_without_searching(tmp_path, circuit):
    cache = OutcomeCache(tmp_path)
    cold = turbomap(circuit.copy(), 4, cache=cache)
    assert len(cold.outcomes) > 2  # the search actually probed

    warm = turbomap(circuit.copy(), 4, cache=cache)
    # Replay adopts exactly the optimum and its minimality witness;
    # no probe beyond those two ever runs.
    expected = {warm.phi} | ({warm.phi - 1} if warm.phi > 1 else set())
    assert set(warm.outcomes) == expected
    assert warm.phi == cold.phi
    assert warm.total_stats.flow_queries == 0
    assert cache.final_hits >= 1


def test_replay_requires_check(tmp_path, circuit):
    cache = OutcomeCache(tmp_path)
    cold = turbomap(circuit.copy(), 4, cache=cache)

    warm_cache = OutcomeCache(tmp_path)
    unchecked = turbomap(circuit.copy(), 4, check=False, cache=warm_cache)
    # Without the verifier the exact hit must not engage: the search
    # runs (still fed by probe adoption and the verified floor), and
    # the recorded final is never consulted.
    assert warm_cache.final_hits == 0
    assert unchecked.phi == cold.phi
    assert unchecked.total_stats.outcome_cache_hits > 0


def test_verified_floor_prunes_the_lower_half(tmp_path, circuit):
    cold = turbomap(circuit.copy(), 4)
    opt = cold.phi
    assert opt > 1

    cache = OutcomeCache(tmp_path)
    key = cache_key(circuit, 4, False)
    # Seed only the infeasible fact at opt - 1 (no final, no feasible
    # entries): the floor alone must keep the search out of [1, opt-1].
    cache.put_outcome(
        key,
        opt - 1,
        LabelOutcome(
            feasible=False,
            labels=[0] * len(circuit),
            stats=LabelStats(),
        ),
    )
    warm = turbomap(circuit.copy(), 4, cache=OutcomeCache(tmp_path))
    assert warm.phi == opt
    assert write_blif(warm.mapped) == write_blif(cold.mapped)
    fresh_probes = [
        phi
        for phi, out in warm.outcomes.items()
        if out.stats.outcome_cache_hits == 0
    ]
    assert all(phi >= opt for phi in fresh_probes)


def test_degraded_runs_never_finalize(tmp_path, circuit):
    from repro.resilience.budget import BudgetExhausted

    def expiring_clock(ticks):
        # 0.0 for the first `ticks` consultations, then far past the
        # deadline: expiry lands at a deterministic point mid-search.
        state = {"n": 0}

        def clock():
            state["n"] += 1
            return 0.0 if state["n"] <= ticks else 1e9

        return clock

    cache = OutcomeCache(tmp_path)
    result = None
    for ticks in range(1, 200):
        cache.clear()
        budget = Budget(deadline=1.0, clock=expiring_clock(ticks))
        try:
            candidate = turbomap(
                circuit.copy(), 4, cache=cache, budget=budget
            )
        except BudgetExhausted:
            continue  # expired before the first feasible probe
        if candidate.degraded:
            result = candidate
            break
    assert result is not None, "no tick count produced a degraded run"
    # A degraded phi is only an upper bound on the optimum: caching it
    # as *the* answer would poison every future exact hit.
    assert cache.get_final(cache_key(circuit, 4, False)) is None

    # The verdicts the degraded run *did* prove are still written
    # through and still help, but no replay happens.
    warm = turbomap(circuit.copy(), 4, cache=cache)
    assert not warm.degraded
    cold = turbomap(circuit.copy(), 4)
    assert warm.phi == cold.phi


def test_cache_survives_engine_change(tmp_path, circuit):
    """The engine is excluded from the key on purpose: all engines are
    bit-identical, so verdicts written by one serve the others."""
    cache = OutcomeCache(tmp_path)
    cold = turbomap(circuit.copy(), 4, engine="worklist", cache=cache)
    warm = turbomap(circuit.copy(), 4, engine="scc", cache=cache)
    assert warm.phi == cold.phi
    assert list(warm.labels) == list(cold.labels)
    assert warm.total_stats.flow_queries == 0
