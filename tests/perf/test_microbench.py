"""Smoke tests for the kernel microbenchmark harness."""

import json

import pytest

from repro.bench import suite as bench_suite
from repro.compat import HAVE_NUMPY
from repro.perf import microbench
from repro.perf.report import SCHEMA_VERSION

BASE_CELLS = {"ek+object", "ek+compiled", "dinic+object", "dinic+compiled"}


class TestBenchCircuit:
    def test_rows_cover_the_matrix(self):
        circuit = bench_suite.build("bbara")
        res = microbench.bench_circuit(circuit, k=5, repeats=1)
        expected = set(BASE_CELLS)
        if HAVE_NUMPY:
            expected.add("dinic+vector")
        assert set(res["cells"]) == expected
        for sample in res["cells"].values():
            assert sample["flow_queries"] > 0
            assert sample["t_flow"] >= 0.0
            assert sample["us_per_query"] >= 0.0
        assert res["cells"]["dinic+compiled"]["dinic_phases"] > 0
        assert res["cells"]["ek+object"]["dinic_phases"] == 0
        assert res["phi"] >= 1

    def test_handoff_bytes(self):
        circuit = bench_suite.build("bbara")
        sizes = microbench.handoff_bytes(circuit)
        assert sizes["csr_blob"] < sizes["pickled_circuit"]
        handle_sizes = [
            v for k, v in sizes.items() if k.startswith("handle_")
        ]
        assert len(handle_sizes) == 1


class TestCrossoverSweep:
    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    def test_sweep_grid_and_crossover_shape(self):
        sweep = microbench.crossover_sweep(
            widths=(2, 8), sizes=(32, 96), repeats=1
        )
        assert sweep["numpy"] is True
        assert len(sweep["grid"]) == 4
        for row in sweep["grid"]:
            assert row["t_scalar_us"] > 0.0
            assert row["t_vector_us"] > 0.0
            assert row["speedup"] > 0.0
        crossover = sweep["crossover_nodes"]
        assert crossover is None or crossover in sweep["sizes"]

    def test_sweep_without_numpy_is_inert(self, monkeypatch):
        monkeypatch.setattr(microbench, "HAVE_NUMPY", False)
        sweep = microbench.crossover_sweep(widths=(2,), sizes=(16,))
        assert sweep == {
            "numpy": False,
            "widths": [2],
            "sizes": [16],
            "grid": [],
            "crossover_nodes": None,
        }

    def test_envelope_reaches_the_auto_kernel(self, tmp_path):
        from repro.kernel.batch import crossover_nodes

        payload = microbench.as_table(
            [], envelope={"crossover": {"crossover_nodes": 97}}
        )
        path = tmp_path / "BENCH_microbench.json"
        path.write_text(json.dumps(payload))
        assert crossover_nodes(str(path)) == 97

    def test_synthetic_expansion_is_deterministic(self):
        a = microbench.synthetic_expansion(48, seed=7)
        b = microbench.synthetic_expansion(48, seed=7)
        assert (a.interior, a.candidates, a.leaves, a.edges) == (
            b.interior, b.candidates, b.leaves, b.edges
        )
        total = len(a.interior) + len(a.candidates) + len(a.leaves)
        assert total == 48


class TestCli:
    def test_main_writes_bench_json(self, tmp_path, capsys):
        rc = microbench.main(
            [
                "--circuits", "bbara", "--repeats", "1",
                "--no-sweep", "--out", str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernel microbench" in out
        payload = json.loads((tmp_path / "BENCH_microbench.json").read_text())
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["kind"] == "bench-table"
        assert any(row.endswith("/handoff") for row in payload["rows"])
        assert "bbara/dinic+compiled" in payload["rows"]
        assert "envelope" not in payload  # --no-sweep

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    def test_main_records_envelope_with_sweep(self, tmp_path, capsys,
                                              monkeypatch):
        monkeypatch.setattr(microbench, "SWEEP_WIDTHS", (2,))
        monkeypatch.setattr(microbench, "SWEEP_SIZES", (24,))
        rc = microbench.main(
            ["--circuits", "s838", "--repeats", "1", "--out", str(tmp_path)]
        )
        assert rc == 0
        assert "crossover" in capsys.readouterr().out
        payload = json.loads((tmp_path / "BENCH_microbench.json").read_text())
        crossover = payload["envelope"]["crossover"]
        assert crossover["grid"], crossover
        assert "crossover_nodes" in crossover
