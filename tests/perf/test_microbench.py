"""Smoke tests for the kernel microbenchmark harness."""

import json

from repro.bench import suite as bench_suite
from repro.perf import microbench
from repro.perf.report import SCHEMA_VERSION


class TestBenchCircuit:
    def test_rows_cover_the_matrix(self):
        circuit = bench_suite.build("bbara")
        res = microbench.bench_circuit(circuit, k=5, repeats=1)
        assert set(res["cells"]) == {
            "ek+object", "ek+compiled", "dinic+object", "dinic+compiled"
        }
        for sample in res["cells"].values():
            assert sample["flow_queries"] > 0
            assert sample["t_flow"] >= 0.0
            assert sample["us_per_query"] >= 0.0
        assert res["cells"]["dinic+compiled"]["dinic_phases"] > 0
        assert res["cells"]["ek+object"]["dinic_phases"] == 0
        assert res["phi"] >= 1

    def test_handoff_bytes(self):
        circuit = bench_suite.build("bbara")
        sizes = microbench.handoff_bytes(circuit)
        assert sizes["csr_blob"] < sizes["pickled_circuit"]
        handle_sizes = [
            v for k, v in sizes.items() if k.startswith("handle_")
        ]
        assert len(handle_sizes) == 1


class TestCli:
    def test_main_writes_bench_json(self, tmp_path, capsys):
        rc = microbench.main(
            ["--circuits", "bbara", "--repeats", "1", "--out", str(tmp_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernel microbench" in out
        payload = json.loads((tmp_path / "BENCH_microbench.json").read_text())
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["kind"] == "bench-table"
        assert any(row.endswith("/handoff") for row in payload["rows"])
        assert "bbara/dinic+compiled" in payload["rows"]
