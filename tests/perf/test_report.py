"""Run-report serialization: schema shape, JSON round trip, telemetry."""

import json

from repro.core.driver import run_mapper
from repro.perf import report as perf_report
from tests.helpers import random_seq_circuit


def _result(workers=1):
    circuit = random_seq_circuit(3, 12, seed=1, feedback=2)
    return circuit, run_mapper(
        circuit, 3, algorithm="turbomap", resynthesize=False, workers=workers
    )


class TestMapperRun:
    def test_shape(self):
        circuit, result = _result()
        run = perf_report.mapper_run(result, circuit, seconds=1.5)
        assert run["circuit"] == circuit.name
        assert run["algorithm"] == "turbomap"
        assert run["phi"] == result.phi
        assert run["luts"] == result.n_luts
        assert run["seconds"] == 1.5
        assert run["gates"] == circuit.n_gates
        assert run["ffs"] == circuit.n_ffs
        assert run["search"]["probes"] == sorted(result.outcomes)
        assert run["search"]["n_probes"] == len(result.outcomes)

    def test_telemetry_fields_populated(self):
        circuit, result = _result()
        assert result.t_search > 0.0
        assert result.t_mapping > 0.0
        stats = perf_report.mapper_run(result, circuit)["stats"]
        for key in ("t_total", "t_expand", "t_flow", "t_pld"):
            assert key in stats
        assert stats["t_total"] > 0.0
        assert stats["flow_queries"] > 0

    def test_seconds_defaults_to_result_total(self):
        circuit, result = _result()
        run = perf_report.mapper_run(result, circuit)
        assert run["seconds"] == round(
            result.t_search + result.t_mapping + result.t_verify, 6
        )
        assert run["search"]["t_verify"] == round(result.t_verify, 6)

    def test_certificate_summary_included(self):
        circuit, result = _result()
        run = perf_report.mapper_run(result, circuit)
        cert = run["certificate"]
        assert cert["verified"] is True
        assert cert["errors"] == 0
        assert "MAP002" in cert["rules"] and "CIRC001" in cert["rules"]
        assert "findings" not in cert  # reports stay small


class TestSuiteReport:
    def test_envelope_and_round_trip(self, tmp_path):
        circuit, result = _result()
        report = perf_report.suite_report(
            [perf_report.mapper_run(result, circuit)], k=3, workers=1
        )
        assert report["schema"] == perf_report.SCHEMA_VERSION
        assert report["kind"] == "suite"
        assert report["k"] == 3
        path = tmp_path / "report.json"
        perf_report.write_report(report, str(path))
        loaded = perf_report.load_report(str(path))
        assert loaded == json.loads(json.dumps(report))

    def test_envelope_records_engine_configuration(self):
        report = perf_report.suite_report([], k=3)
        assert report["schema"] == 8
        assert report["engine"] == "worklist"
        assert report["warm_start"] is True
        assert report["flow"] == "dinic"
        assert report["kernel"] == "compiled"
        rounds = perf_report.suite_report(
            [], k=3, engine="rounds", warm_start=False
        )
        assert rounds["engine"] == "rounds"
        assert rounds["warm_start"] is False

    def test_stats_carry_warm_start_counters(self):
        circuit, result = _result()
        stats = perf_report.mapper_run(result, circuit)["stats"]
        for key in ("warm_seeded", "warm_savings", "expansions_reused"):
            assert key in stats

    def test_stats_carry_cache_counters(self):
        circuit, result = _result()
        stats = perf_report.mapper_run(result, circuit)["stats"]
        for key in (
            "outcome_cache_hits",
            "cache_probes_skipped",
            "cache_seeds",
        ):
            assert key in stats

    def test_envelope_records_cache_snapshot(self):
        snapshot = {"entries": 3, "hits": 7}
        report = perf_report.suite_report([], k=3, cache=snapshot)
        assert report["cache"] == snapshot
        assert perf_report.suite_report([], k=3)["cache"] is None

    def test_load_tolerates_schema_seven_without_cache(self, tmp_path):
        # A schema-7 report predates the cache envelope: the loader
        # fills it as None so v8 consumers need no special-casing.
        path = tmp_path / "v7.json"
        path.write_text(
            '{"schema": 7, "kind": "suite", "runs": [], "errors": []}'
        )
        loaded = perf_report.load_report(str(path))
        assert loaded["cache"] is None

    def test_load_tolerates_bare_run_list(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text('[{"circuit": "x", "algorithm": "a", "phi": 1}]')
        loaded = perf_report.load_report(str(path))
        assert loaded["runs"][0]["circuit"] == "x"

    def test_load_tolerates_schema_two(self, tmp_path):
        # Schema-2 envelope: no engine / warm_start fields; the loader
        # fills them as unknown so the counter gate stays soft.
        path = tmp_path / "v2.json"
        path.write_text(
            '{"schema": 2, "kind": "suite", "runs": [], "errors": []}'
        )
        loaded = perf_report.load_report(str(path))
        assert loaded["engine"] is None
        assert loaded["warm_start"] is None

    def test_load_rejects_non_report(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"hello": 1}')
        try:
            perf_report.load_report(str(path))
        except ValueError:
            return
        raise AssertionError("expected ValueError")
