"""The regression gate: baseline comparison policy and CLI exit codes."""

import json

from repro.perf import check as perf_check


def _report(runs, errors=None, engine=None, warm_start=None, flow=None, kernel=None):
    report = {"schema": 2, "kind": "suite", "runs": runs}
    if errors is not None:
        report["errors"] = errors
    if engine is not None:
        report["schema"] = 3
        report["engine"] = engine
        report["warm_start"] = warm_start
    if flow is not None or kernel is not None:
        report["schema"] = 4
        report["flow"] = flow
        report["kernel"] = kernel
    return report


def _run(
    circuit="bbara",
    algo="turbomap",
    phi=3,
    luts=100,
    seconds=1.0,
    workers=None,
    flow_queries=None,
    updates=None,
):
    run = {
        "circuit": circuit,
        "algorithm": algo,
        "phi": phi,
        "luts": luts,
        "seconds": seconds,
    }
    if workers is not None:
        run["workers"] = workers
    if flow_queries is not None or updates is not None:
        run["stats"] = {"flow_queries": flow_queries, "updates": updates}
    return run


class TestCompare:
    def test_clean_pass(self):
        comparison = perf_check.compare(
            _report([_run()]), _report([_run()]), tolerance=0.25
        )
        assert comparison.ok and comparison.compared == 1
        assert not comparison.regressions

    def test_phi_increase_is_regression(self):
        comparison = perf_check.compare(
            _report([_run(phi=3)]), _report([_run(phi=4)])
        )
        assert not comparison.ok
        assert any("phi regressed" in r for r in comparison.regressions)

    def test_phi_decrease_is_improvement(self):
        comparison = perf_check.compare(
            _report([_run(phi=3)]), _report([_run(phi=2)])
        )
        assert comparison.ok
        assert any("phi improved" in s for s in comparison.improvements)

    def test_lut_growth_within_tolerance_passes(self):
        comparison = perf_check.compare(
            _report([_run(luts=100)]), _report([_run(luts=120)]), tolerance=0.25
        )
        assert comparison.ok

    def test_lut_growth_beyond_tolerance_fails(self):
        comparison = perf_check.compare(
            _report([_run(luts=100)]), _report([_run(luts=130)]), tolerance=0.25
        )
        assert not comparison.ok
        assert any("luts regressed" in r for r in comparison.regressions)

    def test_time_slowdown_warns_by_default(self):
        comparison = perf_check.compare(
            _report([_run(seconds=1.0)]), _report([_run(seconds=3.0)])
        )
        assert comparison.ok
        assert comparison.warnings

    def test_time_gate_opt_in(self):
        comparison = perf_check.compare(
            _report([_run(seconds=1.0)]),
            _report([_run(seconds=3.0)]),
            time_tolerance=0.5,
        )
        assert not comparison.ok

    def test_disjoint_runs_not_ok(self):
        comparison = perf_check.compare(
            _report([_run(circuit="a")]), _report([_run(circuit="b")])
        )
        assert comparison.compared == 0
        assert not comparison.ok


class TestResiliencePolicy:
    """Schema-2 degraded runs and error entries under the gate."""

    def _degraded(self, phi):
        run = _run(phi=phi)
        run["degraded"] = True
        run["degraded_reason"] = "deadline"
        return run

    def _error(self):
        return {
            "circuit": "bbara",
            "algorithm": "turbomap",
            "error": "InjectedFault",
            "message": "injected fault",
            "stage": "map",
            "elapsed": 0.1,
        }

    def test_degraded_run_flagged_as_warning(self):
        comparison = perf_check.compare(
            _report([_run(phi=3)]), _report([self._degraded(phi=3)])
        )
        assert comparison.ok
        assert any("degraded run (deadline)" in w for w in comparison.warnings)

    def test_degraded_phi_regression_warns_not_fails(self):
        comparison = perf_check.compare(
            _report([_run(phi=3)]), _report([self._degraded(phi=5)])
        )
        assert comparison.ok
        assert any("phi regressed" in w for w in comparison.warnings)

    def test_strict_resilience_fails_degraded_regression(self):
        comparison = perf_check.compare(
            _report([_run(phi=3)]),
            _report([self._degraded(phi=5)]),
            strict_resilience=True,
        )
        assert not comparison.ok
        assert any("phi regressed" in r for r in comparison.regressions)

    def test_error_entries_warn_by_default(self):
        comparison = perf_check.compare(
            _report([_run()]), _report([_run()], errors=[self._error()])
        )
        assert comparison.ok
        assert any("cell failed" in w for w in comparison.warnings)

    def test_strict_resilience_fails_on_error_entries(self):
        comparison = perf_check.compare(
            _report([_run()]),
            _report([_run()], errors=[self._error()]),
            strict_resilience=True,
        )
        assert not comparison.ok

    def test_strict_flag_wired_through_main(self, tmp_path):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(_report([_run()])))
        cur.write_text(json.dumps(_report([_run()], errors=[self._error()])))
        assert perf_check.main([str(base), str(cur)]) == 0
        assert (
            perf_check.main([str(base), str(cur), "--strict-resilience"]) == 1
        )


class TestCounterGate:
    """Deterministic work counters (schema 3) under the gate."""

    def _pair(self, base_fq, cur_fq, **kwargs):
        base = _report(
            [_run(flow_queries=base_fq, updates=100, workers=1)],
            engine=kwargs.pop("base_engine", "worklist"),
            warm_start=kwargs.pop("base_warm", True),
        )
        cur = _report(
            [
                _run(
                    flow_queries=cur_fq,
                    updates=kwargs.pop("cur_updates", 100),
                    workers=kwargs.pop("cur_workers", 1),
                )
            ],
            engine=kwargs.pop("cur_engine", "worklist"),
            warm_start=kwargs.pop("cur_warm", True),
        )
        return base, cur

    def test_counter_growth_beyond_tolerance_fails(self):
        base, cur = self._pair(100, 120)
        comparison = perf_check.compare(base, cur, counter_tolerance=0.10)
        assert not comparison.ok
        assert any(
            "flow_queries regressed" in r for r in comparison.regressions
        )

    def test_counter_growth_within_tolerance_passes(self):
        base, cur = self._pair(100, 108)
        comparison = perf_check.compare(base, cur, counter_tolerance=0.10)
        assert comparison.ok

    def test_counter_drop_is_improvement(self):
        base, cur = self._pair(100, 60)
        comparison = perf_check.compare(base, cur, counter_tolerance=0.10)
        assert comparison.ok
        assert any(
            "flow_queries improved" in s for s in comparison.improvements
        )

    def test_updates_gated_too(self):
        base, cur = self._pair(100, 100, cur_updates=200)
        comparison = perf_check.compare(base, cur, counter_tolerance=0.10)
        assert not comparison.ok
        assert any("updates regressed" in r for r in comparison.regressions)

    def test_engine_mismatch_downgrades_to_warning(self):
        base, cur = self._pair(100, 300, cur_engine="rounds")
        comparison = perf_check.compare(base, cur, counter_tolerance=0.10)
        assert comparison.ok
        assert any(
            "flow_queries regressed" in w for w in comparison.warnings
        )
        assert any("engine configuration" in w for w in comparison.warnings)

    def test_undeclared_engine_downgrades_to_warning(self):
        # A schema-2 baseline has counters but no engine envelope: the
        # counter comparison cannot be a hard gate.
        base = _report([_run(flow_queries=100, updates=100, workers=1)])
        cur = _report(
            [_run(flow_queries=300, updates=100, workers=1)],
            engine="worklist",
            warm_start=True,
        )
        comparison = perf_check.compare(base, cur, counter_tolerance=0.10)
        assert comparison.ok
        assert any(
            "flow_queries regressed" in w for w in comparison.warnings
        )

    def test_worker_mismatch_downgrades_to_warning(self):
        # A parallel search probes a different phi set, so its counters
        # are not comparable against a sequential baseline.
        base, cur = self._pair(100, 300, cur_workers=2)
        comparison = perf_check.compare(base, cur, counter_tolerance=0.10)
        assert comparison.ok
        assert any("not comparable" in w for w in comparison.warnings)

    def test_dinic_counters_gated(self):
        base = _report(
            [_run(workers=1)], engine="worklist", warm_start=True
        )
        cur = _report(
            [_run(workers=1)], engine="worklist", warm_start=True
        )
        base["runs"][0]["stats"] = {"dinic_phases": 100, "arcs_advanced": 1000}
        cur["runs"][0]["stats"] = {"dinic_phases": 200, "arcs_advanced": 1000}
        comparison = perf_check.compare(base, cur, counter_tolerance=0.10)
        assert not comparison.ok
        assert any(
            "dinic_phases regressed" in r for r in comparison.regressions
        )

    def test_ek_baseline_zero_dinic_counters_skipped(self):
        # An EK baseline reports dinic_phases=0; a zero baseline counter
        # is never gated (no meaningful ratio).
        base, cur = self._pair(100, 100)
        base["runs"][0]["stats"]["dinic_phases"] = 0
        cur["runs"][0]["stats"]["dinic_phases"] = 500
        comparison = perf_check.compare(base, cur, counter_tolerance=0.10)
        assert comparison.ok

    def test_flow_mismatch_downgrades_to_warning(self):
        base, cur = self._pair(100, 300)
        base["flow"], base["kernel"] = "ek", "object"
        cur["flow"], cur["kernel"] = "dinic", "object"
        comparison = perf_check.compare(base, cur, counter_tolerance=0.10)
        assert comparison.ok
        assert any(
            "flow_queries regressed" in w for w in comparison.warnings
        )

    def test_kernel_mismatch_downgrades_to_warning(self):
        base, cur = self._pair(100, 300)
        base["flow"], base["kernel"] = "dinic", "compiled"
        cur["flow"], cur["kernel"] = "dinic", "object"
        comparison = perf_check.compare(base, cur, counter_tolerance=0.10)
        assert comparison.ok

    def test_undeclared_flow_keeps_hard_gate(self):
        # A schema-3 baseline (no flow/kernel fields) against a schema-4
        # current run: the engine fields still match, so the counter
        # gate stays hard — old baselines keep their teeth.
        base, cur = self._pair(100, 300)
        cur["flow"], cur["kernel"] = "dinic", "compiled"
        comparison = perf_check.compare(base, cur, counter_tolerance=0.10)
        assert not comparison.ok

    def test_matching_flow_kernel_hard_gate(self):
        base, cur = self._pair(100, 300)
        for rep in (base, cur):
            rep["flow"], rep["kernel"] = "dinic", "compiled"
        comparison = perf_check.compare(base, cur, counter_tolerance=0.10)
        assert not comparison.ok

    def test_degraded_counter_regression_warns(self):
        base, cur = self._pair(100, 300)
        cur["runs"][0]["degraded"] = True
        comparison = perf_check.compare(base, cur, counter_tolerance=0.10)
        assert comparison.ok
        assert any(
            "flow_queries regressed" in w for w in comparison.warnings
        )

    def test_counter_gate_off(self):
        base, cur = self._pair(100, 300)
        comparison = perf_check.compare(base, cur, counter_tolerance=None)
        assert comparison.ok
        assert not comparison.warnings

    def test_counter_flags_wired_through_main(self, tmp_path):
        base, cur = self._pair(100, 300)
        base_path = tmp_path / "base.json"
        cur_path = tmp_path / "cur.json"
        base_path.write_text(json.dumps(base))
        cur_path.write_text(json.dumps(cur))
        assert perf_check.main([str(base_path), str(cur_path)]) == 1
        assert (
            perf_check.main(
                [str(base_path), str(cur_path), "--counter-tolerance", "3.0"]
            )
            == 0
        )
        assert (
            perf_check.main([str(base_path), str(cur_path), "--no-counters"])
            == 0
        )


class TestCacheCounterGate:
    """Saved-work counters gate in the *inverted* direction: losing
    cache hits between two warm runs is the regression."""

    def _pair(self, base_hits, cur_hits):
        base = _report(
            [_run(workers=1)], engine="worklist", warm_start=True
        )
        cur = _report(
            [_run(workers=1)], engine="worklist", warm_start=True
        )
        base["runs"][0]["stats"] = {"outcome_cache_hits": base_hits}
        cur["runs"][0]["stats"] = {"outcome_cache_hits": cur_hits}
        return base, cur

    def test_hit_drop_is_a_regression(self):
        base, cur = self._pair(10, 2)
        comparison = perf_check.compare(base, cur, counter_tolerance=0.10)
        assert not comparison.ok
        assert any(
            "outcome_cache_hits regressed" in r
            for r in comparison.regressions
        )

    def test_hit_growth_is_an_improvement(self):
        base, cur = self._pair(10, 20)
        comparison = perf_check.compare(base, cur, counter_tolerance=0.10)
        assert comparison.ok
        assert not comparison.regressions

    def test_cold_baseline_never_gates(self):
        # A cold baseline reports zero hits; a warm current run must
        # not be judged against it (no meaningful ratio) — the gate
        # only bites warm-vs-warm.
        base, cur = self._pair(0, 0)
        comparison = perf_check.compare(base, cur, counter_tolerance=0.10)
        assert comparison.ok

    def test_probes_skipped_and_seeds_gated_too(self):
        for counter in ("cache_probes_skipped", "cache_seeds"):
            base, cur = self._pair(0, 0)
            base["runs"][0]["stats"] = {counter: 50}
            cur["runs"][0]["stats"] = {counter: 5}
            comparison = perf_check.compare(
                base, cur, counter_tolerance=0.10
            )
            assert not comparison.ok, counter
            assert any(
                f"{counter} regressed" in r for r in comparison.regressions
            )


class TestMain:
    def _write(self, path, runs):
        path.write_text(json.dumps(_report(runs)))
        return str(path)

    def test_exit_zero_on_match(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", [_run()])
        cur = self._write(tmp_path / "cur.json", [_run()])
        assert perf_check.main([base, cur, "--tolerance", "0.25"]) == 0
        assert "status: OK" in capsys.readouterr().out

    def test_exit_nonzero_on_degraded_quality(self, tmp_path, capsys):
        """The CI gate catches an artificially degraded result."""
        base = self._write(tmp_path / "base.json", [_run(phi=2, luts=100)])
        cur = self._write(tmp_path / "cur.json", [_run(phi=4, luts=200)])
        assert perf_check.main([base, cur, "--tolerance", "0.25"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "status: FAIL" in out

    def test_exit_nonzero_when_nothing_overlaps(self, tmp_path):
        base = self._write(tmp_path / "base.json", [_run(circuit="a")])
        cur = self._write(tmp_path / "cur.json", [_run(circuit="b")])
        assert perf_check.main([base, cur]) == 1

    def test_exit_nonzero_on_missing_file(self, tmp_path):
        base = self._write(tmp_path / "base.json", [_run()])
        assert perf_check.main([base, str(tmp_path / "nope.json")]) == 1
