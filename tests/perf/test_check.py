"""The regression gate: baseline comparison policy and CLI exit codes."""

import json

from repro.perf import check as perf_check


def _report(runs):
    return {"schema": 1, "kind": "suite", "runs": runs}


def _run(circuit="bbara", algo="turbomap", phi=3, luts=100, seconds=1.0):
    return {
        "circuit": circuit,
        "algorithm": algo,
        "phi": phi,
        "luts": luts,
        "seconds": seconds,
    }


class TestCompare:
    def test_clean_pass(self):
        comparison = perf_check.compare(
            _report([_run()]), _report([_run()]), tolerance=0.25
        )
        assert comparison.ok and comparison.compared == 1
        assert not comparison.regressions

    def test_phi_increase_is_regression(self):
        comparison = perf_check.compare(
            _report([_run(phi=3)]), _report([_run(phi=4)])
        )
        assert not comparison.ok
        assert any("phi regressed" in r for r in comparison.regressions)

    def test_phi_decrease_is_improvement(self):
        comparison = perf_check.compare(
            _report([_run(phi=3)]), _report([_run(phi=2)])
        )
        assert comparison.ok
        assert any("phi improved" in s for s in comparison.improvements)

    def test_lut_growth_within_tolerance_passes(self):
        comparison = perf_check.compare(
            _report([_run(luts=100)]), _report([_run(luts=120)]), tolerance=0.25
        )
        assert comparison.ok

    def test_lut_growth_beyond_tolerance_fails(self):
        comparison = perf_check.compare(
            _report([_run(luts=100)]), _report([_run(luts=130)]), tolerance=0.25
        )
        assert not comparison.ok
        assert any("luts regressed" in r for r in comparison.regressions)

    def test_time_slowdown_warns_by_default(self):
        comparison = perf_check.compare(
            _report([_run(seconds=1.0)]), _report([_run(seconds=3.0)])
        )
        assert comparison.ok
        assert comparison.warnings

    def test_time_gate_opt_in(self):
        comparison = perf_check.compare(
            _report([_run(seconds=1.0)]),
            _report([_run(seconds=3.0)]),
            time_tolerance=0.5,
        )
        assert not comparison.ok

    def test_disjoint_runs_not_ok(self):
        comparison = perf_check.compare(
            _report([_run(circuit="a")]), _report([_run(circuit="b")])
        )
        assert comparison.compared == 0
        assert not comparison.ok


class TestMain:
    def _write(self, path, runs):
        path.write_text(json.dumps(_report(runs)))
        return str(path)

    def test_exit_zero_on_match(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", [_run()])
        cur = self._write(tmp_path / "cur.json", [_run()])
        assert perf_check.main([base, cur, "--tolerance", "0.25"]) == 0
        assert "status: OK" in capsys.readouterr().out

    def test_exit_nonzero_on_degraded_quality(self, tmp_path, capsys):
        """The CI gate catches an artificially degraded result."""
        base = self._write(tmp_path / "base.json", [_run(phi=2, luts=100)])
        cur = self._write(tmp_path / "cur.json", [_run(phi=4, luts=200)])
        assert perf_check.main([base, cur, "--tolerance", "0.25"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "status: FAIL" in out

    def test_exit_nonzero_when_nothing_overlaps(self, tmp_path):
        base = self._write(tmp_path / "base.json", [_run(circuit="a")])
        cur = self._write(tmp_path / "cur.json", [_run(circuit="b")])
        assert perf_check.main([base, cur]) == 1

    def test_exit_nonzero_on_missing_file(self, tmp_path):
        base = self._write(tmp_path / "base.json", [_run()])
        assert perf_check.main([base, str(tmp_path / "nope.json")]) == 1
