"""The regression gate: baseline comparison policy and CLI exit codes."""

import json

from repro.perf import check as perf_check


def _report(runs, errors=None):
    report = {"schema": 2, "kind": "suite", "runs": runs}
    if errors is not None:
        report["errors"] = errors
    return report


def _run(circuit="bbara", algo="turbomap", phi=3, luts=100, seconds=1.0):
    return {
        "circuit": circuit,
        "algorithm": algo,
        "phi": phi,
        "luts": luts,
        "seconds": seconds,
    }


class TestCompare:
    def test_clean_pass(self):
        comparison = perf_check.compare(
            _report([_run()]), _report([_run()]), tolerance=0.25
        )
        assert comparison.ok and comparison.compared == 1
        assert not comparison.regressions

    def test_phi_increase_is_regression(self):
        comparison = perf_check.compare(
            _report([_run(phi=3)]), _report([_run(phi=4)])
        )
        assert not comparison.ok
        assert any("phi regressed" in r for r in comparison.regressions)

    def test_phi_decrease_is_improvement(self):
        comparison = perf_check.compare(
            _report([_run(phi=3)]), _report([_run(phi=2)])
        )
        assert comparison.ok
        assert any("phi improved" in s for s in comparison.improvements)

    def test_lut_growth_within_tolerance_passes(self):
        comparison = perf_check.compare(
            _report([_run(luts=100)]), _report([_run(luts=120)]), tolerance=0.25
        )
        assert comparison.ok

    def test_lut_growth_beyond_tolerance_fails(self):
        comparison = perf_check.compare(
            _report([_run(luts=100)]), _report([_run(luts=130)]), tolerance=0.25
        )
        assert not comparison.ok
        assert any("luts regressed" in r for r in comparison.regressions)

    def test_time_slowdown_warns_by_default(self):
        comparison = perf_check.compare(
            _report([_run(seconds=1.0)]), _report([_run(seconds=3.0)])
        )
        assert comparison.ok
        assert comparison.warnings

    def test_time_gate_opt_in(self):
        comparison = perf_check.compare(
            _report([_run(seconds=1.0)]),
            _report([_run(seconds=3.0)]),
            time_tolerance=0.5,
        )
        assert not comparison.ok

    def test_disjoint_runs_not_ok(self):
        comparison = perf_check.compare(
            _report([_run(circuit="a")]), _report([_run(circuit="b")])
        )
        assert comparison.compared == 0
        assert not comparison.ok


class TestResiliencePolicy:
    """Schema-2 degraded runs and error entries under the gate."""

    def _degraded(self, phi):
        run = _run(phi=phi)
        run["degraded"] = True
        run["degraded_reason"] = "deadline"
        return run

    def _error(self):
        return {
            "circuit": "bbara",
            "algorithm": "turbomap",
            "error": "InjectedFault",
            "message": "injected fault",
            "stage": "map",
            "elapsed": 0.1,
        }

    def test_degraded_run_flagged_as_warning(self):
        comparison = perf_check.compare(
            _report([_run(phi=3)]), _report([self._degraded(phi=3)])
        )
        assert comparison.ok
        assert any("degraded run (deadline)" in w for w in comparison.warnings)

    def test_degraded_phi_regression_warns_not_fails(self):
        comparison = perf_check.compare(
            _report([_run(phi=3)]), _report([self._degraded(phi=5)])
        )
        assert comparison.ok
        assert any("phi regressed" in w for w in comparison.warnings)

    def test_strict_resilience_fails_degraded_regression(self):
        comparison = perf_check.compare(
            _report([_run(phi=3)]),
            _report([self._degraded(phi=5)]),
            strict_resilience=True,
        )
        assert not comparison.ok
        assert any("phi regressed" in r for r in comparison.regressions)

    def test_error_entries_warn_by_default(self):
        comparison = perf_check.compare(
            _report([_run()]), _report([_run()], errors=[self._error()])
        )
        assert comparison.ok
        assert any("cell failed" in w for w in comparison.warnings)

    def test_strict_resilience_fails_on_error_entries(self):
        comparison = perf_check.compare(
            _report([_run()]),
            _report([_run()], errors=[self._error()]),
            strict_resilience=True,
        )
        assert not comparison.ok

    def test_strict_flag_wired_through_main(self, tmp_path):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(_report([_run()])))
        cur.write_text(json.dumps(_report([_run()], errors=[self._error()])))
        assert perf_check.main([str(base), str(cur)]) == 0
        assert (
            perf_check.main([str(base), str(cur), "--strict-resilience"]) == 1
        )


class TestMain:
    def _write(self, path, runs):
        path.write_text(json.dumps(_report(runs)))
        return str(path)

    def test_exit_zero_on_match(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", [_run()])
        cur = self._write(tmp_path / "cur.json", [_run()])
        assert perf_check.main([base, cur, "--tolerance", "0.25"]) == 0
        assert "status: OK" in capsys.readouterr().out

    def test_exit_nonzero_on_degraded_quality(self, tmp_path, capsys):
        """The CI gate catches an artificially degraded result."""
        base = self._write(tmp_path / "base.json", [_run(phi=2, luts=100)])
        cur = self._write(tmp_path / "cur.json", [_run(phi=4, luts=200)])
        assert perf_check.main([base, cur, "--tolerance", "0.25"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "status: FAIL" in out

    def test_exit_nonzero_when_nothing_overlaps(self, tmp_path):
        base = self._write(tmp_path / "base.json", [_run(circuit="a")])
        cur = self._write(tmp_path / "cur.json", [_run(circuit="b")])
        assert perf_check.main([base, cur]) == 1

    def test_exit_nonzero_on_missing_file(self, tmp_path):
        base = self._write(tmp_path / "base.json", [_run()])
        assert perf_check.main([base, str(tmp_path / "nope.json")]) == 1
