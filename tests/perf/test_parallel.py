"""Parallel phi search: equivalence with the sequential Figure-4 search.

Feasibility is monotone in phi and each probe is deterministic, so the
speculative parallel search must return the *identical* optimum and
labels — only the set of extra (discarded) probes may differ.  Wall-clock
speedups are measured by ``benchmarks/bench_parallel.py``, not here.
"""

import pytest

from repro.bench import suite as bench_suite
from repro.core.driver import run_mapper, search_min_phi
from repro.perf.parallel import _spread, parallel_search_min_phi
from repro.resilience import faultinject
from repro.resilience.budget import Budget
from repro.resilience.faultinject import Fault, FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.retime.mdr import min_feasible_period
from tests.helpers import random_seq_circuit


@pytest.fixture
def _clean_faults():
    faultinject.reset()
    yield
    faultinject.clear()


class TestSpread:
    def test_includes_hi(self):
        assert _spread(1, 20, 4)[-1] == 20

    def test_distinct_and_bounded(self):
        points = _spread(3, 11, 5)
        assert points == sorted(set(points))
        assert all(3 <= p <= 11 for p in points)

    def test_degenerate_interval(self):
        assert _spread(7, 7, 4) == [7]

    def test_count_capped_by_span(self):
        assert _spread(1, 3, 16) == [1, 2, 3]

    def test_single_point_is_hi(self):
        # count=1 degenerates to the sequential probe (hi first)
        assert _spread(1, 8, 1) == [8]

    def test_adjacent_interval(self):
        assert _spread(4, 5, 8) == [4, 5]

    def test_zero_or_negative_count_clamped(self):
        assert _spread(1, 10, 0) == [10]


class TestEquivalence:
    @pytest.mark.parametrize("name", ["bbara", "dk16"])
    def test_fsm_bench_identical_phi_and_labels(self, name):
        """Determinism on the FSM bench circuits (issue acceptance)."""
        circuit = bench_suite.build(name)
        ub = min_feasible_period(circuit)
        seq_phi, seq_out = search_min_phi(circuit, 5, ub, False)
        par_phi, par_out = parallel_search_min_phi(
            circuit, 5, ub, False, workers=4
        )
        assert par_phi == seq_phi
        assert par_out[par_phi].labels == seq_out[seq_phi].labels
        # every sequential probe's verdict is reproduced when re-probed
        for phi in set(seq_out) & set(par_out):
            assert par_out[phi].feasible == seq_out[phi].feasible

    def test_random_circuits_identical(self):
        for seed in range(3):
            circuit = random_seq_circuit(3, 14, seed=seed, feedback=3)
            ub = min_feasible_period(circuit)
            seq_phi, seq_out = search_min_phi(circuit, 3, ub, False)
            par_phi, par_out = parallel_search_min_phi(
                circuit, 3, ub, False, workers=2
            )
            assert par_phi == seq_phi
            assert par_out[par_phi].labels == seq_out[seq_phi].labels

    def test_workers_one_delegates_to_sequential(self):
        circuit = random_seq_circuit(3, 10, seed=7, feedback=2)
        ub = min_feasible_period(circuit)
        par_phi, par_out = parallel_search_min_phi(circuit, 3, ub, False, workers=1)
        seq_phi, seq_out = search_min_phi(circuit, 3, ub, False)
        assert par_phi == seq_phi
        # exactly the sequential probe schedule (wall-clock stats aside)
        assert sorted(par_out) == sorted(seq_out)
        for phi in seq_out:
            assert par_out[phi].feasible == seq_out[phi].feasible
            assert par_out[phi].labels == seq_out[phi].labels

    def test_low_upper_bound_recovers(self):
        """Speculative doubling when the given bound is infeasible."""
        circuit = bench_suite.build("dk16")
        seq_phi, _ = search_min_phi(circuit, 5, 1, False)
        par_phi, par_out = parallel_search_min_phi(
            circuit, 5, 1, False, workers=3
        )
        assert par_phi == seq_phi
        assert not par_out[1].feasible

    def test_run_mapper_workers_same_mapping_stats(self):
        circuit = bench_suite.build("dk16")
        seq = run_mapper(circuit, 5, algorithm="turbomap", resynthesize=False)
        par = run_mapper(
            circuit, 5, algorithm="turbomap", resynthesize=False, workers=2
        )
        assert par.phi == seq.phi
        assert par.labels == seq.labels
        assert par.mapped.stats() == seq.mapped.stats()
        assert par.workers == 2 and seq.workers == 1


class TestWorkerFailureRecovery:
    """Pool breaks are absorbed; the answer never changes (acceptance)."""

    RETRY = RetryPolicy(base_delay=0.0, jitter=0.0)  # no real sleeps

    def _circuit(self):
        return random_seq_circuit(3, 14, seed=1, feedback=3)

    def test_injected_worker_kill_same_phi_and_labels(
        self, tmp_path, _clean_faults
    ):
        circuit = self._circuit()
        ub = min_feasible_period(circuit)
        seq_phi, seq_out = search_min_phi(circuit, 3, ub, False)
        # Kill whichever worker probes first; the state_dir marker makes
        # it one-shot so the restarted pool is not re-killed forever.
        faultinject.install(
            FaultPlan(
                [Fault("probe", "kill")], state_dir=str(tmp_path / "chaos")
            )
        )
        budget = Budget()
        par_phi, par_out = parallel_search_min_phi(
            circuit, 3, ub, False, workers=2, budget=budget, retry=self.RETRY
        )
        assert par_phi == seq_phi
        assert par_out[par_phi].labels == seq_out[seq_phi].labels
        assert budget.attempts == 2  # original run + one pool restart
        assert [e["kind"] for e in budget.events] == ["pool_restart"]

    def test_sequential_fallback_after_pool_given_up(
        self, tmp_path, _clean_faults
    ):
        circuit = self._circuit()
        ub = min_feasible_period(circuit)
        seq_phi, _ = search_min_phi(circuit, 3, ub, False)
        # max_restarts=0: the first break exhausts the retry allowance and
        # the search must degrade to sequential probing.
        faultinject.install(
            FaultPlan(
                [Fault("probe", "kill")], state_dir=str(tmp_path / "chaos")
            )
        )
        budget = Budget()
        policy = RetryPolicy(max_restarts=0, base_delay=0.0, jitter=0.0)
        par_phi, par_out = parallel_search_min_phi(
            circuit, 3, ub, False, workers=2, budget=budget, retry=policy
        )
        assert par_phi == seq_phi
        assert not budget.exhausted  # degraded execution, full-quality answer
        kinds = [e["kind"] for e in budget.events]
        assert kinds == ["pool_restart", "sequential_fallback"]
        assert budget.attempts == 3  # pool run + failed restart + sequential

    def test_repeated_kills_still_converge(self, tmp_path, _clean_faults):
        """Two separate kills, two restarts — still the sequential answer."""
        circuit = self._circuit()
        ub = min_feasible_period(circuit)
        seq_phi, _ = search_min_phi(circuit, 3, ub, False)
        faultinject.install(
            FaultPlan(
                [Fault("probe", "kill", fires=2)],
                state_dir=str(tmp_path / "chaos"),
            )
        )
        par_phi, _ = parallel_search_min_phi(
            circuit, 3, ub, False, workers=2, retry=self.RETRY
        )
        assert par_phi == seq_phi
