"""Report filenames: portable slugs, and the checked-in results match."""

import importlib.util
import os

import pytest

BENCHMARKS = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "benchmarks"
)


def _load_conftest():
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", os.path.join(BENCHMARKS, "conftest.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def table_slug():
    return _load_conftest().table_slug


class TestTableSlug:
    def test_strips_windows_hostile_characters(self, table_slug):
        slug = table_slug("Table 1: Clock period (K=5)")
        assert slug == "table_1_clock_period_k=5"
        for ch in ':()" \\':
            assert ch not in slug

    def test_collapses_punctuation_runs(self, table_slug):
        # ": " must not leave a double underscore behind.
        assert "__" not in table_slug("BENCH: x (y) [z]")

    def test_keeps_meaningful_symbols(self, table_slug):
        assert table_slug("phi search, K=5 + retiming") == (
            "phi_search_k=5_+_retiming"
        )

    def test_idempotent(self, table_slug):
        once = table_slug("Table 2: LUTs (K=5)")
        assert table_slug(once) == once


class TestCheckedInResults:
    def test_no_hostile_characters_in_results(self):
        results = os.path.join(BENCHMARKS, "results")
        for name in os.listdir(results):
            for ch in ':() "':
                assert ch not in name, f"{name!r} contains {ch!r}"

    def test_results_are_addressable_by_slug(self, table_slug):
        """Every checked-in table file must be reproducible from some
        title the harness writes: its stem must be slug-idempotent."""
        results = os.path.join(BENCHMARKS, "results")
        for name in os.listdir(results):
            stem, _ext = os.path.splitext(name)
            if stem.startswith("BENCH_"):
                stem = stem[len("BENCH_"):]
            assert table_slug(stem) == stem, name
