"""Tests for the FSM benchmark generator and its synthesis paths."""

import pytest

from repro.compat import default_rng
from repro.bench.fsm import (
    _disjoint_cubes,
    encode_fsm,
    fsm_to_circuit,
    fsm_to_circuit_encoded,
    random_fsm,
    simulate_fsm_circuit,
)
from repro.netlist.kiss import write_kiss, read_kiss



class TestDisjointCubes:
    @pytest.mark.parametrize("seed", range(5))
    def test_partition_is_disjoint_and_complete(self, seed):
        rng = default_rng(seed)
        n = 5
        cubes = _disjoint_cubes(n, depth=3, rng=rng)
        covered = [0] * (1 << n)
        for cube in cubes:
            for m in range(1 << n):
                if all(
                    ch == "-" or int(ch) == ((m >> i) & 1)
                    for i, ch in enumerate(cube)
                ):
                    covered[m] += 1
        assert all(c == 1 for c in covered)


class TestRandomFsm:
    def test_deterministic(self):
        a = random_fsm("m", 8, 4, 3, seed=5)
        b = random_fsm("m", 8, 4, 3, seed=5)
        assert a.transitions == b.transitions

    def test_profile_respected(self):
        fsm = random_fsm("m", 12, 5, 4, seed=1)
        assert fsm.num_states == 12
        assert fsm.num_inputs == 5
        assert fsm.num_outputs == 4
        assert fsm.reset_state == "s0"

    def test_strongly_connected_ring(self):
        fsm = random_fsm("m", 6, 3, 2, seed=2)
        # the ring transition guarantees every state reaches every other
        reachable = {fsm.reset_state}
        frontier = [fsm.reset_state]
        while frontier:
            s = frontier.pop()
            for t in fsm.transitions:
                if t.state == s and t.next_state not in reachable:
                    reachable.add(t.next_state)
                    frontier.append(t.next_state)
        assert reachable == set(fsm.states)

    def test_kiss_roundtrip(self):
        fsm = random_fsm("m", 6, 3, 2, seed=3)
        again = read_kiss(write_kiss(fsm))
        assert again.transitions == fsm.transitions

    def test_too_few_states(self):
        with pytest.raises(ValueError):
            random_fsm("m", 1, 2, 1, seed=0)


class TestStructuralSynthesis:
    @pytest.mark.parametrize("seed", range(4))
    def test_oracle(self, seed):
        fsm = random_fsm("m", 9, 4, 3, seed=seed)
        circuit = fsm_to_circuit(fsm)
        assert simulate_fsm_circuit(fsm, circuit, steps=80, seed=seed + 100)

    def test_two_bounded(self):
        fsm = random_fsm("m", 8, 4, 2, seed=1)
        circuit = fsm_to_circuit(fsm)
        assert circuit.is_k_bounded(2)

    def test_one_ff_per_state(self):
        fsm = random_fsm("m", 11, 3, 2, seed=1)
        circuit = fsm_to_circuit(fsm)
        assert circuit.n_ffs == 11

    def test_loops_through_registers(self):
        fsm = random_fsm("m", 5, 3, 2, seed=1)
        circuit = fsm_to_circuit(fsm)
        circuit.check()  # no combinational cycles
        sccs = [comp for comp in circuit.sccs() if len(comp) > 1]
        assert sccs  # the state machine is a real loop

    def test_with_reset_oracle(self):
        fsm = random_fsm("m", 7, 3, 2, seed=4)
        circuit = fsm_to_circuit(fsm, with_reset=True)
        assert "rst" in circuit
        assert simulate_fsm_circuit(fsm, circuit, steps=80, seed=5)

    def test_reset_synchronizes_any_state(self):
        from repro.verify.simulate import Simulator

        fsm = random_fsm("m", 6, 3, 2, seed=6)
        circuit = fsm_to_circuit(fsm, with_reset=True)
        rst = circuit.id_of("rst")
        pis = {circuit.id_of(f"in{i}"): 0 for i in range(3)}
        # Scramble the state with random inputs, then assert reset: the
        # machine must return to the reset-state signature.
        sim_a = Simulator(circuit, lanes=1)
        sim_b = Simulator(circuit, lanes=1)
        rng = default_rng(9)
        for _ in range(17):  # odd count: the two runs de-phase
            sim_a.step({**{p: int(rng.integers(0, 2)) for p in pis}, rst: 0})
        for _ in range(8):
            sim_b.step({**{p: int(rng.integers(0, 2)) for p in pis}, rst: 0})
        for _ in range(4):
            sim_a.step({**pis, rst: 1})
            sim_b.step({**pis, rst: 1})
        # Identical post-reset stimulus -> identical outputs.
        for t in range(30):
            frame = {p: int(rng.integers(0, 2)) for p in pis}
            out_a = sim_a.step({**frame, rst: 0})
            out_b = sim_b.step({**frame, rst: 0})
            assert out_a == out_b


class TestEncodedSynthesis:
    def test_tables_match_step(self):
        fsm = random_fsm("m", 4, 2, 2, seed=7)
        ns, outs, bits = encode_fsm(fsm, "binary")
        assert bits == 2
        states = fsm.states
        for code, state in enumerate(states):
            for input_bits in range(4):
                row = input_bits | (code << 2)
                nxt, output = fsm.step(state, input_bits)
                expect_code = states.index(nxt)
                got_code = sum(ns[j].value(row) << j for j in range(bits))
                assert got_code == expect_code
                for m in range(2):
                    assert outs[m].value(row) == (1 if output[m] == "1" else 0)

    @pytest.mark.parametrize("encoding", ["binary", "onehot"])
    def test_oracle(self, encoding):
        fsm = random_fsm("m", 5, 3, 2, seed=9)
        circuit = fsm_to_circuit_encoded(fsm, encoding=encoding)
        assert simulate_fsm_circuit(fsm, circuit, steps=60, seed=1)

    def test_width_guard(self):
        fsm = random_fsm("m", 40, 8, 2, seed=1)
        with pytest.raises(ValueError):
            encode_fsm(fsm, "onehot")

    def test_bad_encoding(self):
        fsm = random_fsm("m", 4, 2, 1, seed=1)
        with pytest.raises(ValueError):
            encode_fsm(fsm, "gray")

    def test_structural_and_encoded_agree(self):
        fsm = random_fsm("m", 5, 3, 2, seed=11)
        a = fsm_to_circuit(fsm)
        b = fsm_to_circuit_encoded(fsm, "binary")
        assert simulate_fsm_circuit(fsm, a, steps=60, seed=3)
        assert simulate_fsm_circuit(fsm, b, steps=60, seed=3)
