"""Tests for the Table-1 benchmark suite."""

import pytest

from repro.bench.suite import (
    SUITE,
    build,
    build_suite,
    entry,
    large_circuit,
    quick_subset,
    run_suite_report,
)
from repro.resilience import faultinject
from repro.resilience.faultinject import Fault, FaultPlan


class TestSuiteDefinition:
    def test_sixteen_entries(self):
        assert len(SUITE) == 16

    def test_twelve_fsm_four_datapath(self):
        kinds = [e.kind for e in SUITE]
        assert kinds.count("fsm") == 12
        assert kinds.count("datapath") == 4

    def test_paper_names_present(self):
        names = {e.name for e in SUITE}
        for expected in ["bbara", "planet", "scf", "styr", "s1423", "s5378"]:
            assert expected in names

    def test_entry_lookup(self):
        assert entry("bbara").kind == "fsm"

    def test_unknown_name_lists_valid_ones(self):
        with pytest.raises(ValueError) as excinfo:
            entry("nonexistent")
        message = str(excinfo.value)
        assert "nonexistent" in message
        assert "bbara" in message and "s5378" in message

    def test_build_suite_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="valid suite names"):
            build_suite(["bbara", "bogus"])


class TestBuild:
    def test_deterministic(self):
        a = build("bbara")
        b = build("bbara")
        assert a.stats() == b.stats()

    @pytest.mark.parametrize("name", ["bbara", "dk16", "s838"])
    def test_valid_circuits(self, name):
        c = build(name)
        c.check()
        assert c.is_k_bounded(2)

    def test_quick_subset_builds(self):
        circuits = build_suite(quick_subset())
        assert len(circuits) == 5
        for c in circuits.values():
            assert c.n_gates > 50

    def test_fsm_profiles(self):
        c = build("bbara")
        assert len(c.pis) == 4
        assert len(c.pos) == 2
        assert c.n_ffs == 10  # one-hot: FF count = state count

    def test_large_circuit_scales(self):
        small = large_circuit(scale=1)
        big = large_circuit(scale=3)
        assert big.n_gates > small.n_gates


@pytest.fixture
def _clean_faults():
    faultinject.reset()
    yield
    faultinject.clear()


class TestSuiteReportResilience:
    """The fault boundary, checkpointing and resume of run_suite_report."""

    ALGOS = ("flowsyn-s", "turbomap")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown report algorithm"):
            run_suite_report(names=["bbara"], algorithms=("magic",))

    def test_unknown_name_fails_before_any_mapping(self):
        calls = []
        with pytest.raises(ValueError, match="valid suite names"):
            run_suite_report(
                names=["bbara", "bogus"],
                algorithms=self.ALGOS,
                check=False,
                on_cell=lambda *a: calls.append(a),
            )
        assert calls == []  # validation precedes hours of mapping

    def test_injected_cell_failure_becomes_error_entry(self, _clean_faults):
        faultinject.install(
            FaultPlan([Fault("suite-cell", "raise", match="bbara:turbomap")])
        )
        report = run_suite_report(
            names=["bbara"], algorithms=self.ALGOS, check=False
        )
        assert [
            (r["circuit"], r["algorithm"]) for r in report["runs"]
        ] == [("bbara", "flowsyn-s")]
        (err,) = report["errors"]
        assert err["error"] == "InjectedFault"
        assert err["stage"] == "map"
        assert (err["circuit"], err["algorithm"]) == ("bbara", "turbomap")

    def test_checkpoint_written_after_every_cell(self, tmp_path, _clean_faults):
        from repro.perf.report import load_report

        checkpoint = str(tmp_path / "ck.json")
        seen = []

        def on_cell(name, algo, run, error, elapsed, cached):
            seen.append((name, algo, run is not None, cached))

        report = run_suite_report(
            names=["bbara"],
            algorithms=self.ALGOS,
            check=False,
            checkpoint=checkpoint,
            on_cell=on_cell,
        )
        assert seen == [
            ("bbara", "flowsyn-s", True, False),
            ("bbara", "turbomap", True, False),
        ]
        persisted = load_report(checkpoint)
        assert persisted["schema"] == 8
        assert len(persisted["runs"]) == len(report["runs"]) == 2
        assert persisted["errors"] == []

    def test_resume_reruns_only_missing_cells(self, _clean_faults):
        faultinject.install(
            FaultPlan([Fault("suite-cell", "raise", match="bbara:turbomap")])
        )
        partial = run_suite_report(
            names=["bbara"], algorithms=self.ALGOS, check=False
        )
        faultinject.clear()
        seen = []
        resumed = run_suite_report(
            names=["bbara"],
            algorithms=self.ALGOS,
            check=False,
            resume=partial,
            on_cell=lambda n, a, run, err, el, cached: seen.append(
                (n, a, cached)
            ),
        )
        # flowsyn-s came from the partial report, only turbomap re-ran
        assert seen == [
            ("bbara", "flowsyn-s", True),
            ("bbara", "turbomap", False),
        ]
        assert resumed["errors"] == []
        assert len(resumed["runs"]) == 2

    def test_keyboard_interrupt_flushes_checkpoint(self, tmp_path, _clean_faults):
        from repro.perf.report import load_report

        faultinject.install(
            FaultPlan([Fault("suite-cell", "interrupt", match="bbara:turbomap")])
        )
        checkpoint = str(tmp_path / "ck.json")
        with pytest.raises(KeyboardInterrupt):
            run_suite_report(
                names=["bbara"],
                algorithms=self.ALGOS,
                check=False,
                checkpoint=checkpoint,
            )
        persisted = load_report(checkpoint)
        assert [
            (r["circuit"], r["algorithm"]) for r in persisted["runs"]
        ] == [("bbara", "flowsyn-s")]
