"""Tests for the Table-1 benchmark suite."""

import pytest

from repro.bench.suite import SUITE, build, build_suite, entry, large_circuit, quick_subset


class TestSuiteDefinition:
    def test_sixteen_entries(self):
        assert len(SUITE) == 16

    def test_twelve_fsm_four_datapath(self):
        kinds = [e.kind for e in SUITE]
        assert kinds.count("fsm") == 12
        assert kinds.count("datapath") == 4

    def test_paper_names_present(self):
        names = {e.name for e in SUITE}
        for expected in ["bbara", "planet", "scf", "styr", "s1423", "s5378"]:
            assert expected in names

    def test_entry_lookup(self):
        assert entry("bbara").kind == "fsm"
        with pytest.raises(KeyError):
            entry("nonexistent")


class TestBuild:
    def test_deterministic(self):
        a = build("bbara")
        b = build("bbara")
        assert a.stats() == b.stats()

    @pytest.mark.parametrize("name", ["bbara", "dk16", "s838"])
    def test_valid_circuits(self, name):
        c = build(name)
        c.check()
        assert c.is_k_bounded(2)

    def test_quick_subset_builds(self):
        circuits = build_suite(quick_subset())
        assert len(circuits) == 5
        for c in circuits.values():
            assert c.n_gates > 50

    def test_fsm_profiles(self):
        c = build("bbara")
        assert len(c.pis) == 4
        assert len(c.pos) == 2
        assert c.n_ffs == 10  # one-hot: FF count = state count

    def test_large_circuit_scales(self):
        small = large_circuit(scale=1)
        big = large_circuit(scale=3)
        assert big.n_gates > small.n_gates
