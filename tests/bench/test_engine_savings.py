"""The headline perf claim: the event-driven engine plus warm starts cut
the deterministic work counters by at least 30% on the bench suite while
returning bit-identical results.

This is the test behind the EXPERIMENTS.md before/after table and the
CI counter gate: ``flow_queries`` and ``updates`` are machine-independent
work measures, so the reduction (and the identical ``phi_min`` / labels)
is asserted exactly, with no wall-clock noise.
"""

import pytest

from repro.bench import suite as bench_suite
from repro.compat import HAVE_NUMPY
from repro.core.driver import search_min_phi
from repro.retime.mdr import min_feasible_period

# The 30% threshold — and the engine bit-identity fixture under the
# resyn hook — are calibrated against the numpy-generated suite
# circuits.  The PureRng fallback builds different (valid) circuits,
# one of which trips a pre-existing order sensitivity of the resyn
# rewrite between engines, so the claim is only asserted where its
# fixture is reproducible.
pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="savings fixture needs the numpy-built suite"
)


class TestEngineSavings:
    def test_thirty_percent_fewer_counters_on_quick_suite(self):
        totals = {
            "cold": {"updates": 0, "flow_queries": 0},
            "warm": {"updates": 0, "flow_queries": 0},
        }
        for name in bench_suite.quick_subset():
            c = bench_suite.build(name)
            upper = min_feasible_period(c)
            for resyn in (False, True):
                phi_cold, out_cold = search_min_phi(
                    c, 5, upper, resyn, engine="rounds", warm_start=False
                )
                phi_warm, out_warm = search_min_phi(
                    c, 5, upper, resyn, engine="worklist", warm_start=True
                )
                assert phi_warm == phi_cold, (name, resyn)
                assert (
                    out_warm[phi_warm].labels == out_cold[phi_cold].labels
                ), (name, resyn)
                for tag, outs in (("cold", out_cold), ("warm", out_warm)):
                    for outcome in outs.values():
                        totals[tag]["updates"] += outcome.stats.updates
                        totals[tag]["flow_queries"] += (
                            outcome.stats.flow_queries
                        )
        for counter in ("updates", "flow_queries"):
            cold, warm = totals["cold"][counter], totals["warm"][counter]
            assert warm <= cold * 0.70, (
                f"{counter}: worklist+warm spent {warm} vs {cold} for "
                f"rounds+cold — less than the promised 30% reduction"
            )
