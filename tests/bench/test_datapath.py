"""Tests for the ISCAS-like datapath generators."""

import pytest

from repro.bench.datapath import (
    accumulator,
    datapath_circuit,
    fir_taps,
    lfsr,
    ripple_counter,
)
from repro.netlist.graph import SeqCircuit
from repro.verify.simulate import Simulator


class TestRippleCounter:
    def test_counts(self):
        c = SeqCircuit("cnt")
        en = c.add_pi("en")
        bits = ripple_counter(c, "c", 4, (en, 0))
        for i, b in enumerate(bits):
            c.add_po(f"b{i}", b)
        c.check()
        sim = Simulator(c, lanes=1)
        values = []
        for _ in range(10):
            outs = sim.step({en: 1})
            values.append(
                sum(outs[c.id_of(f"b{i}")] << i for i in range(4))
            )
        # the PO sees the *next* value; counting starts at 1
        assert values == [(i + 1) % 16 for i in range(10)]

    def test_enable_holds(self):
        c = SeqCircuit("cnt")
        en = c.add_pi("en")
        bits = ripple_counter(c, "c", 3, (en, 0))
        c.add_po("b0", bits[0])
        sim = Simulator(c, lanes=1)
        sim.step({en: 1})
        frozen = [sim.step({en: 0})[c.pos[0]] for _ in range(4)]
        assert frozen == [1, 1, 1, 1]


class TestLfsr:
    def test_period_of_maximal_lfsr(self):
        # x^3 + x^2 + 1 over stages [2, 1] gives period 7 when seeded...
        # all-zero state is absorbing for a XOR LFSR, so check instead
        # that an enabled LFSR stays all-zero from reset (fixed point).
        c = SeqCircuit("l")
        en = c.add_pi("en")
        stages = lfsr(c, "l", 3, [2, 1], (en, 0))
        c.add_po("o", stages[-1])
        c.check()
        sim = Simulator(c, lanes=1)
        outs = [sim.step({en: 1})[c.pos[0]] for _ in range(8)]
        assert outs == [0] * 8

    def test_bad_taps(self):
        c = SeqCircuit("l")
        en = c.add_pi("en")
        with pytest.raises(ValueError):
            lfsr(c, "l", 3, [5], (en, 0))


class TestAccumulator:
    def test_accumulates(self):
        c = SeqCircuit("acc")
        xs = [c.add_pi(f"x{i}") for i in range(4)]
        sums = accumulator(c, "a", 4, [(x, 0) for x in xs])
        for i, s in enumerate(sums):
            c.add_po(f"s{i}", s)
        c.check()
        sim = Simulator(c, lanes=1)
        total = 0
        for addend in [3, 5, 7, 11, 2]:
            frame = {xs[i]: (addend >> i) & 1 for i in range(4)}
            outs = sim.step(frame)
            total = (total + addend) % 16
            got = sum(outs[c.id_of(f"s{i}")] << i for i in range(4))
            assert got == total

    def test_width_mismatch(self):
        c = SeqCircuit("acc")
        x = c.add_pi("x")
        with pytest.raises(ValueError):
            accumulator(c, "a", 2, [(x, 0)])


class TestArrayMultiplier:
    def _build(self, n, m, pipelined):
        from repro.bench.datapath import array_multiplier

        c = SeqCircuit("mult")
        a = [c.add_pi(f"a{i}") for i in range(n)]
        b = [c.add_pi(f"b{i}") for i in range(m)]
        prod = array_multiplier(
            c,
            "m",
            [(x, 0) for x in a],
            [(x, 0) for x in b],
            pipeline_rows=pipelined,
        )
        for i, p in enumerate(prod):
            c.add_po(f"p{i}", p)
        c.check()
        return c, a, b

    def _check_products(self, c, a, b, latency, trials=30, seed=2):
        from repro.compat import default_rng

        n, m = len(a), len(b)
        sim = Simulator(c, lanes=1)
        rng = default_rng(seed)
        history = []
        for t in range(trials):
            av = int(rng.integers(0, 1 << n))
            bv = int(rng.integers(0, 1 << m))
            history.append((av, bv))
            frame = {a[i]: (av >> i) & 1 for i in range(n)}
            frame.update({b[i]: (bv >> i) & 1 for i in range(m)})
            outs = sim.step(frame)
            if t >= latency:
                ea, eb = history[t - latency]
                got = sum(
                    outs[c.id_of(f"p{i}")] << i for i in range(n + m)
                )
                assert got == ea * eb, (t, ea, eb, got)

    def test_combinational_products(self):
        c, a, b = self._build(4, 4, pipelined=False)
        assert c.n_ffs == 0
        self._check_products(c, a, b, latency=0)

    def test_pipelined_products_with_latency(self):
        c, a, b = self._build(4, 4, pipelined=True)
        assert c.n_ffs > 0
        self._check_products(c, a, b, latency=3)

    def test_rectangular_operands(self):
        c, a, b = self._build(3, 5, pipelined=True)
        self._check_products(c, a, b, latency=4)

    def test_pipelining_cuts_depth(self):
        comb, *_ = self._build(4, 4, pipelined=False)
        piped, *_ = self._build(4, 4, pipelined=True)
        assert piped.clock_period() < comb.clock_period()

    def test_retiming_on_pipelined_multiplier(self):
        from repro.core.turbomap import turbomap

        c, a, b = self._build(3, 3, pipelined=True)
        tm = turbomap(c, k=5)
        assert tm.phi <= c.clock_period()

    def test_empty_operands_rejected(self):
        from repro.bench.datapath import array_multiplier

        c = SeqCircuit("bad")
        x = c.add_pi("x")
        with pytest.raises(ValueError):
            array_multiplier(c, "m", [], [(x, 0)])


class TestFirTaps:
    def test_parity_of_window(self):
        c = SeqCircuit("fir")
        x = c.add_pi("x")
        one = c.add_pi("one")  # drive 1 to enable all taps
        out = fir_taps(c, "f", (x, 0), 3, [(one, 0)] * 3)
        c.add_po("y", out)
        c.check()
        sim = Simulator(c, lanes=1)
        seq = [1, 0, 1, 1, 0, 1, 0]
        outs = [sim.step({x: v, one: 1})[c.pos[0]] for v in seq]
        window = lambda t: seq[t] ^ (seq[t - 1] if t >= 1 else 0) ^ (
            seq[t - 2] if t >= 2 else 0
        )
        assert outs == [window(t) for t in range(len(seq))]


class TestDatapathCircuit:
    @pytest.mark.parametrize("seed", range(3))
    def test_valid_and_two_bounded(self, seed):
        c = datapath_circuit("dp", 12, seed=seed, n_blocks=4)
        c.check()
        assert c.is_k_bounded(2)
        assert c.n_gates > 50
        assert c.n_ffs > 5

    def test_deterministic(self):
        a = datapath_circuit("dp", 8, seed=3, n_blocks=3)
        b = datapath_circuit("dp", 8, seed=3, n_blocks=3)
        assert a.stats() == b.stats()

    def test_has_loops(self):
        c = datapath_circuit("dp", 8, seed=1, n_blocks=4)
        assert any(len(comp) > 1 for comp in c.sccs())
