"""Engine mechanics: severities, diagnostics, registry, rendering."""

import json

import pytest

import repro.analysis  # noqa: F401  (registers both rule packs)
from repro.analysis.engine import (
    Diagnostic,
    Location,
    Rule,
    Severity,
    all_rules,
    count_by_severity,
    diagnostics_json,
    get_rule,
    has_errors,
    max_severity,
    register,
    render_text,
    sort_diagnostics,
)


def diag(rule_id="CIRC001", severity=Severity.ERROR, node="g1", message="boom"):
    return Diagnostic(rule_id, severity, message, Location("c", node))


class TestSeverity:
    def test_rank_orders_errors_first(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank

    def test_values_are_the_report_strings(self):
        assert [s.value for s in Severity] == ["error", "warning", "info"]


class TestLocation:
    def test_qualified_with_and_without_node(self):
        assert Location("c", "g").qualified == "c::g"
        assert Location("c").qualified == "c"

    def test_render_prefixes_file(self):
        assert Location("c", "g", "a.blif").render() == "a.blif: c::g"
        assert Location("c", "g").render() == "c::g"


class TestDiagnostic:
    def test_fingerprint_stable_and_message_independent(self):
        a = diag(message="one wording")
        b = diag(message="another wording")
        assert a.fingerprint == b.fingerprint
        assert len(a.fingerprint) == 16

    def test_fingerprint_distinguishes_rule_circuit_node(self):
        assert diag().fingerprint != diag(rule_id="CIRC002").fingerprint
        assert diag().fingerprint != diag(node="g2").fingerprint

    def test_as_dict_shape(self):
        d = diag()
        d.data["n"] = 3
        out = d.as_dict()
        assert out["rule"] == "CIRC001"
        assert out["severity"] == "error"
        assert out["circuit"] == "c"
        assert out["node"] == "g1"
        assert out["data"] == {"n": 3}
        assert out["fingerprint"] == d.fingerprint

    def test_render_line(self):
        assert diag().render() == "c::g1: error: CIRC001: boom"


class TestRegistry:
    def test_both_packs_registered(self):
        circuit_ids = {r.id for r in all_rules("circuit")}
        mapping_ids = {r.id for r in all_rules("mapping")}
        retime_ids = {r.id for r in all_rules("retiming")}
        assert {f"CIRC00{i}" for i in range(1, 8)} <= circuit_ids
        assert {"MAP002", "MAP003", "MAP004", "MAP005", "MAP006"} <= mapping_ids
        assert "MAP001" in retime_ids

    def test_get_rule_and_metadata(self):
        r = get_rule("CIRC003")
        assert r.name == "fanin-width"
        assert r.severity is Severity.ERROR
        assert r.scope == "circuit"
        assert r.description

    def test_select_filters_ids(self):
        only = all_rules("circuit", select=["CIRC001", "CIRC004"])
        assert [r.id for r in only] == ["CIRC001", "CIRC004"]

    def test_duplicate_id_rejected(self):
        existing = get_rule("CIRC001")
        with pytest.raises(ValueError):
            register(existing)

    def test_unknown_scope_rejected(self):
        bad = Rule("X1", "x", Severity.INFO, "nope", "d", lambda ctx: [])
        with pytest.raises(ValueError):
            register(bad)


class TestAggregation:
    def test_sort_is_severity_major(self):
        diags = [
            diag(rule_id="CIRC006", severity=Severity.INFO),
            diag(rule_id="CIRC002", severity=Severity.WARNING),
            diag(rule_id="CIRC001", severity=Severity.ERROR, node="z"),
            diag(rule_id="CIRC001", severity=Severity.ERROR, node="a"),
        ]
        ordered = sort_diagnostics(diags)
        assert [d.severity for d in ordered] == [
            Severity.ERROR,
            Severity.ERROR,
            Severity.WARNING,
            Severity.INFO,
        ]
        assert [d.location.node for d in ordered][:2] == ["a", "z"]

    def test_max_severity_and_has_errors(self):
        assert max_severity([]) is None
        warn = [diag(severity=Severity.WARNING)]
        assert max_severity(warn) is Severity.WARNING
        assert not has_errors(warn)
        assert has_errors(warn + [diag()])

    def test_counts(self):
        counts = count_by_severity([diag(), diag(severity=Severity.INFO)])
        assert counts == {"error": 1, "warning": 0, "info": 1}

    def test_render_text_one_line_each(self):
        text = render_text([diag(node="a"), diag(node="b")])
        assert text.splitlines() == [
            "c::a: error: CIRC001: boom",
            "c::b: error: CIRC001: boom",
        ]

    def test_json_envelope(self):
        payload = json.loads(diagnostics_json([diag()]))
        assert payload["schema"] == 1
        assert payload["counts"]["error"] == 1
        assert payload["diagnostics"][0]["rule"] == "CIRC001"
