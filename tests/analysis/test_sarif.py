"""SARIF 2.1.0 output: structural conformance to the spec subset we emit.

``jsonschema`` (and the official schema file) is not a dependency, so
these tests enforce the SARIF 2.1.0 structural requirements GitHub code
scanning checks by hand: schema URI, version, run/tool/driver shape, rule
descriptors, result shape, level vocabulary, fingerprints and locations.
"""

import json

from repro.analysis.engine import (
    CircuitContext,
    Severity,
    all_rules,
)
from repro.analysis.sarif import (
    FINGERPRINT_KEY,
    SARIF_SCHEMA_URI,
    render_sarif,
    sarif_report,
)
from repro.analysis.structural import lint_circuit
from repro.netlist.graph import SeqCircuit
from tests.helpers import AND2, BUF


def messy_circuit():
    c = SeqCircuit("messy")
    a = c.add_pi("a")
    b = c.add_pi("b")
    g = c.add_gate("g", AND2, [(a, 0), (b, 0)])
    c.add_gate("dead", BUF, [(a, 0)])  # CIRC002 warning
    dup = c.add_gate("g_dup", AND2, [(a, 0), (b, 0)])  # CIRC006 info
    c.add_po("o", g)
    c.add_po("o2", dup)
    return c


def report_for(circuit, file=None, k=5):
    diags = lint_circuit(CircuitContext(circuit, k, file=file))
    return sarif_report(diags, all_rules("circuit")), diags


class TestDocumentShape:
    def test_envelope(self):
        report, _ = report_for(messy_circuit())
        assert report["$schema"] == SARIF_SCHEMA_URI
        assert "sarif-schema-2.1.0.json" in report["$schema"]
        assert report["version"] == "2.1.0"
        assert isinstance(report["runs"], list) and len(report["runs"]) == 1

    def test_tool_driver(self):
        report, _ = report_for(messy_circuit())
        driver = report["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert driver["informationUri"].startswith("https://")
        ids = [r["id"] for r in driver["rules"]]
        assert ids == sorted(ids)
        for descriptor in driver["rules"]:
            assert descriptor["shortDescription"]["text"]
            assert descriptor["fullDescription"]["text"]
            assert descriptor["defaultConfiguration"]["level"] in (
                "error",
                "warning",
                "note",
            )

    def test_render_is_valid_json(self):
        diags = lint_circuit(CircuitContext(messy_circuit(), 5))
        parsed = json.loads(render_sarif(diags, all_rules("circuit")))
        assert parsed["version"] == "2.1.0"


class TestResults:
    def test_result_shape_and_rule_index(self):
        report, diags = report_for(messy_circuit())
        run = report["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        results = run["results"]
        assert len(results) == len(diags) > 0
        for result in results:
            assert result["level"] in ("error", "warning", "note")
            assert result["message"]["text"]
            index = result["ruleIndex"]
            assert rules[index]["id"] == result["ruleId"]
            fp = result["partialFingerprints"][FINGERPRINT_KEY]
            assert len(fp) == 16

    def test_info_maps_to_note(self):
        report, diags = report_for(messy_circuit())
        info_fps = {
            d.fingerprint for d in diags if d.severity is Severity.INFO
        }
        assert info_fps
        for result in report["runs"][0]["results"]:
            if result["partialFingerprints"][FINGERPRINT_KEY] in info_fps:
                assert result["level"] == "note"

    def test_logical_locations_always_present(self):
        report, _ = report_for(messy_circuit())
        for result in report["runs"][0]["results"]:
            logical = result["locations"][0]["logicalLocations"][0]
            assert logical["fullyQualifiedName"].startswith("messy")
            assert logical["kind"] in ("element", "module")

    def test_physical_location_only_with_file(self):
        with_file, _ = report_for(messy_circuit(), file="messy.blif")
        for result in with_file["runs"][0]["results"]:
            physical = result["locations"][0]["physicalLocation"]
            assert physical["artifactLocation"]["uri"] == "messy.blif"
            assert physical["region"] == {"startLine": 1, "startColumn": 1}
        without, _ = report_for(messy_circuit())
        for result in without["runs"][0]["results"]:
            assert "physicalLocation" not in result["locations"][0]

    def test_clean_circuit_gives_empty_results(self):
        c = SeqCircuit("ok")
        a = c.add_pi("a")
        c.add_po("o", c.add_gate("g", BUF, [(a, 0)]))
        report, _ = report_for(c)
        assert report["runs"][0]["results"] == []
        # Rules that ran are still declared, so "clean" is distinguishable
        # from "not checked".
        assert report["runs"][0]["tool"]["driver"]["rules"]
