"""Golden SARIF 2.1.0 snapshot over the KERN / INC / RET / SAN packs.

The snapshot pins the whole machine-readable surface added by the
certificate-carrying analysis: rule descriptors of all four new packs
and one deterministic finding per pack, byte-for-byte (as parsed JSON).
Regenerate after an intentional schema change with::

    PYTHONPATH=src:. python tests/analysis/test_sarif_golden.py
"""

import json
import os

from repro.analysis.engine import all_rules, run_rules, sort_diagnostics
from repro.analysis.increrules import IncrementalContext
from repro.analysis.invariants import MappingContext
from repro.analysis.kernelrules import audit_compiled
from repro.analysis.sarif import sarif_report
from repro.kernel.csr import compile_circuit
from repro.netlist.graph import Edit, SeqCircuit
from tests.helpers import AND2, BUF

GOLDEN = os.path.join(
    os.path.dirname(__file__), "golden", "certified_packs.sarif.json"
)


def ring3():
    """Three unit-delay gates around one register: MDR = 3."""
    c = SeqCircuit("goldring")
    pi = c.add_pi("pi")
    g0 = c.add_gate_placeholder("g0", AND2)
    g1 = c.add_gate("g1", BUF, [(g0, 0)])
    g2 = c.add_gate("g2", BUF, [(g1, 0)])
    c.set_fanins(g0, [(pi, 0), (g2, 1)])
    c.add_po("out", g2)
    return c


def build_report():
    """One deterministic finding per pack, all descriptors, one SARIF."""
    ring = ring3()

    # KERN001: truncated offsets on the ring's own compiled CSR.
    compiled = compile_circuit(ring)
    compiled.offsets.pop()
    diags = audit_compiled(ring, compiled, select=["KERN001"])

    # INC001: a journal entry referencing a node the circuit lacks.
    inc_ctx = IncrementalContext(ring, [Edit("rewire", 999, ())], frozenset())
    diags += run_rules("incremental", inc_ctx, ["INC001"])

    # RET002: no periodic schedule exists one below the MDR.
    map_ctx = MappingContext(ring, ring, 2, [], 5, algorithm="golden")
    diags += run_rules("mapping", map_ctx, ["RET002"])

    rules = (
        all_rules("kernel")
        + all_rules("incremental")
        + [r for r in all_rules("mapping") if r.id.startswith("RET")]
        + all_rules("sanitizer")
    )
    return sarif_report(sort_diagnostics(diags), rules)


class TestGoldenSnapshot:
    def test_matches_golden(self):
        with open(GOLDEN) as fh:
            golden = json.load(fh)
        # Round-trip through JSON so tuples/ints normalize identically.
        assert json.loads(json.dumps(build_report())) == golden

    def test_golden_covers_all_new_packs(self):
        with open(GOLDEN) as fh:
            golden = json.load(fh)
        run = golden["runs"][0]
        ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {f"KERN00{i}" for i in range(1, 6)} <= ids
        assert {f"INC00{i}" for i in range(1, 4)} <= ids
        assert {"RET002", "RET003"} <= ids
        assert {f"SAN00{i}" for i in range(1, 7)} <= ids
        fired = {r["ruleId"] for r in run["results"]}
        assert fired == {"KERN001", "INC001", "RET002"}
        for result in run["results"]:
            assert result["partialFingerprints"]


if __name__ == "__main__":
    os.makedirs(os.path.dirname(GOLDEN), exist_ok=True)
    with open(GOLDEN, "w") as fh:
        json.dump(json.loads(json.dumps(build_report())), fh, indent=2)
        fh.write("\n")
    print(f"wrote {GOLDEN}")
