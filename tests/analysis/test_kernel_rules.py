"""Kernel rule pack: seeded CSR corruptions hit the right KERN rule ids.

Each test corrupts one field of a freshly compiled
:class:`CompiledCircuit` and audits with ``select`` isolating the rule
under test (a single corruption legitimately trips several rules — the
cross-checks overlap by design).
"""

from repro.analysis.engine import Severity
from repro.analysis.kernelrules import audit_compiled, fresh_crosscheck
from repro.kernel.csr import KIND_GATE, KIND_PI, compile_circuit
from tests.helpers import lfsr, random_seq_circuit, xor_chain


def subject():
    return random_seq_circuit(4, 20, seed=9, name="kernsubj")


def audit(circuit, compiled, rule_id):
    diags = audit_compiled(circuit, compiled, select=[rule_id])
    assert all(d.rule_id == rule_id for d in diags)
    assert all(d.severity is Severity.ERROR for d in diags)
    return diags


class TestCleanCircuits:
    def test_no_findings(self):
        for circuit in (
            xor_chain(6),
            lfsr(8, [0, 3]),
            random_seq_circuit(4, 40, seed=2),
        ):
            assert audit_compiled(circuit) == [], circuit.name

    def test_fresh_crosscheck_true(self):
        c = subject()
        assert fresh_crosscheck(c, compile_circuit(c))


class TestKern001IndptrSorted:
    def test_truncated_offsets(self):
        c = subject()
        cc = compile_circuit(c)
        cc.offsets.pop()
        diags = audit(c, cc, "KERN001")
        assert diags and "n+1" in diags[0].message

    def test_decreasing_offsets(self):
        c = subject()
        cc = compile_circuit(c)
        cc.offsets[2] = cc.offsets[3] + 1
        diags = audit(c, cc, "KERN001")
        assert any("decrease" in d.message for d in diags)

    def test_open_pin_arrays(self):
        c = subject()
        cc = compile_circuit(c)
        cc.srcs.append(0)
        cc.weights.append(0)
        diags = audit(c, cc, "KERN001")
        assert any("disagree" in d.message for d in diags)


class TestKern002PinDedup:
    def pin_owner(self, cc):
        """A node with at least two pins, and its pin range."""
        for u in range(cc.n):
            if cc.offsets[u + 1] - cc.offsets[u] >= 2:
                return u, cc.offsets[u]
        raise AssertionError("subject has no 2-pin node")

    def test_out_of_range_source(self):
        c = subject()
        cc = compile_circuit(c)
        cc.srcs[0] = cc.n + 7
        diags = audit(c, cc, "KERN002")
        assert any("out-of-range" in d.message for d in diags)

    def test_negative_weight(self):
        c = subject()
        cc = compile_circuit(c)
        cc.weights[0] = -1
        diags = audit(c, cc, "KERN002")
        assert any("negative pin weight" in d.message for d in diags)

    def test_repeated_pin(self):
        c = subject()
        cc = compile_circuit(c)
        _u, lo = self.pin_owner(cc)
        cc.srcs[lo + 1] = cc.srcs[lo]
        cc.weights[lo + 1] = cc.weights[lo]
        diags = audit(c, cc, "KERN002")
        assert any("repeats" in d.message for d in diags)
        assert diags[0].data["duplicates"]


class TestKern003PackShift:
    def test_wrong_shift(self):
        c = subject()
        cc = compile_circuit(c)
        cc.shift += 1
        diags = audit(c, cc, "KERN003")
        assert any("pack_shift" in d.message for d in diags)

    def test_stale_mask(self):
        c = subject()
        cc = compile_circuit(c)
        cc.mask = (1 << (cc.shift + 1)) - 1
        diags = audit(c, cc, "KERN003")
        assert any("mask" in d.message for d in diags)


class TestKern004ByteRoundtrip:
    def test_int32_overflow(self):
        c = subject()
        cc = compile_circuit(c)
        cc.weights[0] = 1 << 31
        diags = audit(c, cc, "KERN004")
        assert any("int32" in d.message for d in diags)


class TestKern005ObjectCrosscheck:
    def test_node_count_mismatch(self):
        c = subject()
        cc = compile_circuit(c)
        cc.n += 1
        cc.kinds.append(KIND_PI)
        cc.offsets.append(cc.offsets[-1])
        diags = audit(c, cc, "KERN005")
        assert any("nodes" in d.message for d in diags)

    def test_wrong_kind_code(self):
        c = subject()
        cc = compile_circuit(c)
        victim = cc.kinds.index(KIND_GATE)
        cc.kinds[victim] = KIND_PI
        diags = audit(c, cc, "KERN005")
        assert any("kind code" in d.message for d in diags)

    def test_diverged_pin_weight(self):
        c = subject()
        cc = compile_circuit(c)
        cc.weights[0] += 1
        diags = audit(c, cc, "KERN005")
        assert any("diverge" in d.message for d in diags)

    def test_fresh_crosscheck_false_after_tamper(self):
        c = subject()
        cc = compile_circuit(c)
        cc.weights[0] += 1
        assert not fresh_crosscheck(c, cc)


class TestKern006VectorViewCrosscheck:
    def test_clean_views_pass(self):
        c = subject()
        assert audit(c, compile_circuit(c), "KERN006") == []

    def test_without_numpy_is_inert(self, monkeypatch):
        from repro.kernel import batch

        monkeypatch.setattr(batch, "HAVE_NUMPY", False)
        c = subject()
        assert audit(c, compile_circuit(c), "KERN006") == []

    def test_broken_blob_window_fires(self, monkeypatch):
        # The rule audits the translation layer, so the corruption has
        # to live there: a blob attach that flips a byte models a
        # mis-windowed frombuffer.
        from repro.kernel import batch

        if not batch.HAVE_NUMPY:
            import pytest

            pytest.skip("numpy not installed ([vector] extra)")
        real_from_blob = batch.views_from_blob

        def tampered(data, keepalive=()):
            blob = bytearray(data)
            blob[batch._HEADER.size] ^= 1  # kinds[0]
            return real_from_blob(bytes(blob))

        monkeypatch.setattr(batch, "views_from_blob", tampered)
        c = subject()
        diags = audit(c, compile_circuit(c), "KERN006")
        assert any("views_from_blob" in d.message for d in diags)
        assert any("kinds" in d.message for d in diags)
