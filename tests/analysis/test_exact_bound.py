"""Exact Karp upper bound vs the Bellman-Ford search it replaces.

``default_upper_bound`` now computes ``max(1, ceil(MDR))`` with one
exact Karp maximum-cycle-mean pass (``exact_mdr_period``) instead of
``min_feasible_period``'s ``O(log n)`` feasibility probes.  The two
must agree *exactly* on every input — any divergence would silently
shift the Figure-4 search trajectory.
"""

import pytest

from repro.analysis.certify import exact_mdr_period
from repro.bench.suite import build, quick_subset
from repro.core.driver import default_upper_bound
from repro.core.turbomap import turbomap
from repro.retime.mdr import min_feasible_period
from tests.analysis.test_certify import ring_circuit
from tests.helpers import lfsr, random_seq_circuit


@pytest.mark.parametrize("name", quick_subset())
def test_equals_bellman_ford_on_the_quick_suite(name):
    c = build(name)
    assert exact_mdr_period(c) == min_feasible_period(c)


@pytest.mark.parametrize(
    "n_gates,weight", [(3, 1), (4, 2), (7, 3), (5, 5), (6, 1)]
)
def test_equals_bellman_ford_on_rings(n_gates, weight):
    # MDR = n_gates / weight exactly; ceil() exercises every rounding
    # direction including the exact-integer case.
    c = ring_circuit(n_gates, weight)
    got = exact_mdr_period(c)
    assert got == min_feasible_period(c)
    assert got == -(-n_gates // weight)


@pytest.mark.parametrize("seed", range(6))
def test_equals_bellman_ford_on_random_circuits(seed):
    c = random_seq_circuit(4, 30, seed=seed, feedback=5)
    assert exact_mdr_period(c) == min_feasible_period(c)


def test_equals_bellman_ford_on_lfsr():
    c = lfsr(6, (0, 4))
    assert exact_mdr_period(c) == min_feasible_period(c)


def test_acyclic_circuit_is_period_one(seed=2):
    c = random_seq_circuit(4, 20, seed=seed, feedback=0)
    assert exact_mdr_period(c) == 1 == min_feasible_period(c)


def test_default_upper_bound_uses_the_exact_pass():
    c = build("dk16")
    assert default_upper_bound(c) == min_feasible_period(c)


def test_oversized_graph_falls_back(monkeypatch):
    """Over the Karp size budget ``exact_mdr_period`` abstains and the
    driver falls back to the Bellman-Ford search — same answer."""
    c = build("bbara")
    assert exact_mdr_period(c, max_registers=1) is None
    assert exact_mdr_period(c, max_condensed_edges=1) is None

    import repro.analysis.certify as certify

    monkeypatch.setattr(certify, "DEFAULT_MAX_REGISTERS", 1)
    monkeypatch.setattr(
        certify,
        "exact_mdr_period",
        lambda circuit, **kw: None,
    )
    assert default_upper_bound(c) == min_feasible_period(c)


@pytest.mark.parametrize("name", quick_subset())
def test_search_trajectory_unchanged(name):
    """The new bound is bit-identical, so phi (and the mapping) is."""
    c = build(name)
    via_exact = turbomap(c.copy(), 4)
    via_bf = turbomap(c.copy(), 4, upper_bound=min_feasible_period(c))
    assert via_exact.phi == via_bf.phi
    assert list(via_exact.labels) == list(via_bf.labels)
