"""Baseline files: record, load, suppress."""

import json

import pytest

from repro.analysis.baseline import (
    baseline_payload,
    load_baseline,
    suppress,
    write_baseline,
)
from repro.analysis.engine import Diagnostic, Location, Severity


def diag(node, rule_id="CIRC002"):
    return Diagnostic(
        rule_id, Severity.WARNING, f"dangling {node}", Location("c", node)
    )


class TestPayload:
    def test_records_fingerprint_rule_location(self):
        payload = baseline_payload([diag("g1"), diag("g2")])
        assert payload["schema"] == 1
        entries = payload["findings"]
        assert len(entries) == 2
        assert entries[0]["rule"] == "CIRC002"
        assert entries[0]["location"] == "c::g1"
        assert entries[0]["fingerprint"] == diag("g1").fingerprint


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = str(tmp_path / "base.json")
        write_baseline([diag("g1"), diag("g2")], path)
        fingerprints = load_baseline(path)
        assert fingerprints == {diag("g1").fingerprint, diag("g2").fingerprint}

    def test_load_rejects_non_baseline(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError):
            load_baseline(str(path))

    def test_load_rejects_malformed_entry(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 1, "findings": [{"rule": "X"}]}))
        with pytest.raises(ValueError):
            load_baseline(str(path))


class TestSuppress:
    def test_only_recorded_findings_suppressed(self):
        known = {diag("g1").fingerprint}
        kept, n = suppress([diag("g1"), diag("g2")], known)
        assert n == 1
        assert [d.location.node for d in kept] == ["g2"]

    def test_message_changes_do_not_escape_suppression(self):
        old = diag("g1")
        new = Diagnostic(
            "CIRC002", Severity.WARNING, "reworded entirely", Location("c", "g1")
        )
        kept, n = suppress([new], {old.fingerprint})
        assert kept == [] and n == 1

    def test_empty_baseline_keeps_everything(self):
        kept, n = suppress([diag("g1")], set())
        assert n == 0 and len(kept) == 1
