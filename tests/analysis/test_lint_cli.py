"""The lint CLI (both entry points) and the map/suite validation gate."""

import json

import pytest

from repro.analysis.cli import main as lint_main
from repro.cli import main as turbosyn_main
from repro.netlist.blif import write_blif_file
from repro.netlist.graph import SeqCircuit
from tests.helpers import AND2, BUF, MAJ3, XOR2


def write(tmp_path, circuit, stem):
    path = tmp_path / f"{stem}.blif"
    write_blif_file(circuit, str(path))
    return str(path)


@pytest.fixture
def clean_blif(tmp_path):
    c = SeqCircuit("clean")
    a = c.add_pi("a")
    b = c.add_pi("b")
    g = c.add_gate("g", AND2, [(a, 0), (b, 1)])
    c.add_po("o", g)
    return write(tmp_path, c, "clean")


@pytest.fixture
def warn_blif(tmp_path):
    c = SeqCircuit("warny")
    a = c.add_pi("a")
    b = c.add_pi("b")
    g = c.add_gate("g", AND2, [(a, 0), (b, 0)])
    c.add_gate("dead", BUF, [(a, 0)])  # CIRC002 warning
    c.add_po("o", g)
    return write(tmp_path, c, "warny")


@pytest.fixture
def wide_blif(tmp_path):
    c = SeqCircuit("wide3")
    pis = [c.add_pi(f"x{i}") for i in range(3)]
    g = c.add_gate("fat_gate", MAJ3, [(p, 0) for p in pis])
    h = c.add_gate("fat_too", MAJ3, [(p, 0) for p in pis])
    x = c.add_gate("pair", XOR2, [(g, 0), (h, 0)])
    c.add_po("o", x)
    # At K=2 this yields two CIRC003 errors plus one CIRC006 info
    # (fat_too duplicates fat_gate).
    return write(tmp_path, c, "wide3")


class TestExitCodes:
    def test_clean_circuit_exits_zero(self, clean_blif, capsys):
        assert lint_main([clean_blif]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s), 0 info(s)" in out

    def test_error_finding_exits_one(self, wide_blif, capsys):
        assert lint_main([wide_blif, "-k", "2"]) == 1
        out = capsys.readouterr().out
        assert "CIRC003" in out and "fat_gate" in out

    def test_warnings_pass_under_default_fail_on(self, warn_blif):
        assert lint_main([warn_blif]) == 0

    def test_fail_on_warning_tightens(self, warn_blif):
        assert lint_main([warn_blif, "--fail-on", "warning"]) == 1

    def test_fail_on_never_always_passes(self, wide_blif):
        assert lint_main([wide_blif, "-k", "2", "--fail-on", "never"]) == 0

    def test_unreadable_file_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.blif")
        assert lint_main([missing]) == 2
        assert "error" in capsys.readouterr().err


class TestFormats:
    def test_text_names_file_and_node(self, wide_blif, capsys):
        lint_main([wide_blif, "-k", "2"])
        out = capsys.readouterr().out
        assert f"{wide_blif}: wide3::fat_gate: error: CIRC003" in out

    def test_json_format(self, wide_blif, capsys):
        lint_main([wide_blif, "-k", "2", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"error": 2, "warning": 0, "info": 1}
        rules = {d["rule"] for d in payload["diagnostics"]}
        assert rules == {"CIRC003", "CIRC006"}

    def test_sarif_format_to_file(self, wide_blif, tmp_path, capsys):
        out_path = str(tmp_path / "report.sarif")
        assert lint_main([wide_blif, "-k", "2", "--format", "sarif", "--out", out_path]) == 1
        assert capsys.readouterr().out == ""
        with open(out_path) as fh:
            report = json.load(fh)
        assert report["version"] == "2.1.0"
        results = report["runs"][0]["results"]
        assert {r["ruleId"] for r in results} == {"CIRC003", "CIRC006"}
        physical = results[0]["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == wide_blif

    def test_select_restricts_rules(self, wide_blif, capsys):
        assert lint_main([wide_blif, "-k", "2", "--select", "CIRC002"]) == 0
        out = capsys.readouterr().out
        assert "CIRC003" not in out

    def test_multiple_circuits_aggregate(self, clean_blif, warn_blif, capsys):
        lint_main([clean_blif, warn_blif])
        out = capsys.readouterr().out
        assert "2 circuit(s) linted" in out
        assert "1 warning(s)" in out


class TestBaselineFlow:
    def test_write_then_suppress(self, wide_blif, tmp_path, capsys):
        base = str(tmp_path / "base.json")
        assert lint_main([wide_blif, "-k", "2", "--write-baseline", base]) == 1
        capsys.readouterr()
        # Second run under the baseline: findings suppressed, exit 0.
        assert lint_main([wide_blif, "-k", "2", "--baseline", base]) == 0
        out = capsys.readouterr().out
        assert "3 suppressed by baseline" in out

    def test_new_findings_escape_baseline(self, wide_blif, warn_blif, tmp_path):
        base = str(tmp_path / "base.json")
        lint_main([warn_blif, "--write-baseline", base, "--fail-on", "never"])
        assert (
            lint_main([wide_blif, "-k", "2", "--baseline", base]) == 1
        )  # wide3's errors are not in warny's baseline

    def test_malformed_baseline_exits_two(self, clean_blif, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert lint_main([clean_blif, "--baseline", str(bad)]) == 2
        assert "cannot load baseline" in capsys.readouterr().err


class TestTurbosynSubcommand:
    def test_lint_wired_into_main_cli(self, wide_blif, capsys):
        assert turbosyn_main(["lint", wide_blif, "-k", "2"]) == 1
        assert "CIRC003" in capsys.readouterr().out


class TestMapValidationGate:
    """Satellite: malformed inputs fail fast at the map/suite entrypoints."""

    def test_map_rejects_overwide_netlist_naming_gates(self, wide_blif, capsys):
        assert turbosyn_main(["map", wide_blif, "-k", "2"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: wide3: 2 gate(s) exceed 2 fanins")
        assert "fat_gate" in err and "fat_too" in err
        assert "gate decomposition" in err

    def test_map_accepts_same_netlist_at_larger_k(self, wide_blif, capsys):
        assert turbosyn_main(["map", wide_blif, "-k", "3", "--algo", "turbomap"]) == 0
        assert "verified" in capsys.readouterr().out

    def test_map_rejects_comb_cycle_blif(self, tmp_path, capsys):
        # The BLIF reader already refuses combinational cycles; the map
        # command must turn that into exit code 2, not a traceback.
        c = SeqCircuit("loopy")
        a = c.add_pi("a")
        g1 = c.add_gate_placeholder("g1", AND2)
        g2 = c.add_gate_placeholder("g2", BUF)
        c.set_fanins(g1, [(g2, 0), (a, 0)])
        c.set_fanins(g2, [(g1, 0)])
        c.add_po("o", g2)
        path = write(tmp_path, c, "loopy")
        assert turbosyn_main(["map", path]) == 2
        err = capsys.readouterr().err
        assert "combinational cycle" in err

    def test_map_missing_file_exits_two(self, tmp_path, capsys):
        assert turbosyn_main(["map", str(tmp_path / "ghost.blif")]) == 2
        assert "error" in capsys.readouterr().err

    def test_no_check_skips_verification(self, clean_blif, capsys):
        assert turbosyn_main(["map", clean_blif, "--no-check"]) == 0
        out = capsys.readouterr().out
        assert "verified" not in out
