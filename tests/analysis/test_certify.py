"""Schedule / cycle-mean certificates: construction, replay, cross-check.

Covers the PR's acceptance criterion directly: on every quick-suite
circuit the schedule certificate replays cleanly and the Karp bound
equals the engine's ``min_feasible_period`` — zero false alarms — and
seeded tampering of either blob is rejected.
"""

from fractions import Fraction

import pytest

from repro.analysis.certify import (
    balanced_word,
    build_cycle_certificate,
    build_schedule_certificate,
    check_cycle_certificate,
    replay_schedule,
)
from repro.analysis.engine import run_rules
from repro.analysis.invariants import MappingContext
from repro.bench.suite import build, quick_subset
from repro.core.turbomap import turbomap
from repro.netlist.graph import SeqCircuit
from repro.retime.mdr import min_feasible_period
from tests.helpers import AND2, BUF, lfsr, random_seq_circuit


def ring_circuit(n_gates=3, weight=1, name="ring"):
    """A single cycle of ``n_gates`` unit-delay gates carrying ``weight``
    registers on the back edge: MDR = n_gates / weight exactly."""
    c = SeqCircuit(name)
    pi = c.add_pi("pi")
    head = c.add_gate_placeholder("g0", AND2)
    prev = head
    for i in range(1, n_gates):
        prev = c.add_gate(f"g{i}", BUF, [(prev, 0)])
    c.set_fanins(head, [(pi, 0), (prev, weight)])
    c.add_po("out", prev)
    c.check()
    return c


def only(diags, rule_id):
    return [d for d in diags if d.rule_id == rule_id]


class TestBalancedWord:
    def test_word_shape(self):
        # 0^2 (1 0^2)* at phi=3: fires at 2, 5, 8, ...
        assert balanced_word(2, 3, 10) == "0010010010"

    def test_zero_offset_fires_immediately(self):
        assert balanced_word(0, 2, 6) == "101010"

    def test_one_firing_per_period(self):
        word = balanced_word(4, 5, 4 + 5 * 6)
        assert word.count("1") == 6


class TestScheduleCertificate:
    def test_ring_feasible_at_mdr(self):
        c = ring_circuit(3, 1)
        blob = build_schedule_certificate(c, 3)
        assert blob["feasible"] is True
        assert replay_schedule(c, 3, blob["offsets"]) == []

    def test_ring_infeasible_below_mdr(self):
        c = ring_circuit(3, 1)
        blob = build_schedule_certificate(c, 2)
        assert blob["feasible"] is False
        assert blob["witness_node"] is not None

    def test_offsets_normalized(self):
        c = ring_circuit(4, 2)
        blob = build_schedule_certificate(c, 2)
        assert blob["feasible"] is True
        assert min(blob["offsets"]) == 0
        assert blob["makespan"] == max(blob["offsets"])

    def test_replay_rejects_tampered_offsets(self):
        c = ring_circuit(3, 1)
        blob = build_schedule_certificate(c, 3)
        offsets = list(blob["offsets"])
        # Pull one gate's start below what its fanin chain allows.
        victim = c.id_of("g2")
        offsets[victim] = -10
        problems = replay_schedule(c, 3, offsets)
        assert problems
        assert "start constraint" in problems[0]

    def test_replay_rejects_wrong_length(self):
        c = ring_circuit(3, 1)
        assert replay_schedule(c, 3, [0]) == [
            f"offset vector has 1 entries for {len(c)} nodes"
        ]

    def test_replay_rejects_bad_period(self):
        c = ring_circuit(3, 1)
        assert replay_schedule(c, 0, [0] * len(c))

    def test_lfsr_certificate(self):
        c = lfsr(8, [0, 3])
        phi = min_feasible_period(c)
        blob = build_schedule_certificate(c, phi)
        assert blob["feasible"] is True
        assert replay_schedule(c, phi, blob["offsets"]) == []
        below = build_schedule_certificate(c, phi - 1) if phi > 1 else None
        if below is not None:
            assert below["feasible"] is False


class TestCycleCertificate:
    def test_ring_exact_ratio(self):
        c = ring_circuit(3, 1)
        blob = build_cycle_certificate(c, 3)
        assert blob["mcm"] == "3/1"
        assert blob["bound"] == 3
        assert blob["feasible"] is True
        assert check_cycle_certificate(c, 3, blob) == []

    def test_fractional_ratio_rounds_up(self):
        c = ring_circuit(3, 2)
        blob = build_cycle_certificate(c, 2)
        assert blob["mcm"] == "3/2"
        assert blob["bound"] == 2
        assert check_cycle_certificate(c, 2, blob) == []

    def test_infeasible_below_ratio(self):
        c = ring_circuit(4, 1)
        blob = build_cycle_certificate(c, 3)
        assert blob["feasible"] is False
        problems = check_cycle_certificate(c, 3, blob)
        assert problems and "below the certified MDR" in problems[0]

    def test_acyclic_circuit_bound_one(self):
        c = SeqCircuit("acyc")
        a = c.add_pi("a")
        b = c.add_pi("b")
        g = c.add_gate("g", AND2, [(a, 0), (b, 1)])
        c.add_po("o", g)
        blob = build_cycle_certificate(c, 1)
        assert blob["bound"] == 1
        assert blob["critical_cycle"] == []
        assert check_cycle_certificate(c, 1, blob) == []

    def test_tampered_ratio_rejected(self):
        c = ring_circuit(3, 1)
        blob = build_cycle_certificate(c, 3)
        blob["mcm"] = "2/1"
        problems = check_cycle_certificate(c, 3, blob)
        assert problems and "achieves ratio" in problems[0]

    def test_fabricated_edge_rejected(self):
        c = ring_circuit(3, 1)
        blob = build_cycle_certificate(c, 3)
        blob["circuit_cycle"] = [["g0", 0], ["g2", 1]]  # no g0 -> g2 edge
        problems = check_cycle_certificate(c, 3, blob)
        assert problems and "does not have" in problems[0]

    def test_registerless_walk_rejected(self):
        c = ring_circuit(3, 1)
        blob = build_cycle_certificate(c, 3)
        blob["circuit_cycle"] = [
            [name, 0] for name, _w in blob["circuit_cycle"]
        ]
        problems = check_cycle_certificate(c, 3, blob)
        assert problems

    def test_oversize_skips_with_reason(self):
        c = ring_circuit(3, 4)
        blob = build_cycle_certificate(c, 1, max_registers=2)
        assert blob["mcm"] is None
        assert "too large" in blob["skipped"]
        assert check_cycle_certificate(c, 1, blob) == []

    def test_random_seq_matches_engine(self):
        for seed in (7, 21, 42):
            c = random_seq_circuit(4, 30, seed)
            phi = min_feasible_period(c)
            blob = build_cycle_certificate(c, phi)
            assert blob["bound"] == phi, c.name
            assert check_cycle_certificate(c, phi, blob) == []


class TestRuleWiring:
    def ctx(self, circuit, phi, **kwargs):
        return MappingContext(
            circuit, circuit, phi, [], 5, algorithm="test", **kwargs
        )

    def test_ret002_fires_below_mdr(self):
        c = ring_circuit(3, 1)
        diags = run_rules("mapping", self.ctx(c, 2), ["RET002"])
        assert [d.rule_id for d in diags] == ["RET002"]
        assert "phi < MDR" in diags[0].message

    def test_ret003_fires_on_engine_disagreement(self):
        c = ring_circuit(3, 1)
        blob = build_cycle_certificate(c, 3)
        blob["bound"] = 7  # engine says 3
        blob["mcm"] = "7/1"
        diags = run_rules(
            "mapping", self.ctx(c, 3, cycle_cert=blob), ["RET003"]
        )
        assert any("achieves ratio" in d.message for d in diags) or any(
            "disagrees" in d.message for d in diags
        )

    def test_clean_ring_produces_no_findings(self):
        c = ring_circuit(3, 1)
        ctx = self.ctx(c, 3)
        assert run_rules("mapping", ctx, ["RET002"]) == []
        assert run_rules("mapping", ctx, ["RET003"]) == []


class TestUpperBoundHint:
    def test_hint_does_not_change_the_answer(self):
        c = ring_circuit(3, 1)
        assert min_feasible_period(c) == 3
        assert min_feasible_period(c, upper_bound=3) == 3
        # An infeasible hint is verified and ignored, never trusted.
        assert min_feasible_period(c, upper_bound=1) == 3
        assert min_feasible_period(c, upper_bound=100) == 3

    def test_hint_on_random_circuits(self):
        for seed in (3, 11):
            c = random_seq_circuit(4, 25, seed)
            phi = min_feasible_period(c)
            assert min_feasible_period(c, upper_bound=phi) == phi
            assert min_feasible_period(c, upper_bound=max(1, phi - 1)) == phi


@pytest.mark.parametrize("name", quick_subset())
def test_quick_suite_zero_false_alarms(name):
    """Acceptance: both certificates pass on every quick-suite circuit."""
    circuit = build(name)
    result = turbomap(circuit, 5)  # check=True runs RET002/RET003 already
    sched = result.certificate["schedule_certificate"]
    cyc = result.certificate["cycle_certificate"]
    assert sched["feasible"] is True
    assert sched["phi"] == result.phi
    assert replay_schedule(result.mapped, result.phi, sched["offsets"]) == []
    assert check_cycle_certificate(result.mapped, result.phi, cyc) == []
    if cyc.get("skipped") is None:
        assert cyc["feasible"] is True
        engine_bound = min_feasible_period(result.mapped)
        assert cyc["bound"] == engine_bound
        num, den = (int(x) for x in cyc["mcm"].split("/"))
        assert result.phi >= Fraction(num, den)
