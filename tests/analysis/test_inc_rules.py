"""Incremental rule pack: seeded repair faults hit the right INC ids.

A real edit-and-remap session must audit clean (and embed the audit in
its certificate); hand-corrupted evidence must trip exactly the rule
guarding the violated claim.
"""

import pytest

from repro.analysis.engine import Severity, run_rules
from repro.analysis.increrules import IncrementalContext, audit_incremental
from repro.analysis.invariants import VerificationError
from repro.core.labels import LabelOutcome, LabelStats
from repro.incremental.session import IncrementalSession
from repro.kernel.csr import compile_circuit
from repro.netlist.graph import Edit, SeqCircuit
from tests.helpers import AND2, BUF, random_seq_circuit


def chain_subject():
    """a,b -> g1 -> g2 -> o; returns (circuit, g1, g2, po)."""
    c = SeqCircuit("incsubj")
    a = c.add_pi("a")
    b = c.add_pi("b")
    g1 = c.add_gate("g1", AND2, [(a, 0), (b, 0)])
    g2 = c.add_gate("g2", BUF, [(g1, 0)])
    po = c.add_po("o", g2)
    return c, g1, g2, po


def pins_of(circuit, nid):
    return tuple((p.src, p.weight) for p in circuit.fanins(nid))


def only(ctx, rule_id):
    diags = run_rules("incremental", ctx, [rule_id])
    assert all(d.rule_id == rule_id for d in diags)
    assert all(d.severity is Severity.ERROR for d in diags)
    return diags


class TestSessionAuditsClean:
    def test_remap_embeds_empty_audit(self):
        circuit = random_seq_circuit(4, 30, seed=13, name="incsess")
        session = IncrementalSession(circuit, k=5)
        cold = session.map()
        gate = circuit.gates[len(circuit.gates) // 2]
        src = circuit.fanins(gate)[0].src
        assert circuit.rewire_pin(gate, 0, src, 1)
        result = session.remap()
        audit = result.certificate["incremental_audit"]
        assert audit["rules"] == ["INC001", "INC002", "INC003"]
        assert audit["findings"] == []
        assert result.incremental
        assert result.phi >= 1 and cold.phi >= 1

    def test_corrupted_journal_fails_remap(self):
        circuit = random_seq_circuit(4, 30, seed=13, name="incsess2")
        session = IncrementalSession(circuit, k=5)
        session.map()
        gate = circuit.gates[-1]
        src = circuit.fanins(gate)[0].src
        assert circuit.rewire_pin(gate, 0, src, 1)
        # Undo behind the journal's back: the recorded pins no longer
        # match the circuit.  Either layer may refuse — the mapping
        # verifier's CSR round-trip (MAP007) or the journal audit
        # (INC001) — but the repair must not report success.
        circuit._journal = [Edit("rewire", gate, ((src, 2),))]
        with pytest.raises(VerificationError, match="MAP007|INC001"):
            session.remap()


class TestInc001JournalCoherence:
    def test_out_of_range_id(self):
        c, _g1, g2, _po = chain_subject()
        ctx = IncrementalContext(
            c, [Edit("rewire", 999, ())], frozenset({g2})
        )
        diags = only(ctx, "INC001")
        assert any("outside the circuit" in d.message for d in diags)

    def test_stale_pins(self):
        c, g1, g2, _po = chain_subject()
        ctx = IncrementalContext(
            c, [Edit("rewire", g2, ((g1, 3),))], frozenset({g2})
        )
        diags = only(ctx, "INC001")
        assert any("journal records pins" in d.message for d in diags)

    def test_last_writer_wins(self):
        c, g1, g2, _po = chain_subject()
        edits = [
            Edit("rewire", g2, ((g1, 3),)),  # superseded
            Edit("rewire", g2, pins_of(c, g2)),  # final, matches
        ]
        assert only(IncrementalContext(c, edits, frozenset({g2})), "INC001") == []

    def test_stale_compiled(self):
        c, g1, g2, _po = chain_subject()
        stale = compile_circuit(c)
        c.rewire_pin(g2, 0, g1, 1)
        ctx = IncrementalContext(
            c,
            [Edit("rewire", g2, pins_of(c, g2))],
            frozenset({g2}),
            compiled=stale,
        )
        diags = only(ctx, "INC001")
        assert any("byte-identical" in d.message for d in diags)

    def test_fresh_compiled_clean(self):
        c, _g1, g2, _po = chain_subject()
        ctx = IncrementalContext(
            c,
            [Edit("rewire", g2, pins_of(c, g2))],
            frozenset({g2}),
            compiled=compile_circuit(c),
        )
        assert only(ctx, "INC001") == []


class TestInc002DirtyClosure:
    def test_missing_seed(self):
        c, _g1, g2, _po = chain_subject()
        ctx = IncrementalContext(
            c, [Edit("rewire", g2, pins_of(c, g2))], frozenset()
        )
        diags = only(ctx, "INC002")
        assert any("missing from the dirty region" in d.message for d in diags)
        assert diags[0].data["missing"] == [g2]

    def test_leaking_fanout(self):
        c, g1, g2, _po = chain_subject()
        # g1 is dirty but its fanout g2 is not: the closure leaks.
        ctx = IncrementalContext(
            c, [Edit("rewire", g1, pins_of(c, g1))], frozenset({g1})
        )
        diags = only(ctx, "INC002")
        assert any("not forward-closed" in d.message for d in diags)
        assert g2 in diags[0].data["leaks"]

    def test_closed_region_clean(self):
        c, g1, g2, po = chain_subject()
        ctx = IncrementalContext(
            c,
            [Edit("rewire", g1, pins_of(c, g1))],
            frozenset({g1, g2, po}),
        )
        assert only(ctx, "INC002") == []


class TestInc003WitnessReuse:
    PHI = 2

    def evidence(self, **stat_overrides):
        """Consistent dirty-seeded evidence: g2+o dirty, g1 clean."""
        c, g1, g2, po = chain_subject()
        labels = [0] * len(c)
        labels[g1] = 1
        labels[g2] = 1
        stats = dict(dirty_nodes=2, labels_reused=1, witnesses_revalidated=1)
        stats.update(stat_overrides)
        prev = {self.PHI: LabelOutcome(True, list(labels), LabelStats())}
        new = {self.PHI: LabelOutcome(True, list(labels), LabelStats(**stats))}
        ctx = IncrementalContext(
            c,
            [Edit("rewire", g2, pins_of(c, g2))],
            frozenset({g2, po}),
            prev_outcomes=prev,
            outcomes=new,
        )
        return ctx, g1

    def test_consistent_evidence_clean(self):
        ctx, _g1 = self.evidence()
        assert audit_incremental(ctx) == []

    def test_clean_label_drift(self):
        ctx, g1 = self.evidence()
        ctx.outcomes[self.PHI].labels[g1] += 1
        diags = only(ctx, "INC003")
        assert any("clean label" in d.message for d in diags)
        assert diags[0].data["drifted"] == [g1]

    def test_wrong_reuse_count(self):
        ctx, _g1 = self.evidence(labels_reused=5)
        diags = only(ctx, "INC003")
        assert any("reused labels" in d.message for d in diags)

    def test_overcounted_witnesses(self):
        ctx, _g1 = self.evidence(witnesses_revalidated=3)
        diags = only(ctx, "INC003")
        assert any("re-queried" in d.message for d in diags)

    def test_cold_probe_skipped(self):
        # dirty_nodes == 0 marks a cold/warm probe: no reuse to audit.
        ctx, g1 = self.evidence(dirty_nodes=0, labels_reused=0)
        ctx.outcomes[self.PHI].labels[g1] += 1
        assert only(ctx, "INC003") == []

    def test_infeasible_prev_skipped(self):
        ctx, g1 = self.evidence()
        ctx.prev_outcomes[self.PHI] = LabelOutcome(
            False, list(ctx.prev_outcomes[self.PHI].labels), LabelStats()
        )
        ctx.outcomes[self.PHI].labels[g1] += 1
        assert only(ctx, "INC003") == []
