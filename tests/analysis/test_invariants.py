"""Invariant rule pack: seeded faults hit the right MAP rule ids."""

import importlib.util
import os

import pytest

from repro.analysis.engine import Severity, has_errors
from repro.analysis.invariants import (
    MappingContext,
    VerificationError,
    certificate,
    lint_retiming,
    raise_on_errors,
    verified_rule_ids,
    verify_mapping,
)
from repro.core.turbomap import turbomap
from repro.core.turbosyn import turbosyn
from repro.netlist.graph import SeqCircuit
from repro.retime.pipeline import pipeline_and_retime
from tests.helpers import AND2, BUF, XOR2, random_seq_circuit


def load_figure1():
    path = os.path.join(
        os.path.dirname(__file__), os.pardir, os.pardir, "examples", "paper_figure1.py"
    )
    spec = importlib.util.spec_from_file_location("example_paper_figure1", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.build_figure1_circuit()


def and_subject():
    c = SeqCircuit("subj")
    a = c.add_pi("a")
    b = c.add_pi("b")
    g = c.add_gate("g", AND2, [(a, 0), (b, 0)])
    c.add_po("o", g)
    return c


def only(diags, rule_id):
    return [d for d in diags if d.rule_id == rule_id]


class TestMap001RetimingLegality:
    def test_legal_retiming_clean(self):
        c = and_subject()
        assert lint_retiming(c, [0] * len(c)) == []

    def test_illegal_retiming_flagged(self):
        c = and_subject()
        r = [0] * len(c)
        r[c.pis[0]] = 1  # drains the (registerless) a -> g edge
        diags = lint_retiming(c, r)
        assert [d.rule_id for d in diags] == ["MAP001"]
        assert diags[0].severity is Severity.ERROR
        assert "retimed weight" in diags[0].message

    def test_wrong_length_vector_flagged(self):
        diags = lint_retiming(and_subject(), [0, 0])
        assert [d.rule_id for d in diags] == ["MAP001"]
        assert "entries" in diags[0].message


class TestMap002KFeasible:
    def test_oversized_lut_flagged(self):
        subject = and_subject()
        mapped = SeqCircuit("m")
        pis = [mapped.add_pi(f"x{i}") for i in range(6)]
        from repro.boolfn.truthtable import TruthTable

        wide = TruthTable.from_function(6, lambda *xs: all(xs))
        g = mapped.add_gate("g", wide, [(p, 0) for p in pis])
        mapped.add_po("o", g)
        diags = verify_mapping(subject, mapped, 1, [], k=5)
        assert only(diags, "MAP002")
        # The structural pass flags the same width under CIRC003.
        assert only(diags, "CIRC003")


class TestMap003LabelHeight:
    def subject_chain(self):
        c = SeqCircuit("chain")
        a = c.add_pi("a")
        b = c.add_pi("b")
        g1 = c.add_gate("g1", AND2, [(a, 0), (b, 0)])
        g2 = c.add_gate("g2", BUF, [(g1, 0)])
        c.add_po("o", g2)
        return c

    def mapped_identity(self, c):
        m = SeqCircuit("m")
        new = {}
        for pi in c.pis:
            new[pi] = m.add_pi(c.name_of(pi))
        for g in c.gates:
            m.add_gate(
                c.name_of(g),
                c.func(g),
                [(new[p.src], p.weight) for p in c.fanins(g)],
            )
            new[g] = m.id_of(c.name_of(g))
        for po in c.pos:
            pin = c.fanins(po)[0]
            m.add_po(c.name_of(po), new[pin.src], pin.weight)
        return m

    def test_consistent_labels_clean(self):
        c = self.subject_chain()
        labels = [0] * len(c)
        labels[c.id_of("g1")] = 1
        labels[c.id_of("g2")] = 2
        diags = verify_mapping(c, self.mapped_identity(c), 5, labels, k=5)
        assert not has_errors(diags)

    def test_cut_height_above_label_flagged(self):
        c = self.subject_chain()
        labels = [0] * len(c)
        labels[c.id_of("g1")] = 1
        labels[c.id_of("g2")] = 1  # too small: height(g1 cut) = 2
        diags = verify_mapping(c, self.mapped_identity(c), 1, labels, k=5)
        bad = only(diags, "MAP003")
        assert [d.location.node for d in bad] == ["g2"]
        assert bad[0].data["height"] == 2


class TestMap004PhiMdrBound:
    def ring(self):
        c = SeqCircuit("ring")
        g1 = c.add_gate_placeholder("g1", BUF)
        g2 = c.add_gate_placeholder("g2", BUF)
        c.set_fanins(g1, [(g2, 1)])
        c.set_fanins(g2, [(g1, 0)])
        c.add_po("o", g2)
        return c

    def test_phi_below_bound_flagged(self):
        c = self.ring()  # the loop has d(C)=2, w(C)=1: MDR bound 2
        diags = verify_mapping(c, c, 1, [], k=5)
        bad = only(diags, "MAP004")
        assert len(bad) == 1
        assert "below the mapped network's MDR bound 2" in bad[0].message

    def test_phi_at_bound_clean(self):
        c = self.ring()
        assert not has_errors(verify_mapping(c, c, 2, [], k=5))


class TestMap005ConeFunction:
    def test_wrong_lut_function_flagged(self):
        subject = and_subject()
        mapped = SeqCircuit("m")
        a = mapped.add_pi("a")
        b = mapped.add_pi("b")
        g = mapped.add_gate("g", XOR2, [(a, 0), (b, 0)])  # should be AND
        mapped.add_po("o", g)
        diags = verify_mapping(subject, mapped, 1, [], k=5)
        bad = only(diags, "MAP005")
        assert [d.location.node for d in bad] == ["g"]
        assert "differs from the sequential cone function" in bad[0].message

    def non_covering_mapped(self):
        mapped = SeqCircuit("m")
        a = mapped.add_pi("a")
        mapped.add_pi("b")
        g = mapped.add_gate("g", BUF, [(a, 0)])  # cut misses subject pin b
        mapped.add_po("o", g)
        return mapped

    def test_non_covering_cut_is_info_without_provenance(self):
        diags = verify_mapping(and_subject(), self.non_covering_mapped(), 1, [], k=5)
        bad = only(diags, "MAP005")
        assert len(bad) == 1
        assert bad[0].severity is Severity.INFO
        assert "possible resynthesized LUT" in bad[0].message

    def test_non_covering_cut_is_error_with_provenance(self):
        diags = verify_mapping(
            and_subject(),
            self.non_covering_mapped(),
            1,
            [],
            k=5,
            resyn_roots=frozenset(),
        )
        bad = only(diags, "MAP005")
        assert len(bad) == 1
        assert bad[0].severity is Severity.ERROR

    def test_known_resyn_root_skipped(self):
        diags = verify_mapping(
            and_subject(),
            self.non_covering_mapped(),
            1,
            [],
            k=5,
            resyn_roots=frozenset({"g"}),
        )
        assert only(diags, "MAP005") == []

    def test_tree_members_skipped_by_name(self):
        ctx = MappingContext(and_subject(), self.non_covering_mapped(), 1, [], 5)
        # Rename the LUT to a resynthesis-internal name: skipped.
        ctx.mapped.node(ctx.mapped.id_of("g")).name = "g~s0"
        assert list(ctx.plain_luts()) == []


class TestMap006LabelDomain:
    def test_shape_and_domain_violations(self):
        c = and_subject()
        diags = verify_mapping(c, c, 1, [0, 0], k=5)
        assert only(diags, "MAP006")

        labels = [0] * len(c)
        labels[c.pis[0]] = 3  # PI labels must be 0
        labels[c.id_of("g")] = 0  # gate labels must be >= 1
        diags = verify_mapping(c, c, 1, labels, k=5)
        nodes = {d.location.node for d in only(diags, "MAP006")}
        assert nodes == {"a", "g"}


class TestVerifyEndToEnd:
    def test_turbomap_on_random_circuit_certifies(self):
        circuit = random_seq_circuit(4, 24, seed=7, feedback=3)
        result = turbomap(circuit, k=4)
        assert result.certificate is not None
        assert result.certificate["verified"] is True
        assert result.certificate["errors"] == 0
        assert result.t_verify > 0.0

    def test_certificate_summary_fields(self):
        cert = certificate([], phi=3, algorithm="turbomap", t_verify=0.5)
        assert cert["schema"] == 1
        assert cert["verified"] is True
        assert cert["phi"] == 3
        assert cert["rules"] == sorted(verified_rule_ids())
        assert cert["t_verify"] == 0.5

    def test_raise_on_errors_carries_diagnostics(self):
        c = and_subject()
        mapped = SeqCircuit("m")
        a = mapped.add_pi("a")
        b = mapped.add_pi("b")
        mapped.add_po("o", mapped.add_gate("g", XOR2, [(a, 0), (b, 0)]))
        diags = verify_mapping(c, mapped, 1, [], k=5)
        with pytest.raises(VerificationError) as err:
            raise_on_errors(diags, c.name, "turbomap")
        assert "MAP005" in str(err.value)
        assert err.value.diagnostics == diags

    def test_raise_on_errors_ignores_warnings(self):
        raise_on_errors([], "c")  # no error findings: no raise


class TestFigure1EndToEnd:
    """The paper's Figure 1 loop: map, verify, retime — zero diagnostics."""

    @pytest.mark.parametrize("mapper", [turbomap, turbosyn])
    def test_map_verify_retime_clean(self, mapper):
        circuit = load_figure1()
        result = mapper(circuit, k=5)  # check=True verifies (raises if bad)
        cert = result.certificate
        assert cert["verified"] is True
        assert cert["errors"] == 0 and cert["warnings"] == 0
        assert cert["findings"] == []

        pipe = pipeline_and_retime(result.mapped)
        assert pipe.circuit.clock_period() == result.phi
        assert lint_retiming(result.mapped, pipe.retiming.r) == []

    def test_turbosyn_beats_turbomap_on_figure1(self):
        circuit = load_figure1()
        assert turbosyn(circuit, k=5).phi == 1
        assert turbomap(circuit, k=5).phi > 1
