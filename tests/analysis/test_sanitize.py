"""Invariant sanitizer: seeded mutations trip exactly their own hook.

The acceptance criterion asserted here: ``selftest()`` demonstrates
every SAN0xx hook catching its injected engine bug, clean runs stay
silent, and the hooks change no answers when enabled.
"""

import pytest

from repro.analysis import sanitize
from repro.analysis.engine import Severity, all_rules
from repro.analysis.sanitize import (
    _MUTATIONS,
    SanitizerViolation,
    enable,
    enabled,
    reset,
    selftest,
)
from repro.core.turbomap import turbomap
from tests.helpers import random_seq_circuit

SAN_IDS = ["SAN001", "SAN002", "SAN003", "SAN004", "SAN005", "SAN006"]


@pytest.fixture(autouse=True)
def restore_switch():
    yield
    reset()


class TestSwitch:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(sanitize.ENV_FLAG, raising=False)
        reset()
        assert not enabled()

    def test_env_flag(self, monkeypatch):
        reset()
        monkeypatch.setenv(sanitize.ENV_FLAG, "1")
        assert enabled()
        monkeypatch.setenv(sanitize.ENV_FLAG, "0")
        assert not enabled()
        monkeypatch.setenv(sanitize.ENV_FLAG, "")
        assert not enabled()

    def test_enable_overrides_env(self, monkeypatch):
        monkeypatch.setenv(sanitize.ENV_FLAG, "0")
        enable(True)
        assert enabled()
        enable(False)
        monkeypatch.setenv(sanitize.ENV_FLAG, "1")
        assert not enabled()
        reset()
        assert enabled()


class TestDescriptors:
    def test_rules_registered(self):
        rules = all_rules("sanitizer")
        assert [r.id for r in rules] == SAN_IDS
        for r in rules:
            assert r.severity is Severity.ERROR
            assert r.description

    def test_rules_never_fire_via_engine(self):
        for r in all_rules("sanitizer"):
            assert list(r.check(object())) == []


class TestMutations:
    @pytest.mark.parametrize("expected,scenario", _MUTATIONS)
    def test_each_hook_catches_its_mutation(self, expected, scenario):
        enable(True)
        with pytest.raises(SanitizerViolation) as exc_info:
            scenario()
        diag = exc_info.value.diagnostic
        assert diag.rule_id == expected
        assert diag.severity is Severity.ERROR
        assert diag.message

    @pytest.mark.parametrize("_expected,scenario", _MUTATIONS)
    def test_mutations_silent_when_disabled(self, _expected, scenario):
        enable(False)
        scenario()  # hooks absent: the injected bug goes unnoticed

    def test_selftest_passes(self):
        assert selftest() == []

    def test_selftest_restores_switch(self):
        enable(False)
        selftest()
        assert not enabled()

    def test_clean_runs_silent(self):
        enable(True)
        sanitize._clean_runs()


class TestNoInterference:
    def test_turbomap_answer_unchanged(self):
        circuit = random_seq_circuit(4, 30, seed=5, name="san-noninterf")
        plain = turbomap(circuit, 5)
        enable(True)
        armed = turbomap(circuit, 5)
        assert armed.phi == plain.phi
        for phi in plain.outcomes:
            assert armed.outcomes[phi].labels == plain.outcomes[phi].labels


class TestCli:
    def test_selftest_exit_zero(self, capsys):
        assert sanitize.main(["--selftest"]) == 0
        out = capsys.readouterr().out
        assert "seeded mutation(s) caught" in out

    def test_no_args_prints_help(self, capsys):
        assert sanitize.main([]) == 2
        assert "selftest" in capsys.readouterr().out
