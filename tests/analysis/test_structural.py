"""Structural rule pack: one test class per CIRC rule."""

from repro.analysis.engine import CircuitContext, Severity
from repro.analysis.structural import lint_circuit
from repro.boolfn.truthtable import TruthTable
from repro.netlist.graph import Pin, SeqCircuit
from tests.helpers import AND2, BUF, XOR2


def findings(circuit, rule_id, k=5):
    return [
        d for d in lint_circuit(CircuitContext(circuit, k)) if d.rule_id == rule_id
    ]


def corrupt_pin(src, weight):
    """A Pin carrying a weight its own validation would reject."""
    pin = Pin(src, 0)
    object.__setattr__(pin, "weight", weight)
    return pin


def clean_circuit():
    c = SeqCircuit("clean")
    a = c.add_pi("a")
    b = c.add_pi("b")
    g = c.add_gate("g", AND2, [(a, 0), (b, 0)])
    h = c.add_gate("h", XOR2, [(g, 0), (g, 1)])
    c.add_po("o", h)
    return c


class TestCleanCircuit:
    def test_no_findings_at_all(self):
        assert lint_circuit(CircuitContext(clean_circuit(), 5)) == []


class TestCirc001CombCycle:
    def test_zero_weight_loop_flagged(self):
        c = SeqCircuit("loopy")
        g1 = c.add_gate_placeholder("g1", BUF)
        g2 = c.add_gate_placeholder("g2", BUF)
        c.set_fanins(g1, [(g2, 0)])
        c.set_fanins(g2, [(g1, 0)])
        c.add_po("o", g2)
        diags = findings(c, "CIRC001")
        assert len(diags) == 1
        assert diags[0].severity is Severity.ERROR
        assert "g1" in diags[0].message and "g2" in diags[0].message

    def test_registered_loop_is_fine(self):
        c = SeqCircuit("regloop")
        g1 = c.add_gate_placeholder("g1", BUF)
        c.set_fanins(g1, [(g1, 1)])
        c.add_po("o", g1)
        assert findings(c, "CIRC001") == []


class TestCirc002Dangling:
    def test_dead_gate_warned_with_reason(self):
        c = clean_circuit()
        c.add_gate("dead", BUF, [(c.pis[0], 0)])
        diags = findings(c, "CIRC002")
        assert [d.location.node for d in diags] == ["dead"]
        assert diags[0].severity is Severity.WARNING
        assert "reaches no primary output" in diags[0].message

    def test_undriven_island_warned(self):
        c = clean_circuit()
        loop = c.add_gate_placeholder("island", BUF)
        c.set_fanins(loop, [(loop, 1)])
        c.add_po("q", loop)
        diags = findings(c, "CIRC002")
        assert {d.location.node for d in diags} == {"island", "q"}
        assert all("unreachable from the primary inputs" in d.message for d in diags)


class TestCirc003FaninWidth:
    def test_wide_gate_flagged_against_k(self):
        c = SeqCircuit("wide")
        pis = [c.add_pi(f"x{i}") for i in range(4)]
        func = TruthTable.from_function(4, lambda *xs: all(xs))
        g = c.add_gate("g", func, [(p, 0) for p in pis])
        c.add_po("o", g)
        assert findings(c, "CIRC003", k=4) == []
        diags = findings(c, "CIRC003", k=3)
        assert len(diags) == 1
        assert diags[0].data == {"fanins": 4, "k": 3}


class TestCirc004EdgeWeight:
    def test_negative_weight_flagged(self):
        c = clean_circuit()
        g = c.id_of("h")
        # Corrupt the graph behind the accessors' back.
        c.node(g).fanins[1] = corrupt_pin(c.id_of("g"), -1)
        diags = findings(c, "CIRC004")
        assert len(diags) == 1
        assert "negative weight -1" in diags[0].message

    def test_non_integer_weight_flagged(self):
        c = clean_circuit()
        g = c.id_of("h")
        c.node(g).fanins[1] = corrupt_pin(c.id_of("g"), 0.5)
        diags = findings(c, "CIRC004")
        assert len(diags) == 1
        assert "non-integer" in diags[0].message


class TestCirc005IoDiscipline:
    def test_gate_reading_po_flagged(self):
        c = clean_circuit()
        po = c.pos[0]
        bad = c.add_gate("bad", BUF, [(po, 0)])
        c.add_po("o2", bad)
        diags = findings(c, "CIRC005")
        kinds = {d.data["violation"] for d in diags}
        assert "reads_po" in kinds and "po_with_fanouts" in kinds


class TestCirc006DuplicateGate:
    def test_same_function_same_pins_noted(self):
        c = clean_circuit()
        dup = c.add_gate("g_dup", AND2, [(c.pis[0], 0), (c.pis[1], 0)])
        c.add_po("o2", dup)
        diags = findings(c, "CIRC006")
        assert len(diags) == 1
        assert diags[0].severity is Severity.INFO
        assert diags[0].location.node == "g_dup"
        assert diags[0].data == {"duplicate_of": "g"}

    def test_different_weights_not_duplicates(self):
        c = clean_circuit()
        other = c.add_gate("g2", AND2, [(c.pis[0], 0), (c.pis[1], 1)])
        c.add_po("o2", other)
        assert findings(c, "CIRC006") == []


class TestCirc007GateArity:
    def test_unwired_placeholder_flagged(self):
        c = clean_circuit()
        ph = c.add_gate_placeholder("ph", AND2)  # 2-ary func, 0 fanins
        c.add_po("o2", ph)
        diags = findings(c, "CIRC007")
        assert [d.location.node for d in diags] == ["ph"]
        assert diags[0].data == {"arity": 2, "fanins": 0}


class TestRobustness:
    def test_malformed_circuit_never_raises(self):
        c = SeqCircuit("mess")
        a = c.add_pi("a")
        g = c.add_gate_placeholder("g", AND2)
        c.set_fanins(g, [(g, 0), (a, 0)])  # self comb loop + arity ok
        po = c.add_po("o", g)
        c.node(po).fanins.append(corrupt_pin(a, -2))  # 2-fanin PO, negative
        diags = lint_circuit(CircuitContext(c, 1))
        ids = {d.rule_id for d in diags}
        assert {"CIRC001", "CIRC003", "CIRC004", "CIRC005"} <= ids


class TestFingerprintStability:
    """Baseline fingerprints are pure functions of the finding.

    A cycle discovered from a different entry point (different
    construction order) must anchor, render, and fingerprint
    identically — otherwise every re-lint invalidates the baseline.
    """

    def comb_ring(self, order, name):
        """A g1->g2->g3->g1 zero-weight ring, nodes added in ``order``."""
        c = SeqCircuit(name)
        ids = {}
        for gate in order:
            ids[gate] = c.add_gate_placeholder(gate, BUF)
        c.set_fanins(ids["g1"], [(ids["g3"], 0)])
        c.set_fanins(ids["g2"], [(ids["g1"], 0)])
        c.set_fanins(ids["g3"], [(ids["g2"], 0)])
        c.add_po("o", ids["g3"])
        return c

    def test_rotation_invariant_fingerprint(self):
        orders = [
            ["g1", "g2", "g3"],
            ["g2", "g3", "g1"],
            ["g3", "g1", "g2"],
        ]
        reports = []
        for order in orders:
            diags = findings(self.comb_ring(order, "ring"), "CIRC001")
            assert len(diags) == 1
            reports.append(diags[0])
        prints = {d.fingerprint for d in reports}
        assert len(prints) == 1
        cycles = {tuple(d.data["cycle"]) for d in reports}
        assert cycles == {("g1", "g2", "g3")}
        assert {d.location.node for d in reports} == {"g1"}

    def test_anchor_helpers(self):
        from repro.analysis.engine import anchor_node, canonical_cycle

        assert anchor_node(["z", "m", "a"]) == "a"
        assert canonical_cycle(["c", "a", "b"]) == ["a", "b", "c"]
        assert canonical_cycle([]) == []
