"""Property-based invariants across the whole pipeline (hypothesis)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.boolfn.decompose import disjoint_decompose, synthesize_lut_tree
from repro.boolfn.truthtable import TruthTable
from repro.comb.pack import pack_luts
from repro.core.turbomap import turbomap
from repro.core.turbosyn import turbosyn
from repro.netlist.blif import read_blif, write_blif
from repro.retime.leiserson import feas
from repro.retime.mdr import min_feasible_period
from repro.verify.equiv import simulation_equivalent
from tests.helpers import random_seq_circuit

seeds = st.integers(min_value=0, max_value=10_000)

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestEndToEndInvariants:
    @given(seeds)
    @SLOW
    def test_turbosyn_dominates_turbomap(self, seed):
        c = random_seq_circuit(3, 14, seed=seed, feedback=3)
        tm = turbomap(c, k=3)
        ts = turbosyn(c, k=3, upper_bound=tm.phi)
        assert ts.phi <= tm.phi
        assert min_feasible_period(ts.mapped) <= ts.phi
        assert min_feasible_period(tm.mapped) <= tm.phi

    @given(seeds)
    @SLOW
    def test_mapped_circuits_equivalent(self, seed):
        c = random_seq_circuit(3, 12, seed=seed, feedback=2)
        ts = turbosyn(c, k=3)
        # Sequential cuts perturb power-up state; most of these random
        # circuits flush the transient quickly, but weighted cuts can
        # stretch it, and a rare instance may not self-synchronize at
        # all.  Accept steady-state agreement at a generous warmup, or
        # fall back to the sound per-LUT exact cone check.
        if simulation_equivalent(
            c, ts.mapped, cycles=96, warmup=48, seed=seed, lanes=32
        ):
            return
        from repro.core.expanded import sequential_cone_function

        for g in ts.mapped.gates:
            name = ts.mapped.name_of(g)
            fanin_names = [ts.mapped.name_of(p.src) for p in ts.mapped.fanins(g)]
            if "~s" in name or any("~s" in n or n not in c for n in fanin_names):
                continue
            cut = [
                (c.id_of(n), p.weight)
                for n, p in zip(fanin_names, ts.mapped.fanins(g))
            ]
            assert (
                sequential_cone_function(c, c.id_of(name), cut)
                == ts.mapped.func(g)
            ), (seed, name)

    @given(seeds)
    @SLOW
    def test_phi_monotone_in_k(self, seed):
        c = random_seq_circuit(3, 12, seed=seed, feedback=2)
        phis = [turbomap(c, k=k).phi for k in (2, 3, 5)]
        assert phis == sorted(phis, reverse=True)

    @given(seeds)
    @SLOW
    def test_identity_bound_respected(self, seed):
        c = random_seq_circuit(3, 12, seed=seed, feedback=3)
        bound = min_feasible_period(c)
        assert turbomap(c, k=3).phi <= bound


class TestRetimingInvariants:
    @given(seeds, st.integers(min_value=1, max_value=6))
    @SLOW
    def test_feas_results_are_legal_and_meet_phi(self, seed, phi):
        c = random_seq_circuit(3, 14, seed=seed, feedback=3)
        r = feas(c, phi, allow_pipelining=True)
        if r is None:
            assert phi < min_feasible_period(c)
        else:
            retimed = c.apply_retiming(r)  # raises if illegal
            assert retimed.clock_period() <= phi

    @given(seeds)
    @SLOW
    def test_retiming_preserves_cycle_weights(self, seed):
        c = random_seq_circuit(3, 12, seed=seed, feedback=3)
        phi = min_feasible_period(c)
        r = feas(c, phi, allow_pipelining=True)
        assert r is not None
        retimed = c.apply_retiming(r)
        # Register sums around any cycle are retiming-invariant; compare
        # the exact MDR ratios as a strong proxy over all cycles.
        from repro.retime.mdr import mdr_ratio

        assert mdr_ratio(retimed) == mdr_ratio(c)


class TestPackingInvariants:
    @given(seeds)
    @SLOW
    def test_pack_never_increases_area_and_preserves_behaviour(self, seed):
        c = random_seq_circuit(3, 12, seed=seed, feedback=2)
        mapped = turbomap(c, k=3).mapped
        packed = pack_luts(mapped, k=4)
        assert packed.n_gates <= mapped.n_gates
        assert simulation_equivalent(
            mapped, packed, cycles=40, warmup=10, seed=seed, lanes=32
        )


class TestBlifRoundtrip:
    @given(seeds)
    @SLOW
    def test_roundtrip_preserves_behaviour(self, seed):
        c = random_seq_circuit(3, 10, seed=seed, feedback=2)
        again, _info = read_blif(write_blif(c))
        # PO node names survive modulo the "@po" disambiguation marker;
        # rename for the comparison.
        mapping = {}
        for po in again.pos:
            name = again.name_of(po)
            base = name[: -len("@po")] if name.endswith("@po") else name
            mapping[name] = base
        for po in again.pos:
            again.node(po).name = mapping[again.name_of(po)]
        again._index = {n.name: i for i, n in enumerate(again._nodes)}
        assert simulation_equivalent(
            c, again, cycles=40, warmup=10, seed=seed, lanes=32
        )


class TestDecompositionInvariants:
    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_decompose_then_recompose(self, bits, bound_size):
        f = TruthTable(5, bits & ((1 << 32) - 1))
        bound = list(range(bound_size))
        step = disjoint_decompose(f, bound)
        if step is not None:
            assert step.recompose(5) == f

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=2, max_value=5),
        st.lists(st.integers(min_value=-3, max_value=3), min_size=5, max_size=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_lut_trees_meet_deadlines(self, bits, k, arrival):
        f = TruthTable(5, bits)
        deadline = max(arrival) + 4
        tree = synthesize_lut_tree(f, arrival, k, deadline)
        if tree is not None:
            assert tree.max_fanin() <= k
            assert tree.root_ready(arrival) <= deadline
            assert tree.to_truthtable() == f
