"""Tests for the command line interface."""

import os

import pytest

from repro.cli import build_parser, main
from repro.netlist.blif import read_blif_file, write_blif_file
from repro.netlist.graph import SeqCircuit
from tests.helpers import AND2, XOR2


@pytest.fixture
def small_blif(tmp_path):
    c = SeqCircuit("small")
    xs = [c.add_pi(f"x{i}") for i in range(4)]
    g = [c.add_gate_placeholder(f"g{i}", AND2 if i % 2 else XOR2) for i in range(4)]
    for i in range(4):
        c.set_fanins(g[i], [(g[(i - 1) % 4], 1 if i == 0 else 0), (xs[i], 0)])
    c.add_po("y", g[-1])
    c.check()
    path = tmp_path / "small.blif"
    write_blif_file(c, str(path))
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_map_defaults(self):
        args = build_parser().parse_args(["map", "x.blif"])
        args.algo == "turbosyn"
        assert args.k == 5

    def test_bad_algo_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["map", "x.blif", "--algo", "magic"])

    def test_budget_flags(self):
        args = build_parser().parse_args(
            ["map", "x.blif", "--timeout", "5", "--probe-timeout", "0.5"]
        )
        assert args.timeout == 5.0
        assert args.probe_timeout == 0.5
        args = build_parser().parse_args(["suite", "--timeout", "30"])
        assert args.timeout == 30.0 and args.probe_timeout is None

    def test_suite_circuit_and_resume_flags(self):
        args = build_parser().parse_args(
            ["suite", "--circuit", "bbara", "--circuit", "dk16",
             "--resume", "ck.json"]
        )
        assert args.circuit == ["bbara", "dk16"]
        assert args.resume == "ck.json"


class TestCommands:
    def test_stats(self, small_blif, capsys):
        assert main(["stats", small_blif]) == 0
        out = capsys.readouterr().out
        assert "MDR bound" in out

    @pytest.mark.parametrize("algo", ["turbomap", "turbosyn", "flowsyn-s"])
    def test_map(self, small_blif, capsys, algo):
        assert main(["map", small_blif, "--algo", algo, "-k", "4"]) == 0
        out = capsys.readouterr().out
        assert "phi=" in out

    def test_map_with_output_and_retime(self, small_blif, tmp_path, capsys):
        out_path = str(tmp_path / "mapped.blif")
        code = main(
            ["map", small_blif, "--algo", "turbosyn", "--out", out_path, "--retime"]
        )
        assert code == 0
        assert os.path.exists(out_path)
        mapped, _ = read_blif_file(out_path)
        mapped.check()

    def test_map_report_and_workers(self, small_blif, tmp_path, capsys):
        import json

        report_path = str(tmp_path / "run.json")
        code = main(
            [
                "map",
                small_blif,
                "--algo",
                "turbomap",
                "-k",
                "4",
                "--workers",
                "2",
                "--report",
                report_path,
            ]
        )
        assert code == 0
        assert "wrote report" in capsys.readouterr().out
        report = json.load(open(report_path))
        assert report["kind"] == "map"
        assert report["workers"] == 2
        (run,) = report["runs"]
        assert run["algorithm"] == "turbomap"
        assert run["phi"] >= 1
        assert "t_search" in run["search"]

    def test_gen(self, tmp_path, capsys):
        out_path = str(tmp_path / "bbara.blif")
        assert main(["gen", "bbara", out_path]) == 0
        circuit, _ = read_blif_file(out_path)
        assert circuit.n_gates > 100

    def test_gen_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["gen", "unknown_bench", "/tmp/x.blif"])

    def test_verify_equivalent(self, small_blif, tmp_path, capsys):
        mapped = str(tmp_path / "m.blif")
        main(["map", small_blif, "--algo", "turbomap", "--out", mapped])
        capsys.readouterr()
        assert main(["verify", small_blif, mapped, "--cycles", "48"]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_verify_detects_difference(self, small_blif, tmp_path, capsys):
        # Invert one gate: the circuits must differ.
        circuit, _ = read_blif_file(small_blif)
        gate = circuit.gates[0]
        node = circuit.node(gate)
        node.func = ~node.func
        other = str(tmp_path / "other.blif")
        write_blif_file(circuit, other)
        code = main(["verify", small_blif, other, "--cycles", "48"])
        assert code == 1

    def test_critical(self, small_blif, capsys):
        assert main(["critical", small_blif, "-k", "4"]) == 0
        out = capsys.readouterr().out
        assert "MDR ratio" in out

    def test_dot_export(self, small_blif, tmp_path):
        out = str(tmp_path / "c.dot")
        assert main(["dot", small_blif, out, "--highlight-critical"]) == 0
        assert open(out).read().startswith("digraph")

    def test_verilog_export(self, small_blif, tmp_path, capsys):
        out = str(tmp_path / "mapped.v")
        code = main(
            ["map", small_blif, "--algo", "turbomap", "--verilog", out, "--retime"]
        )
        assert code == 0
        text = open(out).read()
        assert text.startswith("module")
        assert "endmodule" in text


@pytest.fixture
def _clean_faults():
    from repro.resilience import faultinject

    faultinject.reset()
    yield
    faultinject.clear()


class TestSuiteResilienceCli:
    """suite: fault boundary, checkpoint on Ctrl-C (exit 130), resume."""

    ARGS = [
        "suite", "--circuit", "bbara",
        "--algo", "flowsyn-s", "--algo", "turbomap", "--no-check",
    ]

    def _install(self, site_match, action):
        from repro.resilience import faultinject
        from repro.resilience.faultinject import Fault, FaultPlan

        faultinject.install(
            FaultPlan([Fault("suite-cell", action, match=site_match)])
        )

    def test_cell_failure_exits_one_with_complete_report(
        self, tmp_path, capsys, _clean_faults
    ):
        import json

        report = str(tmp_path / "r.json")
        self._install("bbara:turbomap", "raise")
        assert main(self.ARGS + ["--report", report]) == 1
        captured = capsys.readouterr()
        assert "ERR:InjectedFault" in captured.out
        assert "--resume" in captured.err
        persisted = json.load(open(report))
        assert len(persisted["runs"]) == 1
        (err,) = persisted["errors"]
        assert err["error"] == "InjectedFault"

    def test_interrupt_exits_130_with_flushed_checkpoint(
        self, tmp_path, capsys, _clean_faults
    ):
        import json

        report = str(tmp_path / "r.json")
        self._install("bbara:turbomap", "interrupt")
        assert main(self.ARGS + ["--report", report]) == 130
        assert "interrupted" in capsys.readouterr().err
        persisted = json.load(open(report))
        assert [
            (r["circuit"], r["algorithm"]) for r in persisted["runs"]
        ] == [("bbara", "flowsyn-s")]

    def test_resume_completes_only_missing_cells(
        self, tmp_path, capsys, _clean_faults
    ):
        import json

        first = str(tmp_path / "first.json")
        self._install("bbara:turbomap", "raise")
        assert main(self.ARGS + ["--report", first]) == 1

        from repro.resilience import faultinject

        faultinject.clear()
        capsys.readouterr()
        second = str(tmp_path / "second.json")
        code = main(self.ARGS + ["--resume", first, "--report", second])
        assert code == 0
        out = capsys.readouterr().out
        assert "cached" in out  # flowsyn-s cell reused, not re-run
        persisted = json.load(open(second))
        assert len(persisted["runs"]) == 2
        assert persisted["errors"] == []

    def test_bad_resume_file_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(self.ARGS + ["--resume", missing]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_circuit_exits_two(self, capsys):
        code = main(["suite", "--circuit", "bogus", "--algo", "flowsyn-s"])
        assert code == 2
        assert "valid suite names" in capsys.readouterr().err
