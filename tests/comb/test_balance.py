"""Tests for algebraic tree balancing."""

import pytest

from repro.comb.balance import balance_circuit
from repro.comb.cone import cone_function
from repro.netlist.graph import SeqCircuit
from repro.verify.equiv import simulation_equivalent
from tests.helpers import AND2, OR2, random_seq_circuit, xor_chain


def and_chain(n, name="andchain"):
    c = SeqCircuit(name)
    pis = [c.add_pi(f"x{i}") for i in range(n)]
    acc = pis[0]
    for i in range(1, n):
        acc = c.add_gate(f"g{i}", AND2, [(acc, 0), (pis[i], 0)])
    c.add_po("out", acc)
    return c


class TestBalanceDepth:
    def test_chain_becomes_log_depth(self):
        c = and_chain(16)
        assert c.clock_period() == 15
        balanced = balance_circuit(c)
        assert balanced.clock_period() == 4  # ceil(log2 16)

    def test_xor_chain(self):
        c = xor_chain(9)
        balanced = balance_circuit(c)
        assert balanced.clock_period() == 4  # ceil(log2 9)

    def test_gate_count_preserved(self):
        c = and_chain(12)
        balanced = balance_circuit(c)
        assert balanced.n_gates == c.n_gates  # trees keep n-1 gates


class TestBarriers:
    def test_fanout_point_not_absorbed(self):
        c = SeqCircuit("fan")
        pis = [c.add_pi(f"x{i}") for i in range(4)]
        g1 = c.add_gate("g1", AND2, [(pis[0], 0), (pis[1], 0)])
        g2 = c.add_gate("g2", AND2, [(g1, 0), (pis[2], 0)])
        c.add_po("o1", g2)
        c.add_po("o2", g1)  # g1 observed: must survive
        balanced = balance_circuit(c)
        assert "g1" in balanced

    def test_registers_block_chains(self):
        c = SeqCircuit("reg")
        pis = [c.add_pi(f"x{i}") for i in range(3)]
        g1 = c.add_gate("g1", AND2, [(pis[0], 0), (pis[1], 0)])
        g2 = c.add_gate("g2", AND2, [(g1, 1), (pis[2], 0)])
        c.add_po("o", g2)
        balanced = balance_circuit(c)
        assert balanced.n_ffs == 1
        assert "g1" in balanced

    def test_mixed_functions_not_merged(self):
        c = SeqCircuit("mix")
        pis = [c.add_pi(f"x{i}") for i in range(3)]
        g1 = c.add_gate("g1", OR2, [(pis[0], 0), (pis[1], 0)])
        g2 = c.add_gate("g2", AND2, [(g1, 0), (pis[2], 0)])
        c.add_po("o", g2)
        balanced = balance_circuit(c)
        assert balanced.n_gates == 2


class TestBehaviour:
    def test_combinational_function_preserved(self):
        c = and_chain(10)
        balanced = balance_circuit(c)
        root = balanced.fanins(balanced.pos[0])[0].src
        orig_root = c.fanins(c.pos[0])[0].src
        assert cone_function(balanced, root, list(balanced.pis)) == cone_function(
            c, orig_root, list(c.pis)
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_sequential_behaviour_preserved(self, seed):
        c = random_seq_circuit(4, 20, seed=seed, feedback=4)
        balanced = balance_circuit(c)
        assert simulation_equivalent(c, balanced, cycles=50, warmup=10, seed=seed)

    def test_depth_hints_respected(self):
        # leaf x3 declared "late": it must sit adjacent to the root.
        c = and_chain(8)
        late = c.id_of("x3")
        balanced = balance_circuit(c, depths={late: 10})
        root = balanced.fanins(balanced.pos[0])[0].src
        direct = {p.src for p in balanced.fanins(root)}
        assert late in direct


class TestMappingInteraction:
    def test_balance_helps_turbomap_on_chains(self):
        from repro.core.turbomap import turbomap

        c = SeqCircuit("loopchain")
        pis = [c.add_pi(f"x{i}") for i in range(8)]
        g = c.add_gate_placeholder("fb", AND2)
        acc = (g, 1)
        mids = []
        for i in range(8):
            m = c.add_gate(f"m{i}", AND2, [acc, (pis[i], 0)])
            mids.append(m)
            acc = (m, 0)
        c.set_fanins(g, [acc, acc])
        c.add_po("o", mids[-1])
        c.check()
        plain = turbomap(c, k=5)
        balanced = balance_circuit(c)
        helped = turbomap(balanced, k=5)
        assert helped.phi <= plain.phi