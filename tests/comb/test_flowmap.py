"""Tests for FlowMap depth-optimal combinational mapping."""

import pytest

from repro.boolfn.truthtable import TruthTable
from repro.comb.cone import cone_function
from repro.comb.flowmap import compute_labels, flowmap
from repro.netlist.graph import SeqCircuit
from tests.helpers import (
    AND2,
    and_tree,
    brute_force_min_depth,
    random_dag,
    xor_chain,
)


class TestLabels:
    def test_single_gate(self):
        c = SeqCircuit()
        a, b = c.add_pi("a"), c.add_pi("b")
        g = c.add_gate("g", AND2, [(a, 0), (b, 0)])
        c.add_po("o", g)
        labels, cuts = compute_labels(c, k=4)
        assert labels[g] == 1
        assert set(cuts[g]) <= {a, b}

    def test_and_tree_collapses_into_one_lut(self):
        c = and_tree(4)
        labels, _ = compute_labels(c, k=4)
        root = c.fanins(c.pos[0])[0].src
        assert labels[root] == 1  # 4 leaves fit one 4-LUT

    def test_and_tree_8_leaves_k4(self):
        c = and_tree(8)
        labels, _ = compute_labels(c, k=4)
        root = c.fanins(c.pos[0])[0].src
        assert labels[root] == 2

    def test_xor_chain_depth(self):
        c = xor_chain(9)
        labels, _ = compute_labels(c, k=3)
        root = c.fanins(c.pos[0])[0].src
        # FlowMap is structural: the 8-gate linear chain packs two XOR
        # gates per 3-LUT, giving depth 4.  (FlowSYN rebalances it to the
        # combinational limit 2 — see tests/comb/test_flowsyn.py.)
        assert labels[root] == 4

    @pytest.mark.parametrize("seed", range(6))
    def test_labels_match_brute_force(self, seed):
        c = random_dag(n_inputs=4, n_gates=10, seed=seed)
        for k in (2, 3, 4):
            labels, _ = compute_labels(c, k)
            reference = brute_force_min_depth(c, k)
            for g in c.gates:
                assert labels[g] == reference[g], (seed, k, c.name_of(g))

    def test_sequential_input_rejected(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        g = c.add_gate("g", AND2, [(a, 0), (a, 1)])
        c.add_po("o", g)
        with pytest.raises(ValueError):
            compute_labels(c, 4)

    def test_wide_gate_rejected(self):
        c = SeqCircuit()
        pis = [c.add_pi(f"x{i}") for i in range(5)]
        t = TruthTable.const(5, True)
        g = c.add_gate("g", t, [(p, 0) for p in pis])
        c.add_po("o", g)
        with pytest.raises(ValueError):
            compute_labels(c, 4)


class TestMapping:
    def test_depth_matches_po_labels(self):
        c = random_dag(4, 18, seed=3)
        result = flowmap(c, k=4)
        po_label = max(
            result.labels[c.fanins(po)[0].src] for po in c.pos
        )
        assert result.depth == po_label

    def test_lut_fanin_bound(self):
        for seed in range(4):
            c = random_dag(5, 15, seed=seed)
            result = flowmap(c, k=3)
            assert result.mapped.is_k_bounded(3)

    def test_functional_equivalence(self):
        c = random_dag(4, 12, seed=9)
        result = flowmap(c, k=4)
        # Compare every PO's global function over the PIs.
        for po in c.pos:
            src = c.fanins(po)[0].src
            orig = cone_function(c, src, list(c.pis))
            mapped_po = result.mapped.id_of(c.name_of(po))
            msrc = result.mapped.fanins(mapped_po)[0].src
            new = cone_function(result.mapped, msrc, list(result.mapped.pis))
            assert orig == new

    def test_mapping_covers_all_pos(self):
        c = random_dag(3, 8, seed=1)
        result = flowmap(c, k=4)
        assert len(result.mapped.pos) == len(c.pos)

    def test_fewer_luts_than_gates(self):
        c = and_tree(16)
        result = flowmap(c, k=4)
        assert result.n_luts < c.n_gates

    def test_pi_fed_po(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        c.add_po("o", a)
        result = flowmap(c, k=4)
        assert result.n_luts == 0
        assert result.depth == 0

    def test_constant_gate(self):
        c = SeqCircuit()
        c.add_pi("a")
        one = c.add_gate("one", TruthTable.const(0, True), [])
        c.add_po("o", one)
        result = flowmap(c, k=4)
        assert result.n_luts == 1
        g = result.mapped.id_of("one")
        assert result.mapped.func(g).bits == 1
