"""Tests for LUT packing (duplicate sharing + predecessor absorption)."""

import pytest

from repro.boolfn.truthtable import TruthTable
from repro.comb.cone import cone_function
from repro.comb.flowmap import flowmap
from repro.comb.pack import pack_luts
from repro.netlist.graph import SeqCircuit
from tests.helpers import AND2, OR2, XOR2, random_dag


class TestShareDuplicates:
    def test_identical_gates_merge(self):
        c = SeqCircuit()
        a, b = c.add_pi("a"), c.add_pi("b")
        g1 = c.add_gate("g1", AND2, [(a, 0), (b, 0)])
        g2 = c.add_gate("g2", AND2, [(a, 0), (b, 0)])
        o1 = c.add_gate("o1", OR2, [(g1, 0), (g2, 0)])
        c.add_po("o", o1)
        out = pack_luts(c, k=4)
        # g1 == g2 merge; then OR(g,g) absorbs into one LUT of a, b.
        assert out.n_gates <= 2

    def test_different_weights_not_merged(self):
        c = SeqCircuit()
        a, b = c.add_pi("a"), c.add_pi("b")
        g1 = c.add_gate("g1", AND2, [(a, 0), (b, 0)])
        g2 = c.add_gate("g2", AND2, [(a, 1), (b, 0)])
        c.add_po("p1", g1)
        c.add_po("p2", g2)
        out = pack_luts(c, k=2)
        assert out.n_gates == 2


class TestAbsorb:
    def test_chain_absorbed(self):
        c = SeqCircuit()
        a, b, d = c.add_pi("a"), c.add_pi("b"), c.add_pi("d")
        g1 = c.add_gate("g1", AND2, [(a, 0), (b, 0)])
        g2 = c.add_gate("g2", OR2, [(g1, 0), (d, 0)])
        c.add_po("o", g2)
        out = pack_luts(c, k=3)
        assert out.n_gates == 1
        root = out.fanins(out.pos[0])[0].src
        f = cone_function(out, root, list(out.pis))
        expected = (TruthTable.var(0, 3) & TruthTable.var(1, 3)) | TruthTable.var(2, 3)
        assert f == expected

    def test_absorption_respects_k(self):
        c = SeqCircuit()
        pis = [c.add_pi(f"x{i}") for i in range(4)]
        g1 = c.add_gate("g1", AND2, [(pis[0], 0), (pis[1], 0)])
        g2 = c.add_gate("g2", AND2, [(pis[2], 0), (pis[3], 0)])
        g3 = c.add_gate("g3", OR2, [(g1, 0), (g2, 0)])
        c.add_po("o", g3)
        out = pack_luts(c, k=3)
        # merging either child needs 3 inputs; merging both needs 4 > k.
        assert out.n_gates == 2

    def test_multi_fanout_not_absorbed(self):
        c = SeqCircuit()
        a, b = c.add_pi("a"), c.add_pi("b")
        g1 = c.add_gate("g1", AND2, [(a, 0), (b, 0)])
        g2 = c.add_gate("g2", OR2, [(g1, 0), (a, 0)])
        c.add_po("p1", g2)
        c.add_po("p2", g1)  # second reader: g1 must stay
        out = pack_luts(c, k=4)
        assert out.n_gates == 2

    def test_registered_edge_not_absorbed(self):
        c = SeqCircuit()
        a, b = c.add_pi("a"), c.add_pi("b")
        g1 = c.add_gate("g1", AND2, [(a, 0), (b, 0)])
        g2 = c.add_gate("g2", OR2, [(g1, 1), (a, 0)])
        c.add_po("o", g2)
        out = pack_luts(c, k=4)
        assert out.n_gates == 2
        assert out.n_ffs == 1

    def test_duplicate_pin_reads(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        g1 = c.add_gate("g1", XOR2, [(a, 0), (a, 0)])  # constant 0
        g2 = c.add_gate("g2", OR2, [(g1, 0), (a, 0)])
        c.add_po("o", g2)
        out = pack_luts(c, k=2)
        root = out.fanins(out.pos[0])[0].src
        f = cone_function(out, root, list(out.pis))
        assert f == TruthTable.var(0, 1)


class TestEndToEnd:
    @pytest.mark.parametrize("seed", range(5))
    def test_packing_preserves_functions(self, seed):
        c = random_dag(4, 20, seed=seed)
        mapped = flowmap(c, k=4).mapped
        packed = pack_luts(mapped, k=4)
        assert packed.n_gates <= mapped.n_gates
        assert packed.is_k_bounded(4)
        for po in mapped.pos:
            name = mapped.name_of(po)
            src1 = mapped.fanins(po)[0].src
            f1 = cone_function(mapped, src1, list(mapped.pis))
            po2 = packed.id_of(name)
            src2 = packed.fanins(po2)[0].src
            f2 = cone_function(packed, src2, list(packed.pis))
            assert f1 == f2

    def test_packing_reduces_area_on_trees(self):
        from tests.helpers import and_tree

        c = and_tree(16)
        mapped = flowmap(c, k=2).mapped  # one LUT per AND gate
        packed = pack_luts(mapped, k=4)
        assert packed.n_gates < mapped.n_gates
