"""Tests for FlowSYN: mapping with functional decomposition."""

import pytest

from repro.comb.cone import cone_function
from repro.comb.flowmap import compute_labels, flowmap
from repro.comb.flowsyn import compute_labels_resyn, flowsyn
from tests.helpers import random_dag, xor_chain


class TestLabelsResyn:
    def test_xor_chain_beats_flowmap(self):
        c = xor_chain(9)
        root = c.fanins(c.pos[0])[0].src
        fm_labels, _ = compute_labels(c, k=3)
        fs_labels, _cuts, resyn = compute_labels_resyn(c, k=3)
        # XOR is fully decomposable: FlowSYN reaches the combinational
        # limit ceil(log3 9) = 2 while FlowMap is stuck at 4.
        assert fm_labels[root] == 4
        assert fs_labels[root] == 2
        assert resyn  # at least one node was resynthesized

    def test_never_worse_than_flowmap(self):
        for seed in range(5):
            c = random_dag(4, 14, seed=seed)
            fm_labels, _ = compute_labels(c, k=3)
            fs_labels, _, _ = compute_labels_resyn(c, k=3)
            for g in c.gates:
                assert fs_labels[g] <= fm_labels[g]

    def test_no_resyn_when_flowmap_optimal(self):
        from tests.helpers import and_tree

        c = and_tree(4)
        _, _, resyn = compute_labels_resyn(c, k=4)
        assert resyn == {}


class TestFlowsynMapping:
    def test_equivalence_with_resynthesis(self):
        c = xor_chain(9)
        result = flowsyn(c, k=3)
        for po in c.pos:
            src = c.fanins(po)[0].src
            orig = cone_function(c, src, list(c.pis))
            mpo = result.mapped.id_of(c.name_of(po))
            msrc = result.mapped.fanins(mpo)[0].src
            new = cone_function(result.mapped, msrc, list(result.mapped.pis))
            assert orig == new

    def test_depth_improvement_materializes(self):
        c = xor_chain(9)
        fm = flowmap(c, k=3)
        fs = flowsyn(c, k=3)
        assert fs.depth < fm.depth
        assert fs.mapped.is_k_bounded(3)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_dags_equivalent(self, seed):
        c = random_dag(4, 16, seed=seed)
        result = flowsyn(c, k=3)
        assert result.mapped.is_k_bounded(3)
        for po in c.pos:
            src = c.fanins(po)[0].src
            orig = cone_function(c, src, list(c.pis))
            mpo = result.mapped.id_of(c.name_of(po))
            msrc = result.mapped.fanins(mpo)[0].src
            new = cone_function(result.mapped, msrc, list(result.mapped.pis))
            assert orig == new

    def test_area_cost_visible(self):
        # Resynthesis may duplicate logic; LUT count may grow relative to
        # FlowMap (the paper notes TurboSYN loses area for the same
        # reason).  We only require a valid bounded network here.
        c = xor_chain(13)
        fs = flowsyn(c, k=3)
        assert fs.mapped.n_gates >= 1
        assert fs.mapped.is_k_bounded(3)
