"""Tests for cone extraction and cone-function evaluation."""

import pytest

from repro.boolfn.truthtable import TruthTable
from repro.comb.cone import cluster_between, cone_function, fanin_cone
from repro.netlist.graph import SeqCircuit
from tests.helpers import AND2, OR2, XOR2


def diamond():
    c = SeqCircuit()
    a, b = c.add_pi("a"), c.add_pi("b")
    l = c.add_gate("l", AND2, [(a, 0), (b, 0)])
    r = c.add_gate("r", OR2, [(a, 0), (b, 0)])
    root = c.add_gate("root", XOR2, [(l, 0), (r, 0)])
    c.add_po("o", root)
    return c, a, b, l, r, root


class TestFaninCone:
    def test_full_cone(self):
        c, a, b, l, r, root = diamond()
        assert fanin_cone(c, root) == {a, b, l, r, root}

    def test_stops_at_registers(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        g1 = c.add_gate("g1", AND2, [(a, 0), (a, 0)])
        g2 = c.add_gate("g2", AND2, [(g1, 1), (a, 0)])
        c.add_po("o", g2)
        assert fanin_cone(c, g2) == {a, g2}


class TestClusterBetween:
    def test_topological_order(self):
        c, a, b, l, r, root = diamond()
        order = cluster_between(c, root, [a, b])
        assert order.index(l) < order.index(root)
        assert order.index(r) < order.index(root)
        assert a not in order and b not in order

    def test_cut_at_internal_nodes(self):
        c, a, b, l, r, root = diamond()
        assert cluster_between(c, root, [l, r]) == [root]

    def test_uncovered_pi_rejected(self):
        c, a, b, l, r, root = diamond()
        with pytest.raises(ValueError):
            cluster_between(c, root, [l])  # path through r reaches PIs

    def test_root_in_cut_rejected(self):
        c, *_rest, root = diamond()
        with pytest.raises(ValueError):
            cluster_between(c, root, [root])

    def test_registered_edge_rejected(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        g1 = c.add_gate("g1", AND2, [(a, 0), (a, 0)])
        g2 = c.add_gate("g2", AND2, [(g1, 1), (a, 0)])
        c.add_po("o", g2)
        with pytest.raises(ValueError):
            cluster_between(c, g2, [a, g1])


class TestConeFunction:
    def test_diamond_function(self):
        c, a, b, l, r, root = diamond()
        f = cone_function(c, root, [a, b])
        expected = (TruthTable.var(0, 2) & TruthTable.var(1, 2)) ^ (
            TruthTable.var(0, 2) | TruthTable.var(1, 2)
        )
        assert f == expected

    def test_cut_order_defines_variables(self):
        c, a, b, l, r, root = diamond()
        f_ab = cone_function(c, root, [a, b])
        f_ba = cone_function(c, root, [b, a])
        assert f_ab == f_ba.permute([1, 0])

    def test_internal_cut(self):
        c, a, b, l, r, root = diamond()
        f = cone_function(c, root, [l, r])
        assert f == TruthTable.var(0, 2) ^ TruthTable.var(1, 2)

    def test_too_wide_cut_rejected(self):
        c = SeqCircuit()
        pis = [c.add_pi(f"x{i}") for i in range(22)]
        g = c.add_gate("g", AND2, [(pis[0], 0), (pis[1], 0)])
        c.add_po("o", g)
        with pytest.raises(ValueError):
            cone_function(c, g, pis)
