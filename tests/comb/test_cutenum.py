"""Tests for cut enumeration and area-flow mapping."""

import pytest

from repro.comb.areamap import area_flow_map
from repro.comb.cone import cone_function
from repro.comb.cutenum import enumerate_cuts, min_depth_by_cuts
from repro.comb.flowmap import compute_labels, flowmap
from repro.netlist.graph import SeqCircuit
from tests.helpers import AND2, OR2, and_tree, random_dag, xor_chain


class TestEnumerateCuts:
    def test_pi_has_trivial_cut(self):
        c = xor_chain(3)
        cuts = enumerate_cuts(c, 3)
        pi = c.pis[0]
        assert cuts[pi] == [frozenset([pi])]

    def test_gate_cut_inventory(self):
        c = SeqCircuit()
        a, b, d = c.add_pi("a"), c.add_pi("b"), c.add_pi("d")
        g1 = c.add_gate("g1", AND2, [(a, 0), (b, 0)])
        g2 = c.add_gate("g2", OR2, [(g1, 0), (d, 0)])
        c.add_po("o", g2)
        cuts = enumerate_cuts(c, 3)
        assert frozenset([g2]) in cuts[g2]
        assert frozenset([g1, d]) in cuts[g2]
        assert frozenset([a, b, d]) in cuts[g2]

    def test_k_bound_respected(self):
        c = and_tree(8)
        for cut_list in enumerate_cuts(c, 3).values():
            for cut in cut_list:
                assert len(cut) <= 3

    def test_dominated_cuts_pruned(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        g1 = c.add_gate("g1", AND2, [(a, 0), (a, 0)])
        g2 = c.add_gate("g2", AND2, [(g1, 0), (a, 0)])
        c.add_po("o", g2)
        cuts = enumerate_cuts(c, 3)
        # {g1, a} is dominated by {a}; only {g2}, {g1,a}... {a} survives
        assert frozenset([a]) in cuts[g2]
        assert frozenset([g1, a]) not in cuts[g2]

    def test_sequential_rejected(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        g = c.add_gate("g", AND2, [(a, 0), (a, 1)])
        c.add_po("o", g)
        with pytest.raises(ValueError):
            enumerate_cuts(c, 3)


class TestMinDepthByCuts:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_flowmap(self, seed):
        c = random_dag(4, 12, seed=seed)
        for k in (2, 3, 4):
            by_cuts = min_depth_by_cuts(c, k, cap=None)
            fm, _ = compute_labels(c, k)
            for g in c.gates:
                assert by_cuts[g] == fm[g], (seed, k)

    def test_cap_can_only_increase_depth(self):
        c = random_dag(5, 20, seed=9)
        exact = min_depth_by_cuts(c, 4, cap=None)
        capped = min_depth_by_cuts(c, 4, cap=2)
        for g in c.gates:
            assert capped[g] >= exact[g]


class TestAreaFlowMap:
    @pytest.mark.parametrize("seed", range(4))
    def test_equivalence(self, seed):
        c = random_dag(4, 15, seed=seed)
        result = area_flow_map(c, k=4)
        assert result.mapped.is_k_bounded(4)
        for po in c.pos:
            src = c.fanins(po)[0].src
            orig = cone_function(c, src, list(c.pis))
            mpo = result.mapped.id_of(c.name_of(po))
            msrc = result.mapped.fanins(mpo)[0].src
            assert cone_function(result.mapped, msrc, list(result.mapped.pis)) == orig

    def test_area_not_worse_than_flowmap_on_trees(self):
        c = and_tree(16)
        fm = flowmap(c, k=4)
        am = area_flow_map(c, k=4)
        assert am.n_luts <= fm.n_luts

    def test_chosen_cuts_exposed(self):
        c = xor_chain(6)
        result = area_flow_map(c, k=3)
        root = c.fanins(c.pos[0])[0].src
        assert root in result.cuts
