"""Tests for K-bounding gate decomposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compat import default_rng
from repro.boolfn.truthtable import TruthTable
from repro.comb.cone import cone_function
from repro.comb.gatedecomp import decompose_gate_function, k_bound_circuit
from repro.netlist.graph import SeqCircuit
from tests.helpers import AND2


def wide_gate_circuit(func: TruthTable, weights=None) -> SeqCircuit:
    c = SeqCircuit("wide")
    pis = [c.add_pi(f"x{i}") for i in range(func.n)]
    weights = weights or [0] * func.n
    g = c.add_gate("g", func, [(p, w) for p, w in zip(pis, weights)])
    c.add_po("o", g)
    return c


class TestDecomposeGateFunction:
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=(1 << (1 << 4)) - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_and_bounded(self, k, bits):
        func = TruthTable(4, bits)
        tree = decompose_gate_function(func, k)
        assert tree.max_fanin() <= k
        assert tree.to_truthtable() == func

    def test_wide_and(self):
        func = TruthTable.const(8, True)
        for i in range(8):
            func = func & TruthTable.var(i, 8)
        tree = decompose_gate_function(func, 2)
        assert tree.max_fanin() <= 2
        assert tree.to_truthtable() == func

    def test_random_function_k2(self):
        rng = default_rng(5)
        func = TruthTable.random(6, rng)
        tree = decompose_gate_function(func, 2)
        assert tree.max_fanin() <= 2
        assert tree.to_truthtable() == func

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            decompose_gate_function(AND2, 1)


class TestKBoundCircuit:
    def test_narrow_gates_untouched(self):
        c = wide_gate_circuit(AND2)
        out = k_bound_circuit(c, 2)
        assert out.n_gates == 1

    def test_wide_gate_split(self):
        func = TruthTable.from_function(5, lambda *xs: sum(xs) % 2 == 1)
        c = wide_gate_circuit(func)
        out = k_bound_circuit(c, 2)
        assert out.is_k_bounded(2)
        root = out.fanins(out.pos[0])[0].src
        assert cone_function(out, root, list(out.pis)) == func

    def test_weights_preserved_on_leaves(self):
        func = TruthTable.from_function(4, lambda *xs: sum(xs) >= 2)
        c = wide_gate_circuit(func, weights=[0, 1, 0, 2])
        out = k_bound_circuit(c, 2)
        assert out.is_k_bounded(2)
        assert out.n_ffs == c.n_ffs  # weights survive on the tree leaves

    def test_sequential_feedback_preserved(self):
        c = SeqCircuit("fb")
        a = c.add_pi("a")
        func = TruthTable.from_function(4, lambda *xs: sum(xs) % 2 == 1)
        g = c.add_gate_placeholder("g", func)
        c.set_fanins(g, [(a, 0), (g, 1), (g, 2), (a, 1)])
        c.add_po("o", g)
        out = k_bound_circuit(c, 2)
        assert out.is_k_bounded(2)
        out.check()
        # Total register count unchanged.
        assert out.n_ffs == c.n_ffs

    def test_names_preserved_for_roots(self):
        func = TruthTable.from_function(5, lambda *xs: all(xs))
        c = wide_gate_circuit(func)
        out = k_bound_circuit(c, 3)
        assert "g" in out  # root keeps the original name
