"""Tests for the bounded max-flow / min-cut engine."""

import pytest

from repro.comb.maxflow import FlowNetwork, SplitNetwork


class TestFlowNetwork:
    def build_diamond(self):
        net = FlowNetwork()
        s, a, b, t = (net.add_node() for _ in range(4))
        net.add_edge(s, a, 1)
        net.add_edge(s, b, 1)
        net.add_edge(a, t, 1)
        net.add_edge(b, t, 1)
        return net, s, t

    def test_simple_max_flow(self):
        net, s, t = self.build_diamond()
        assert net.max_flow(s, t, limit=10) == 2

    def test_limit_cutoff(self):
        net = FlowNetwork()
        s, t = net.add_node(), net.add_node()
        mids = [net.add_node() for _ in range(5)]
        for m in mids:
            net.add_edge(s, m, 1)
            net.add_edge(m, t, 1)
        # limit=2 -> we only learn "more than 2"
        assert net.max_flow(s, t, limit=2) == 3

    def test_zero_flow(self):
        net = FlowNetwork()
        s, t = net.add_node(), net.add_node()
        net.add_node()
        assert net.max_flow(s, t, limit=5) == 0

    def test_source_equals_sink_rejected(self):
        net = FlowNetwork()
        s = net.add_node()
        with pytest.raises(ValueError):
            net.max_flow(s, s, 1)

    def test_bottleneck_path(self):
        net = FlowNetwork()
        s, a, t = net.add_node(), net.add_node(), net.add_node()
        net.add_edge(s, a, 5)
        net.add_edge(a, t, 2)
        assert net.max_flow(s, t, limit=10) == 2

    def test_residual_reachable_is_min_cut_side(self):
        net, s, t = self.build_diamond()
        net.max_flow(s, t, limit=10)
        reach = net.residual_reachable(s)
        assert s in reach and t not in reach

    def test_rerouting_needed(self):
        # Classic case where a greedy path must be undone via residuals.
        net = FlowNetwork()
        s, a, b, t = (net.add_node() for _ in range(4))
        net.add_edge(s, a, 1)
        net.add_edge(s, b, 1)
        net.add_edge(a, b, 1)
        net.add_edge(a, t, 1)
        net.add_edge(b, t, 1)
        assert net.max_flow(s, t, limit=5) == 2

    def test_negative_capacity_rejected(self):
        net = FlowNetwork()
        u, v = net.add_node(), net.add_node()
        with pytest.raises(ValueError):
            net.add_edge(u, v, -1)


class TestSplitNetwork:
    def chain(self, n):
        """A simple path x0 -> x1 -> ... -> x{n-1}."""
        net = SplitNetwork()
        for i in range(n):
            net.add_dag_node(i)
        for i in range(n - 1):
            net.add_dag_edge(i, i + 1)
        net.attach_source(0)
        net.attach_sink(n - 1)
        return net

    def test_path_has_unit_cut(self):
        net = self.chain(4)
        assert net.max_flow(3) == 1
        cut = net.cut_nodes()
        assert len(cut) == 1
        # Node 3 is collapsed into the sink but keeps a unit split edge;
        # any of 0..2 or 3 could carry the cut, but 3's is behind the sink
        # attachment, so the cut node must be one of 0, 1, 2, 3.
        assert cut[0] in (0, 1, 2, 3)

    def test_parallel_branches(self):
        # s-side node 0 feeds t through 3 disjoint branches.
        net = SplitNetwork()
        for x in ["a1", "a2", "a3", "root"]:
            net.add_dag_node(x)
        for x in ["a1", "a2", "a3"]:
            net.add_dag_edge(x, "root")
            net.attach_source(x)
        net.attach_sink("root")
        assert net.max_flow(5) == 3
        assert sorted(net.cut_nodes()) == ["a1", "a2", "a3"]

    def test_flow_exceeds_limit(self):
        net = SplitNetwork()
        for x in range(6):
            net.add_dag_node(x)
        for x in range(5):
            net.add_dag_edge(x, 5)
            net.attach_source(x)
        net.attach_sink(5)
        assert net.max_flow(2) == 3  # "more than 2"

    def test_non_cuttable_node_forces_wider_cut(self):
        # a -> m -> root and b -> m; m non-cuttable, so cut = {a, b}.
        net = SplitNetwork()
        net.add_dag_node("a")
        net.add_dag_node("b")
        net.add_dag_node("m", cuttable=False)
        net.add_dag_node("root")
        net.add_dag_edge("a", "m")
        net.add_dag_edge("b", "m")
        net.add_dag_edge("m", "root")
        net.attach_source("a")
        net.attach_source("b")
        net.attach_sink("root")
        assert net.max_flow(5) == 2
        assert sorted(net.cut_nodes()) == ["a", "b"]

    def test_reconvergence_single_cut(self):
        # Diamond: x feeds l and r, both feed root: min cut = {x}.
        net = SplitNetwork()
        for node in ["x", "l", "r", "root"]:
            net.add_dag_node(node)
        net.add_dag_edge("x", "l")
        net.add_dag_edge("x", "r")
        net.add_dag_edge("l", "root")
        net.add_dag_edge("r", "root")
        net.attach_source("x")
        net.attach_sink("root")
        assert net.max_flow(5) == 1
        assert net.cut_nodes() == ["x"]

    def test_duplicate_dag_node_rejected(self):
        net = SplitNetwork()
        net.add_dag_node("x")
        with pytest.raises(ValueError):
            net.add_dag_node("x")

    def test_source_side(self):
        net = self.chain(3)
        net.max_flow(3)
        side = net.source_side()
        assert 0 in side or side == set()  # cut may sit right at the source
