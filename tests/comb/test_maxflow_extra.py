"""Additional coverage for the flow engine's inspection APIs."""

import pytest

from repro.comb.maxflow import FlowNetwork, SplitNetwork


class TestEdgeFlow:
    def test_flow_recorded_per_edge(self):
        net = FlowNetwork()
        s, t = net.add_node(), net.add_node()
        e1 = net.add_edge(s, t, 3)
        assert net.edge_flow(e1) == 0
        assert net.max_flow(s, t, limit=10) == 3
        assert net.edge_flow(e1) == 3

    def test_parallel_edges_split_flow(self):
        net = FlowNetwork()
        s, t = net.add_node(), net.add_node()
        e1 = net.add_edge(s, t, 1)
        e2 = net.add_edge(s, t, 1)
        assert net.max_flow(s, t, limit=10) == 2
        assert net.edge_flow(e1) + net.edge_flow(e2) == 2

    def test_add_nodes_bulk(self):
        net = FlowNetwork()
        ids = net.add_nodes(5)
        assert list(ids) == [0, 1, 2, 3, 4]
        assert net.num_nodes == 5

    def test_bad_endpoint(self):
        net = FlowNetwork()
        net.add_node()
        with pytest.raises(ValueError):
            net.add_edge(0, 3, 1)


class TestMaxFlowLimitSemantics:
    def _fan(self, n_paths):
        """``n_paths`` disjoint unit-capacity source->leaf->sink paths."""
        net = FlowNetwork()
        s, t = net.add_node(), net.add_node()
        for _ in range(n_paths):
            mid = net.add_node()
            net.add_edge(s, mid, 1)
            net.add_edge(mid, t, 1)
        return net, s, t

    def test_exact_when_at_or_below_limit(self):
        net, s, t = self._fan(4)
        assert net.max_flow(s, t, limit=4) == 4
        net, s, t = self._fan(4)
        assert net.max_flow(s, t, limit=10) == 4

    def test_limit_plus_one_means_more_than_limit(self):
        # true max flow is 7, but the query only needs "more than 5"
        net, s, t = self._fan(7)
        assert net.max_flow(s, t, limit=5) == 6

    def test_limit_zero_detects_any_flow(self):
        net, s, t = self._fan(3)
        assert net.max_flow(s, t, limit=0) == 1
        net = FlowNetwork()
        s, t = net.add_node(), net.add_node()
        assert net.max_flow(s, t, limit=0) == 0  # no path at all

    def test_early_cutoff_still_k_decidable(self):
        # the K-cut use case: flow <= K iff a K-feasible cut exists
        k = 3
        net, s, t = self._fan(k)
        assert net.max_flow(s, t, limit=k) <= k
        net, s, t = self._fan(k + 2)
        assert net.max_flow(s, t, limit=k) == k + 1


class TestCutNodesReconvergent:
    def test_reconvergent_dag_cuts_at_bottleneck(self):
        """Diamond reconvergence: both branches pass through one node.

        a, b (leaves) -> x -> {y, z} -> root: the two source-to-sink
        paths reconverge at the root, but every one saturates x's unit
        split edge, so the minimum cut is exactly {x}.
        """
        net = SplitNetwork()
        for node in ["a", "b", "x", "y", "z", "root"]:
            net.add_dag_node(node)
        net.add_dag_edge("a", "x")
        net.add_dag_edge("b", "x")
        net.add_dag_edge("x", "y")
        net.add_dag_edge("x", "z")
        net.add_dag_edge("y", "root")
        net.add_dag_edge("z", "root")
        net.attach_source("a")
        net.attach_source("b")
        net.attach_sink("root")
        assert net.max_flow(limit=5) == 1
        assert net.cut_nodes() == ["x"]
        # the source side stops before the reconvergent fan-out
        assert net.source_side() == {"a", "b"}

    def test_reconvergent_dag_parallel_branches(self):
        """No single bottleneck: the cut must take one node per branch."""
        net = SplitNetwork()
        for node in ["a", "y", "z", "root"]:
            net.add_dag_node(node)
        net.add_dag_edge("a", "y")
        net.add_dag_edge("a", "z")
        net.add_dag_edge("y", "root")
        net.add_dag_edge("z", "root")
        net.attach_source("a")
        net.attach_sink("root")
        # paths a->y->root and a->z->root share only a's split edge
        assert net.max_flow(limit=5) == 1
        assert net.cut_nodes() == ["a"]

    def test_non_cuttable_node_pushes_cut_outward(self):
        net = SplitNetwork()
        net.add_dag_node("a")
        net.add_dag_node("b")
        net.add_dag_node("x", cuttable=False)
        net.add_dag_node("root")
        net.add_dag_edge("a", "x")
        net.add_dag_edge("b", "x")
        net.add_dag_edge("x", "root")
        net.attach_source("a")
        net.attach_source("b")
        net.attach_sink("root")
        assert net.max_flow(limit=5) == 2
        assert sorted(net.cut_nodes()) == ["a", "b"]


class TestSplitNetworkInspection:
    def test_source_side_grows_with_flow(self):
        net = SplitNetwork()
        for x in ["a", "b", "root"]:
            net.add_dag_node(x)
        net.add_dag_edge("a", "b")
        net.add_dag_edge("b", "root")
        net.attach_source("a")
        net.attach_sink("root")
        net.max_flow(5)
        # after saturation, the min cut sits at one of the unit nodes
        cut = net.cut_nodes()
        assert len(cut) == 1
        side = net.source_side()
        assert "root" not in side
