"""Additional coverage for the flow engine's inspection APIs."""

import pytest

from repro.comb.maxflow import INF, FlowNetwork, SplitNetwork


class TestEdgeFlow:
    def test_flow_recorded_per_edge(self):
        net = FlowNetwork()
        s, t = net.add_node(), net.add_node()
        e1 = net.add_edge(s, t, 3)
        assert net.edge_flow(e1) == 0
        assert net.max_flow(s, t, limit=10) == 3
        assert net.edge_flow(e1) == 3

    def test_parallel_edges_split_flow(self):
        net = FlowNetwork()
        s, t = net.add_node(), net.add_node()
        e1 = net.add_edge(s, t, 1)
        e2 = net.add_edge(s, t, 1)
        assert net.max_flow(s, t, limit=10) == 2
        assert net.edge_flow(e1) + net.edge_flow(e2) == 2

    def test_add_nodes_bulk(self):
        net = FlowNetwork()
        ids = net.add_nodes(5)
        assert list(ids) == [0, 1, 2, 3, 4]
        assert net.num_nodes == 5

    def test_bad_endpoint(self):
        net = FlowNetwork()
        net.add_node()
        with pytest.raises(ValueError):
            net.add_edge(0, 3, 1)


class TestSplitNetworkInspection:
    def test_source_side_grows_with_flow(self):
        net = SplitNetwork()
        for x in ["a", "b", "root"]:
            net.add_dag_node(x)
        net.add_dag_edge("a", "b")
        net.add_dag_edge("b", "root")
        net.attach_source("a")
        net.attach_sink("root")
        net.max_flow(5)
        # after saturation, the min cut sits at one of the unit nodes
        cut = net.cut_nodes()
        assert len(cut) == 1
        side = net.source_side()
        assert "root" not in side
