"""Smoke tests: the example scripts run and report success.

Examples are documentation that executes; these tests keep them from
rotting.  Each example's ``main()`` is imported and run with captured
stdout; success markers and the absence of FAIL lines are asserted.
The slow design-space sweep is exercised only through its imports.
"""

import importlib.util
import os


EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "TurboSYN" in out
        assert "PASS" in out
        assert "FAIL" not in out

    def test_paper_figure1(self, capsys):
        load_example("paper_figure1").main()
        out = capsys.readouterr().out
        assert "positive loop detected" in out
        assert "TurboSYN : phi = 1" in out

    def test_fsm_flow(self, capsys):
        load_example("fsm_flow").main()
        out = capsys.readouterr().out
        assert out.count("PASS") >= 2
        assert "FAIL" not in out

    def test_datapath_retiming(self, capsys):
        load_example("datapath_retiming").main()
        out = capsys.readouterr().out
        assert "critical cycle" in out
        assert "PASS" in out
        assert "FAIL" not in out

    def test_verification(self, capsys):
        load_example("verification").main()
        out = capsys.readouterr().out
        assert out.count("PASS") >= 3
        assert "FAIL" not in out

    def test_design_space_importable(self):
        module = load_example("design_space")
        assert callable(module.main)
