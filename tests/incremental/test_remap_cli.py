"""The ``repro remap`` CLI: BLIF-to-BLIF incremental repair."""

import json

import pytest

from repro.cli import main
from repro.netlist.blif import write_blif_file
from tests.helpers import random_seq_circuit


@pytest.fixture
def blif_pair(tmp_path):
    """A base circuit and a 1-edit variant, round-tripped through BLIF."""
    base = random_seq_circuit(3, 10, seed=61, name="remapcli")
    edited = base.copy()
    g = edited.gates[0]
    pin = edited.fanins(g)[0]
    assert edited.rewire_pin(g, 0, pin.src, pin.weight + 1)
    base_path = str(tmp_path / "base.blif")
    edited_path = str(tmp_path / "edited.blif")
    write_blif_file(base, base_path)
    write_blif_file(edited, edited_path)
    return base_path, edited_path


class TestRemapCommand:
    def test_remap_verifies_identical_to_cold(self, blif_pair, capsys):
        base, edited = blif_pair
        assert main(["remap", base, edited, "-k", "4", "--verify-cold"]) == 0
        out = capsys.readouterr().out
        assert "remap phi=" in out
        assert "verify-cold: IDENTICAL" in out

    def test_no_incremental_runs_cold(self, blif_pair, capsys):
        base, edited = blif_pair
        code = main(["remap", base, edited, "-k", "4", "--no-incremental"])
        assert code == 0
        assert "cold phi=" in capsys.readouterr().out

    def test_non_alignable_falls_back_to_cold(self, tmp_path, capsys):
        base = random_seq_circuit(3, 10, seed=62, name="alpha")
        other = random_seq_circuit(3, 6, seed=63, name="beta")
        base_path = str(tmp_path / "base.blif")
        other_path = str(tmp_path / "other.blif")
        write_blif_file(base, base_path)
        write_blif_file(other, other_path)
        assert main(["remap", base_path, other_path, "-k", "4"]) == 0
        captured = capsys.readouterr()
        assert "falling back to a cold run" in captured.err
        assert "cold phi=" in captured.out

    def test_report_and_out_artifacts(self, blif_pair, tmp_path, capsys):
        base, edited = blif_pair
        report = str(tmp_path / "report.json")
        mapped = str(tmp_path / "mapped.blif")
        code = main(
            [
                "remap", base, edited, "-k", "4",
                "--report", report, "--out", mapped,
            ]
        )
        assert code == 0
        payload = json.loads(open(report).read())
        assert payload["schema"] == 8
        assert payload["kind"] == "remap"
        assert payload["runs"][0]["incremental"] is True
        # The remapped BLIF must itself be readable and K-bounded.
        assert main(["stats", mapped]) == 0

    def test_missing_file_is_a_usage_error(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.blif")
        assert main(["remap", missing, missing]) == 2
        assert "error:" in capsys.readouterr().err
