"""Delta CSR patching: a patched array is a fresh compile, byte for byte."""

import pytest

from repro.boolfn.truthtable import TruthTable
from repro.incremental.patch import dedup_pins, patch_compiled
from repro.kernel.csr import compile_circuit, pack_shift
from repro.netlist.graph import Edit, SeqCircuit
from tests.helpers import random_seq_circuit


def _journaled(circuit):
    """Snapshot the compiled arrays, start journaling, return the snapshot."""
    circuit.begin_journal()
    circuit.take_journal()
    return compile_circuit(circuit)


class TestDedup:
    def test_first_occurrence_order(self):
        assert dedup_pins([(3, 0), (1, 1), (3, 0), (1, 1)]) == [
            (3, 0),
            (1, 1),
        ]

    def test_same_src_different_weight_kept(self):
        assert dedup_pins([(3, 0), (3, 1)]) == [(3, 0), (3, 1)]


class TestPatchRoundTrip:
    def test_rewire_patch_matches_fresh_compile(self):
        circuit = random_seq_circuit(4, 14, seed=21)
        compiled = _journaled(circuit)
        for g in circuit.gates[:5]:
            pin = circuit.fanins(g)[0]
            circuit.rewire_pin(g, 0, pin.src, pin.weight + 1)
        patched, in_place = patch_compiled(
            circuit, compiled, circuit.take_journal()
        )
        assert in_place
        assert patched.to_bytes() == compile_circuit(circuit).to_bytes()

    def test_dedup_shrink_shifts_offsets(self):
        # Rewiring both pins of a 2-input gate to the identical driver
        # dedups to one CSR pin: the splice must shift later offsets.
        circuit = random_seq_circuit(4, 14, seed=22)
        compiled = _journaled(circuit)
        g = circuit.gates[2]
        src = circuit.fanins(g)[0].src
        circuit.set_fanins(g, [(src, 0), (src, 0)])
        patched, in_place = patch_compiled(
            circuit, compiled, circuit.take_journal()
        )
        assert in_place
        assert patched.to_bytes() == compile_circuit(circuit).to_bytes()

    def test_append_patch_matches_fresh_compile(self):
        circuit = random_seq_circuit(4, 14, seed=23)
        compiled = _journaled(circuit)
        if pack_shift(len(circuit) + 2) != compiled.shift:
            pytest.skip("seed lands on a pack-shift boundary")
        g = circuit.gates[-1]
        circuit.add_gate("patch_g", TruthTable.var(0, 1), [(g, 1)])
        circuit.add_po("patch_out", circuit.id_of("patch_g"))
        patched, in_place = patch_compiled(
            circuit, compiled, circuit.take_journal()
        )
        assert in_place
        assert patched.to_bytes() == compile_circuit(circuit).to_bytes()


class TestPatchFallbacks:
    def _eight_node_circuit(self) -> SeqCircuit:
        # 3 PIs + 4 gates + 1 PO = 8 nodes: pack_shift(9) > pack_shift(8).
        c = SeqCircuit("boundary")
        pis = [c.add_pi(f"x{i}") for i in range(3)]
        buf = TruthTable.var(0, 1)
        g = pis[0]
        for i in range(4):
            g = c.add_gate(f"g{i}", buf, [(g, 0)])
        c.add_po("out", g)
        assert len(c) == 8
        return c

    def test_pack_shift_boundary_forces_recompile(self):
        circuit = self._eight_node_circuit()
        compiled = _journaled(circuit)
        assert pack_shift(len(circuit) + 1) != compiled.shift
        circuit.begin_journal()
        circuit.add_po("out2", circuit.id_of("g3"), weight=1)
        patched, in_place = patch_compiled(
            circuit, compiled, circuit.take_journal()
        )
        assert not in_place
        assert patched.to_bytes() == compile_circuit(circuit).to_bytes()

    def test_stale_add_journal_forces_recompile(self):
        circuit = random_seq_circuit(3, 8, seed=24)
        compiled = _journaled(circuit)
        stale = [Edit("add", compiled.n + 3, ((0, 0),))]
        patched, in_place = patch_compiled(circuit, compiled, stale)
        assert not in_place
        assert patched.to_bytes() == compile_circuit(circuit).to_bytes()

    def test_out_of_range_rewire_forces_recompile(self):
        circuit = random_seq_circuit(3, 8, seed=25)
        compiled = _journaled(circuit)
        stale = [Edit("rewire", compiled.n + 1, ((0, 0),))]
        patched, in_place = patch_compiled(circuit, compiled, stale)
        assert not in_place
        assert patched.to_bytes() == compile_circuit(circuit).to_bytes()

    def test_unknown_edit_kind_raises(self):
        circuit = random_seq_circuit(3, 8, seed=26)
        compiled = _journaled(circuit)
        with pytest.raises(ValueError, match="unknown journal edit kind"):
            patch_compiled(circuit, compiled, [Edit("drop", 0, ())])
