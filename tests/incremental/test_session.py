"""`remap` / `IncrementalSession`: bit-identical repair with reuse."""

import pytest

from repro.core.turbomap import turbomap
from repro.incremental.fuzz import mapped_signature
from repro.incremental.session import IncrementalSession, remap
from tests.helpers import random_seq_circuit

K = 4


def _bump_pin(circuit, gate_index: int = -1) -> None:
    """Bump a register count on a *late* gate: the upstream cone stays
    clean, so the repair has labels to reuse."""
    g = circuit.gates[gate_index]
    pin = circuit.fanins(g)[0]
    assert circuit.rewire_pin(g, 0, pin.src, pin.weight + 1)


def _assert_identical(inc, cold) -> None:
    assert inc.phi == cold.phi
    assert list(inc.labels) == list(cold.labels)
    assert mapped_signature(inc.mapped) == mapped_signature(cold.mapped)


class TestRemap:
    def test_remap_bit_identical_to_cold(self):
        circuit = random_seq_circuit(4, 16, seed=41)
        circuit.begin_journal()
        circuit.take_journal()
        prev = turbomap(circuit, K)
        compiled = circuit.compiled()
        _bump_pin(circuit)
        edits = circuit.take_journal()
        inc = remap(circuit, prev, edits, k=K, compiled=compiled)
        cold = turbomap(circuit.copy(), K)
        _assert_identical(inc, cold)
        assert inc.incremental
        stats = inc.total_stats
        assert stats.labels_reused > 0
        assert 0 < stats.dirty_nodes < len(circuit)

    def test_remap_patches_instead_of_recompiling(self):
        circuit = random_seq_circuit(4, 16, seed=42)
        circuit.begin_journal()
        circuit.take_journal()
        turbomap(circuit, K)
        compiled = circuit.compiled()
        _bump_pin(circuit)
        edits = circuit.take_journal()
        prev = turbomap(circuit.copy(), K)  # any baseline-shaped result
        remap(circuit, prev, edits, k=K, compiled=compiled)
        # The pre-edit arrays were patched in place and adopted.
        assert circuit.compiled() is compiled

    def test_unknown_algorithm_rejected(self):
        import dataclasses

        circuit = random_seq_circuit(3, 8, seed=43)
        circuit.begin_journal()
        prev = dataclasses.replace(turbomap(circuit, K), algorithm="magic")
        _bump_pin(circuit)
        with pytest.raises(ValueError, match="cannot remap"):
            remap(circuit, prev, circuit.take_journal(), k=K)


class TestIncrementalSession:
    def test_edit_and_remap_loop(self):
        circuit = random_seq_circuit(4, 16, seed=44)
        session = IncrementalSession(circuit, k=K)
        first = session.map()
        assert not first.incremental
        for step in range(2):
            _bump_pin(circuit, gate_index=-1 - step)
            result = session.remap()
            assert result.incremental
            cold = turbomap(circuit.copy(), K)
            _assert_identical(result, cold)
            assert result.total_stats.labels_reused > 0

    def test_remap_without_baseline_runs_cold(self):
        circuit = random_seq_circuit(3, 10, seed=45)
        session = IncrementalSession(circuit, k=K)
        result = session.remap()
        assert not result.incremental
        assert session.result is result

    def test_node_insertion_pads_previous_labels(self):
        from repro.boolfn.truthtable import TruthTable

        circuit = random_seq_circuit(4, 16, seed=46)
        session = IncrementalSession(circuit, k=K)
        session.map()
        g = circuit.gates[-1]
        circuit.add_gate("grown", TruthTable.var(0, 1), [(g, 1)])
        circuit.add_po("grown_out", circuit.id_of("grown"))
        result = session.remap()
        cold = turbomap(circuit.copy(), K)
        _assert_identical(result, cold)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            IncrementalSession(
                random_seq_circuit(3, 8, seed=47), algorithm="magic"
            )
