"""Structural diff of aligned circuits into journal-equivalent edits."""

import pytest

from repro.boolfn.truthtable import TruthTable
from repro.incremental.diff import circuit_edits
from repro.netlist.graph import SeqCircuit
from tests.helpers import random_seq_circuit


class TestCircuitEdits:
    def test_identical_circuits_diff_empty(self):
        base = random_seq_circuit(3, 10, seed=31)
        assert circuit_edits(base, base.copy()) == []

    def test_diff_reproduces_the_journal(self):
        base = random_seq_circuit(3, 10, seed=32)
        edited = base.copy()
        edited.begin_journal()
        g = edited.gates[1]
        pin = edited.fanins(g)[0]
        edited.rewire_pin(g, 0, pin.src, pin.weight + 1)
        edited.add_po("diff_out", edited.gates[-1], weight=2)
        journal = edited.take_journal()
        diffed = circuit_edits(base, edited)
        assert [(e.kind, e.nid, tuple(e.pins)) for e in diffed] == [
            (e.kind, e.nid, tuple(e.pins)) for e in journal
        ]

    def test_appended_nodes_become_add_records(self):
        base = random_seq_circuit(3, 10, seed=33)
        edited = base.copy()
        g = edited.gates[-1]
        nid = edited.add_gate("extra", TruthTable.var(0, 1), [(g, 1)])
        edits = circuit_edits(base, edited)
        assert [(e.kind, e.nid, e.pins) for e in edits] == [
            ("add", nid, ((g, 1),))
        ]

    def test_function_only_change_produces_no_edit(self):
        # Labels depend on structure alone; the mapping regeneration
        # re-reads functions from the edited circuit.
        base = random_seq_circuit(3, 10, seed=34)
        edited = base.copy()
        g = edited.gates[0]
        edited.node(g).func = ~edited.node(g).func
        assert circuit_edits(base, edited) == []

    def test_shrunk_node_set_rejected(self):
        base = random_seq_circuit(3, 10, seed=35)
        smaller = random_seq_circuit(3, 6, seed=35)
        with pytest.raises(ValueError, match="not incrementally alignable"):
            circuit_edits(base, smaller)

    def test_name_mismatch_rejected(self):
        base = random_seq_circuit(3, 10, seed=36)
        edited = base.copy()
        edited.node(edited.gates[0]).name = "renamed"
        with pytest.raises(ValueError, match="differs in name or kind"):
            circuit_edits(base, edited)

    def test_kind_mismatch_rejected(self):
        base = SeqCircuit("a")
        base.add_pi("n0")
        other = SeqCircuit("b")
        other.add_gate("n0", TruthTable.const(0, False), [])
        with pytest.raises(ValueError, match="differs in name or kind"):
            circuit_edits(base, other)
