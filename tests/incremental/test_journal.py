"""Mutation journal semantics on :class:`SeqCircuit`."""

import pytest

from repro.netlist.graph import SeqCircuit
from tests.helpers import random_seq_circuit


class TestJournalLifecycle:
    def test_take_without_begin_raises(self):
        circuit = random_seq_circuit(3, 6, seed=1)
        with pytest.raises(ValueError, match="no mutation journal"):
            circuit.take_journal()

    def test_begin_take_drains_and_keeps_recording(self):
        circuit = random_seq_circuit(3, 6, seed=1)
        circuit.begin_journal()
        assert circuit.journaling()
        assert circuit.take_journal() == []
        g = circuit.gates[0]
        pins = [(p.src, p.weight) for p in circuit.fanins(g)]
        pins[0] = (pins[0][0], pins[0][1] + 1)
        circuit.set_fanins(g, pins)
        edits = circuit.take_journal()
        assert [(e.kind, e.nid) for e in edits] == [("rewire", g)]
        assert edits[0].pins == tuple(pins)
        # Drained; recording continues.
        assert circuit.take_journal() == []

    def test_end_journal_stops_recording(self):
        circuit = random_seq_circuit(3, 6, seed=1)
        circuit.begin_journal()
        circuit.end_journal()
        assert not circuit.journaling()
        with pytest.raises(ValueError):
            circuit.take_journal()

    def test_node_insertion_records_add(self):
        circuit = random_seq_circuit(3, 6, seed=2)
        circuit.begin_journal()
        g = circuit.gates[-1]
        po = circuit.add_po("extra_out", g, weight=1)
        edits = circuit.take_journal()
        assert [(e.kind, e.nid, e.pins) for e in edits] == [
            ("add", po, ((g, 1),))
        ]

    def test_rewire_pin_convenience_journals_once(self):
        circuit = random_seq_circuit(3, 6, seed=3)
        circuit.begin_journal()
        g = circuit.gates[0]
        src, w = circuit.fanins(g)[0].src, circuit.fanins(g)[0].weight
        assert circuit.rewire_pin(g, 0, src, w + 2)
        edits = circuit.take_journal()
        assert len(edits) == 1 and edits[0].kind == "rewire"


class TestNoOpEdits:
    """No-op edits must not invalidate caches or produce records."""

    def test_noop_set_fanins_keeps_compiled_cache(self):
        circuit = random_seq_circuit(3, 8, seed=4)
        circuit.begin_journal()
        compiled = circuit.compiled()
        g = circuit.gates[0]
        circuit.set_fanins(
            g, [(p.src, p.weight) for p in circuit.fanins(g)]
        )
        assert circuit.compiled() is compiled
        assert circuit.take_journal() == []

    def test_noop_rewire_pin_returns_false_and_keeps_cache(self):
        circuit = random_seq_circuit(3, 8, seed=4)
        circuit.begin_journal()
        compiled = circuit.compiled()
        g = circuit.gates[0]
        pin = circuit.fanins(g)[0]
        assert not circuit.rewire_pin(g, 0, pin.src, pin.weight)
        assert circuit.compiled() is compiled
        assert circuit.take_journal() == []

    def test_effective_rewire_invalidates_compiled_cache(self):
        circuit = random_seq_circuit(3, 8, seed=4)
        compiled = circuit.compiled()
        g = circuit.gates[0]
        pin = circuit.fanins(g)[0]
        assert circuit.rewire_pin(g, 0, pin.src, pin.weight + 1)
        assert circuit.compiled() is not compiled

    def test_pickled_copy_sheds_journal(self):
        import pickle

        circuit = random_seq_circuit(3, 6, seed=5)
        circuit.begin_journal()
        clone = pickle.loads(pickle.dumps(circuit))
        assert isinstance(clone, SeqCircuit)
        assert not clone.journaling()
