"""The differential edit-fuzz harness itself (one cell per case)."""

import json

from repro.incremental.fuzz import (
    _failures,
    differential_remap,
    main,
    random_edits,
)
from tests.helpers import random_seq_circuit


class TestRandomEdits:
    def test_edits_preserve_validity(self):
        import random

        circuit = random_seq_circuit(4, 20, seed=51)
        applied = random_edits(circuit, random.Random(7), 6)
        assert applied == 6
        circuit.check()
        circuit.comb_topo_order()  # no combinational cycle was created

    def test_edits_are_journaled(self):
        import random

        circuit = random_seq_circuit(4, 20, seed=52)
        circuit.begin_journal()
        applied = random_edits(circuit, random.Random(7), 3)
        # Reverted illegal drops journal the edit and its inverse; at
        # least the effective edits are recorded.
        assert len(circuit.take_journal()) >= applied


class TestDifferentialCell:
    def test_small_edit_cell_is_clean(self):
        record = differential_remap(
            random_seq_circuit(4, 24, seed=53), 2, seed=99, k=4
        )
        assert record["identical"]
        assert record["labels_reused"] > 0
        assert record["dirty_nodes"] < record["n_nodes"]
        assert _failures(record) == []

    def test_failures_flag_divergence_and_no_reuse(self):
        record = {
            "circuit": "c",
            "edits_requested": 1,
            "identical": False,
            "phi": 3,
            "cold_phi": 2,
            "edits_applied": 0,
            "dirty_nodes": 10,
            "n_nodes": 10,
            "labels_reused": 0,
        }
        problems = _failures(record)
        assert len(problems) == 4
        assert any("differs from cold" in p for p in problems)
        assert any("no labels were reused" in p for p in problems)


class TestFuzzMain:
    def test_main_writes_report_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "fuzz.json"
        code = main(
            [
                "--circuits",
                "bbara",
                "--edits",
                "1",
                "--seed",
                "0",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["kind"] == "edit-fuzz"
        assert len(report["runs"]) == 1
        assert report["runs"][0]["identical"]
        assert "OK" in capsys.readouterr().out
