"""Dirty-region computation: forward closure over fanout edges."""

from repro.boolfn.truthtable import TruthTable
from repro.incremental.dirty import dirty_region
from repro.netlist.graph import Edit, SeqCircuit


def _buf() -> TruthTable:
    return TruthTable.var(0, 1)


def chain() -> SeqCircuit:
    """x -> g0 -> g1 (1 FF) -> g2 -> out, plus a side branch g0 -> s."""
    c = SeqCircuit("chain")
    x = c.add_pi("x")
    g0 = c.add_gate("g0", _buf(), [(x, 0)])
    g1 = c.add_gate("g1", _buf(), [(g0, 1)])
    g2 = c.add_gate("g2", _buf(), [(g1, 0)])
    s = c.add_gate("s", _buf(), [(g0, 0)])
    c.add_po("out", g2)
    c.add_po("side", s)
    return c


class TestDirtyRegion:
    def test_forward_closure_stops_upstream(self):
        c = chain()
        g1 = c.id_of("g1")
        dirty = dirty_region(c, [Edit("rewire", g1, ((0, 2),))])
        assert g1 in dirty
        assert c.id_of("g2") in dirty
        assert c.id_of("out") in dirty
        # Upstream of the edit, and the untouched side branch, stay clean.
        assert c.id_of("g0") not in dirty
        assert c.id_of("s") not in dirty
        assert c.id_of("side") not in dirty

    def test_register_edges_propagate_dirt(self):
        c = chain()
        g0 = c.id_of("g0")
        dirty = dirty_region(c, [Edit("rewire", g0, ((0, 1),))])
        # g0 -> g1 crosses a register; labels downstream still depend on it.
        assert c.id_of("g1") in dirty
        assert c.id_of("g2") in dirty
        assert c.id_of("s") in dirty

    def test_pis_never_dirty(self):
        c = chain()
        dirty = dirty_region(
            c, [Edit("rewire", c.id_of("g0"), ((0, 1),))]
        )
        assert c.id_of("x") not in dirty

    def test_no_edits_no_dirt(self):
        assert dirty_region(chain(), []) == set()

    def test_duplicate_edits_counted_once(self):
        c = chain()
        g2 = c.id_of("g2")
        edits = [
            Edit("rewire", g2, ((1, 0),)),
            Edit("rewire", g2, ((2, 0),)),
        ]
        dirty = dirty_region(c, edits)
        assert dirty == {g2, c.id_of("out")}
