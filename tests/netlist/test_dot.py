"""Tests for Graphviz DOT export."""

from repro.netlist.dot import to_dot, write_dot_file
from repro.netlist.graph import SeqCircuit
from tests.helpers import AND2


def small():
    c = SeqCircuit("dotty")
    a = c.add_pi("a")
    g = c.add_gate("g", AND2, [(a, 0), (a, 2)])
    c.add_po("o", g)
    return c, a, g


class TestToDot:
    def test_structure(self):
        c, a, g = small()
        text = to_dot(c)
        assert text.startswith('digraph "dotty"')
        assert "shape=box" in text  # the gate
        assert "shape=ellipse" in text  # the PI
        assert text.count("->") == 3

    def test_register_edges_labelled(self):
        c, *_ = small()
        text = to_dot(c)
        assert 'label="2"' in text
        assert "style=bold" in text

    def test_annotations(self):
        c, a, g = small()
        text = to_dot(c, annotate=lambda v: f"l={v}")
        assert "l=" in text

    def test_highlight(self):
        c, a, g = small()
        text = to_dot(c, highlight=[g])
        assert "fillcolor=lightsalmon" in text

    def test_name_escaping(self):
        c = SeqCircuit('we"ird')
        c.add_pi("x")
        text = to_dot(c)
        assert '\\"' in text

    def test_write_file(self, tmp_path):
        c, *_ = small()
        path = tmp_path / "c.dot"
        write_dot_file(c, str(path))
        assert path.read_text().startswith("digraph")
