"""Tests for the KISS2 FSM format."""

import pytest

from repro.netlist.kiss import FSM, read_kiss, write_kiss

EXAMPLE = """
.i 1
.o 1
.p 4
.s 2
.r s0
0 s0 s0 0
1 s0 s1 0
0 s1 s0 1
1 s1 s1 1
.e
"""


class TestModel:
    def test_states_in_order(self):
        fsm = read_kiss(EXAMPLE)
        assert fsm.states == ["s0", "s1"]
        assert fsm.num_states == 2

    def test_step(self):
        fsm = read_kiss(EXAMPLE)
        assert fsm.step("s0", 1) == ("s1", "0")
        assert fsm.step("s1", 0) == ("s0", "1")

    def test_step_missing_transition(self):
        fsm = FSM("m", 1, 2)
        fsm.add("1", "a", "b", "11")
        assert fsm.step("a", 0) == ("a", "00")

    def test_dont_care_inputs(self):
        fsm = FSM("m", 2, 1)
        fsm.add("-1", "a", "b", "1")
        assert fsm.step("a", 0b10) == ("b", "1")
        assert fsm.step("a", 0b01) == ("a", "0")

    def test_dont_care_outputs_become_zero(self):
        fsm = FSM("m", 1, 2)
        fsm.add("1", "a", "a", "-1")
        assert fsm.step("a", 1) == ("a", "01")

    def test_add_validates_width(self):
        fsm = FSM("m", 2, 1)
        with pytest.raises(ValueError):
            fsm.add("1", "a", "b", "1")
        with pytest.raises(ValueError):
            fsm.add("1x", "a", "b", "1")


class TestIO:
    def test_read_headers(self):
        fsm = read_kiss(EXAMPLE)
        assert fsm.num_inputs == 1
        assert fsm.num_outputs == 1
        assert fsm.reset_state == "s0"
        assert len(fsm.transitions) == 4

    def test_default_reset_state(self):
        fsm = read_kiss(".i 1\n.o 1\n1 a b 1\n.e\n")
        assert fsm.reset_state == "a"

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError):
            read_kiss("1 a b 1\n.e\n")

    def test_bad_line_rejected(self):
        with pytest.raises(ValueError):
            read_kiss(".i 1\n.o 1\n1 a b\n.e\n")

    def test_roundtrip(self):
        fsm = read_kiss(EXAMPLE)
        again = read_kiss(write_kiss(fsm))
        assert again.transitions == fsm.transitions
        assert again.reset_state == fsm.reset_state
        assert again.num_inputs == fsm.num_inputs

    def test_comments_ignored(self):
        fsm = read_kiss("# header\n.i 1\n.o 1\n1 a b 1 # tail\n.e\n")
        assert len(fsm.transitions) == 1
