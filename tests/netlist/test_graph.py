"""Tests for the retiming-graph circuit representation."""

import pytest

from repro.boolfn.truthtable import TruthTable
from repro.netlist.graph import NodeKind, Pin, SeqCircuit

AND2 = TruthTable.from_function(2, lambda a, b: a and b)
OR2 = TruthTable.from_function(2, lambda a, b: a or b)
NOT1 = TruthTable.from_function(1, lambda a: not a)
BUF = TruthTable.from_function(1, lambda a: a)


def simple_loop():
    """PI -> g1 -> g2 -(1 FF)-> g1 feedback, PO on g2."""
    c = SeqCircuit("loop")
    a = c.add_pi("a")
    g1 = c.add_gate("g1", AND2, [(a, 0), (a, 0)])  # placeholder, fix below
    return c


def counterish():
    c = SeqCircuit("counterish")
    a = c.add_pi("a")
    g1 = c.add_gate("g1", OR2, [(a, 0), (a, 1)])
    g2 = c.add_gate("g2", AND2, [(g1, 0), (a, 0)])
    c.add_po("out", g2, 0)
    return c, a, g1, g2


class TestConstruction:
    def test_basic_nodes(self):
        c, a, g1, g2 = counterish()
        assert c.kind(a) is NodeKind.PI
        assert c.kind(g2) is NodeKind.GATE
        assert c.kind(c.id_of("out")) is NodeKind.PO
        assert len(c) == 4

    def test_duplicate_names_rejected(self):
        c = SeqCircuit()
        c.add_pi("x")
        with pytest.raises(ValueError):
            c.add_pi("x")

    def test_arity_mismatch_rejected(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        with pytest.raises(ValueError):
            c.add_gate("g", AND2, [(a, 0)])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Pin(0, -1)

    def test_unknown_source_rejected(self):
        c = SeqCircuit()
        with pytest.raises(ValueError):
            c.add_po("o", 5)

    def test_stats(self):
        c, *_ = counterish()
        assert c.stats() == {"pis": 1, "pos": 1, "gates": 2, "ffs": 1}

    def test_repr(self):
        c, *_ = counterish()
        assert "2 gates" in repr(c)


class TestTopology:
    def test_fanouts(self):
        c, a, g1, g2 = counterish()
        assert sorted(c.fanouts(a)) == [(g1, 0), (g1, 1), (g2, 0)]
        assert c.fanouts(g2) == [(c.id_of("out"), 0)]

    def test_edges(self):
        c, a, g1, g2 = counterish()
        assert (a, g1, 1) in list(c.edges())

    def test_comb_topo_order(self):
        c, a, g1, g2 = counterish()
        order = c.comb_topo_order()
        assert order.index(g1) < order.index(g2)

    def test_comb_cycle_detected(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        g1 = c.add_gate("g1", AND2, [(a, 0), (a, 0)])
        g2 = c.add_gate("g2", AND2, [(g1, 0), (a, 0)])
        # Rewire g1 to read g2 with weight 0: combinational loop.
        c.node(g1).fanins[1] = Pin(g2, 0)
        with pytest.raises(ValueError):
            c.comb_topo_order()

    def test_registered_cycle_allowed(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        g1 = c.add_gate("g1", AND2, [(a, 0), (a, 0)])
        g2 = c.add_gate("g2", AND2, [(g1, 0), (a, 0)])
        c.node(g1).fanins[1] = Pin(g2, 1)  # feedback through one FF
        c.add_po("o", g2)
        c.check()

    def test_sccs_topological(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        g1 = c.add_gate("g1", AND2, [(a, 0), (a, 0)])
        g2 = c.add_gate("g2", AND2, [(g1, 0), (g1, 1)])
        c.node(g1).fanins[1] = Pin(g2, 1)
        o = c.add_po("o", g2)
        comps = c.sccs()
        # g1, g2 form one SCC; a before it; o after it.
        by_node = {}
        for idx, comp in enumerate(comps):
            for v in comp:
                by_node[v] = idx
        assert by_node[g1] == by_node[g2]
        assert by_node[a] < by_node[g1]
        assert by_node[g2] < by_node[o]

    def test_sccs_deep_graph_no_recursion_error(self):
        c = SeqCircuit()
        prev = c.add_pi("x")
        for i in range(3000):
            prev = c.add_gate(f"g{i}", BUF, [(prev, 0)])
        c.add_po("o", prev)
        comps = c.sccs()
        assert len(comps) == 3002


class TestChecksAndBounds:
    def test_k_bounded(self):
        c, *_ = counterish()
        assert c.is_k_bounded(2)
        assert not c.is_k_bounded(1)

    def test_po_with_fanout_rejected(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        o = c.add_po("o", a)
        g = c.add_gate("g", BUF, [(o, 0)])
        with pytest.raises(ValueError):
            c.check()

    def test_clock_period_unit_delay(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        g1 = c.add_gate("g1", BUF, [(a, 0)])
        g2 = c.add_gate("g2", BUF, [(g1, 0)])
        g3 = c.add_gate("g3", BUF, [(g2, 1)])  # register splits the path
        c.add_po("o", g3)
        assert c.clock_period() == 2  # g1,g2 chain


class TestRetiming:
    def circuit(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        g1 = c.add_gate("g1", BUF, [(a, 1)])
        g2 = c.add_gate("g2", BUF, [(g1, 1)])
        c.add_po("o", g2, 0)
        return c, a, g1, g2

    def test_apply_retiming_moves_registers(self):
        c, a, g1, g2 = self.circuit()
        # Move the register from a->g1 across g1 onto g1->g2.
        r = [0, -1, 0, 0]
        out = c.apply_retiming(r)
        weights = {(s, d): w for s, d, w in out.edges()}
        assert weights[(a, g1)] == 0
        assert weights[(g1, g2)] == 2

    def test_register_count_conserved_on_paths(self):
        c, a, g1, g2 = self.circuit()
        out = c.apply_retiming([0, -1, -1, -1])
        # Path a -> o keeps total weight only shifted by r(po) - r(pi) = -1.
        total_before = sum(w for *_e, w in c.edges())
        total_after = sum(w for *_e, w in out.edges())
        assert total_before - total_after == 1

    def test_illegal_retiming_rejected(self):
        c, a, g1, g2 = self.circuit()
        with pytest.raises(ValueError):
            c.apply_retiming([0, 2, 0, 0])  # a->g1 would become -1? (w=1+2-0 ok) g1->g2: 1+0-2 = -1

    def test_length_mismatch(self):
        c, *_ = self.circuit()
        with pytest.raises(ValueError):
            c.apply_retiming([0, 0])

    def test_copy_independent(self):
        c, *_ = counterish()
        d = c.copy()
        d.add_pi("extra")
        assert len(d) == len(c) + 1
