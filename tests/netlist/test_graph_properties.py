"""Property tests for retiming-graph transformations (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.graph import NodeKind
from repro.retime.mdr import mdr_ratio
from tests.helpers import random_seq_circuit

seeds = st.integers(min_value=0, max_value=5000)

FAST = settings(max_examples=25, deadline=None)


def legal_retiming(circuit, rnd):
    """A random legal lag vector (verified by construction)."""
    from repro.compat import default_rng

    rng = default_rng(rnd)
    r = [0] * len(circuit)
    # Random small lags on gates/POs, clipped to legality by rejection.
    for _ in range(40):
        v = int(rng.integers(0, len(circuit)))
        if circuit.kind(v) is NodeKind.PI:
            continue
        delta = int(rng.integers(-1, 2))
        r[v] += delta
        ok = all(
            w + r[dst] - r[src] >= 0 for src, dst, w in circuit.edges()
        )
        if not ok:
            r[v] -= delta
    return r


class TestApplyRetiming:
    @given(seeds, seeds)
    @FAST
    def test_roundtrip(self, seed, rnd):
        c = random_seq_circuit(3, 10, seed=seed, feedback=2)
        r = legal_retiming(c, rnd)
        forward = c.apply_retiming(r)
        back = forward.apply_retiming([-x for x in r])
        assert [tuple(e) for e in back.edges()] == [tuple(e) for e in c.edges()]

    @given(seeds, seeds)
    @FAST
    def test_cycle_ratio_invariant(self, seed, rnd):
        c = random_seq_circuit(3, 10, seed=seed, feedback=2)
        r = legal_retiming(c, rnd)
        assert mdr_ratio(c.apply_retiming(r)) == mdr_ratio(c)

    @given(seeds, seeds)
    @FAST
    def test_structure_preserved(self, seed, rnd):
        c = random_seq_circuit(3, 10, seed=seed, feedback=2)
        r = legal_retiming(c, rnd)
        out = c.apply_retiming(r)
        assert len(out) == len(c)
        for v in c.node_ids():
            assert out.name_of(v) == c.name_of(v)
            assert out.kind(v) == c.kind(v)
            assert [p.src for p in out.fanins(v)] == [
                p.src for p in c.fanins(v)
            ]

    @given(seeds)
    @FAST
    def test_zero_retiming_identity(self, seed):
        c = random_seq_circuit(3, 10, seed=seed, feedback=2)
        out = c.apply_retiming([0] * len(c))
        assert [tuple(e) for e in out.edges()] == [tuple(e) for e in c.edges()]


class TestCopySemantics:
    @given(seeds)
    @FAST
    def test_copy_equal_structure(self, seed):
        c = random_seq_circuit(3, 10, seed=seed, feedback=2)
        d = c.copy("other")
        assert d.name == "other"
        assert list(d.edges()) == list(c.edges())
        # deep enough: mutating the copy leaves the original intact
        from repro.netlist.graph import Pin

        g = d.gates[0]
        d.node(g).fanins[0] = Pin(d.node(g).fanins[0].src, 7)
        assert list(d.edges()) != list(c.edges())

    @given(seeds)
    @FAST
    def test_with_weights_rewrites(self, seed):
        c = random_seq_circuit(3, 10, seed=seed, feedback=2)
        doubled = c.with_weights(lambda s, d, w: 2 * w)
        assert doubled.total_edge_weight == 2 * c.total_edge_weight


class TestStatsConsistency:
    @given(seeds)
    @FAST
    def test_fanouts_match_edges(self, seed):
        c = random_seq_circuit(3, 12, seed=seed, feedback=3)
        edge_count = sum(1 for _ in c.edges())
        fanout_count = sum(len(c.fanouts(v)) for v in c.node_ids())
        assert edge_count == fanout_count

    @given(seeds)
    @FAST
    def test_shared_ffs_at_most_total_weight(self, seed):
        c = random_seq_circuit(3, 12, seed=seed, feedback=3)
        assert c.n_ffs <= c.total_edge_weight
