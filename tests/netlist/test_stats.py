"""Tests for circuit profiling."""


from repro.netlist.graph import SeqCircuit
from repro.netlist.stats import lut_profile, profile, render_profile
from tests.helpers import AND2, and_tree, random_seq_circuit, xor_chain


class TestProfile:
    def test_counts(self):
        c = xor_chain(5)
        p = profile(c)
        assert p.pis == 5
        assert p.gates == 4
        assert p.ffs == 0
        assert p.clock_period == 4

    def test_fanin_histogram(self):
        c = and_tree(8)
        p = profile(c)
        assert p.fanin_histogram == {2: 7}

    def test_level_histogram_chain(self):
        c = xor_chain(4)
        p = profile(c)
        assert p.level_histogram == {1: 1, 2: 1, 3: 1}

    def test_weight_histogram_and_loops(self):
        c = SeqCircuit("loopy")
        x = c.add_pi("x")
        g = c.add_gate_placeholder("g", AND2)
        c.set_fanins(g, [(x, 0), (g, 2)])
        c.add_po("o", g)
        p = profile(c)
        assert p.weight_histogram == {0: 2, 2: 1}
        assert p.scc_sizes == [1]  # self-loop
        assert p.loop_gates == 1

    def test_scc_sizes(self):
        c = random_seq_circuit(3, 15, seed=2, feedback=4)
        p = profile(c)
        assert all(s >= 1 for s in p.scc_sizes)

    def test_render(self):
        text = render_profile(profile(xor_chain(4)))
        assert "feed-forward" in text
        assert "fanins" in text


class TestLutProfile:
    def test_fill_and_classes(self):
        from repro.core.turbomap import turbomap

        c = random_seq_circuit(3, 14, seed=1, feedback=2)
        tm = turbomap(c, k=4)
        info = lut_profile(tm.mapped)
        assert info["luts"] == tm.n_luts
        assert 0 < info["average_inputs"] <= 4
        assert info["npn_classes"] >= 1
        assert sum(info["fill_histogram"].values()) == tm.n_luts

    def test_empty_network(self):
        c = SeqCircuit("empty")
        a = c.add_pi("a")
        c.add_po("o", a)
        info = lut_profile(c)
        assert info["luts"] == 0
        assert info["average_inputs"] == 0.0
