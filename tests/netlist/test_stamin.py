"""Tests for FSM state minimization."""

import pytest

from repro.bench.fsm import random_fsm
from repro.netlist.kiss import FSM
from repro.netlist.stamin import (
    equivalent_state_classes,
    machines_equivalent,
    minimize_states,
)


def redundant_machine():
    """Two copies of the same 2-state toggler glued together (4 states)."""
    fsm = FSM("redundant", 1, 1, reset_state="a0")
    # copy 0
    fsm.add("0", "a0", "a0", "0")
    fsm.add("1", "a0", "b0", "0")
    fsm.add("0", "b0", "b0", "1")
    fsm.add("1", "b0", "a0", "1")
    # copy 1 (behaviourally identical states)
    fsm.add("0", "a1", "a1", "0")
    fsm.add("1", "a1", "b1", "0")
    fsm.add("0", "b1", "b1", "1")
    fsm.add("1", "b1", "a1", "1")
    # bridge: a0's unreachable twin keeps both copies in the state list
    return fsm


class TestEquivalenceClasses:
    def test_redundant_copies_merge(self):
        fsm = redundant_machine()
        classes = {frozenset(c) for c in equivalent_state_classes(fsm)}
        assert frozenset(["a0", "a1"]) in classes
        assert frozenset(["b0", "b1"]) in classes

    def test_distinct_outputs_stay_separate(self):
        fsm = FSM("m", 1, 1, reset_state="p")
        fsm.add("-", "p", "q", "0")
        fsm.add("-", "q", "p", "1")
        classes = equivalent_state_classes(fsm)
        assert len(classes) == 2

    def test_input_cap(self):
        fsm = FSM("wide", 13, 1, reset_state="a")
        fsm.add("-" * 13, "a", "a", "0")
        fsm.add("-" * 13, "b", "b", "0")
        with pytest.raises(ValueError):
            equivalent_state_classes(fsm)


class TestMinimizeStates:
    def test_reduces_and_preserves_behaviour(self):
        fsm = redundant_machine()
        reduced = minimize_states(fsm)
        assert reduced.num_states == 2
        assert machines_equivalent(fsm, reduced, steps=300, seed=1)

    def test_already_minimal_unchanged_count(self):
        fsm = FSM("m", 1, 1, reset_state="p")
        fsm.add("-", "p", "q", "0")
        fsm.add("-", "q", "p", "1")
        assert minimize_states(fsm).num_states == 2

    @pytest.mark.parametrize("seed", range(4))
    def test_random_machines_behaviour_preserved(self, seed):
        fsm = random_fsm("m", 9, 3, 2, seed=seed)
        reduced = minimize_states(fsm)
        assert reduced.num_states <= fsm.num_states
        assert machines_equivalent(fsm, reduced, steps=400, seed=seed + 1)


class TestMachinesEquivalent:
    def test_detects_difference(self):
        a = FSM("a", 1, 1, reset_state="s")
        a.add("-", "s", "s", "0")
        b = FSM("b", 1, 1, reset_state="s")
        b.add("-", "s", "s", "1")
        assert not machines_equivalent(a, b)

    def test_shape_mismatch(self):
        a = FSM("a", 1, 1)
        b = FSM("b", 2, 1)
        assert not machines_equivalent(a, b)
