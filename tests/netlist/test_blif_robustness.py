"""Robustness tests: malformed BLIF inputs must fail with clear errors."""

import pytest

from repro.netlist.blif import BlifError, read_blif


BAD_CASES = {
    "cube_outside_names": ".model m\n.inputs a\n.outputs f\n11 1\n.end\n",
    "latch_missing_output": ".model m\n.inputs a\n.outputs f\n.latch a\n.names a f\n1 1\n.end\n",
    "cube_width_mismatch": ".model m\n.inputs a b\n.outputs f\n.names a b f\n1 1\n.end\n",
    "bad_output_bit": ".model m\n.inputs a\n.outputs f\n.names a f\n1 2\n.end\n",
    "names_without_output": ".model m\n.inputs a\n.outputs f\n.names\n.end\n",
    "latch_driven_twice": (
        ".model m\n.inputs a\n.outputs f\n.latch a q\n.latch a q\n"
        ".names q f\n1 1\n.end\n"
    ),
    "undriven_output": ".model m\n.inputs a\n.outputs f g\n.names a f\n1 1\n.end\n",
    "latch_cycle": (
        ".model m\n.inputs a\n.outputs f\n.latch q1 q2\n.latch q2 q1\n"
        ".names q1 f\n1 1\n.end\n"
    ),
    "constant_line_too_wide": ".model m\n.inputs a\n.outputs f\n.names f\n1 1\n.end\n",
}


@pytest.mark.parametrize("label", sorted(BAD_CASES))
def test_malformed_rejected(label):
    with pytest.raises(BlifError):
        read_blif(BAD_CASES[label])


def test_unknown_directives_skipped():
    text = (
        ".model m\n.inputs a\n.outputs f\n.clock clk\n"
        ".names a f\n1 1\n.end\n"
    )
    circuit, _ = read_blif(text)
    assert circuit.n_gates == 1


def test_latch_with_type_and_init():
    text = (
        ".model m\n.inputs a\n.outputs f\n.latch a q re clk 1\n"
        ".names q f\n1 1\n.end\n"
    )
    circuit, info = read_blif(text)
    assert info.initial_values["q"] == "1"


def test_multiple_names_blocks_share_signals():
    text = (
        ".model m\n.inputs a b\n.outputs f g\n"
        ".names a b t\n11 1\n"
        ".names t f\n1 1\n"
        ".names t b g\n01 1\n.end\n"
    )
    circuit, _ = read_blif(text)
    assert circuit.n_gates == 3
    assert len(circuit.fanouts(circuit.id_of("t"))) == 2
