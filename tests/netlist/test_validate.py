"""Tests for structural validation helpers."""

import pytest

from repro.boolfn.truthtable import TruthTable
from repro.netlist.graph import SeqCircuit
from repro.netlist.validate import (
    ValidationError,
    dangling_nodes,
    ensure_k_bounded,
    ensure_mappable,
    ensure_valid,
)
from tests.helpers import AND2, BUF


def wide_gate_circuit():
    c = SeqCircuit("wide")
    pis = [c.add_pi(f"x{i}") for i in range(4)]
    func = TruthTable.from_function(4, lambda *xs: all(xs))
    g = c.add_gate("g", func, [(p, 0) for p in pis])
    c.add_po("o", g)
    return c


class TestEnsureValid:
    def test_valid_circuit_passes(self):
        ensure_valid(wide_gate_circuit())

    def test_combinational_cycle_rejected(self):
        c = SeqCircuit()
        g1 = c.add_gate_placeholder("g1", BUF)
        g2 = c.add_gate_placeholder("g2", BUF)
        c.set_fanins(g1, [(g2, 0)])
        c.set_fanins(g2, [(g1, 0)])
        c.add_po("o", g2)
        with pytest.raises(ValidationError):
            ensure_valid(c)


class TestEnsureKBounded:
    def test_within_bound(self):
        ensure_k_bounded(wide_gate_circuit(), 4)

    def test_exceeds_bound(self):
        with pytest.raises(ValidationError) as err:
            ensure_k_bounded(wide_gate_circuit(), 3)
        assert "gate decomposition" in str(err.value)

    def test_mappable_combines_both(self):
        ensure_mappable(wide_gate_circuit(), 5)
        with pytest.raises(ValidationError):
            ensure_mappable(wide_gate_circuit(), 2)


class TestDanglingNodes:
    def test_no_dangling(self):
        assert dangling_nodes(wide_gate_circuit()) == []

    def test_dead_gate_found(self):
        c = wide_gate_circuit()
        dead = c.add_gate("dead", AND2, [(c.pis[0], 0), (c.pis[1], 0)])
        assert dangling_nodes(c) == [dead]

    def test_unused_pi_found(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        b = c.add_pi("b")
        g = c.add_gate("g", BUF, [(a, 0)])
        c.add_po("o", g)
        assert dangling_nodes(c) == [b]
