"""Tests for structural validation helpers."""

import pytest

from repro.boolfn.truthtable import TruthTable
from repro.netlist.graph import SeqCircuit
from repro.netlist.validate import (
    MAX_SHOWN,
    ValidationError,
    dangling_nodes,
    ensure_k_bounded,
    ensure_mappable,
    ensure_valid,
    unobservable_nodes,
    unreachable_nodes,
)
from tests.helpers import AND2, BUF


def wide_gate_circuit():
    c = SeqCircuit("wide")
    pis = [c.add_pi(f"x{i}") for i in range(4)]
    func = TruthTable.from_function(4, lambda *xs: all(xs))
    g = c.add_gate("g", func, [(p, 0) for p in pis])
    c.add_po("o", g)
    return c


class TestEnsureValid:
    def test_valid_circuit_passes(self):
        ensure_valid(wide_gate_circuit())

    def test_combinational_cycle_rejected(self):
        c = SeqCircuit()
        g1 = c.add_gate_placeholder("g1", BUF)
        g2 = c.add_gate_placeholder("g2", BUF)
        c.set_fanins(g1, [(g2, 0)])
        c.set_fanins(g2, [(g1, 0)])
        c.add_po("o", g2)
        with pytest.raises(ValidationError):
            ensure_valid(c)


class TestEnsureKBounded:
    def test_within_bound(self):
        ensure_k_bounded(wide_gate_circuit(), 4)

    def test_exceeds_bound(self):
        with pytest.raises(ValidationError) as err:
            ensure_k_bounded(wide_gate_circuit(), 3)
        assert "gate decomposition" in str(err.value)

    def test_mappable_combines_both(self):
        ensure_mappable(wide_gate_circuit(), 5)
        with pytest.raises(ValidationError):
            ensure_mappable(wide_gate_circuit(), 2)


class TestDanglingNodes:
    def test_no_dangling(self):
        assert dangling_nodes(wide_gate_circuit()) == []

    def test_dead_gate_found(self):
        c = wide_gate_circuit()
        dead = c.add_gate("dead", AND2, [(c.pis[0], 0), (c.pis[1], 0)])
        assert dangling_nodes(c) == [dead]

    def test_unused_pi_found(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        b = c.add_pi("b")
        g = c.add_gate("g", BUF, [(a, 0)])
        c.add_po("o", g)
        assert dangling_nodes(c) == [b]

    def test_undriven_island_found(self):
        # A registered feedback loop feeding a PO: every PO is reachable
        # *from* it, but no PI ever reaches the loop — only the
        # unreachable-from-PI sweep sees it.
        c = SeqCircuit("island")
        a = c.add_pi("a")
        g = c.add_gate("g", BUF, [(a, 0)])
        c.add_po("o", g)
        loop = c.add_gate_placeholder("loop", BUF)
        c.set_fanins(loop, [(loop, 1)])
        q = c.add_po("q", loop)
        assert unobservable_nodes(c) == []
        # Both the loop and the PO it pretends to drive are undriven.
        assert unreachable_nodes(c) == [loop, q]
        assert dangling_nodes(c) == [loop, q]

    def test_constant_generator_counts_as_source(self):
        c = SeqCircuit("const")
        one = c.add_gate("one", TruthTable.from_function(0, lambda: True), [])
        buf = c.add_gate("buf", BUF, [(one, 0)])
        c.add_po("o", buf)
        assert unreachable_nodes(c) == []


class TestUniformMessages:
    def test_prefix_names_circuit_and_count(self):
        with pytest.raises(ValidationError) as err:
            ensure_k_bounded(wide_gate_circuit(), 3)
        message = str(err.value)
        assert message.startswith("wide: 1 gate(s) exceed 3 fanins")
        assert "(e.g. g)" in message

    def test_offender_list_is_truncated(self):
        c = SeqCircuit("many")
        pis = [c.add_pi(f"x{i}") for i in range(3)]
        func = TruthTable.from_function(3, lambda *xs: all(xs))
        for j in range(MAX_SHOWN + 3):
            g = c.add_gate(f"g{j}", func, [(p, 0) for p in pis])
            c.add_po(f"o{j}", g)
        with pytest.raises(ValidationError) as err:
            ensure_k_bounded(c, 2)
        message = str(err.value)
        assert message.startswith(f"many: {MAX_SHOWN + 3} gate(s)")
        # Only MAX_SHOWN names are spelled out.
        assert f"g{MAX_SHOWN - 1}" in message
        assert f"g{MAX_SHOWN}" not in message

    def test_cycle_message_names_the_loop(self):
        c = SeqCircuit("loopy")
        g1 = c.add_gate_placeholder("g1", BUF)
        g2 = c.add_gate_placeholder("g2", BUF)
        c.set_fanins(g1, [(g2, 0)])
        c.set_fanins(g2, [(g1, 0)])
        c.add_po("o", g2)
        with pytest.raises(ValidationError) as err:
            ensure_valid(c)
        message = str(err.value)
        assert message.startswith("loopy: 1 combinational cycle(s)")
        assert "g1 -> g2" in message
        assert "at least one register" in message
