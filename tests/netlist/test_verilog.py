"""Tests for the structural Verilog writer.

No external simulator is assumed: the emitted expressions are re-parsed
by a tiny evaluator and checked against the Python simulator.
"""

import re

import pytest

from repro.netlist.graph import SeqCircuit
from repro.netlist.verilog import write_verilog
from repro.verify.simulate import Simulator
from tests.helpers import AND2, BUF, XOR2, random_seq_circuit


def tiny_seq():
    c = SeqCircuit("tiny")
    a, b = c.add_pi("a"), c.add_pi("b")
    g1 = c.add_gate("g1", XOR2, [(a, 0), (b, 0)])
    g2 = c.add_gate("g2", AND2, [(g1, 1), (a, 0)])
    c.add_po("y", g2)
    return c


class _VerilogEval:
    """Minimal evaluator for the writer's output (assigns + shift regs)."""

    def __init__(self, text: str):
        self.assigns = {}
        self.shifts = []  # (dst, src)
        self.resets = []
        for m in re.finditer(r"assign (\w+) = (.+);", text):
            self.assigns[m.group(1)] = m.group(2)
        for m in re.finditer(r"(\w+) <= (\w+);", text):
            if m.group(2) == "1'b0":
                self.resets.append(m.group(1))
            else:
                self.shifts.append((m.group(1), m.group(2)))
        self.state = {dst: 0 for dst, _ in self.shifts}
        self.state.update({r: 0 for r in self.resets})

    def _expr(self, expr, env):
        expr = expr.replace("1'b1", "1").replace("1'b0", "0")
        names = sorted(set(re.findall(r"[A-Za-z_]\w*", expr)), key=len, reverse=True)
        for name in names:
            expr = re.sub(rf"\b{name}\b", str(env[name]), expr)
        expr = re.sub(r"~\s*(\d)", r"(1^\1)", expr)
        return eval(expr, {}, {}) & 1

    def step(self, inputs, rst=0):
        env = dict(inputs)
        env.update(self.state)
        env["rst"] = rst
        # assigns may depend on each other: fixpoint over a few passes
        for _ in range(len(self.assigns) + 1):
            for name, expr in self.assigns.items():
                try:
                    env[name] = self._expr(expr, env)
                except KeyError:
                    continue
        new_state = {}
        for dst, src in self.shifts:
            new_state[dst] = 0 if rst else env[src]
        self.state.update(new_state)
        return env


class TestWriter:
    def test_module_structure(self):
        text = write_verilog(tiny_seq())
        assert text.startswith("module tiny (")
        assert "input clk;" in text
        assert "input rst;" in text
        assert "output y;" in text
        assert "endmodule" in text

    def test_no_registers_no_clock(self):
        c = SeqCircuit("comb")
        a, b = c.add_pi("a"), c.add_pi("b")
        g = c.add_gate("g", AND2, [(a, 0), (b, 0)])
        c.add_po("y", g)
        text = write_verilog(c)
        assert "clk" not in text
        assert "always" not in text

    def test_identifier_sanitization(self):
        c = SeqCircuit("we~ird")
        a = c.add_pi("in put")
        g = c.add_gate("g~s0", BUF, [(a, 0)])
        c.add_po("o@po", g)
        text = write_verilog(c)
        assert "we_ird" in text
        assert "in_put" in text
        assert "g_s0" in text

    def test_reset_optional(self):
        text = write_verilog(tiny_seq(), reset=None)
        assert "rst" not in text
        assert "always" in text

    def test_semantics_match_simulator(self):
        c = tiny_seq()
        text = write_verilog(c)
        ref = Simulator(c, lanes=1)
        dut = _VerilogEval(text)
        from repro.compat import default_rng

        rng = default_rng(3)
        for _ in range(30):
            a, b = int(rng.integers(0, 2)), int(rng.integers(0, 2))
            got = dut.step({"a": a, "b": b})
            expect = ref.step({c.id_of("a"): a, c.id_of("b"): b})
            assert got["y"] == expect[c.pos[0]]

    @pytest.mark.parametrize("seed", range(3))
    def test_random_circuits_semantics(self, seed):
        c = random_seq_circuit(3, 10, seed=seed, feedback=2)
        text = write_verilog(c)
        ref = Simulator(c, lanes=1)
        dut = _VerilogEval(text)
        from repro.compat import default_rng

        rng = default_rng(seed)
        po_names = {
            po: re.sub(r"[^A-Za-z0-9_]", "_", c.name_of(po)) for po in c.pos
        }
        for _ in range(25):
            frame = {f"x{i}": int(rng.integers(0, 2)) for i in range(3)}
            ref_frame = {c.id_of(n): v for n, v in frame.items()}
            got = dut.step(frame)
            expect = ref.step(ref_frame)
            for po, vname in po_names.items():
                assert got[vname] == expect[po], seed
