"""Tests for the BLIF reader/writer."""

import pytest

from repro.netlist.blif import BlifError, read_blif, write_blif
from repro.netlist.graph import NodeKind

SIMPLE = """
.model simple
.inputs a b
.outputs f
.names a b f
11 1
.end
"""

SEQUENTIAL = """
.model seq
.inputs x
.outputs y
.latch n q re clk 0
.names x q n
11 1
.names n y
1 1
.end
"""

LATCH_CHAIN = """
.model chain
.inputs x
.outputs y
.latch x q1 re clk 0
.latch q1 q2 re clk 0
.names q2 y
1 1
.end
"""

OFFSET_COVER = """
.model offs
.inputs a b
.outputs f
.names a b f
00 0
.end
"""


class TestReader:
    def test_simple_and(self):
        c, _info = read_blif(SIMPLE)
        assert c.stats() == {"pis": 2, "pos": 1, "gates": 1, "ffs": 0}
        g = c.id_of("f")
        assert c.func(g).eval([1, 1]) == 1
        assert c.func(g).eval([0, 1]) == 0

    def test_latch_becomes_edge_weight(self):
        c, info = read_blif(SEQUENTIAL)
        n = c.id_of("n")
        # gate n reads q = latch(n): self-loop with weight 1
        weights = {(s, d): w for s, d, w in c.edges()}
        assert weights[(n, n)] == 1
        assert info.initial_values["q"] == "0"

    def test_latch_chain_accumulates(self):
        c, _ = read_blif(LATCH_CHAIN)
        y_gate = c.id_of("y")
        pin = c.fanins(y_gate)[0]
        assert c.kind(pin.src) is NodeKind.PI
        assert pin.weight == 2

    def test_offset_cover(self):
        c, _ = read_blif(OFFSET_COVER)
        f = c.func(c.id_of("f"))
        # f = NOT(a'b') = a | b
        assert [f.eval([a, b]) for a, b in [(0, 0), (1, 0), (0, 1), (1, 1)]] == [
            0,
            1,
            1,
            1,
        ]

    def test_po_name_collision_resolved(self):
        c, _ = read_blif(SIMPLE)
        po = c.pos[0]
        assert c.name_of(po) in ("f@po", "f")
        assert c.kind(po) is NodeKind.PO

    def test_undriven_signal(self):
        with pytest.raises(BlifError):
            read_blif(".model m\n.inputs a\n.outputs f\n.end\n")

    def test_double_driver(self):
        bad = """
.model m
.inputs a
.outputs f
.names a f
1 1
.names a f
0 1
.end
"""
        with pytest.raises(BlifError):
            read_blif(bad)

    def test_mixed_cover_rejected(self):
        bad = """
.model m
.inputs a
.outputs f
.names a f
1 1
0 0
.end
"""
        with pytest.raises(BlifError):
            read_blif(bad)

    def test_combinational_cycle_rejected(self):
        bad = """
.model m
.inputs a
.outputs f
.names g f
1 1
.names f g
1 1
.end
"""
        with pytest.raises(BlifError):
            read_blif(bad)

    def test_constant_node(self):
        text = """
.model m
.inputs a
.outputs f
.names one
1
.names a one f
11 1
.end
"""
        c, _ = read_blif(text)
        one = c.id_of("one")
        assert c.func(one).n == 0
        assert c.func(one).bits == 1

    def test_continuation_lines(self):
        text = ".model m\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n"
        c, _ = read_blif(text)
        assert len(c.pis) == 2


class TestWriter:
    @pytest.mark.parametrize("source", [SIMPLE, SEQUENTIAL, LATCH_CHAIN, OFFSET_COVER])
    def test_roundtrip_structure(self, source):
        c1, _ = read_blif(source)
        text = write_blif(c1)
        c2, _ = read_blif(text)
        assert c1.stats()["pis"] == c2.stats()["pis"]
        assert c1.stats()["pos"] == c2.stats()["pos"]
        assert c1.n_ffs == c2.n_ffs

    def test_roundtrip_function(self):
        c1, _ = read_blif(SIMPLE)
        c2, _ = read_blif(write_blif(c1))
        f1 = c1.func(c1.id_of("f"))
        f2 = c2.func(c2.id_of("f"))
        assert f1 == f2

    def test_emits_latches_for_weights(self):
        c, _ = read_blif(LATCH_CHAIN)
        text = write_blif(c)
        assert text.count(".latch") == 2
