"""End-to-end integration tests: the complete flow, file formats included.

These mirror what a user actually does: generate or read a circuit, map
it with each algorithm, post-process with pipelining + retiming (+
register minimization), write and reread BLIF at each stage, and verify
behaviour all the way through.
"""

import pytest

import repro
from repro.bench.fsm import fsm_to_circuit, random_fsm, simulate_fsm_circuit
from repro.bench.suite import build
from repro.netlist.stamin import machines_equivalent, minimize_states
from repro.retime.mdr import min_feasible_period


class TestPublicApi:
    def test_lazy_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_dir_lists_exports(self):
        assert "turbosyn" in dir(repro)

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.not_a_thing


class TestFullFlow:
    @pytest.fixture(scope="class")
    def subject(self):
        fsm = random_fsm("itg", 8, 4, 3, seed=33, split_depth=3)
        return fsm, fsm_to_circuit(fsm)

    def test_state_minimization_front_end(self, subject):
        fsm, _ = subject
        reduced = minimize_states(fsm)
        assert machines_equivalent(fsm, reduced, steps=300, seed=1)
        circuit = fsm_to_circuit(reduced)
        assert simulate_fsm_circuit(reduced, circuit, steps=100, seed=2)

    def test_three_mappers_ordering(self, subject):
        _, circuit = subject
        fs = repro.flowsyn_s(circuit, k=5)
        tm = repro.turbomap(circuit, k=5)
        ts = repro.turbosyn(circuit, k=5, upper_bound=tm.phi)
        assert ts.phi <= tm.phi
        assert ts.phi <= fs.phi
        for result in (fs, tm, ts):
            assert min_feasible_period(result.mapped) <= result.phi
            assert repro.simulation_equivalent(
                circuit, result.mapped, cycles=60, warmup=12
            )

    def test_retime_and_regmin(self, subject):
        from repro.verify.equiv import retiming_consistent

        _, circuit = subject
        ts = repro.turbosyn(circuit, k=5)
        plain = repro.pipeline_and_retime(ts.mapped)
        lean = repro.pipeline_and_retime(ts.mapped, minimize_ffs=True)
        assert lean.circuit.clock_period() <= plain.phi
        assert lean.circuit.n_ffs <= plain.circuit.n_ffs
        # State machines do not resynchronize from mismatched resets, so
        # retiming is validated by its structural certificate (see
        # verify.equiv.retiming_consistent) instead of simulation.
        assert retiming_consistent(ts.mapped, lean.circuit, lean.retiming.r)

    def test_blif_through_the_flow(self, subject, tmp_path):
        _, circuit = subject
        src = tmp_path / "subject.blif"
        repro.write_blif_file(circuit, str(src))
        reread, _info = repro.read_blif_file(str(src))
        ts = repro.turbosyn(reread, k=5)
        out = tmp_path / "mapped.blif"
        repro.write_blif_file(ts.mapped, str(out))
        final, _ = repro.read_blif_file(str(out))
        assert final.is_k_bounded(5)
        assert min_feasible_period(final) <= ts.phi


class TestResetSynchronizedFlow:
    """End-to-end behavioural verification through every transformation.

    Sequential cuts and retiming both perturb initial states; an explicit
    reset input provides a synchronizing sequence that makes the whole
    flow checkable by simulation (the strongest end-to-end evidence this
    project produces).
    """

    ONES = (1 << 64) - 1

    @pytest.fixture(scope="class")
    def subject(self):
        fsm = random_fsm("rsty", 8, 4, 3, seed=41, split_depth=3)
        return fsm_to_circuit(fsm, with_reset=True)

    def test_mapped_equivalent_after_reset(self, subject):
        ts = repro.turbosyn(subject, k=5)
        assert repro.simulation_equivalent(
            subject,
            ts.mapped,
            cycles=80,
            warmup=24,
            sync_inputs={"rst": self.ONES},
            sync_cycles=12,
        )

    def test_retimed_equivalent_after_reset(self, subject):
        ts = repro.turbosyn(subject, k=5)
        pipe = repro.pipeline_and_retime(ts.mapped)
        assert repro.simulation_equivalent(
            subject,
            pipe.circuit,
            cycles=90,
            warmup=32,
            po_lags=pipe.po_lags,
            sync_inputs={"rst": self.ONES},
            sync_cycles=16,
        )

    def test_flowsyn_s_equivalent_after_reset(self, subject):
        fs = repro.flowsyn_s(subject, k=5)
        assert repro.simulation_equivalent(
            subject,
            fs.mapped,
            cycles=80,
            warmup=24,
            sync_inputs={"rst": self.ONES},
            sync_cycles=12,
        )


class TestSuiteSmoke:
    @pytest.mark.parametrize("name", ["bbara", "s838"])
    def test_suite_circuit_full_flow(self, name):
        from repro.core.expanded import sequential_cone_function
        from repro.verify.equiv import retiming_consistent

        circuit = build(name)
        ts = repro.turbosyn(circuit, k=5)
        # The suite circuits carry no reset input, so behavioural
        # simulation from power-up is not meaningful across sequential
        # cuts (initial-state caveat — the reset-synchronized flow above
        # covers simulation).  Check the per-LUT cone functions exactly
        # instead: every non-decomposition LUT must equal the sequential
        # cone function of its cut.
        checked = 0
        for g in ts.mapped.gates:
            lut_name = ts.mapped.name_of(g)
            if "~s" in lut_name or lut_name not in circuit:
                continue
            fanin_names = [ts.mapped.name_of(p.src) for p in ts.mapped.fanins(g)]
            if any("~s" in n or n not in circuit for n in fanin_names):
                continue  # reads a decomposition-tree LUT: no subject twin
            subject = circuit.id_of(lut_name)
            cut = [
                (circuit.id_of(n), p.weight)
                for n, p in zip(fanin_names, ts.mapped.fanins(g))
            ]
            assert sequential_cone_function(circuit, subject, cut) == ts.mapped.func(g)
            checked += 1
            if checked >= 40:
                break
        assert checked > 10
        # Retiming is certified structurally.
        pipe = repro.pipeline_and_retime(ts.mapped)
        assert pipe.circuit.clock_period() <= ts.phi
        assert retiming_consistent(ts.mapped, pipe.circuit, pipe.retiming.r)
