"""Tests for the VCD trace writer."""

import pytest

from repro.netlist.graph import SeqCircuit
from repro.verify.simulate import Simulator
from repro.verify.vcd import VcdTracer, _short_id, trace_random_run
from tests.helpers import XOR2


def toggler():
    c = SeqCircuit("toggle")
    en = c.add_pi("en")
    q = c.add_gate_placeholder("q", XOR2)
    c.set_fanins(q, [(q, 1), (en, 0)])
    c.add_po("o", q)
    return c, en


class TestShortId:
    def test_unique_prefix(self):
        ids = [_short_id(i) for i in range(200)]
        assert len(set(ids)) == 200
        assert all(" " not in i for i in ids)


class TestTracer:
    def test_header_and_samples(self):
        c, en = toggler()
        sim = Simulator(c, lanes=1)
        tracer = VcdTracer(c, signals=["en", "o"])
        for v in [1, 0, 1]:
            outs = sim.step({en: v})
            tracer.sample({en: v}, sim, outs)
        text = tracer.render()
        assert "$enddefinitions $end" in text
        assert "$var wire 1" in text
        assert text.count("#") >= 6  # rising + falling clock per cycle

    def test_value_changes_only_on_change(self):
        c, en = toggler()
        sim = Simulator(c, lanes=1)
        tracer = VcdTracer(c, signals=["en"])
        for v in [1, 1, 1]:
            outs = sim.step({en: v})
            tracer.sample({en: v}, sim, outs)
        text = tracer.render()
        # 'en' changes once (0->1 at t=0), not three times
        var_id = text.split("$var wire 1 ")[1].split(" ")[0]
        assert text.count(f"1{var_id}\n") == 1

    def test_default_signals_are_ios(self):
        c, _ = toggler()
        tracer = VcdTracer(c)
        assert tracer.names == ["en", "o"]

    def test_unknown_signal_rejected(self):
        c, _ = toggler()
        with pytest.raises(ValueError):
            VcdTracer(c, signals=["nope"])

    def test_internal_gate_traceable(self):
        c, en = toggler()
        sim = Simulator(c, lanes=1)
        tracer = VcdTracer(c, signals=["q"])
        outs = sim.step({en: 1})
        tracer.sample({en: 1}, sim, outs)
        assert tracer._samples[0]["q"] == 1

    def test_write_file(self, tmp_path):
        c, _ = toggler()
        tracer = trace_random_run(c, cycles=10, seed=1)
        path = tmp_path / "run.vcd"
        tracer.write(str(path))
        assert path.read_text().startswith("$date")

    def test_trace_random_run_lengths(self):
        c, _ = toggler()
        tracer = trace_random_run(c, cycles=7, seed=2)
        assert len(tracer._samples) == 7
