"""Tests for the bit-parallel sequential simulator."""

import pytest

from repro.netlist.graph import SeqCircuit
from repro.verify.simulate import Simulator, random_stimulus
from tests.helpers import AND2, BUF, XOR2


def delay_chain():
    c = SeqCircuit("delay")
    x = c.add_pi("x")
    g = c.add_gate("g", BUF, [(x, 2)])
    c.add_po("o", g)
    return c, x


def toggler():
    """q' = q XOR en: classic toggle flip-flop."""
    c = SeqCircuit("toggle")
    en = c.add_pi("en")
    q = c.add_gate_placeholder("q", XOR2)
    c.set_fanins(q, [(q, 1), (en, 0)])
    c.add_po("o", q)
    return c, en


class TestSimulator:
    def test_pure_delay(self):
        c, x = delay_chain()
        sim = Simulator(c, lanes=1)
        seq = [1, 0, 1, 1, 0, 0, 1]
        out = [sim.step({x: v})[c.pos[0]] for v in seq]
        assert out == [0, 0] + seq[:-2]

    def test_toggle_counts_parity(self):
        c, en = toggler()
        sim = Simulator(c, lanes=1)
        seq = [1, 1, 0, 1, 0, 0, 1, 1]
        out = [sim.step({en: v})[c.pos[0]] for v in seq]
        expected = []
        q = 0
        for v in seq:
            q = q ^ v
            expected.append(q)
        assert out == expected

    def test_lanes_independent(self):
        c, en = toggler()
        sim = Simulator(c, lanes=2)
        # lane 0 toggles every cycle, lane 1 never.
        outs = [sim.step({en: 0b01})[c.pos[0]] for _ in range(4)]
        assert [o & 1 for o in outs] == [1, 0, 1, 0]
        assert [(o >> 1) & 1 for o in outs] == [0, 0, 0, 0]

    def test_combinational_gate(self):
        c = SeqCircuit()
        a, b = c.add_pi("a"), c.add_pi("b")
        g = c.add_gate("g", AND2, [(a, 0), (b, 0)])
        c.add_po("o", g)
        sim = Simulator(c, lanes=4)
        out = sim.step({a: 0b1100, b: 0b1010})
        assert out[c.pos[0]] == 0b1000

    def test_reset(self):
        c, en = toggler()
        sim = Simulator(c, lanes=1)
        sim.step({en: 1})
        sim.reset()
        assert sim.step({en: 0})[c.pos[0]] == 0

    def test_registered_po(self):
        c = SeqCircuit()
        x = c.add_pi("x")
        g = c.add_gate("g", BUF, [(x, 0)])
        c.add_po("o", g, 1)
        sim = Simulator(c, lanes=1)
        assert sim.step({x: 1})[c.pos[0]] == 0
        assert sim.step({x: 0})[c.pos[0]] == 1

    def test_run_convenience(self):
        c, x = delay_chain()
        sim = Simulator(c, lanes=1)
        frames = [{x: 1}, {x: 0}, {x: 1}]
        outs = sim.run(frames)
        assert [o[c.pos[0]] for o in outs] == [0, 0, 1]

    def test_bad_lanes(self):
        c, _ = delay_chain()
        with pytest.raises(ValueError):
            Simulator(c, lanes=0)


class TestRandomStimulus:
    def test_deterministic(self):
        c, _ = toggler()
        a = random_stimulus(c, 5, seed=1, lanes=8)
        b = random_stimulus(c, 5, seed=1, lanes=8)
        assert a == b

    def test_values_within_lanes(self):
        c, _ = toggler()
        frames = random_stimulus(c, 10, seed=2, lanes=5)
        for frame in frames:
            for value in frame.values():
                assert 0 <= value < (1 << 5)
