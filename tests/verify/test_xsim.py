"""Tests for ternary simulation and synchronizing-sequence certification."""


from repro.bench.fsm import fsm_to_circuit, random_fsm
from repro.boolfn.truthtable import TruthTable
from repro.netlist.graph import SeqCircuit
from repro.verify.xsim import ONE, X, ZERO, XSimulator, _gate_eval, synchronizes
from tests.helpers import AND2, BUF, OR2, XOR2


class TestGateEval:
    def test_known_inputs(self):
        assert _gate_eval(AND2, [ONE, ONE]) == ONE
        assert _gate_eval(AND2, [ONE, ZERO]) == ZERO

    def test_controlling_value_dominates_x(self):
        assert _gate_eval(AND2, [ZERO, X]) == ZERO
        assert _gate_eval(OR2, [ONE, X]) == ONE

    def test_non_controlling_propagates_x(self):
        assert _gate_eval(AND2, [ONE, X]) == X
        assert _gate_eval(XOR2, [ONE, X]) == X

    def test_redundant_input_resolves(self):
        # f(a, b) = a (ignores b): X on b must not poison the output.
        f = TruthTable.var(0, 2)
        assert _gate_eval(f, [ONE, X]) == ONE

    def test_xor_of_same_unknown_stays_x(self):
        # ternary is per-input (no correlation tracking): conservative X.
        assert _gate_eval(XOR2, [X, X]) == X


class TestXSimulator:
    def test_registers_start_unknown(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        g = c.add_gate("g", BUF, [(a, 2)])
        c.add_po("o", g)
        sim = XSimulator(c)
        assert sim.unknown_state_bits() == 2
        out = sim.step({a: ONE})
        assert out[c.pos[0]] == X  # history still unknown

    def test_registers_fill_with_knowns(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        g = c.add_gate("g", BUF, [(a, 2)])
        c.add_po("o", g)
        sim = XSimulator(c)
        sim.step({a: ONE})
        sim.step({a: ZERO})
        assert sim.unknown_state_bits() == 0
        assert sim.step({a: ZERO})[c.pos[0]] == ONE

    def test_loop_without_reset_never_synchronizes(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        g = c.add_gate_placeholder("g", XOR2)
        c.set_fanins(g, [(g, 1), (a, 0)])
        c.add_po("o", g)
        sim = XSimulator(c)
        for _ in range(10):
            sim.step({a: ZERO})
        assert sim.unknown_state_bits() == 1  # toggler keeps its X


class TestSynchronizes:
    def test_reset_pulse_certified(self):
        fsm = random_fsm("sync", 6, 3, 2, seed=5, split_depth=2)
        circuit = fsm_to_circuit(fsm, with_reset=True)
        report = synchronizes(circuit, [{"rst": 1}] * 4)
        assert report.synchronized
        assert report.unknown_bits == 0

    def test_without_reset_fails(self):
        fsm = random_fsm("nosync", 6, 3, 2, seed=5, split_depth=2)
        circuit = fsm_to_circuit(fsm, with_reset=False)
        report = synchronizes(circuit, [{} for _ in range(8)])
        assert not report.synchronized
        assert report.unknown_bits > 0

    def test_certificate_transfers_to_mapped_network(self):
        """The property the equivalence flow relies on: after the reset
        pulse, the TurboSYN-mapped network's *outputs* are fully
        determined — residual X state bits (artifacts of ternary
        conservatism over reconvergent sequential cuts) never reach a PO.
        """
        from repro.core.turbosyn import turbosyn
        from repro.verify.xsim import outputs_synchronized

        fsm = random_fsm("syncmap", 6, 3, 2, seed=8, split_depth=2)
        circuit = fsm_to_circuit(fsm, with_reset=True)
        mapped = turbosyn(circuit, k=5).mapped
        subject = synchronizes(circuit, [{"rst": 1}] * 6)
        assert subject.synchronized
        assert outputs_synchronized(
            mapped, [{"rst": 1}] * 6, probe_cycles=10
        )
