"""Tests for unrolled and simulation-based equivalence checking."""

import pytest

from repro.netlist.graph import SeqCircuit
from repro.verify.equiv import simulation_equivalent, unroll, unrolled_equivalent
from tests.helpers import AND2, BUF, XOR2


def toggler(name="toggle"):
    c = SeqCircuit(name)
    en = c.add_pi("en")
    q = c.add_gate_placeholder("q", XOR2)
    c.set_fanins(q, [(q, 1), (en, 0)])
    c.add_po("o", q)
    return c


def toggler_with_buffer():
    """Same behaviour as toggler, realized with an extra buffer."""
    c = SeqCircuit("toggle_buf")
    en = c.add_pi("en")
    q = c.add_gate_placeholder("q", XOR2)
    b = c.add_gate_placeholder("buf", BUF)
    c.set_fanins(b, [(q, 1)])
    c.set_fanins(q, [(b, 0), (en, 0)])
    c.add_po("o", q)
    return c


def inverter_toggler():
    """Behaviourally different: q' = NOT(q XOR en)."""
    from repro.boolfn.truthtable import TruthTable

    NXOR = TruthTable.from_function(2, lambda a, b: a == b)
    c = SeqCircuit("toggle_inv")
    en = c.add_pi("en")
    q = c.add_gate_placeholder("q", NXOR)
    c.set_fanins(q, [(q, 1), (en, 0)])
    c.add_po("o", q)
    return c


class TestUnroll:
    def test_shapes(self):
        c = toggler()
        u = unroll(c, 3)
        assert len(u.pis) == 3
        assert len(u.pos) == 3
        assert all(w == 0 for *_e, w in u.edges())

    def test_init_zero(self):
        c = toggler()
        u = unroll(c, 1)
        # o@0 = 0 XOR en@0 = en@0
        from repro.comb.cone import cone_function
        from repro.boolfn.truthtable import TruthTable

        src = u.fanins(u.id_of("o@0"))[0].src
        f = cone_function(u, src, list(u.pis))
        assert f == TruthTable.var(0, 1)

    def test_bad_cycles(self):
        with pytest.raises(ValueError):
            unroll(toggler(), 0)


class TestUnrolledEquivalent:
    def test_equivalent_variants(self):
        assert unrolled_equivalent(toggler(), toggler_with_buffer(), cycles=4)

    def test_inequivalent_detected(self):
        assert not unrolled_equivalent(toggler(), inverter_toggler(), cycles=3)

    def test_lag_alignment(self):
        a = SeqCircuit("direct")
        x = a.add_pi("x")
        g = a.add_gate("g", BUF, [(x, 0)])
        a.add_po("o", g)
        b = SeqCircuit("delayed")
        x2 = b.add_pi("x")
        g2 = b.add_gate("g", BUF, [(x2, 1)])
        b.add_po("o", g2)
        assert not unrolled_equivalent(a, b, cycles=3)
        assert unrolled_equivalent(a, b, cycles=3, po_lags={"o": 1})

    def test_width_guard(self):
        c = SeqCircuit("wide")
        pis = [c.add_pi(f"x{i}") for i in range(10)]
        g = c.add_gate("g", AND2, [(pis[0], 0), (pis[1], 0)])
        c.add_po("o", g)
        with pytest.raises(ValueError):
            unrolled_equivalent(c, c.copy("w2"), cycles=3)

    def test_mismatched_pis_rejected(self):
        a = toggler()
        b = SeqCircuit("other")
        b.add_pi("enable")
        g = b.add_gate("g", BUF, [(0, 0)])
        b.add_po("o", g)
        with pytest.raises(ValueError):
            unrolled_equivalent(a, b, cycles=2)


class TestSimulationEquivalent:
    def test_equivalent_variants(self):
        assert simulation_equivalent(
            toggler(), toggler_with_buffer(), cycles=40, warmup=4
        )

    def test_inequivalent_detected(self):
        assert not simulation_equivalent(
            toggler(), inverter_toggler(), cycles=40, warmup=4
        )

    def test_po_name_mismatch_rejected(self):
        a = toggler()
        b = toggler()
        # rename b's PO by rebuilding
        c = SeqCircuit("renamed")
        en = c.add_pi("en")
        q = c.add_gate_placeholder("q", XOR2)
        c.set_fanins(q, [(q, 1), (en, 0)])
        c.add_po("different", q)
        with pytest.raises(ValueError):
            simulation_equivalent(a, c, cycles=10)

    def test_lag_alignment(self):
        a = SeqCircuit("direct")
        x = a.add_pi("x")
        g = a.add_gate("g", BUF, [(x, 0)])
        a.add_po("o", g)
        b = SeqCircuit("delayed")
        x2 = b.add_pi("x")
        g2 = b.add_gate("g", BUF, [(x2, 2)])
        b.add_po("o", g2)
        assert simulation_equivalent(a, b, cycles=30, warmup=4, po_lags={"o": 2})
        assert not simulation_equivalent(a, b, cycles=30, warmup=4)
