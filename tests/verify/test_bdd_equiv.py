"""Tests for BDD-based combinational equivalence."""

import pytest

from repro.boolfn.bdd import BDD
from repro.comb.flowmap import flowmap
from repro.comb.flowsyn import flowsyn
from repro.verify.bdd_equiv import (
    BddBlowup,
    build_po_bdds,
    combinational_equivalent,
)
from repro.netlist.graph import SeqCircuit
from tests.helpers import AND2, NOT1, OR2, XOR2, random_dag, xor_chain


class TestBuildPoBdds:
    def test_simple_function(self):
        c = SeqCircuit("f")
        a, b = c.add_pi("a"), c.add_pi("b")
        g = c.add_gate("g", XOR2, [(a, 0), (b, 0)])
        c.add_po("o", g)
        manager = BDD(2)
        out = build_po_bdds(c, manager, {"a": 0, "b": 1})
        f = out["o"]
        assert manager.eval(f, [0, 1]) == 1
        assert manager.eval(f, [1, 1]) == 0

    def test_sequential_rejected(self):
        c = SeqCircuit("s")
        a = c.add_pi("a")
        g = c.add_gate("g", AND2, [(a, 0), (a, 1)])
        c.add_po("o", g)
        with pytest.raises(ValueError):
            build_po_bdds(c, BDD(1), {"a": 0})

    def test_budget_enforced(self):
        # A wide XOR chain has a small BDD, so force a tiny budget.
        c = xor_chain(8)
        manager = BDD(8)
        pi_var = {c.name_of(p): i for i, p in enumerate(c.pis)}
        with pytest.raises(BddBlowup):
            build_po_bdds(c, manager, pi_var, node_budget=3)


class TestCombinationalEquivalent:
    @pytest.mark.parametrize("seed", range(4))
    def test_flowmap_mapping_equivalent(self, seed):
        c = random_dag(5, 18, seed=seed)
        mapped = flowmap(c, k=4).mapped
        assert combinational_equivalent(c, mapped)

    def test_flowsyn_mapping_equivalent(self):
        c = xor_chain(12)
        mapped = flowsyn(c, k=3).mapped
        assert combinational_equivalent(c, mapped)

    def test_wide_circuit_beyond_truth_tables(self):
        # 30 PIs: dense tables are impossible; BDDs are trivial.
        c = xor_chain(30)
        mapped = flowmap(c, k=5).mapped
        assert combinational_equivalent(c, mapped)

    def test_detects_difference(self):
        c1 = SeqCircuit("c1")
        a, b = c1.add_pi("a"), c1.add_pi("b")
        g = c1.add_gate("g", AND2, [(a, 0), (b, 0)])
        c1.add_po("o", g)
        c2 = SeqCircuit("c2")
        a2, b2 = c2.add_pi("a"), c2.add_pi("b")
        g2 = c2.add_gate("g", OR2, [(a2, 0), (b2, 0)])
        c2.add_po("o", g2)
        assert not combinational_equivalent(c1, c2)

    def test_pi_mismatch_rejected(self):
        c1 = SeqCircuit("c1")
        c1.add_pi("a")
        g1 = c1.add_gate("g", NOT1, [(0, 0)])
        c1.add_po("o", g1)
        c2 = SeqCircuit("c2")
        c2.add_pi("b")
        g2 = c2.add_gate("g", NOT1, [(0, 0)])
        c2.add_po("o", g2)
        with pytest.raises(ValueError):
            combinational_equivalent(c1, c2)
