"""Brute-force optimality oracle for the sequential label computation.

The flow-based label solver answers "does a K-cut of height <= L exist in
E_v?" through the paper's partial flow network.  This oracle answers the
same question by *exhaustively enumerating* K-feasible cuts of the
expanded circuit (bounded register depth) and running the same monotone
iteration; on small circuits the two must agree — and the enumeration
also certifies the final labels are genuinely optimal, not just a
fixpoint of the update rule.
"""

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import pytest

from repro.core.labels import LabelSolver
from repro.netlist.graph import NodeKind, SeqCircuit
from tests.helpers import AND2, random_seq_circuit

Copy = Tuple[int, int]


def enumerate_expanded_cuts(
    circuit: SeqCircuit,
    v: int,
    k: int,
    w_cap: int,
    size_cap: int = 4000,
) -> List[FrozenSet[Copy]]:
    """All K-feasible cuts of ``E_v`` with copies limited to ``w <= w_cap``.

    Bottom-up merge over the copy DAG (deepest copies act as leaves).
    Exponential; only for oracle duty on tiny circuits.
    """
    memo: Dict[Copy, List[FrozenSet[Copy]]] = {}

    def cuts_of(copy: Copy) -> List[FrozenSet[Copy]]:
        cached = memo.get(copy)
        if cached is not None:
            return cached
        u, w = copy
        kind = circuit.kind(u)
        result: List[FrozenSet[Copy]] = [frozenset([copy])]
        if kind is NodeKind.GATE:
            fanins = circuit.fanins(u)
            child_cut_sets = []
            expandable = True
            for pin in fanins:
                child = (pin.src, w + pin.weight)
                if child[1] > w_cap:
                    expandable = False
                    break
                child_cut_sets.append(cuts_of(child))
            if expandable:
                acc: List[FrozenSet[Copy]] = [frozenset()]
                for cut_set in child_cut_sets:
                    nxt = []
                    seen: Set[FrozenSet[Copy]] = set()
                    for base in acc:
                        for cut in cut_set:
                            merged = base | cut
                            if len(merged) <= k and merged not in seen:
                                seen.add(merged)
                                nxt.append(merged)
                    acc = nxt[:size_cap]
                for cut in acc:
                    if cut != frozenset([copy]):
                        result.append(cut)
        memo[copy] = result[:size_cap]
        return memo[copy]

    return [c for c in cuts_of((v, 0)) if c != frozenset([(v, 0)])]


def brute_force_labels(
    circuit: SeqCircuit,
    k: int,
    phi: int,
    w_cap: int = 3,
    max_rounds: int = 64,
) -> Optional[List[int]]:
    """Monotone label iteration with exhaustive cut checks.

    Returns labels on convergence, ``None`` when labels keep growing
    (positive loop at this phi).
    """
    labels = [0] * len(circuit)
    for g in circuit.gates:
        labels[g] = 1
    all_cuts = {
        g: enumerate_expanded_cuts(circuit, g, k, w_cap) for g in circuit.gates
    }
    limit = max(labels) + phi * (w_cap + 2) + len(circuit.gates) + 4
    for _ in range(max_rounds):
        changed = False
        for v in circuit.gates:
            pins = circuit.fanins(v)
            if not pins:
                continue
            big_l = max(labels[p.src] - phi * p.weight for p in pins)
            if big_l < labels[v]:
                continue
            ok = False
            for cut in all_cuts[v]:
                # A cut is only usable when every PI copy it contains is
                # genuinely a leaf; gate copies at the w_cap boundary act
                # as leaves conservatively (matching the solver's frontier
                # treatment is not needed: the oracle may only *miss*
                # deeper cuts, so agreement still certifies the solver).
                height = max(labels[u] - phi * w + 1 for (u, w) in cut)
                if height <= big_l:
                    ok = True
                    break
            new = big_l if ok else big_l + 1
            if new > labels[v]:
                labels[v] = new
                changed = True
        if not changed:
            return labels
        if max(labels) > limit:
            return None
    return None


def tiny_ring(gates, ffs, func=AND2, with_pi=True):
    c = SeqCircuit("tiny")
    xs = [c.add_pi(f"x{i}") for i in range(gates)] if with_pi else []
    g = [c.add_gate_placeholder(f"g{i}", func) for i in range(gates)]
    for i in range(gates):
        w = ffs if i == 0 else 0
        pins = [(g[(i - 1) % gates], w)]
        if with_pi:
            pins.append((xs[i], 0))
        else:
            pins.append((g[(i - 1) % gates], w))
        c.set_fanins(g[i], pins)
    c.add_po("o", g[-1])
    c.check()
    return c


class TestAgainstBruteForce:
    @pytest.mark.parametrize(
        "gates,ffs,k,phi",
        [(3, 1, 3, 1), (3, 1, 3, 2), (4, 1, 3, 2), (4, 2, 3, 1), (4, 2, 4, 1)],
    )
    def test_ring_feasibility_agrees(self, gates, ffs, k, phi):
        c = tiny_ring(gates, ffs)
        solver = LabelSolver(c, k=k, phi=phi).run()
        oracle = brute_force_labels(c, k, phi)
        assert solver.feasible == (oracle is not None), (gates, ffs, k, phi)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_labels_agree(self, seed):
        c = random_seq_circuit(2, 7, seed=seed, feedback=2)
        for phi in (1, 2):
            solver = LabelSolver(c, k=3, phi=phi, extra_depth=2).run()
            oracle = brute_force_labels(c, 3, phi)
            if oracle is None or not solver.feasible:
                # Feasibility verdicts must agree even when one side
                # cannot produce labels.
                assert solver.feasible == (oracle is not None), (seed, phi)
                continue
            # The solver must never claim a better (smaller) label than
            # the exhaustive optimum, and at w_cap-representable depths it
            # should match it exactly.
            for g in c.gates:
                assert solver.labels[g] >= oracle[g], (seed, phi, c.name_of(g))

    @pytest.mark.parametrize("seed", range(6))
    def test_frontier_construction_matches_oracle(self, seed):
        """The paper's extra_depth=0 network agrees on these instances."""
        c = random_seq_circuit(2, 7, seed=seed, feedback=2)
        for phi in (1, 2):
            fast = LabelSolver(c, k=3, phi=phi, extra_depth=0).run()
            deep = LabelSolver(c, k=3, phi=phi, extra_depth=2).run()
            assert fast.feasible == deep.feasible
            if fast.feasible:
                for g in c.gates:
                    assert fast.labels[g] >= deep.labels[g]
