"""Tests for the SeqMapII-style baseline schedule."""

import pytest

from repro.core.seqmap2 import SeqMap2Solver, seqmap2_min_phi
from repro.core.turbomap import turbomap
from repro.core.labels import LabelSolver
from repro.netlist.graph import SeqCircuit
from tests.helpers import AND2, random_seq_circuit, xor_chain


def and_ring(num_gates, num_ffs=1):
    c = SeqCircuit("andring")
    xs = [c.add_pi(f"x{i}") for i in range(num_gates)]
    g = [c.add_gate_placeholder(f"g{i}", AND2) for i in range(num_gates)]
    for i in range(num_gates):
        w = num_ffs if i == 0 else 0
        c.set_fanins(g[i], [(g[(i - 1) % num_gates], w), (xs[i], 0)])
    c.add_po("o", g[-1])
    c.check()
    return c


class TestDecisionEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_same_verdicts_as_turbomap_labels(self, seed):
        c = random_seq_circuit(3, 12, seed=seed, feedback=3)
        for phi in (1, 2, 3):
            fast = LabelSolver(c, k=3, phi=phi).run().feasible
            slow = SeqMap2Solver(c, k=3, phi=phi).run().feasible
            assert fast == slow, (seed, phi)

    def test_same_optimum_as_turbomap(self):
        for seed in range(3):
            c = random_seq_circuit(3, 12, seed=seed, feedback=2)
            tm = turbomap(c, k=3)
            sm = seqmap2_min_phi(c, k=3)
            assert sm.phi == tm.phi

    def test_same_labels_at_optimum(self):
        c = and_ring(6)
        tm = turbomap(c, k=4)
        sm = seqmap2_min_phi(c, k=4)
        assert sm.phi == tm.phi
        for g in c.gates:
            assert sm.labels[g] == tm.labels[g]


class TestCost:
    def test_infeasible_probe_is_quadratic(self):
        c = and_ring(10)
        slow = SeqMap2Solver(c, k=3, phi=1).run()
        assert not slow.feasible
        assert slow.stats.rounds >= 10 * 10
        fast = LabelSolver(c, k=3, phi=1, pld=True).run()
        assert not fast.feasible
        assert fast.stats.rounds < slow.stats.rounds

    def test_no_memoization(self):
        c = xor_chain(6)
        outcome = SeqMap2Solver(c, k=3, phi=1).run()
        assert outcome.feasible
        assert outcome.stats.cache_hits == 0

    def test_phi_validation(self):
        with pytest.raises(ValueError):
            SeqMap2Solver(xor_chain(3), k=3, phi=0)
