"""Tests for expanded circuits (paper Figure 2 machinery)."""

import pytest

from repro.boolfn.truthtable import TruthTable
from repro.core.expanded import (
    ExpansionOverflow,
    expand_partial,
    sequential_cone_function,
)
from repro.netlist.graph import SeqCircuit
from tests.helpers import AND2, BUF, XOR2


def two_stage():
    """x -> g1 =1FF=> g2, PO on g2."""
    c = SeqCircuit()
    x = c.add_pi("x")
    g1 = c.add_gate("g1", BUF, [(x, 0)])
    g2 = c.add_gate("g2", BUF, [(g1, 1)])
    c.add_po("o", g2)
    return c, x, g1, g2


def self_loop():
    """g reads itself through 1 FF and a PI."""
    c = SeqCircuit()
    x = c.add_pi("x")
    g = c.add_gate_placeholder("g", AND2)
    c.set_fanins(g, [(x, 0), (g, 1)])
    c.add_po("o", g)
    return c, x, g


class TestExpandPartial:
    def test_weights_accumulate(self):
        c, x, g1, g2 = two_stage()
        labels = {x: 0, g1: 1, g2: 1}
        height = lambda u, w: labels[u] - 1 * w + 1
        # threshold below g1^1's height (1-1+1=1): expand through it.
        exp = expand_partial(c, g2, 1, height, threshold=0)
        copies = set(exp.interior) | set(exp.leaves) | set(exp.candidates)
        assert (g1, 1) in copies
        assert (x, 1) in copies  # x behind g1's register

    def test_every_path_crosses_w_registers(self):
        # Structural property of E_v: copy (u, w) connects to parents with
        # weight decreasing by the original edge weight.
        c, x, g = self_loop()
        labels = {x: 0, g: 1}
        height = lambda u, w: labels[u] - 1 * w + 1
        exp = expand_partial(c, g, 1, height, threshold=-3)
        for (child, parent) in exp.edges:
            (cu, cw), (pu, pw) = child, parent
            pin = next(p for p in c.fanins(pu) if p.src == cu)
            assert cw == pw + pin.weight

    def test_self_loop_unrolls_until_threshold(self):
        c, x, g = self_loop()
        labels = {x: 0, g: 5}
        phi = 2
        height = lambda u, w: labels[u] - phi * w + 1
        # threshold 3: g^0 (h=6) and g^1 (h=4) interior; g^2 (h=2) frontier.
        exp = expand_partial(c, g, phi, height, threshold=3)
        assert (g, 1) in exp.interior
        assert (g, 2) in exp.leaves
        assert not exp.blocked

    def test_pi_blocks_when_above_threshold(self):
        c, x, g1, g2 = two_stage()
        labels = {x: 0, g1: 1, g2: 1}
        height = lambda u, w: labels[u] - 1 * w + 1
        # threshold -5 forces even x^1 (height 0) to be interior: blocked.
        exp = expand_partial(c, g2, 1, height, threshold=-5)
        assert exp.blocked

    def test_candidate_tier(self):
        c, x, g = self_loop()
        labels = {x: 0, g: 5}
        phi = 2
        height = lambda u, w: labels[u] - phi * w + 1
        exp = expand_partial(c, g, phi, height, threshold=3, extra_depth=1)
        # g^2 (height 2 > floor 1) is now an expandable candidate.
        assert (g, 2) in exp.candidates
        assert (g, 3) in exp.leaves or (g, 3) in exp.candidates

    def test_root_must_be_gate(self):
        c, x, g1, g2 = two_stage()
        with pytest.raises(ValueError):
            expand_partial(c, x, 1, lambda u, w: 0, 0)

    def test_duplicate_pins_produce_no_duplicate_edges(self):
        # g reads the same driver twice through identical register counts:
        # one expansion edge per *distinct* pin, not per wire.
        c = SeqCircuit()
        x = c.add_pi("x")
        d = c.add_gate("d", BUF, [(x, 0)])
        g = c.add_gate("g", AND2, [(d, 1), (d, 1)])
        c.add_po("o", g)
        labels = {x: 0, d: 1, g: 1}
        height = lambda u, w: labels[u] - 1 * w + 1
        exp = expand_partial(c, g, 1, height, threshold=1)
        assert len(exp.edges) == len(set(exp.edges))
        assert ((d, 1), (g, 0)) in exp.edges

    def test_distinct_weights_kept_as_distinct_edges(self):
        c = SeqCircuit()
        x = c.add_pi("x")
        d = c.add_gate("d", BUF, [(x, 0)])
        g = c.add_gate("g", XOR2, [(d, 0), (d, 1)])
        c.add_po("o", g)
        labels = {x: 0, d: 1, g: 1}
        height = lambda u, w: labels[u] - 1 * w + 1
        exp = expand_partial(c, g, 1, height, threshold=1)
        assert ((d, 0), (g, 0)) in exp.edges
        assert ((d, 1), (g, 0)) in exp.edges


class TestExpansionOverflow:
    def _deep_unroll(self):
        # Self-loop with a high root label: ~41 interior copies of g
        # before the frontier drops below the threshold.
        c, x, g = self_loop()
        labels = {x: 0, g: 50}
        height = lambda u, w: labels[u] - 1 * w + 1
        return c, g, height

    def test_overflow_carries_node_name_and_limit(self):
        c, g, height = self._deep_unroll()
        with pytest.raises(ExpansionOverflow) as excinfo:
            expand_partial(c, g, 1, height, threshold=10, max_copies=5)
        assert excinfo.value.node_name == c.name_of(g)
        assert excinfo.value.max_copies == 5
        assert "5 copies" in str(excinfo.value)

    def test_overflow_is_a_runtime_error(self):
        # Existing fault boundaries catch RuntimeError; the typed
        # exception must stay inside that contract.
        assert issubclass(ExpansionOverflow, RuntimeError)

    def test_limit_is_configurable(self):
        c, g, height = self._deep_unroll()
        exp = expand_partial(c, g, 1, height, threshold=10, max_copies=500)
        assert not exp.blocked
        assert len(exp.interior) > 5


class TestSequentialConeFunction:
    def test_single_copy_cut(self):
        c, x, g1, g2 = two_stage()
        f = sequential_cone_function(c, g2, [(g1, 1)])
        assert f == TruthTable.var(0, 1)

    def test_cut_through_registers(self):
        c, x, g1, g2 = two_stage()
        f = sequential_cone_function(c, g2, [(x, 1)])
        assert f == TruthTable.var(0, 1)

    def test_self_loop_unrolled_function(self):
        c, x, g = self_loop()
        # cut = {x^0, x^1, g^2}: g = x0 AND (x@1 AND g@2)
        f = sequential_cone_function(c, g, [(x, 0), (x, 1), (g, 2)])
        expected = (
            TruthTable.var(0, 3) & TruthTable.var(1, 3) & TruthTable.var(2, 3)
        )
        assert f == expected

    def test_distinct_copies_are_distinct_vars(self):
        c = SeqCircuit()
        x = c.add_pi("x")
        g = c.add_gate("g", XOR2, [(x, 0), (x, 1)])
        c.add_po("o", g)
        f = sequential_cone_function(c, g, [(x, 0), (x, 1)])
        assert f == TruthTable.var(0, 2) ^ TruthTable.var(1, 2)

    def test_uncovered_cut_rejected(self):
        c, x, g1, g2 = two_stage()
        with pytest.raises(ValueError):
            sequential_cone_function(c, g2, [])  # reaches PI x uncovered

    def test_too_wide_rejected(self):
        c, x, g = self_loop()
        with pytest.raises(ValueError):
            sequential_cone_function(c, g, [(x, w) for w in range(22)])
