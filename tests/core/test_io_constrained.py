"""Tests for the retiming-only (I/O-constrained) mapping mode.

The paper's Section 2 argues that with pipelining "the clock period of a
circuit is bounded only by the MDR ratio", whereas retiming alone must
also fit the I/O paths.  These tests pin down that difference.
"""


from repro.core.labels import LabelSolver
from repro.core.turbomap import turbomap
from repro.netlist.graph import SeqCircuit
from repro.retime.leiserson import min_period_retiming
from tests.helpers import AND2, BUF, random_seq_circuit, xor_chain


def deep_feedforward(n):
    """A register-free chain: pipelining trivial, retiming-only hard."""
    c = SeqCircuit("deepff")
    pis = [c.add_pi(f"x{i}") for i in range(n)]
    acc = pis[0]
    for i in range(1, n):
        acc = c.add_gate(f"g{i}", AND2, [(acc, 0), (pis[i], 0)])
    c.add_po("out", acc)
    return c


class TestLabelSolverIoMode:
    def test_chain_feasibility_gap(self):
        c = deep_feedforward(17)
        # 16 AND gates, K=5 LUTs pack 4 levels each: depth 4.
        assert LabelSolver(c, k=5, phi=1).run().feasible  # pipelined
        io1 = LabelSolver(c, k=5, phi=1, io_constrained=True).run()
        assert not io1.feasible
        io4 = LabelSolver(c, k=5, phi=4, io_constrained=True).run()
        assert io4.feasible

    def test_failed_po_reported(self):
        c = deep_feedforward(17)
        outcome = LabelSolver(c, k=5, phi=1, io_constrained=True).run()
        assert outcome.failed_scc == [c.pos[0]]

    def test_registered_po_relaxes_constraint(self):
        c = SeqCircuit("regpo")
        x = c.add_pi("x")
        g1 = c.add_gate("g1", BUF, [(x, 0)])
        g2 = c.add_gate("g2", BUF, [(g1, 0)])
        c.add_po("o", g2, 1)  # one register before the PO
        # phi=1: labels l(g1)=1, l(g2)=2; PO sees 2 - 1 = 1 <= 1: feasible.
        assert LabelSolver(c, k=2, phi=1, io_constrained=True).run().feasible


class TestTurbomapPipeliningFlag:
    def test_pipelining_never_worse(self):
        for seed in range(4):
            c = random_seq_circuit(3, 14, seed=seed, feedback=3)
            piped = turbomap(c, k=3, pipelining=True)
            strict = turbomap(c, k=3, pipelining=False)
            assert piped.phi <= strict.phi

    def test_feedforward_gap(self):
        c = deep_feedforward(17)
        assert turbomap(c, k=5, pipelining=True).phi == 1
        assert turbomap(c, k=5, pipelining=False).phi == 4

    def test_strict_result_strictly_retimable(self):
        # The retiming-only optimum must be realizable WITHOUT pipelining.
        c = random_seq_circuit(3, 12, seed=2, feedback=2)
        strict = turbomap(c, k=3, pipelining=False)
        if len(strict.mapped) <= 200:
            result = min_period_retiming(strict.mapped, allow_pipelining=False)
            assert result.period <= strict.phi

    def test_acyclic_strict_equals_lut_depth(self):
        c = xor_chain(9)
        strict = turbomap(c, k=3, pipelining=False)
        from repro.comb.flowmap import flowmap

        assert strict.phi == flowmap(c, k=3).depth