"""Extra coverage for the criticality analysis on suite-style circuits."""

import pytest

from repro.bench.fsm import fsm_to_circuit, random_fsm
from repro.core.slack import analyze, report


class TestOnControllers:
    @pytest.fixture(scope="class")
    def controller(self):
        fsm = random_fsm("slacky", 8, 3, 2, seed=12, split_depth=3)
        return fsm_to_circuit(fsm)

    def test_binding_loop_is_the_state_machine(self, controller):
        result = analyze(controller, k=5)
        assert result.phi >= 2
        assert result.critical_sccs
        names = {controller.name_of(v) for v in result.critical_sccs[0]}
        # the binding loop passes through next-state roots
        assert any(name.startswith("ns_") for name in names)

    def test_slack_identifies_noncritical_logic(self, controller):
        result = analyze(controller, k=5)
        zero = [v for v, s in result.slacks.items() if s == 0]
        positive = [v for v, s in result.slacks.items() if s > 0]
        assert zero  # something binds
        assert positive  # and something has headroom

    def test_report_mentions_mapping_optimum(self, controller):
        text = report(controller, k=5)
        assert "best K=5 mapping" in text

    def test_slack_respects_consumer_budgets(self, controller):
        result = analyze(controller, k=5)
        labels = result.labels
        slacks = result.slacks
        phi = result.phi
        for v in controller.gates:
            s = slacks[v]
            for dst, w in controller.fanouts(v):
                if controller.kind(dst).value != "gate":
                    continue
                # A *positive* slack certifies that raising l(v) by s
                # keeps every consumer's height budget; zero-slack nodes
                # may sit below a consumer whose chosen cut absorbs them
                # (negative per-edge margin), which is why the analysis
                # clamps at zero.
                if s > 0:
                    assert (labels[v] + s) - phi * w + 1 <= labels[dst]
