"""Tests for the iterative label computation (TurboMap core)."""

import pytest

from repro.core.labels import LabelSolver
from repro.netlist.graph import SeqCircuit
from tests.helpers import AND2, BUF, random_seq_circuit, xor_chain


def buffer_ring(num_gates, num_ffs):
    c = SeqCircuit("ring")
    g = [c.add_gate_placeholder(f"g{i}", BUF) for i in range(num_gates)]
    for i in range(num_gates):
        c.set_fanins(g[i], [(g[(i - 1) % num_gates], num_ffs if i == 0 else 0)])
    c.add_po("o", g[-1])
    c.check()
    return c


def and_ring(num_gates, num_ffs):
    """Ring of AND2 gates, each consuming a distinct PI.

    Unlike a buffer ring (which collapses into a single self-loop LUT),
    the external inputs make cut width grow with the covered gate count:
    a K-LUT covers at most K-1 ring gates, so without resynthesis
    ``phi_min = ceil(ceil(n / (K-1)) / num_ffs)``.
    """
    c = SeqCircuit("andring")
    xs = [c.add_pi(f"x{i}") for i in range(num_gates)]
    g = [c.add_gate_placeholder(f"g{i}", AND2) for i in range(num_gates)]
    for i in range(num_gates):
        w = num_ffs if i == 0 else 0
        c.set_fanins(g[i], [(g[(i - 1) % num_gates], w), (xs[i], 0)])
    c.add_po("o", g[-1])
    c.check()
    return c


class TestFeasibility:
    def test_acyclic_always_feasible_at_one(self):
        c = xor_chain(8)
        outcome = LabelSolver(c, k=3, phi=1).run()
        assert outcome.feasible

    def test_buffer_ring_collapses_to_one_lut(self):
        # Replication + retiming absorb the whole buffer loop into one
        # self-loop LUT: always feasible at phi = 1.
        for gates, ffs in [(4, 2), (8, 1), (9, 3)]:
            c = buffer_ring(gates, ffs)
            assert LabelSolver(c, k=2, phi=1).run().feasible

    def test_and_ring_infeasible_below_limit(self):
        # 8 AND gates, 1 FF, K=3: at most 2 ring gates/LUT -> >= 4 LUTs
        # on the loop over 1 register: phi >= 4.
        c = and_ring(8, 1)
        assert not LabelSolver(c, k=3, phi=3).run().feasible
        assert LabelSolver(c, k=3, phi=4).run().feasible

    def test_failed_scc_reported(self):
        c = and_ring(8, 1)
        outcome = LabelSolver(c, k=3, phi=1).run()
        assert not outcome.feasible
        assert len(outcome.failed_scc) == 8

    def test_monotone_in_phi(self):
        for seed in range(4):
            c = random_seq_circuit(3, 14, seed=seed)
            feasible = [
                LabelSolver(c, k=3, phi=phi).run().feasible
                for phi in range(1, 7)
            ]
            # once feasible, stays feasible
            assert feasible == sorted(feasible)

    def test_phi_validation(self):
        with pytest.raises(ValueError):
            LabelSolver(xor_chain(3), k=3, phi=0)


class TestLabelValues:
    def test_pi_labels_zero(self):
        c = xor_chain(5)
        outcome = LabelSolver(c, k=3, phi=1).run()
        for pi in c.pis:
            assert outcome.labels[pi] == 0

    def test_gate_labels_at_least_one(self):
        c = random_seq_circuit(3, 12, seed=7)
        outcome = LabelSolver(c, k=3, phi=2).run()
        assert outcome.feasible
        for g in c.gates:
            assert outcome.labels[g] >= 1

    def test_combinational_labels_match_flowmap(self):
        # On a purely combinational circuit with phi large, sequential
        # labels coincide with FlowMap depth labels.
        from repro.comb.flowmap import compute_labels

        c = xor_chain(9)
        fm_labels, _ = compute_labels(c, k=3)
        outcome = LabelSolver(c, k=3, phi=50).run()
        for g in c.gates:
            assert outcome.labels[g] == fm_labels[g]


class TestPldAgainstIterationBound:
    @pytest.mark.parametrize("seed", range(5))
    def test_same_verdict_feasible_and_infeasible(self, seed):
        c = random_seq_circuit(3, 16, seed=seed)
        for phi in (1, 2, 3):
            with_pld = LabelSolver(c, k=2, phi=phi, pld=True).run()
            without = LabelSolver(c, k=2, phi=phi, pld=False).run()
            assert with_pld.feasible == without.feasible, (seed, phi)

    def test_pld_uses_fewer_rounds_on_infeasible(self):
        c = and_ring(12, 1)
        with_pld = LabelSolver(c, k=3, phi=2, pld=True).run()
        without = LabelSolver(c, k=3, phi=2, pld=False).run()
        assert not with_pld.feasible and not without.feasible
        assert with_pld.stats.rounds < without.stats.rounds

    def test_verdicts_match_and_ring_bound(self):
        # A K-LUT covers at most K-1 ring gates of an AND ring, so the
        # structural optimum is ceil(ceil(n/(K-1)) / W).
        import math

        for num_gates, num_ffs, k in [(6, 2, 3), (6, 3, 4), (9, 2, 4)]:
            c = and_ring(num_gates, num_ffs)
            best_luts = math.ceil(num_gates / (k - 1))
            best_phi = math.ceil(best_luts / num_ffs)
            assert LabelSolver(c, k=k, phi=best_phi).run().feasible, (
                num_gates,
                num_ffs,
                k,
            )
            if best_phi > 1:
                assert not LabelSolver(c, k=k, phi=best_phi - 1).run().feasible


class TestCaching:
    def test_flow_queries_recorded(self):
        c = and_ring(10, 2)
        outcome = LabelSolver(c, k=3, phi=3).run()
        assert outcome.feasible
        assert outcome.stats.flow_queries > 0
