"""Tests for mapping generation from converged labels."""

import pytest

from repro.core.driver import search_min_phi
from repro.core.mapping import MappingError, Realization, generate_mapping, realize_node
from repro.core.expanded import sequential_cone_function
from repro.netlist.graph import SeqCircuit
from repro.retime.mdr import min_feasible_period
from tests.helpers import AND2, BUF, random_seq_circuit


def solved(circuit, k, resyn=False):
    from repro.retime.mdr import min_feasible_period as bound

    phi, outcomes = search_min_phi(circuit, k, bound(circuit), resyn)
    return phi, outcomes[phi].labels


def and_ring(num_gates, num_ffs=1):
    c = SeqCircuit("andring")
    xs = [c.add_pi(f"x{i}") for i in range(num_gates)]
    g = [c.add_gate_placeholder(f"g{i}", AND2) for i in range(num_gates)]
    for i in range(num_gates):
        w = num_ffs if i == 0 else 0
        c.set_fanins(g[i], [(g[(i - 1) % num_gates], w), (xs[i], 0)])
    c.add_po("o", g[-1])
    c.check()
    return c


class TestRealizeNode:
    def test_plain_cut_found(self):
        c = and_ring(4)
        phi, labels = solved(c, k=5)
        for g in c.gates:
            real = realize_node(c, g, phi, labels, 5, 15, allow_resyn=False)
            assert real.resyn is None
            assert len(real.cut) <= 5

    def test_mapping_error_on_bogus_labels(self):
        c = and_ring(6)
        labels = [0] * len(c)  # all-zero labels admit no cut for gates
        with pytest.raises(MappingError):
            realize_node(c, c.gates[2], 1, labels, 2, 2, allow_resyn=False)

    def test_resyn_fallback(self):
        c = and_ring(8)
        phi, labels = solved(c, k=5, resyn=True)
        assert phi == 1
        resyn_used = 0
        for g in c.gates:
            try:
                real = realize_node(c, g, phi, labels, 5, 15, allow_resyn=True)
            except MappingError:  # pragma: no cover
                pytest.fail("realization missing")
            if real.resyn is not None:
                resyn_used += 1
        assert resyn_used > 0


class TestGenerateMapping:
    def test_only_needed_gates_emitted(self):
        # A dangling gate never reached from POs is not mapped.
        c = and_ring(4)
        dead = c.add_gate("dead", BUF, [(c.pis[0], 0)])
        phi, labels = solved(c, k=5)
        mapped = generate_mapping(c, phi, labels, 5)
        assert "dead" not in mapped

    def test_lut_functions_exact(self):
        c = and_ring(5)
        phi, labels = solved(c, k=4)
        mapped = generate_mapping(c, phi, labels, 4)
        # Every mapped LUT must equal the cone function of its cut.
        for g in mapped.gates:
            name = mapped.name_of(g)
            if "~s" in name:
                continue
            subject = c.id_of(name)
            cut = [
                (c.id_of(mapped.name_of(p.src)), p.weight)
                for p in mapped.fanins(g)
            ]
            assert sequential_cone_function(c, subject, cut) == mapped.func(g)

    def test_preseeded_realizations_respected(self):
        c = and_ring(4)
        phi, labels = solved(c, k=5)
        v = c.fanins(c.pos[0])[0].src
        fixed = Realization(
            cut=tuple((p.src, p.weight) for p in c.fanins(v))
        )
        mapped = generate_mapping(
            c, phi, labels, 5, realizations={v: fixed}
        )
        root = mapped.id_of(c.name_of(v))
        assert len(mapped.fanins(root)) == len(fixed.cut)

    @pytest.mark.parametrize("seed", range(4))
    def test_mdr_invariant(self, seed):
        c = random_seq_circuit(3, 15, seed=seed, feedback=3)
        phi, labels = solved(c, k=3)
        mapped = generate_mapping(c, phi, labels, 3)
        assert min_feasible_period(mapped) <= phi

    def test_po_through_pi(self):
        c = SeqCircuit("pipo")
        a = c.add_pi("a")
        c.add_po("o", a, 3)
        phi, labels = solved(c, k=2)
        mapped = generate_mapping(c, phi, labels, 2)
        assert mapped.n_gates == 0
        assert mapped.fanins(mapped.pos[0])[0].weight == 3
