"""Tests for criticality / slack analysis."""


from repro.core.slack import analyze, critical_sccs, node_slacks, report
from repro.core.labels import LabelSolver
from repro.netlist.graph import SeqCircuit
from tests.helpers import AND2, BUF, random_seq_circuit, xor_chain


def and_ring(num_gates, num_ffs=1):
    c = SeqCircuit("andring")
    xs = [c.add_pi(f"x{i}") for i in range(num_gates)]
    g = [c.add_gate_placeholder(f"g{i}", AND2) for i in range(num_gates)]
    for i in range(num_gates):
        w = num_ffs if i == 0 else 0
        c.set_fanins(g[i], [(g[(i - 1) % num_gates], w), (xs[i], 0)])
    c.add_po("o", g[-1])
    c.check()
    return c


class TestCriticalSccs:
    def test_binding_ring_found(self):
        c = and_ring(8)
        # TurboMap optimum is 2; at phi=1 the ring's positive loop fires.
        comps = critical_sccs(c, k=5, phi=2)
        assert comps
        assert len(comps[0]) == 8

    def test_feed_forward_has_none(self):
        c = xor_chain(6)
        assert critical_sccs(c, k=3, phi=1) == []


class TestNodeSlacks:
    def test_slack_nonnegative(self):
        c = random_seq_circuit(3, 14, seed=1, feedback=3)
        from repro.retime.mdr import min_feasible_period

        phi = min_feasible_period(c)
        outcome = LabelSolver(c, k=3, phi=phi).run()
        assert outcome.feasible
        slacks = node_slacks(c, 3, phi, outcome.labels)
        assert all(s >= 0 for s in slacks.values())
        assert set(slacks) == set(c.gates)

    def test_unconsumed_gate_gets_sentinel(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        g = c.add_gate("g", BUF, [(a, 0)])
        c.add_po("o", g)
        slacks = node_slacks(c, 2, 3, [0, 1, 1])
        assert slacks[g] == 3


class TestAnalyzeAndReport:
    def test_analyze_fields(self):
        c = and_ring(6)
        result = analyze(c, k=4)
        assert result.phi >= 1
        assert result.labels is not None
        assert result.slacks

    def test_report_text(self):
        c = and_ring(6)
        text = report(c, k=4)
        assert "MDR ratio" in text
        assert "binding loop" in text

    def test_report_feed_forward(self):
        text = report(xor_chain(5), k=3)
        assert "no binding loop" in text
