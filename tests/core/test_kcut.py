"""Tests for flow-based height-constrained K-cuts on expanded circuits."""

import pytest

from repro.comb.maxflow import SplitNetwork
from repro.core.kcut import cut_on_expansion, find_height_cut
from repro.core.expanded import expand_partial
from repro.netlist.graph import SeqCircuit
from tests.helpers import AND2, BUF


def and_ring(num_gates, num_ffs=1):
    c = SeqCircuit("andring")
    xs = [c.add_pi(f"x{i}") for i in range(num_gates)]
    g = [c.add_gate_placeholder(f"g{i}", AND2) for i in range(num_gates)]
    for i in range(num_gates):
        w = num_ffs if i == 0 else 0
        c.set_fanins(g[i], [(g[(i - 1) % num_gates], w), (xs[i], 0)])
    c.add_po("o", g[-1])
    c.check()
    return c, xs, g


def make_height(labels, phi):
    return lambda u, w: labels.get(u, 0) - phi * w + 1


class TestFindHeightCut:
    def test_trivial_fanin_cut(self):
        c, xs, g = and_ring(4)
        labels = {v: 1 for v in g}
        cut = find_height_cut(c, g[1], 1, make_height(labels, 1), threshold=2, max_cut=5)
        assert cut is not None
        assert set(cut) == {(g[0], 0), (xs[1], 0)}

    def test_deeper_cut_through_registers(self):
        c, xs, g = and_ring(4)
        labels = {v: 1 for v in g}
        # threshold 1 forces g0^0 (height 2) interior for root g1; the cut
        # must include the register crossing g3^1 and the PIs.
        cut = find_height_cut(c, g[1], 1, make_height(labels, 1), threshold=1, max_cut=5)
        assert cut is not None
        assert (g[3], 1) in cut
        assert (xs[0], 0) in cut and (xs[1], 0) in cut

    def test_size_bound_enforced(self):
        c, xs, g = and_ring(8)
        labels = {v: 1 for v in g}
        # covering 3 ring gates needs 4+ inputs
        cut = find_height_cut(c, g[2], 1, make_height(labels, 1), threshold=0, max_cut=3)
        assert cut is None

    def test_blocked_by_pi(self):
        c, xs, g = and_ring(3)
        labels = {v: 1 for v in g}
        # threshold far below any PI copy height: expansion blocked.
        cut = find_height_cut(
            c, g[0], 1, make_height(labels, 1), threshold=-20, max_cut=10
        )
        assert cut is None

    def test_cut_heights_respect_threshold(self):
        c, xs, g = and_ring(6)
        labels = {g[i]: 1 + (i % 3) for i in range(6)}
        height = make_height(labels, 2)
        threshold = 2
        cut = find_height_cut(c, g[4], 2, height, threshold, max_cut=15)
        assert cut is not None
        for (u, w) in cut:
            assert height(u, w) <= threshold

    def test_extra_depth_finds_shared_deep_cut(self):
        """The reconvergence case the first-crossing network misses.

        v reads p (w=0) and q (w=1); p reads x through one register and q
        reads x directly, so both converge on the copy x^1.  With labels
        making p interior and q a frontier candidate, the paper's network
        needs 2 cut nodes while expanding through q exposes the 1-node
        cut {x^1}.
        """
        c = SeqCircuit("reconv")
        pi = c.add_pi("pi")
        x = c.add_gate("x", BUF, [(pi, 0)])
        p = c.add_gate("p", BUF, [(x, 1)])
        q = c.add_gate("q", BUF, [(x, 0)])
        v = c.add_gate("v", AND2, [(p, 0), (q, 1)])
        c.add_po("o", v)
        labels = {pi: 0, x: 1, p: 2, q: 2, v: 2}
        height = make_height(labels, 1)
        shallow = find_height_cut(c, v, 1, height, threshold=2, max_cut=1)
        deep = find_height_cut(
            c, v, 1, height, threshold=2, max_cut=1, extra_depth=2
        )
        assert shallow is None  # first-crossing network needs 2 nodes
        assert deep is not None and len(deep) == 1
        assert deep[0] in [(x, 1), (pi, 1)]  # either shared deep copy works


class TestCutOnExpansion:
    def test_blocked_expansion(self):
        c, xs, g = and_ring(3)
        labels = {v: 1 for v in g}
        exp = expand_partial(c, g[0], 1, make_height(labels, 1), threshold=-20)
        assert exp.blocked
        assert cut_on_expansion(exp, 10) is None

    def test_constant_cone(self):
        from repro.boolfn.truthtable import TruthTable

        c = SeqCircuit("const")
        one = c.add_gate("one", TruthTable.const(0, True), [])
        g = c.add_gate("g", BUF, [(one, 0)])
        c.add_po("o", g)
        labels = {one: 1, g: 1}
        exp = expand_partial(c, g, 1, make_height(labels, 1), threshold=0)
        cut = cut_on_expansion(exp, 5)
        assert cut == []

    def test_duplicate_edges_rejected(self):
        c, xs, g = and_ring(3)
        labels = {v: 1 for v in g}
        exp = expand_partial(c, g[1], 1, make_height(labels, 1), threshold=2)
        exp.edges.append(exp.edges[0])
        with pytest.raises(AssertionError, match="duplicate"):
            cut_on_expansion(exp, 10)

    def test_arena_reuse_matches_fresh_network(self):
        c, xs, g = and_ring(6)
        labels = {g[i]: 1 + (i % 3) for i in range(6)}
        height = make_height(labels, 2)
        arena = SplitNetwork()
        for root in g:
            for threshold in (1, 2, 3):
                exp = expand_partial(c, root, 2, height, threshold)
                fresh = cut_on_expansion(exp, 15)
                pooled = cut_on_expansion(exp, 15, arena=arena)
                assert fresh == pooled, (c.name_of(root), threshold)
