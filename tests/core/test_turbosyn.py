"""End-to-end tests for TurboSYN, including the paper's Figure 1 story."""

import pytest

from repro.core.turbomap import turbomap
from repro.core.turbosyn import turbosyn
from repro.netlist.graph import SeqCircuit
from repro.retime.mdr import min_feasible_period
from repro.retime.pipeline import pipeline_and_retime
from repro.verify.equiv import simulation_equivalent, unrolled_equivalent
from tests.helpers import AND2, XOR2, random_seq_circuit


def and_ring(num_gates, num_ffs=1):
    """Decomposable loop: TurboSYN hoists the PI conjunction off the loop."""
    c = SeqCircuit("andring")
    xs = [c.add_pi(f"x{i}") for i in range(num_gates)]
    g = [c.add_gate_placeholder(f"g{i}", AND2) for i in range(num_gates)]
    for i in range(num_gates):
        w = num_ffs if i == 0 else 0
        c.set_fanins(g[i], [(g[(i - 1) % num_gates], w), (xs[i], 0)])
    c.add_po("o", g[-1])
    c.check()
    return c


def xor_ring(num_gates, num_ffs=1):
    c = SeqCircuit("xorring")
    xs = [c.add_pi(f"x{i}") for i in range(num_gates)]
    g = [c.add_gate_placeholder(f"g{i}", XOR2) for i in range(num_gates)]
    for i in range(num_gates):
        w = num_ffs if i == 0 else 0
        c.set_fanins(g[i], [(g[(i - 1) % num_gates], w), (xs[i], 0)])
    c.add_po("o", g[-1])
    c.check()
    return c


class TestBeatsTurboMap:
    def test_figure1_story_and_ring(self):
        """The paper's Figure 1 narrative: a critical loop whose external
        logic is decomposable lets TurboSYN reach MDR ratio 1 where
        structural mapping cannot."""
        c = and_ring(8)
        tm = turbomap(c, k=5)
        ts = turbosyn(c, k=5)
        assert tm.phi == 2
        assert ts.phi == 1
        # area cost, as the paper reports
        assert ts.n_luts >= tm.n_luts

    def test_xor_ring(self):
        c = xor_ring(8)
        tm = turbomap(c, k=5)
        ts = turbosyn(c, k=5)
        assert ts.phi < tm.phi

    @pytest.mark.parametrize("seed", range(5))
    def test_never_worse_than_turbomap(self, seed):
        c = random_seq_circuit(4, 18, seed=seed, feedback=4)
        tm = turbomap(c, k=4)
        ts = turbosyn(c, k=4)
        assert ts.phi <= tm.phi

    def test_resyn_stats_populated(self):
        ts = turbosyn(and_ring(8), k=5)
        stats = ts.total_stats
        assert stats.resyn_calls > 0
        assert stats.resyn_wins > 0


class TestMappedNetwork:
    def test_respects_phi(self):
        for seed in range(4):
            c = random_seq_circuit(4, 16, seed=seed)
            ts = turbosyn(c, k=4)
            assert min_feasible_period(ts.mapped) <= ts.phi

    def test_k_bounded(self):
        ts = turbosyn(and_ring(10), k=4)
        assert ts.mapped.is_k_bounded(4)

    def test_equivalence_exact(self):
        c = and_ring(5)
        ts = turbosyn(c, k=4)
        assert unrolled_equivalent(c, ts.mapped, cycles=3)

    @pytest.mark.parametrize("seed", range(4))
    def test_equivalence_simulation(self, seed):
        c = random_seq_circuit(4, 20, seed=seed, feedback=4)
        ts = turbosyn(c, k=4)
        assert simulation_equivalent(c, ts.mapped, cycles=60, warmup=12, seed=seed)

    def test_full_flow_with_retiming(self):
        c = and_ring(8)
        ts = turbosyn(c, k=5)
        pipe = pipeline_and_retime(ts.mapped)
        assert pipe.circuit.clock_period() <= ts.phi
        assert simulation_equivalent(
            c, pipe.circuit, cycles=60, warmup=16, po_lags=pipe.po_lags
        )


class TestOptions:
    def test_cmax_restricts_resynthesis(self):
        # Cmax = K disables useful wider cuts: TurboSYN degenerates to
        # roughly TurboMap on the AND ring.
        c = and_ring(8)
        narrow = turbosyn(c, k=5, cmax=5)
        wide = turbosyn(c, k=5, cmax=15)
        assert wide.phi <= narrow.phi

    def test_upper_bound_short_circuit(self):
        c = and_ring(8)
        ts = turbosyn(c, k=5, upper_bound=2)
        assert ts.phi == 1

    def test_extra_depth_never_hurts(self):
        c = and_ring(8)
        base = turbosyn(c, k=5, extra_depth=0)
        deep = turbosyn(c, k=5, extra_depth=2)
        assert deep.phi <= base.phi
