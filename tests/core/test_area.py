"""Tests for the area stage (label relaxation + packing)."""


from repro.core.area import map_with_area_recovery, relaxed_realizations
from repro.core.turbosyn import turbosyn
from repro.netlist.graph import SeqCircuit
from repro.retime.mdr import min_feasible_period
from repro.verify.equiv import simulation_equivalent
from tests.helpers import AND2, XOR2, random_seq_circuit


def and_ring_with_tail(num_gates):
    """AND ring (critical) plus a non-critical XOR tail reading the ring."""
    c = SeqCircuit("ringtail")
    xs = [c.add_pi(f"x{i}") for i in range(num_gates)]
    g = [c.add_gate_placeholder(f"g{i}", AND2) for i in range(num_gates)]
    for i in range(num_gates):
        w = 1 if i == 0 else 0
        c.set_fanins(g[i], [(g[(i - 1) % num_gates], w), (xs[i], 0)])
    tail = g[-1]
    for i in range(4):
        tail = c.add_gate(f"t{i}", XOR2, [(tail, 0), (xs[i], 0)])
    c.add_po("o", tail)
    c.add_po("oring", g[-1])
    c.check()
    return c


class TestRelaxedRealizations:
    def test_phi_preserved(self):
        c = and_ring_with_tail(8)
        ts = turbosyn(c, k=5)
        mapped = map_with_area_recovery(c, ts.phi, ts.labels, k=5, pack=False)
        assert min_feasible_period(mapped) <= ts.phi

    def test_realizations_cover_all_needs(self):
        c = and_ring_with_tail(6)
        ts = turbosyn(c, k=5)
        chosen, eff = relaxed_realizations(c, ts.phi, ts.labels, k=5)
        for real in chosen.values():
            for (u, _w) in real.cut:
                if c.kind(u).value == "gate":
                    assert u in chosen

    def test_effective_labels_not_below_original(self):
        c = and_ring_with_tail(6)
        ts = turbosyn(c, k=5)
        _chosen, eff = relaxed_realizations(c, ts.phi, ts.labels, k=5)
        for v, value in eff.items():
            assert value >= ts.labels[v]


class TestAreaRecovery:
    def test_never_increases_luts(self):
        for seed in range(3):
            c = random_seq_circuit(4, 18, seed=seed, feedback=3)
            ts = turbosyn(c, k=4)
            recovered = map_with_area_recovery(c, ts.phi, ts.labels, k=4)
            assert recovered.n_gates <= ts.n_luts
            assert min_feasible_period(recovered) <= ts.phi

    def test_equivalence_preserved(self):
        for seed in range(3):
            c = random_seq_circuit(4, 16, seed=seed, feedback=3)
            ts = turbosyn(c, k=4)
            recovered = map_with_area_recovery(
                c, ts.phi, ts.labels, k=4, name=ts.mapped.name
            )
            assert simulation_equivalent(
                c, recovered, cycles=60, warmup=12, seed=seed
            )

    def test_pack_flag(self):
        c = and_ring_with_tail(8)
        ts = turbosyn(c, k=5)
        unpacked = map_with_area_recovery(c, ts.phi, ts.labels, k=5, pack=False)
        packed = map_with_area_recovery(c, ts.phi, ts.labels, k=5, pack=True)
        assert packed.n_gates <= unpacked.n_gates
