"""Tests for the FlowSYN-s baseline."""

import pytest

from repro.core.flowsyn_s import flowsyn_s, merge_registers, split_at_registers
from repro.core.turbosyn import turbosyn
from repro.netlist.graph import SeqCircuit
from repro.retime.mdr import min_feasible_period
from repro.verify.equiv import simulation_equivalent, unrolled_equivalent
from tests.helpers import AND2, BUF, random_seq_circuit


def and_ring(num_gates, num_ffs=1):
    c = SeqCircuit("andring")
    xs = [c.add_pi(f"x{i}") for i in range(num_gates)]
    g = [c.add_gate_placeholder(f"g{i}", AND2) for i in range(num_gates)]
    for i in range(num_gates):
        w = num_ffs if i == 0 else 0
        c.set_fanins(g[i], [(g[(i - 1) % num_gates], w), (xs[i], 0)])
    c.add_po("o", g[-1])
    c.check()
    return c


class TestSplitAtRegisters:
    def test_pseudo_pis_created(self):
        c = and_ring(4)
        comb = split_at_registers(c)
        pi_names = {comb.name_of(p) for p in comb.pis}
        assert "g3@@w1" in pi_names
        # no registered edges survive
        assert all(w == 0 for *_e, w in comb.edges())

    def test_register_drivers_become_pos(self):
        c = and_ring(4)
        comb = split_at_registers(c)
        po_names = {comb.name_of(p) for p in comb.pos}
        assert "g3@@root" in po_names

    def test_pi_fed_register(self):
        c = SeqCircuit("pireg")
        x = c.add_pi("x")
        g = c.add_gate("g", BUF, [(x, 2)])
        c.add_po("o", g)
        comb = split_at_registers(c)
        assert "x@@w2" in {comb.name_of(p) for p in comb.pis}


class TestMergeRegisters:
    def test_roundtrip_without_mapping(self):
        # split + merge with the identity "mapping" restores the FF count.
        c = and_ring(5)
        comb = split_at_registers(c)
        merged = merge_registers(c, comb, "merged")
        assert merged.n_ffs == c.n_ffs
        assert unrolled_equivalent(c, merged, cycles=3)


class TestFlowsynS:
    def test_equivalence(self):
        c = and_ring(6)
        fs = flowsyn_s(c, k=4)
        assert unrolled_equivalent(c, fs.mapped, cycles=3)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuits(self, seed):
        c = random_seq_circuit(4, 18, seed=seed, feedback=3)
        fs = flowsyn_s(c, k=4)
        assert fs.mapped.is_k_bounded(4)
        assert min_feasible_period(fs.mapped) == fs.phi
        assert simulation_equivalent(c, fs.mapped, cycles=60, warmup=12, seed=seed)

    def test_turbosyn_never_worse(self):
        """The paper's Table 1 ordering."""
        for seed in range(4):
            c = random_seq_circuit(4, 16, seed=seed, feedback=3)
            fs = flowsyn_s(c, k=4)
            ts = turbosyn(c, k=4)
            assert ts.phi <= fs.phi, seed

    def test_loop_limits_flowsyn_s(self):
        # FF positions frozen: the AND ring maps one LUT per FF gap; the
        # loop keeps ceil-gates-per-lut LUTs between consecutive FFs.
        c = and_ring(8)
        fs = flowsyn_s(c, k=5)
        ts = turbosyn(c, k=5)
        assert fs.phi == 2
        assert ts.phi == 1
