"""End-to-end tests for TurboMap."""

import pytest

from repro.core.turbomap import turbomap
from repro.netlist.graph import SeqCircuit
from repro.retime.mdr import min_feasible_period
from repro.retime.pipeline import pipeline_and_retime
from repro.verify.equiv import simulation_equivalent, unrolled_equivalent
from tests.helpers import AND2, BUF, random_seq_circuit, xor_chain


def and_ring(num_gates, num_ffs=1):
    c = SeqCircuit("andring")
    xs = [c.add_pi(f"x{i}") for i in range(num_gates)]
    g = [c.add_gate_placeholder(f"g{i}", AND2) for i in range(num_gates)]
    for i in range(num_gates):
        w = num_ffs if i == 0 else 0
        c.set_fanins(g[i], [(g[(i - 1) % num_gates], w), (xs[i], 0)])
    c.add_po("o", g[-1])
    c.check()
    return c


class TestPhi:
    def test_acyclic_is_one(self):
        res = turbomap(xor_chain(10), k=3)
        assert res.phi == 1

    def test_and_ring_structural_optimum(self):
        # 8 AND gates / 1 FF, K=5: ceil(8/4) = 2 LUTs on the loop.
        res = turbomap(and_ring(8), k=5)
        assert res.phi == 2

    def test_improves_over_identity(self):
        c = and_ring(8)
        assert min_feasible_period(c) == 8
        assert turbomap(c, k=5).phi == 2

    def test_mapped_network_respects_phi(self):
        for seed in range(5):
            c = random_seq_circuit(4, 20, seed=seed)
            res = turbomap(c, k=4)
            assert min_feasible_period(res.mapped) <= res.phi

    def test_k_sensitivity(self):
        c = and_ring(12)
        phis = [turbomap(c, k=k).phi for k in (2, 3, 5)]
        assert phis == sorted(phis, reverse=True)  # larger K never worse


class TestMappedNetwork:
    def test_k_bounded(self):
        for seed in range(3):
            c = random_seq_circuit(3, 15, seed=seed)
            res = turbomap(c, k=3)
            assert res.mapped.is_k_bounded(3)

    def test_equivalence_exact(self):
        for seed in range(3):
            c = random_seq_circuit(2, 10, seed=seed, feedback=2)
            res = turbomap(c, k=3)
            assert unrolled_equivalent(c, res.mapped, cycles=3)

    @pytest.mark.parametrize("seed", range(5))
    def test_equivalence_simulation(self, seed):
        c = random_seq_circuit(4, 22, seed=seed, feedback=4)
        res = turbomap(c, k=4)
        assert simulation_equivalent(c, res.mapped, cycles=60, warmup=12, seed=seed)

    def test_po_weights_preserved(self):
        c = SeqCircuit("pow")
        x = c.add_pi("x")
        g = c.add_gate("g", BUF, [(x, 0)])
        c.add_po("o", g, 2)
        res = turbomap(c, k=2)
        po = res.mapped.pos[0]
        assert res.mapped.fanins(po)[0].weight == 2


class TestRetimingPostprocess:
    def test_pipeline_achieves_phi(self):
        c = and_ring(8)
        res = turbomap(c, k=5)
        pipe = pipeline_and_retime(res.mapped)
        assert pipe.phi <= res.phi
        assert pipe.circuit.clock_period() <= res.phi

    def test_full_flow_equivalence_with_lags(self):
        c = and_ring(6)
        res = turbomap(c, k=4)
        pipe = pipeline_and_retime(res.mapped)
        # After retiming, compare with per-PO lags and a warmup window
        # (retiming does not preserve initial states in general).
        assert simulation_equivalent(
            c,
            pipe.circuit,
            cycles=60,
            warmup=16,
            po_lags=pipe.po_lags,
        )


class TestOptions:
    def test_upper_bound_hint(self):
        c = and_ring(8)
        res = turbomap(c, k=5, upper_bound=4)
        assert res.phi == 2

    def test_pld_flag_same_result(self):
        c = and_ring(10)
        assert turbomap(c, k=4, pld=True).phi == turbomap(c, k=4, pld=False).phi

    def test_name_override(self):
        res = turbomap(xor_chain(4), k=3, name="custom")
        assert res.mapped.name == "custom"
