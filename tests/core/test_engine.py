"""Differential tests for the label engines and cross-probe warm starts.

The event-driven worklist engine must agree with the classical
round-robin sweep label-for-label (same fixpoint, same infeasibility
verdicts), and a warm-started probe must converge to the same labels as
a cold one — these tests pin both properties on synthetic circuits, on
random sequential circuits, and on the benchmark suite.
"""

import pytest

from repro.bench import suite as bench_suite
from repro.core.driver import (
    make_resyn_hook,
    nearest_warm_seed,
    probe_phi,
    search_min_phi,
)
from repro.core.labels import ENGINES, LabelSolver
from repro.retime.mdr import min_feasible_period
from tests.core.test_labels import and_ring, buffer_ring
from tests.helpers import random_seq_circuit


def _outcome(circuit, k, phi, engine, resyn=False, seed=None):
    hook = make_resyn_hook() if resyn else None
    solver = LabelSolver(
        circuit, k, phi, resyn_hook=hook, engine=engine, seed_labels=seed
    )
    return solver.run()


class TestEngineValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown label engine"):
            LabelSolver(and_ring(4, 1), k=3, phi=2, engine="psychic")

    def test_engines_constant_lists_both(self):
        assert set(ENGINES) == {"worklist", "rounds"}


class TestWorklistMatchesRounds:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_circuits_label_for_label(self, seed):
        c = random_seq_circuit(3, 18, seed=seed)
        for phi in (1, 2, 3):
            a = _outcome(c, 3, phi, "rounds")
            b = _outcome(c, 3, phi, "worklist")
            assert a.feasible == b.feasible, (seed, phi)
            if a.feasible:
                assert a.labels == b.labels, (seed, phi)
            else:
                assert sorted(a.failed_scc) == sorted(b.failed_scc)

    def test_rings_label_for_label(self):
        for c, k in [(and_ring(8, 1), 3), (and_ring(9, 2), 4),
                     (buffer_ring(6, 2), 2)]:
            for phi in (1, 2, 3, 4):
                a = _outcome(c, k, phi, "rounds")
                b = _outcome(c, k, phi, "worklist")
                assert a.feasible == b.feasible, (c.name, phi)
                if a.feasible:
                    assert a.labels == b.labels, (c.name, phi)

    @pytest.mark.parametrize("seed", range(4))
    def test_with_resynthesis_hook(self, seed):
        c = random_seq_circuit(4, 16, seed=seed)
        for phi in (1, 2):
            a = _outcome(c, 4, phi, "rounds", resyn=True)
            b = _outcome(c, 4, phi, "worklist", resyn=True)
            assert a.feasible == b.feasible, (seed, phi)
            if a.feasible:
                assert a.labels == b.labels, (seed, phi)

    def test_suite_circuit_label_for_label(self):
        c = bench_suite.build("dk16")
        phi = min_feasible_period(c)
        for engine_phi in (phi, phi + 1):
            a = probe_phi(c, 5, engine_phi, False, engine="rounds")
            b = probe_phi(c, 5, engine_phi, False, engine="worklist")
            assert a.feasible == b.feasible
            assert a.labels == b.labels


class TestWarmStart:
    def test_seed_length_validated(self):
        with pytest.raises(ValueError, match="seed label vector"):
            LabelSolver(and_ring(4, 1), k=3, phi=2, seed_labels=[1, 2, 3])

    def test_seeded_probe_matches_cold(self):
        c = and_ring(9, 2)
        cold_hi = _outcome(c, 3, 4, "worklist")
        assert cold_hi.feasible
        cold_lo = _outcome(c, 3, 3, "worklist")
        warm_lo = _outcome(c, 3, 3, "worklist", seed=cold_hi.labels)
        assert warm_lo.feasible == cold_lo.feasible
        assert warm_lo.labels == cold_lo.labels
        assert warm_lo.stats.warm_seeded == 1
        assert warm_lo.stats.warm_savings > 0
        assert warm_lo.stats.updates <= cold_lo.stats.updates

    @pytest.mark.parametrize("seed", range(6))
    def test_random_circuits_warm_equals_cold(self, seed):
        c = random_seq_circuit(3, 20, seed=seed)
        outcomes = {}
        for phi in (6, 5, 4, 3, 2, 1):
            cold = _outcome(c, 3, phi, "worklist")
            warm = _outcome(
                c, 3, phi, "worklist", seed=nearest_warm_seed(outcomes, phi)
            )
            assert warm.feasible == cold.feasible, (seed, phi)
            if cold.feasible:
                assert warm.labels == cold.labels, (seed, phi)
            outcomes[phi] = warm

    def test_nearest_warm_seed_picks_tightest_feasible(self):
        c = and_ring(8, 1)
        outcomes = {
            6: _outcome(c, 3, 6, "worklist"),
            5: _outcome(c, 3, 5, "worklist"),
            3: _outcome(c, 3, 3, "worklist"),  # infeasible: never a seed
        }
        assert not outcomes[3].feasible
        assert nearest_warm_seed(outcomes, 4) is outcomes[5].labels
        assert nearest_warm_seed(outcomes, 2) is outcomes[5].labels
        assert nearest_warm_seed(outcomes, 6) is None


class TestSearchMinPhiOnSuite:
    """Cold vs warm search agree on phi_min and labels, suite-wide."""

    @pytest.mark.parametrize(
        "name", [e.name for e in bench_suite.SUITE]
    )
    def test_cold_and_warm_search_agree(self, name):
        c = bench_suite.build(name)
        upper = min_feasible_period(c)
        phi_cold, out_cold = search_min_phi(
            c, 5, upper, False, engine="rounds", warm_start=False
        )
        phi_warm, out_warm = search_min_phi(
            c, 5, upper, False, engine="worklist", warm_start=True
        )
        assert phi_warm == phi_cold, name
        assert out_warm[phi_warm].labels == out_cold[phi_cold].labels, name
        total_cold = sum(o.stats.updates for o in out_cold.values())
        total_warm = sum(o.stats.updates for o in out_warm.values())
        assert total_warm <= total_cold, name
