"""Tests for predecessor-graph positive loop detection."""

import pytest

from repro.core.labels import LabelSolver
from repro.core.pld import grounded_members, justified_predecessors
from repro.netlist.graph import SeqCircuit
from tests.helpers import AND2, random_seq_circuit


def and_ring(num_gates, num_ffs=1):
    c = SeqCircuit("andring")
    xs = [c.add_pi(f"x{i}") for i in range(num_gates)]
    g = [c.add_gate_placeholder(f"g{i}", AND2) for i in range(num_gates)]
    for i in range(num_gates):
        w = num_ffs if i == 0 else 0
        c.set_fanins(g[i], [(g[(i - 1) % num_gates], w), (xs[i], 0)])
    c.add_po("o", g[-1])
    c.check()
    return c


class TestJustifiedPredecessors:
    def test_trivial_label_has_no_predecessors(self):
        c = and_ring(4)
        labels = [0] * len(c)
        for g in c.gates:
            labels[g] = 1
        assert justified_predecessors(c, labels, 1, c.gates[0]) == []

    def test_justifier_found(self):
        c = and_ring(4)
        labels = [0] * len(c)
        g = c.gates
        # l(g1)=2 justified by g0 (l=2, w=0: 2-0+1=3 >= 2).
        labels[g[0]] = 2
        labels[g[1]] = 2
        preds = justified_predecessors(c, labels, 1, g[1])
        assert g[0] in preds

    def test_register_discount(self):
        c = and_ring(4)
        labels = [0] * len(c)
        g = c.gates
        # edge g3 -> g0 carries 1 FF; with phi=2: l(g3)-2+1 >= l(g0)?
        labels[g[3]] = 4
        labels[g[0]] = 4
        preds = justified_predecessors(c, labels, 2, g[0])
        assert g[3] not in preds  # 4 - 2 + 1 = 3 < 4
        labels[g[3]] = 5
        preds = justified_predecessors(c, labels, 2, g[0])
        assert g[3] in preds  # 5 - 2 + 1 = 4 >= 4


class TestGroundedMembers:
    def test_low_labels_grounded(self):
        c = and_ring(4)
        labels = [0] * len(c)
        for g in c.gates:
            labels[g] = 1
        members = list(c.gates)
        assert set(grounded_members(c, labels, 1, members, set(members))) == set(
            members
        )

    def test_isolated_scc_detected(self):
        c = and_ring(3)
        g = c.gates
        labels = [0] * len(c)
        # Self-sustained high labels: every node justified only in-ring.
        labels[g[0]], labels[g[1]], labels[g[2]] = 10, 11, 12
        # ring edge g2 -> g0 has w=1, phi=1: 12-1+1=12 >= 10 justifies g0;
        # g0 -> g1: 10+1 >= 11; g1 -> g2: 11+1 >= 12; PIs justify nothing.
        grounded = grounded_members(c, labels, 1, list(g), set(g))
        assert grounded == set()

    def test_outside_justification_grounds_chain(self):
        c = and_ring(3)
        g = c.gates
        labels = [0] * len(c)
        # g0 justified by its PI (l=0: 0+1 >= 1 requires l(g0) <= 1): use
        # l(g0)=1 -> trivially grounded; ring propagates groundedness.
        labels[g[0]], labels[g[1]], labels[g[2]] = 1, 2, 3
        grounded = grounded_members(c, labels, 1, list(g), set(g))
        assert grounded == set(g)


class TestEndToEnd:
    @pytest.mark.parametrize("seed", range(6))
    def test_pld_never_changes_the_answer(self, seed):
        c = random_seq_circuit(4, 18, seed=seed, feedback=4)
        for k in (2, 4):
            for phi in (1, 2, 4):
                a = LabelSolver(c, k=k, phi=phi, pld=True).run().feasible
                b = LabelSolver(c, k=k, phi=phi, pld=False).run().feasible
                assert a == b, (seed, k, phi)

    def test_large_infeasible_ring_speedup(self):
        c = and_ring(24, 1)
        fast = LabelSolver(c, k=3, phi=3, pld=True).run()
        slow = LabelSolver(c, k=3, phi=3, pld=False).run()
        assert not fast.feasible and not slow.feasible
        # 6n + patience vs n^2 rounds.
        assert fast.stats.rounds <= 6 * 24 + 3
        assert slow.stats.rounds >= 24 * 24
        assert fast.stats.rounds * 3 < slow.stats.rounds
