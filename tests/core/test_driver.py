"""Tests for the binary-search driver shared by TurboMap and TurboSYN."""

import pytest

from repro.core.driver import SeqMapResult, run_mapper, search_min_phi
from repro.netlist.graph import SeqCircuit
from repro.netlist.validate import ValidationError
from repro.retime.mdr import min_feasible_period
from tests.helpers import AND2, random_seq_circuit, xor_chain


def and_ring(num_gates, num_ffs=1):
    c = SeqCircuit("andring")
    xs = [c.add_pi(f"x{i}") for i in range(num_gates)]
    g = [c.add_gate_placeholder(f"g{i}", AND2) for i in range(num_gates)]
    for i in range(num_gates):
        w = num_ffs if i == 0 else 0
        c.set_fanins(g[i], [(g[(i - 1) % num_gates], w), (xs[i], 0)])
    c.add_po("o", g[-1])
    c.check()
    return c


class TestSearchMinPhi:
    def test_probes_recorded(self):
        c = and_ring(8)
        phi, outcomes = search_min_phi(c, 5, min_feasible_period(c), False)
        assert phi == 2
        assert phi in outcomes
        assert outcomes[phi].feasible
        # the binary search must have probed at least one infeasible value
        assert any(not o.feasible for o in outcomes.values())

    def test_upper_bound_too_low_recovers(self):
        c = and_ring(8)
        phi, _ = search_min_phi(c, 5, upper_bound=1, resynthesize=False)
        assert phi == 2  # doubled its way up, then narrowed down

    def test_resynthesize_flag(self):
        c = and_ring(8)
        plain, _ = search_min_phi(c, 5, 8, resynthesize=False)
        resyn, _ = search_min_phi(c, 5, 8, resynthesize=True)
        assert resyn < plain

    def test_unbounded_k_validation(self):
        c = and_ring(4)
        with pytest.raises(ValidationError):
            search_min_phi(c, 1, 4, False)

    def test_no_duplicate_probes(self, monkeypatch):
        """The binary search must reuse answers from the doubling phase."""
        import repro.core.driver as driver

        calls = []
        real = driver.probe_phi

        def counting(circuit, k, phi, *args, **kwargs):
            calls.append(phi)
            return real(circuit, k, phi, *args, **kwargs)

        monkeypatch.setattr(driver, "probe_phi", counting)
        c = and_ring(8)
        # upper_bound=1 is infeasible: the doubling phase answers 1 and 2,
        # then the binary search lands on 1 again — must hit the cache.
        phi, outcomes = driver.search_min_phi(c, 5, upper_bound=1, resynthesize=False)
        assert phi == 2
        assert sorted(calls) == sorted(set(calls))
        assert set(calls) == set(outcomes)


class TestRunMapper:
    def test_result_shape(self):
        c = and_ring(6)
        result = run_mapper(c, 5, algorithm="turbomap", resynthesize=False)
        assert isinstance(result, SeqMapResult)
        assert result.algorithm == "turbomap"
        assert result.mapped.n_gates == result.n_luts
        assert len(result.labels) == len(c)

    def test_total_stats_aggregates(self):
        c = and_ring(6)
        result = run_mapper(c, 5, algorithm="turbomap", resynthesize=False)
        total = result.total_stats
        assert total.flow_queries >= sum(
            o.stats.flow_queries for o in result.outcomes.values()
        ) - 1  # identical by construction

    def test_upper_bound_default_is_identity_mdr(self):
        c = xor_chain(6)
        result = run_mapper(c, 3, algorithm="turbomap", resynthesize=False)
        assert result.phi == 1

    @pytest.mark.parametrize("seed", range(3))
    def test_deterministic(self, seed):
        c = random_seq_circuit(3, 14, seed=seed, feedback=3)
        a = run_mapper(c, 3, algorithm="turbomap", resynthesize=False)
        b = run_mapper(c, 3, algorithm="turbomap", resynthesize=False)
        assert a.phi == b.phi
        assert a.mapped.stats() == b.mapped.stats()
