"""Atomic artifact writes: a crash mid-write never corrupts the old file."""

import json
import os

import pytest

from repro.resilience import faultinject
from repro.resilience.atomic import atomic_write_json, atomic_write_text
from repro.resilience.faultinject import Fault, FaultPlan, InjectedFault


class TestAtomicWrite:
    def test_writes_text(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "hello\n")
        assert open(path).read() == "hello\n"

    def test_overwrites_existing(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert open(path).read() == "new"

    def test_json_round_trip(self, tmp_path):
        path = str(tmp_path / "out.json")
        payload = {"schema": 2, "runs": [{"phi": 3}]}
        atomic_write_json(path, payload)
        assert json.load(open(path)) == payload

    def test_no_temp_sibling_left_behind(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"ok": True})
        assert os.listdir(tmp_path) == ["out.json"]


class TestCrashMidWrite:
    def test_injected_crash_leaves_old_file_intact(self, tmp_path):
        """The issue's acceptance check: interrupt between temp write and
        rename — the previous artifact survives byte-for-byte and no temp
        file leaks."""
        path = str(tmp_path / "report.json")
        atomic_write_json(path, {"generation": 1})
        faultinject.install(
            FaultPlan([Fault("artifact-write", "raise", match=path)])
        )
        with pytest.raises(InjectedFault):
            atomic_write_json(path, {"generation": 2})
        assert json.load(open(path)) == {"generation": 1}
        assert os.listdir(tmp_path) == ["report.json"]

    def test_injected_crash_on_first_write_leaves_nothing(self, tmp_path):
        path = str(tmp_path / "fresh.json")
        faultinject.install(
            FaultPlan([Fault("artifact-write", "raise", match=path)])
        )
        with pytest.raises(InjectedFault):
            atomic_write_json(path, {"generation": 1})
        assert os.listdir(tmp_path) == []
