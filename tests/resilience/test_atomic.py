"""Atomic artifact writes: a crash mid-write never corrupts the old file."""

import json
import os

import pytest

from repro.resilience import faultinject
from repro.resilience.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    fsync_directory,
)
from repro.resilience.faultinject import Fault, FaultPlan, InjectedFault


class TestAtomicWrite:
    def test_writes_text(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "hello\n")
        assert open(path).read() == "hello\n"

    def test_overwrites_existing(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert open(path).read() == "new"

    def test_json_round_trip(self, tmp_path):
        path = str(tmp_path / "out.json")
        payload = {"schema": 2, "runs": [{"phi": 3}]}
        atomic_write_json(path, payload)
        assert json.load(open(path)) == payload

    def test_no_temp_sibling_left_behind(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"ok": True})
        assert os.listdir(tmp_path) == ["out.json"]


class TestCrashMidWrite:
    def test_injected_crash_leaves_old_file_intact(self, tmp_path):
        """The issue's acceptance check: interrupt between temp write and
        rename — the previous artifact survives byte-for-byte and no temp
        file leaks."""
        path = str(tmp_path / "report.json")
        atomic_write_json(path, {"generation": 1})
        faultinject.install(
            FaultPlan([Fault("artifact-write", "raise", match=path)])
        )
        with pytest.raises(InjectedFault):
            atomic_write_json(path, {"generation": 2})
        assert json.load(open(path)) == {"generation": 1}
        assert os.listdir(tmp_path) == ["report.json"]

    def test_injected_crash_on_first_write_leaves_nothing(self, tmp_path):
        path = str(tmp_path / "fresh.json")
        faultinject.install(
            FaultPlan([Fault("artifact-write", "raise", match=path)])
        )
        with pytest.raises(InjectedFault):
            atomic_write_json(path, {"generation": 1})
        assert os.listdir(tmp_path) == []


class TestBytes:
    def test_writes_bytes(self, tmp_path):
        path = str(tmp_path / "blob.csr")
        atomic_write_bytes(path, b"\x00\x01CSR")
        assert open(path, "rb").read() == b"\x00\x01CSR"
        assert os.listdir(tmp_path) == ["blob.csr"]

    def test_crash_mid_write_leaves_old_blob(self, tmp_path):
        path = str(tmp_path / "blob.csr")
        atomic_write_bytes(path, b"old")
        faultinject.install(
            FaultPlan([Fault("artifact-write", "raise", match=path)])
        )
        with pytest.raises(InjectedFault):
            atomic_write_bytes(path, b"new")
        assert open(path, "rb").read() == b"old"


class TestDirectoryDurability:
    """The durability gap this PR closes: ``os.replace`` renames the
    file, but only an fsync of the *containing directory* makes the
    rename itself survive a power loss."""

    def test_dirsync_fault_fires_after_replace(self, tmp_path):
        # Crash between os.replace and the directory fsync: the new
        # content is already in place (the rename happened), no temp
        # sibling leaks, and the write is complete — never torn.
        path = str(tmp_path / "report.json")
        atomic_write_json(path, {"generation": 1})
        faultinject.install(
            FaultPlan([Fault("artifact-dirsync", "raise", match=path)])
        )
        with pytest.raises(InjectedFault):
            atomic_write_json(path, {"generation": 2})
        assert json.load(open(path)) == {"generation": 2}
        assert os.listdir(tmp_path) == ["report.json"]

    def test_dirsync_crash_then_retry_converges(self, tmp_path):
        path = str(tmp_path / "report.json")
        faultinject.install(
            FaultPlan([Fault("artifact-dirsync", "raise", match=path)])
        )
        with pytest.raises(InjectedFault):
            atomic_write_json(path, {"generation": 1})
        # The fault fired once; the caller's retry completes durably.
        atomic_write_json(path, {"generation": 2})
        assert json.load(open(path)) == {"generation": 2}

    def test_fsync_directory_tolerates_unsyncable_parents(self, tmp_path):
        # Best-effort by contract: some filesystems refuse directory
        # fsync; the helper must swallow that, not fail the write.
        fsync_directory(str(tmp_path / "file-in-real-dir"))
        fsync_directory("/proc/definitely/not/a/real/path")
