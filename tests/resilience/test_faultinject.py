"""Fault-plan parsing, matching, firing discipline, and the env hook."""

import json

import pytest

from repro.resilience import faultinject
from repro.resilience.faultinject import (
    Fault,
    FaultPlan,
    FaultPlanError,
    InjectedFault,
    fault_point,
)


class TestParsing:
    def test_from_json_object(self):
        plan = FaultPlan.from_json(
            '{"faults": [{"site": "probe", "action": "raise"}]}'
        )
        assert plan.faults == [Fault("probe", "raise")]
        assert plan.state_dir is None

    def test_from_json_bare_list(self):
        plan = FaultPlan.from_json('[{"site": "suite-cell", "action": "delay"}]')
        assert plan.faults[0].site == "suite-cell"

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault field"):
            FaultPlan.from_json(
                '{"faults": [{"site": "probe", "action": "raise", "when": 3}]}'
            )

    def test_unknown_action_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault action"):
            Fault("probe", "explode")

    def test_negative_counters_rejected(self):
        with pytest.raises(FaultPlanError):
            Fault("probe", "raise", at=-1)

    def test_invalid_json_rejected(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_kill_requires_state_dir(self):
        with pytest.raises(FaultPlanError, match="state_dir"):
            FaultPlan([Fault("probe", "kill")])

    def test_kill_with_state_dir_accepted(self, tmp_path):
        plan = FaultPlan.from_json(
            json.dumps(
                {
                    "state_dir": str(tmp_path),
                    "faults": [{"site": "probe", "action": "kill"}],
                }
            )
        )
        assert plan.state_dir == str(tmp_path)

    def test_from_env_file_reference(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"faults": [{"site": "probe", "action": "raise"}]}')
        plan = FaultPlan.from_env(f"@{path}")
        assert plan.faults[0].site == "probe"


class TestMatching:
    def test_full_tag_match_not_prefix(self):
        """``*:phi=5`` must not fire on phi=50 — fnmatch covers the whole
        tag, so the paper-style small-integer tags never alias."""
        plan = FaultPlan([Fault("probe", "raise", match="*:phi=5")])
        plan.hit("probe", "bbara:phi=50")  # no fire
        with pytest.raises(InjectedFault):
            plan.hit("probe", "bbara:phi=5")

    def test_site_must_match(self):
        plan = FaultPlan([Fault("probe", "raise")])
        plan.hit("suite-cell", "bbara:turbomap")  # different site: no fire

    def test_at_skips_leading_hits(self):
        plan = FaultPlan([Fault("probe", "raise", at=2)])
        plan.hit("probe", "x")
        plan.hit("probe", "x")
        with pytest.raises(InjectedFault):
            plan.hit("probe", "x")

    def test_fires_caps_firings(self):
        plan = FaultPlan([Fault("probe", "raise", fires=1)])
        with pytest.raises(InjectedFault):
            plan.hit("probe", "x")
        plan.hit("probe", "x")  # used up: no second fire

    def test_fires_zero_is_unlimited(self):
        plan = FaultPlan([Fault("probe", "raise", fires=0)])
        for _ in range(3):
            with pytest.raises(InjectedFault):
                plan.hit("probe", "x")


class TestActions:
    def test_raise_carries_message(self):
        plan = FaultPlan([Fault("probe", "raise", message="boom at phi")])
        with pytest.raises(InjectedFault, match="boom at phi"):
            plan.hit("probe", "x")

    def test_interrupt_simulates_ctrl_c(self):
        plan = FaultPlan([Fault("suite-cell", "interrupt")])
        with pytest.raises(KeyboardInterrupt):
            plan.hit("suite-cell", "x")

    def test_delay_returns(self):
        plan = FaultPlan([Fault("probe", "delay", seconds=0.0)])
        plan.hit("probe", "x")  # completes without raising


class TestStateDir:
    def test_one_shot_survives_plan_reload(self, tmp_path):
        """Two plan instances sharing a state_dir model a killed worker
        and its replacement after a pool restart: the marker claimed by
        the first firing must suppress the second."""
        spec = {"state_dir": str(tmp_path),
                "faults": [{"site": "probe", "action": "raise"}]}
        first = FaultPlan.from_json(json.dumps(spec))
        with pytest.raises(InjectedFault):
            first.hit("probe", "x")
        reloaded = FaultPlan.from_json(json.dumps(spec))
        reloaded.hit("probe", "x")  # marker on disk: no second fire

    def test_fires_n_claims_n_markers(self, tmp_path):
        plan = FaultPlan(
            [Fault("probe", "raise", fires=2)], state_dir=str(tmp_path)
        )
        for _ in range(2):
            with pytest.raises(InjectedFault):
                plan.hit("probe", "x")
        plan.hit("probe", "x")  # both slots claimed


class TestGlobalHook:
    def test_fault_point_noop_without_plan(self):
        fault_point("probe", tag="anything")  # must not raise

    def test_install_and_clear(self):
        faultinject.install(FaultPlan([Fault("probe", "raise")]))
        with pytest.raises(InjectedFault):
            fault_point("probe", tag="x")
        faultinject.clear()
        fault_point("probe", tag="x")

    def test_env_hook_loads_lazily(self, monkeypatch):
        monkeypatch.setenv(
            faultinject.ENV_PLAN,
            '{"faults": [{"site": "probe", "action": "raise"}]}',
        )
        faultinject.reset()
        with pytest.raises(InjectedFault):
            fault_point("probe", tag="x")

    def test_clear_suppresses_env_hook(self, monkeypatch):
        monkeypatch.setenv(
            faultinject.ENV_PLAN,
            '{"faults": [{"site": "probe", "action": "raise"}]}',
        )
        faultinject.clear()
        fault_point("probe", tag="x")  # env ignored after clear()
