"""Budget semantics, driven by an injected fake clock (no real sleeps)."""

import pytest

from repro.resilience.budget import (
    Budget,
    DeadlineExpired,
    ProbeTimeout,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestUnlimited:
    def test_no_limits_is_inert(self):
        budget = Budget()
        budget.start()
        assert budget.remaining() is None
        assert not budget.expired()
        budget.check()  # no-op
        assert budget.begin_probe() is None

    def test_elapsed_before_start_is_zero(self):
        assert Budget().elapsed() == 0.0


class TestDeadline:
    def test_remaining_counts_down(self):
        clock = FakeClock()
        budget = Budget(deadline=10.0, clock=clock).start()
        assert budget.remaining() == pytest.approx(10.0)
        clock.advance(4.0)
        assert budget.remaining() == pytest.approx(6.0)
        assert not budget.expired()

    def test_check_raises_after_expiry(self):
        clock = FakeClock()
        budget = Budget(deadline=5.0, clock=clock).start()
        budget.check()
        clock.advance(5.0)
        assert budget.expired()
        with pytest.raises(DeadlineExpired):
            budget.check()

    def test_start_is_idempotent(self):
        clock = FakeClock()
        budget = Budget(deadline=5.0, clock=clock).start()
        clock.advance(3.0)
        budget.start()  # must not reset the anchor
        assert budget.elapsed() == pytest.approx(3.0)

    def test_remaining_starts_the_clock_lazily(self):
        clock = FakeClock(t=100.0)
        budget = Budget(deadline=5.0, clock=clock)
        assert budget.remaining() == pytest.approx(5.0)


class TestBeginProbe:
    def test_allowance_is_probe_timeout_when_deadline_far(self):
        clock = FakeClock()
        budget = Budget(deadline=100.0, probe_timeout=2.0, clock=clock).start()
        assert budget.begin_probe() == pytest.approx(2.0)

    def test_allowance_clamped_by_remaining_deadline(self):
        clock = FakeClock()
        budget = Budget(deadline=10.0, probe_timeout=5.0, clock=clock).start()
        clock.advance(7.0)
        assert budget.begin_probe() == pytest.approx(3.0)

    def test_probe_timeout_only(self):
        budget = Budget(probe_timeout=1.5)
        assert budget.begin_probe() == pytest.approx(1.5)

    def test_raises_once_deadline_passed(self):
        clock = FakeClock()
        budget = Budget(deadline=1.0, probe_timeout=9.0, clock=clock).start()
        clock.advance(1.0)
        with pytest.raises(DeadlineExpired):
            budget.begin_probe()


class TestLedger:
    def test_note_records_elapsed_and_details(self):
        clock = FakeClock()
        budget = Budget(deadline=10.0, clock=clock).start()
        clock.advance(2.5)
        budget.note("pool_restart", failures=1)
        (event,) = budget.events
        assert event["kind"] == "pool_restart"
        assert event["failures"] == 1
        assert event["elapsed"] == pytest.approx(2.5)

    def test_exhaust_classifies_probe_timeout(self):
        budget = Budget(probe_timeout=1.0)
        budget.exhaust(ProbeTimeout("slow probe"))
        assert budget.exhausted
        assert budget.reason == "probe_timeout"
        assert budget.events[-1]["kind"] == "budget_exhausted"

    def test_exhaust_classifies_deadline(self):
        budget = Budget(deadline=1.0)
        budget.exhaust(DeadlineExpired("out of time"))
        assert budget.exhausted
        assert budget.reason == "deadline"

    def test_fresh_budget_defaults(self):
        budget = Budget()
        assert budget.attempts == 1
        assert not budget.exhausted
        assert budget.reason is None
        assert budget.events == []


class TestMonotonicClock:
    """The deadline must ride the injected *monotonic* clock only: wall
    clock adjustments (NTP steps, DST) — modeled here as the injected
    clock simply being the single source of truth — never shorten or
    extend a budget."""

    def test_elapsed_tracks_injected_clock_exactly(self):
        clock = FakeClock(t=1000.0)  # arbitrary epoch: only deltas matter
        budget = Budget(deadline=5.0, clock=clock).start()
        for step in (0.5, 1.25, 0.25):
            clock.advance(step)
        assert budget.elapsed() == pytest.approx(2.0)
        assert budget.remaining() == pytest.approx(3.0)
        assert not budget.expired()

    def test_clock_standing_still_never_expires(self):
        # A stalled monotonic clock (no time passing) must never expire
        # the budget, regardless of how often it is consulted.
        clock = FakeClock()
        budget = Budget(deadline=0.001, clock=clock).start()
        for _ in range(100):
            budget.check()
        assert not budget.expired()

    def test_expiry_is_a_pure_function_of_clock_deltas(self):
        clock = FakeClock(t=-50.0)  # even a negative epoch is fine
        budget = Budget(deadline=2.0, clock=clock).start()
        clock.advance(1.999)
        budget.check()
        clock.advance(0.002)
        assert budget.expired()
        with pytest.raises(DeadlineExpired):
            budget.check()

    def test_probe_allowance_uses_the_same_clock(self):
        clock = FakeClock(t=7.0)
        budget = Budget(deadline=4.0, probe_timeout=3.0, clock=clock).start()
        assert budget.begin_probe() == pytest.approx(3.0)
        clock.advance(2.0)
        # Remaining deadline (2.0) now clamps the probe allowance.
        assert budget.begin_probe() == pytest.approx(2.0)
