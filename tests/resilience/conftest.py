import pytest

from repro.resilience import faultinject


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """Isolate the process-global fault plan (and its env hook) per test."""
    monkeypatch.delenv(faultinject.ENV_PLAN, raising=False)
    faultinject.reset()
    yield
    faultinject.clear()
