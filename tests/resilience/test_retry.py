"""Deterministic backoff: same policy, same delays — always."""

import pytest

from repro.resilience.retry import RetryPolicy, _mix64


class TestDelay:
    def test_deterministic_across_instances(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        assert [a.delay(i) for i in range(1, 6)] == [
            b.delay(i) for i in range(1, 6)
        ]

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=10.0, jitter=0.25)
        for attempt in range(1, 8):
            raw = min(10.0, 0.1 * 2.0 ** (attempt - 1))
            delay = policy.delay(attempt)
            assert raw * 0.75 <= delay < raw * 1.25

    def test_no_jitter_is_exact_doubling(self):
        policy = RetryPolicy(base_delay=0.05, max_delay=1.0, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.05)
        assert policy.delay(2) == pytest.approx(0.10)
        assert policy.delay(3) == pytest.approx(0.20)

    def test_capped_at_max_delay(self):
        policy = RetryPolicy(base_delay=0.5, max_delay=2.0, jitter=0.0)
        assert policy.delay(10) == pytest.approx(2.0)

    def test_seed_changes_jitter(self):
        a = RetryPolicy(seed=0)
        b = RetryPolicy(seed=1)
        assert a.delay(1) != b.delay(1)

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class TestJitterBounds:
    """Direct coverage of the jitter contract: every delay lands in
    ``[raw * (1 - jitter), raw * (1 + jitter))`` and is a pure function
    of (seed, attempt)."""

    def test_band_holds_across_seeds_and_attempts(self):
        for seed in range(20):
            policy = RetryPolicy(
                base_delay=0.2, max_delay=30.0, jitter=0.5, seed=seed
            )
            for attempt in range(1, 10):
                raw = min(30.0, 0.2 * 2.0 ** (attempt - 1))
                delay = policy.delay(attempt)
                assert raw * 0.5 <= delay < raw * 1.5, (seed, attempt, delay)

    def test_band_scales_with_jitter_fraction(self):
        tight = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.01, seed=3)
        loose = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.9, seed=3)
        assert 0.99 <= tight.delay(1) < 1.01
        assert 0.1 <= loose.delay(1) < 1.9

    def test_delay_is_pure_in_seed_and_attempt(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.25, seed=42)
        # Re-querying the same attempt returns the identical delay: the
        # jitter is hashed, not drawn from mutable RNG state.
        assert policy.delay(4) == policy.delay(4)
        # And different attempts de-correlate (no lockstep fleets).
        delays = {round(policy.delay(a), 12) for a in range(1, 7)}
        assert len(delays) == 6

    def test_jitter_never_exceeds_max_delay_band(self):
        # The cap applies to the raw delay *before* jitter, so the final
        # value stays within the jitter band around max_delay.
        policy = RetryPolicy(base_delay=1.0, max_delay=2.0, jitter=0.25, seed=0)
        for attempt in range(4, 12):
            assert 1.5 <= policy.delay(attempt) < 2.5


class TestMix64:
    def test_stable_and_64_bit(self):
        assert _mix64(0, 1) == _mix64(0, 1)
        assert 0 <= _mix64(123, 456) < (1 << 64)

    def test_order_sensitive(self):
        assert _mix64(1, 2) != _mix64(2, 1)
