"""Tests for repro.resilience: budgets, retries, atomic writes, faults."""
