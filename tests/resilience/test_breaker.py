"""Circuit breakers: closed → open → half-open, on an injected clock."""

import pytest

from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.retry import RetryPolicy


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(threshold: int = 3, jitter: float = 0.0) -> "tuple":
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=threshold,
        policy=RetryPolicy(base_delay=1.0, max_delay=60.0, jitter=jitter),
        clock=clock,
    )
    return breaker, clock


class TestClosed:
    def test_starts_closed_and_allowing(self):
        breaker, _ = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failures_below_threshold_stay_closed(self):
        breaker, _ = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_success_resets_consecutive_count(self):
        breaker, _ = make_breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never two *consecutive* failures

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestOpen:
    def test_threshold_failures_trip_open(self):
        breaker, _ = make_breaker(threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_cooldown_follows_retry_policy_delay(self):
        breaker, clock = make_breaker(threshold=1)
        breaker.record_failure()
        # First trip waits policy.delay(1) = base_delay (jitter 0).
        clock.advance(0.99)
        assert breaker.state == OPEN
        clock.advance(0.02)
        assert breaker.state == HALF_OPEN

    def test_repeated_trips_back_off_exponentially(self):
        breaker, clock = make_breaker(threshold=1)
        breaker.record_failure()  # trip 1: delay 1.0
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN
        breaker.record_failure()  # trial failed → trip 2: delay 2.0
        assert breaker.state == OPEN
        clock.advance(1.5)
        assert breaker.state == OPEN  # 1.5 < 2.0: still cooling down
        clock.advance(0.5)
        assert breaker.state == HALF_OPEN
        assert breaker.trips == 2


class TestHalfOpen:
    def test_trial_success_closes_and_resets(self):
        breaker, clock = make_breaker(threshold=1)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()  # the half-open trial
        breaker.record_success()
        assert breaker.state == CLOSED
        # Closed again: takes a full threshold run to re-trip.
        breaker.record_failure()
        assert breaker.state == OPEN  # threshold=1
        assert breaker.trips == 2

    def test_trial_failure_reopens_immediately(self):
        breaker, clock = make_breaker(threshold=3)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN
        breaker.record_failure()  # one failure suffices in half-open
        assert breaker.state == OPEN


class TestSnapshot:
    def test_snapshot_is_json_able_and_counts_down(self):
        breaker, clock = make_breaker(threshold=1)
        assert breaker.snapshot() == {
            "state": CLOSED, "failures": 0, "trips": 0, "retry_in": None,
        }
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == OPEN
        assert snap["trips"] == 1
        assert snap["retry_in"] == pytest.approx(1.0)
        clock.advance(0.4)
        assert breaker.snapshot()["retry_in"] == pytest.approx(0.6)

    def test_deterministic_jitter_shared_with_retry_policy(self):
        # The breaker's cool-downs are exactly RetryPolicy delays: same
        # seed, same schedule — reproducible chaos tests.
        policy_a = RetryPolicy(base_delay=1.0, max_delay=60.0, seed=11)
        policy_b = RetryPolicy(base_delay=1.0, max_delay=60.0, seed=11)
        clock = FakeClock()
        a = CircuitBreaker(1, policy=policy_a, clock=clock)
        b = CircuitBreaker(1, policy=policy_b, clock=clock)
        a.record_failure()
        b.record_failure()
        assert a.snapshot()["retry_in"] == b.snapshot()["retry_in"]
