"""Cross-checks of core graph algorithms against networkx references."""

from fractions import Fraction

import networkx as nx
import pytest

from repro.netlist.graph import SeqCircuit
from repro.retime.mdr import has_positive_cycle, mdr_ratio
from tests.helpers import random_seq_circuit


def to_networkx(circuit: SeqCircuit) -> nx.MultiDiGraph:
    g = nx.MultiDiGraph()
    g.add_nodes_from(circuit.node_ids())
    for src, dst, w in circuit.edges():
        g.add_edge(src, dst, weight=w)
    return g


@pytest.mark.parametrize("seed", range(8))
class TestSccAgainstNetworkx:
    def test_same_components(self, seed):
        c = random_seq_circuit(4, 20, seed=seed, feedback=5)
        ours = {frozenset(comp) for comp in c.sccs()}
        theirs = {
            frozenset(comp)
            for comp in nx.strongly_connected_components(to_networkx(c))
        }
        assert ours == theirs

    def test_topological_component_order(self, seed):
        c = random_seq_circuit(4, 20, seed=seed, feedback=5)
        comps = c.sccs()
        index = {}
        for i, comp in enumerate(comps):
            for v in comp:
                index[v] = i
        for src, dst, _w in c.edges():
            assert index[src] <= index[dst]


@pytest.mark.parametrize("seed", range(6))
class TestMdrAgainstNetworkx:
    def _cycle_ratios(self, circuit):
        g = to_networkx(circuit)
        ratios = []
        # networkx simple_cycles on the condensed multigraph
        simple = nx.MultiDiGraph()
        for u, v, data in g.edges(data=True):
            simple.add_edge(u, v, weight=data["weight"])
        for cycle in nx.simple_cycles(nx.DiGraph(simple)):
            # evaluate best (min total weight) realization of the cycle
            delay = sum(circuit.node(v).delay for v in cycle)
            weight = 0
            ok = True
            for u, v in zip(cycle, cycle[1:] + cycle[:1]):
                ws = [p.weight for p in circuit.fanins(v) if p.src == u]
                if not ws:
                    ok = False
                    break
                weight += min(ws)
            if ok and weight > 0:
                ratios.append(Fraction(delay, weight))
        return ratios

    def test_mdr_matches_cycle_enumeration(self, seed):
        c = random_seq_circuit(3, 10, seed=seed, feedback=3)
        ratios = self._cycle_ratios(c)
        expected = max(ratios) if ratios else Fraction(0)
        assert mdr_ratio(c) == expected

    def test_positive_cycle_test_consistent(self, seed):
        c = random_seq_circuit(3, 10, seed=seed, feedback=3)
        ratio = mdr_ratio(c)
        if ratio > 0:
            assert has_positive_cycle(c, ratio - Fraction(1, 1000))
        assert not has_positive_cycle(c, ratio)


@pytest.mark.parametrize("seed", range(6))
class TestTopoOrder:
    def test_comb_topo_is_valid(self, seed):
        c = random_seq_circuit(4, 18, seed=seed, feedback=4)
        order = c.comb_topo_order()
        position = {v: i for i, v in enumerate(order)}
        for src, dst, w in c.edges():
            if w == 0:
                assert position[src] < position[dst]

    def test_matches_networkx_dag_check(self, seed):
        c = random_seq_circuit(4, 18, seed=seed, feedback=4)
        comb = nx.DiGraph(
            (src, dst) for src, dst, w in c.edges() if w == 0
        )
        comb.add_nodes_from(c.node_ids())
        assert nx.is_directed_acyclic_graph(comb)
