"""Fault injection: the verification stack must catch seeded defects.

Equivalence checkers that always answer "equivalent" are worse than none.
These tests mutate circuits — truth-table bit flips, register-count
changes — and require the checkers to notice; where a random mutation can
be benign (dead logic, unreachable rows), the probabilistic simulation
check is held to agreement with the exact unrolled oracle instead.
"""

import pytest

from repro.compat import default_rng
from repro.boolfn.truthtable import TruthTable
from repro.bench.fsm import fsm_to_circuit, random_fsm
from repro.core.turbomap import turbomap
from repro.netlist.graph import Pin, SeqCircuit
from repro.verify.bdd_equiv import combinational_equivalent
from repro.verify.equiv import (
    retiming_consistent,
    simulation_equivalent,
    unrolled_equivalent,
)
from tests.helpers import random_dag, random_seq_circuit

ONES = (1 << 64) - 1


def flip_table_bit(circuit: SeqCircuit, gate_index: int, row: int) -> SeqCircuit:
    mutant = circuit.copy(f"{circuit.name}_mut")
    g = mutant.gates[gate_index % mutant.n_gates]
    node = mutant.node(g)
    node.func = TruthTable(
        node.func.n, node.func.bits ^ (1 << (row % node.func.size))
    )
    return mutant


def bump_weight(circuit: SeqCircuit, gate_index: int) -> SeqCircuit:
    mutant = circuit.copy(f"{circuit.name}_mut")
    g = mutant.gates[gate_index % mutant.n_gates]
    pins = mutant.fanins(g)
    pins[0] = Pin(pins[0].src, pins[0].weight + 1)
    return mutant


def observable_mutant(circuit: SeqCircuit, cycles: int = 4) -> SeqCircuit:
    """A mutant the exact unrolled oracle certifies as behaviour-changing."""
    for gate_index in range(circuit.n_gates):
        for row in range(4):
            mutant = flip_table_bit(circuit, gate_index, row)
            if not unrolled_equivalent(circuit, mutant, cycles=cycles):
                return mutant
    raise AssertionError("no observable mutation found")  # pragma: no cover


class TestSimulationAgreesWithOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_bit_flip_verdicts_match(self, seed):
        c = random_seq_circuit(3, 8, seed=seed, feedback=1)
        rng = default_rng(seed)
        mutant = flip_table_bit(
            c, int(rng.integers(0, 99)), int(rng.integers(0, 4))
        )
        oracle = unrolled_equivalent(c, mutant, cycles=4)
        sim = simulation_equivalent(c, mutant, cycles=60, warmup=0, seed=seed)
        if not oracle:
            assert not sim  # a real difference must surface
        else:
            # benign within 4 cycles: simulation may still catch a later
            # divergence, so only the reverse implication is asserted.
            pass

    def test_observable_mutant_always_detected(self):
        c = random_seq_circuit(3, 10, seed=11, feedback=2)
        mutant = observable_mutant(c)
        assert not simulation_equivalent(c, mutant, cycles=60, warmup=0, seed=1)


class TestSimulationCatchesMutants:
    @pytest.mark.parametrize("seed", range(3))
    def test_weight_bump_detected(self, seed):
        c = random_seq_circuit(4, 16, seed=seed, feedback=3)
        # Bump the PO driver's first pin: guaranteed observable timing shift
        # unless that input is redundant; require detection on any seed
        # where the oracle agrees.
        po_driver = c.fanins(c.pos[0])[0].src
        mutant = c.copy(f"{c.name}_mut")
        pins = mutant.fanins(po_driver)
        pins[0] = Pin(pins[0].src, pins[0].weight + 1)
        oracle = unrolled_equivalent(c, mutant, cycles=3)
        if not oracle:
            assert not simulation_equivalent(
                c, mutant, cycles=60, warmup=0, seed=seed
            )

    def test_reset_synchronized_mode_catches_state_mutants(self):
        fsm = random_fsm("mut", 6, 3, 2, seed=3, split_depth=2)
        c = fsm_to_circuit(fsm, with_reset=True)
        mutant = observable_mutant(c)
        assert not simulation_equivalent(
            c,
            mutant,
            cycles=80,
            warmup=20,
            sync_inputs={"rst": ONES},
            sync_cycles=8,
        )


class TestExactCheckersCatchMutants:
    def test_unrolled_detects(self):
        c = random_seq_circuit(3, 8, seed=1, feedback=1)
        mutant = observable_mutant(c)
        assert not unrolled_equivalent(c, mutant, cycles=4)

    def test_bdd_detects(self):
        c = random_dag(6, 20, seed=4)
        # flip the PO driver itself: directly observable combinationally
        po_driver = c.fanins(c.pos[0])[0].src
        mutant = c.copy("mut")
        node = mutant.node(po_driver)
        node.func = ~node.func
        assert not combinational_equivalent(c, mutant)

    def test_retiming_certificate_rejects_function_change(self):
        c = random_seq_circuit(3, 10, seed=2, feedback=2)
        r = [0] * len(c)
        mutant = flip_table_bit(c, 1, 0)
        assert retiming_consistent(c, c.copy(), r)
        assert not retiming_consistent(c, mutant, r)

    def test_retiming_certificate_rejects_wrong_lags(self):
        c = random_seq_circuit(3, 10, seed=6, feedback=2)
        from repro.retime.leiserson import feas
        from repro.retime.mdr import min_feasible_period

        phi = min_feasible_period(c)
        r = feas(c, phi, allow_pipelining=True)
        retimed = c.apply_retiming(r)
        wrong = list(r)
        wrong[c.gates[0]] += 1
        assert retiming_consistent(c, retimed, r)
        assert not retiming_consistent(c, retimed, wrong)


class TestMapperOutputsSurviveMutationHunt:
    """Meta-check: mutating a *correct* mapping must break equivalence.

    Guards against the equivalence harness being too lax (e.g. warmup so
    large that everything passes).
    """

    def test_mapped_network_mutants_detected(self):
        c = random_seq_circuit(4, 14, seed=9, feedback=3)
        tm = turbomap(c, k=4)
        assert simulation_equivalent(c, tm.mapped, cycles=60, warmup=12, seed=9)
        mutant = observable_mutant(tm.mapped)
        # Compare the mutant against the SUBJECT circuit: the pipeline's
        # own equivalence check must reject it.
        assert not simulation_equivalent(c, mutant, cycles=60, warmup=0, seed=9)