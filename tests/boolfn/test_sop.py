"""Tests for cube covers and the two-level minimizer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.boolfn.sop import Cover, Cube, minimize_cover, prime_implicants
from repro.boolfn.truthtable import TruthTable

tables = st.integers(min_value=0, max_value=6).flatmap(
    lambda n: st.builds(
        TruthTable,
        st.just(n),
        st.integers(min_value=0, max_value=(1 << (1 << n)) - 1),
    )
)


class TestCube:
    def test_contains(self):
        cube = Cube.from_string("1-0")
        assert cube.contains(0b001)
        assert cube.contains(0b011)
        assert not cube.contains(0b101)
        assert not cube.contains(0b000)

    def test_string_roundtrip(self):
        for text in ["---", "101", "0-1", ""]:
            assert Cube.from_string(text).to_string(len(text)) == text

    def test_bad_character(self):
        with pytest.raises(ValueError):
            Cube.from_string("1x0")

    def test_polarity_outside_care(self):
        with pytest.raises(ValueError):
            Cube(care=0b01, polarity=0b10)

    def test_num_literals(self):
        assert Cube.from_string("1-0-").num_literals() == 2

    def test_table(self):
        cube = Cube.from_string("1-")
        assert cube.table(2) == TruthTable.var(0, 2)


class TestCover:
    def test_to_truthtable(self):
        cover = Cover.from_strings(2, ["11", "00"])
        t = cover.to_truthtable()
        assert [t.value(i) for i in range(4)] == [1, 0, 0, 1]

    def test_empty_cover_is_zero(self):
        assert Cover(3).to_truthtable() == TruthTable.const(3, False)

    def test_universal_cube_is_one(self):
        cover = Cover(3, [Cube(0, 0)])
        assert cover.to_truthtable() == TruthTable.const(3, True)

    def test_num_literals(self):
        cover = Cover.from_strings(3, ["1-0", "011"])
        assert cover.num_literals() == 5


class TestPrimeImplicants:
    def test_xor_primes(self):
        t = TruthTable.var(0, 2) ^ TruthTable.var(1, 2)
        primes = prime_implicants(t)
        assert sorted(c.to_string(2) for c in primes) == ["01", "10"]

    def test_absorbing_function(self):
        # f = x0 | (x0' & x1) == x0 | x1: primes are '1-' and '-1'
        t = TruthTable.var(0, 2) | TruthTable.var(1, 2)
        primes = prime_implicants(t)
        assert sorted(c.to_string(2) for c in primes) == ["-1", "1-"]

    def test_const_one(self):
        t = TruthTable.const(2, True)
        primes = prime_implicants(t)
        assert len(primes) == 1 and primes[0].care == 0

    @given(tables)
    def test_primes_cover_exactly(self, t):
        """The union of all primes equals the function."""
        primes = prime_implicants(t)
        rebuilt = Cover(t.n, primes).to_truthtable()
        assert rebuilt == t


class TestMinimizeCover:
    @given(tables)
    def test_exactness(self, t):
        cover = minimize_cover(t)
        assert cover.to_truthtable() == t

    def test_minimal_for_or(self):
        t = TruthTable.var(0, 3) | TruthTable.var(1, 3) | TruthTable.var(2, 3)
        cover = minimize_cover(t)
        assert len(cover) == 3
        assert cover.num_literals() == 3

    def test_zero_function(self):
        assert len(minimize_cover(TruthTable.const(4, False))) == 0

    def test_large_arity_heuristic_exact(self):
        from repro.compat import default_rng

        rng = default_rng(11)
        t = TruthTable.random(11, rng)  # above QM_MAX_VARS
        cover = minimize_cover(t)
        assert cover.to_truthtable() == t
