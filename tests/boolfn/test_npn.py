"""Tests for P/NPN canonical forms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfn.npn import (
    MAX_NPN_VARS,
    npn_canonical,
    npn_classes,
    p_canonical,
    p_canonical_with_pins,
    p_equivalent,
)
from repro.boolfn.truthtable import TruthTable

small_tables = st.integers(min_value=1, max_value=4).flatmap(
    lambda n: st.builds(
        TruthTable,
        st.just(n),
        st.integers(min_value=0, max_value=(1 << (1 << n)) - 1),
    )
)


class TestPCanonical:
    def test_permuted_pairs_agree(self):
        a = TruthTable.var(0, 3) & TruthTable.var(2, 3)
        b = TruthTable.var(1, 3) & TruthTable.var(0, 3)
        assert p_canonical(a) == p_canonical(b)
        assert p_equivalent(a, b)

    def test_different_functions_differ(self):
        a = TruthTable.var(0, 2) & TruthTable.var(1, 2)
        b = TruthTable.var(0, 2) | TruthTable.var(1, 2)
        assert not p_equivalent(a, b)

    @given(small_tables, st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_invariant_under_permutation(self, t, rnd):
        perm = list(range(t.n))
        rnd.shuffle(perm)
        assert p_canonical(t) == p_canonical(t.permute(perm))

    def test_arity_guard(self):
        with pytest.raises(ValueError):
            p_canonical(TruthTable.const(MAX_NPN_VARS + 1, True))

    def test_arity_mismatch_not_equivalent(self):
        assert not p_equivalent(
            TruthTable.const(2, True), TruthTable.const(3, True)
        )


class TestPCanonicalWithPins:
    def test_commutative_gate_shares(self):
        f = TruthTable.var(0, 2) & TruthTable.var(1, 2)
        key_ab = p_canonical_with_pins(f, [(7, 0), (9, 1)])
        key_ba = p_canonical_with_pins(f, [(9, 1), (7, 0)])
        assert key_ab == key_ba

    def test_noncommutative_positions_matter(self):
        # f = x0 AND NOT x1 is not symmetric: swapping pins changes it.
        f = TruthTable.from_function(2, lambda a, b: a and not b)
        key_ab = p_canonical_with_pins(f, [(7, 0), (9, 0)])
        key_ba = p_canonical_with_pins(f, [(9, 0), (7, 0)])
        assert key_ab != key_ba

    def test_pin_count_checked(self):
        f = TruthTable.var(0, 2)
        with pytest.raises(ValueError):
            p_canonical_with_pins(f, [(1, 0)])


class TestNpnCanonical:
    def test_and_class_members(self):
        # AND, NOR-of-negations, etc. share an NPN class with OR.
        and2 = TruthTable.from_function(2, lambda a, b: a and b)
        or2 = TruthTable.from_function(2, lambda a, b: a or b)
        nand2 = ~and2
        assert npn_canonical(and2) == npn_canonical(or2) == npn_canonical(nand2)

    def test_xor_is_its_own_class(self):
        xor2 = TruthTable.from_function(2, lambda a, b: a != b)
        and2 = TruthTable.from_function(2, lambda a, b: a and b)
        assert npn_canonical(xor2) != npn_canonical(and2)

    @given(small_tables, st.randoms(use_true_random=False), st.data())
    @settings(max_examples=40, deadline=None)
    def test_invariant_under_npn_moves(self, t, rnd, data):
        perm = list(range(t.n))
        rnd.shuffle(perm)
        variant = t.permute(perm)
        if data.draw(st.booleans()):
            variant = ~variant
        assert npn_canonical(t) == npn_canonical(variant)

    def test_two_input_class_count(self):
        # All 16 two-input functions fall into exactly 4 NPN classes:
        # const, projection, AND-type, XOR-type.
        funcs = [TruthTable(2, bits) for bits in range(16)]
        assert len(npn_classes(funcs)) == 4


class TestPackUsesCanonicalKeys:
    def test_swapped_fanins_merge(self):
        from repro.comb.pack import pack_luts
        from repro.netlist.graph import SeqCircuit

        and2 = TruthTable.from_function(2, lambda a, b: a and b)
        or2 = TruthTable.from_function(2, lambda a, b: a or b)
        c = SeqCircuit()
        a, b = c.add_pi("a"), c.add_pi("b")
        g1 = c.add_gate("g1", and2, [(a, 0), (b, 0)])
        g2 = c.add_gate("g2", and2, [(b, 0), (a, 0)])  # swapped pins
        o = c.add_gate("o", or2, [(g1, 0), (g2, 0)])
        c.add_po("out", o)
        packed = pack_luts(c, k=4)
        assert packed.n_gates == 1  # g1 == g2, then absorbed into o
