"""Tests for Roth-Karp decomposition and deadline-driven LUT-tree synthesis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compat import default_rng
from repro.boolfn.decompose import disjoint_decompose, synthesize_lut_tree
from repro.boolfn.truthtable import TruthTable

tables = st.integers(min_value=2, max_value=6).flatmap(
    lambda n: st.builds(
        TruthTable,
        st.just(n),
        st.integers(min_value=0, max_value=(1 << (1 << n)) - 1),
    )
)


def xor_of(n):
    t = TruthTable.const(n, False)
    for i in range(n):
        t = t ^ TruthTable.var(i, n)
    return t


def and_of(n):
    t = TruthTable.const(n, True)
    for i in range(n):
        t = t & TruthTable.var(i, n)
    return t


class TestDisjointDecompose:
    def test_and_gate_decomposes(self):
        f = and_of(6)
        step = disjoint_decompose(f, [0, 1, 2])
        assert step is not None
        assert len(step.alphas) == 1  # mu = 2
        assert step.recompose(6) == f

    def test_xor_decomposes(self):
        f = xor_of(5)
        step = disjoint_decompose(f, [0, 1, 2])
        assert step is not None
        assert len(step.alphas) == 1
        assert step.recompose(5) == f

    def test_majority_does_not_gain(self):
        maj = TruthTable.from_function(3, lambda a, b, c: a + b + c >= 2)
        # mu = 3 -> t = 2 = |bound|: no support reduction, so refuse.
        assert disjoint_decompose(maj, [0, 1]) is None

    def test_image_layout(self):
        f = and_of(4)
        step = disjoint_decompose(f, [0, 1])
        assert step is not None
        # alpha = x0 & x1 (or its complement); image has vars
        # [code, x2, x3]
        assert step.image.n == 3
        assert step.recompose(4) == f

    @given(tables, st.data())
    @settings(max_examples=150)
    def test_recompose_exact(self, t, data):
        b = data.draw(st.integers(min_value=2, max_value=t.n - 1)) if t.n > 2 else 2
        bound = sorted(
            data.draw(
                st.sets(
                    st.integers(min_value=0, max_value=t.n - 1),
                    min_size=min(b, t.n),
                    max_size=min(b, t.n),
                )
            )
        )
        step = disjoint_decompose(t, bound)
        if step is not None:
            assert step.recompose(t.n) == t

    def test_mu_one_bound(self):
        # Function ignoring the bound set entirely: mu = 1, one constant alpha.
        f = TruthTable.var(2, 3)
        step = disjoint_decompose(f, [0, 1])
        assert step is not None
        assert step.recompose(3) == f


class TestLutTree:
    def test_single_lut(self):
        f = and_of(3)
        tree = synthesize_lut_tree(f, [0, 0, 0], k=4, deadline=1)
        assert tree is not None
        assert len(tree.luts) == 1
        assert tree.to_truthtable() == f

    def test_deadline_too_tight(self):
        f = and_of(3)
        assert synthesize_lut_tree(f, [5, 0, 0], k=4, deadline=3) is None

    def test_wide_and_needs_two_levels(self):
        f = and_of(6)
        tree = synthesize_lut_tree(f, [0] * 6, k=4, deadline=2)
        assert tree is not None
        assert tree.to_truthtable() == f
        assert tree.max_fanin() <= 4
        assert tree.root_ready([0] * 6) <= 2

    def test_wide_xor(self):
        f = xor_of(8)
        tree = synthesize_lut_tree(f, [0] * 8, k=3, deadline=3)
        assert tree is not None
        assert tree.to_truthtable() == f
        assert tree.max_fanin() <= 3

    def test_respects_late_arrival(self):
        # x5 arrives at time 2; everything else at 0.  Root deadline 3 forces
        # x5 to sit near the root.
        f = and_of(6)
        arrival = [0, 0, 0, 0, 0, 2]
        tree = synthesize_lut_tree(f, arrival, k=4, deadline=3)
        assert tree is not None
        assert tree.root_ready(arrival) <= 3
        assert tree.to_truthtable() == f

    def test_negative_arrivals(self):
        f = and_of(5)
        arrival = [-3, -2, -1, 0, 0]
        tree = synthesize_lut_tree(f, arrival, k=4, deadline=1)
        assert tree is not None
        assert tree.root_ready(arrival) <= 1
        assert tree.to_truthtable() == f

    def test_nondecomposable_fails_gracefully(self):
        rng = default_rng(0)
        # A random function of 6 vars is almost surely not decomposable
        # with small multiplicity; with k=5 and no slack it must fail.
        f = TruthTable.random(6, rng)
        while len(f.support()) < 6:  # pragma: no cover - unlikely
            f = TruthTable.random(6, rng)
        result = synthesize_lut_tree(f, [0] * 6, k=5, deadline=1)
        assert result is None

    def test_constant_function(self):
        f = TruthTable.const(4, True)
        tree = synthesize_lut_tree(f, [0] * 4, k=4, deadline=1)
        assert tree is not None
        assert tree.to_truthtable() == f

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            synthesize_lut_tree(and_of(2), [0, 0], k=1, deadline=5)

    @given(
        st.integers(min_value=3, max_value=9),
        st.integers(min_value=3, max_value=5),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_synthesized_trees_are_exact(self, n, k, rnd):
        rng = default_rng(rnd.randrange(1 << 30))
        # Build decomposable-ish functions: trees of AND/OR/XOR.
        f = TruthTable.var(0, n)
        for i in range(1, n):
            op = rnd.choice(["and", "or", "xor"])
            v = TruthTable.var(i, n)
            f = {"and": f & v, "or": f | v, "xor": f ^ v}[op]
        tree = synthesize_lut_tree(f, [0] * n, k=k, deadline=8)
        assert tree is not None
        assert tree.to_truthtable() == f
        assert tree.max_fanin() <= k
        ready = tree.root_ready([0] * n)
        assert ready <= 8
