"""Unit and property tests for the ROBDD manager."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.boolfn.bdd import ONE, ZERO, BDD
from repro.boolfn.truthtable import TruthTable

tables = st.integers(min_value=0, max_value=5).flatmap(
    lambda n: st.builds(
        TruthTable,
        st.just(n),
        st.integers(min_value=0, max_value=(1 << (1 << n)) - 1),
    )
)


class TestBasics:
    def test_terminals(self):
        bdd = BDD(3)
        assert bdd.is_terminal(ZERO) and bdd.is_terminal(ONE)
        assert len(bdd) == 2

    def test_var_node(self):
        bdd = BDD(2)
        x = bdd.var_node(0)
        assert bdd.var_of(x) == 0
        assert bdd.low(x) == ZERO and bdd.high(x) == ONE

    def test_node_reduction(self):
        bdd = BDD(2)
        assert bdd.node(0, ONE, ONE) == ONE

    def test_unique_table_sharing(self):
        bdd = BDD(2)
        a = bdd.node(0, ZERO, ONE)
        b = bdd.node(0, ZERO, ONE)
        assert a == b

    def test_bad_var(self):
        bdd = BDD(2)
        with pytest.raises(ValueError):
            bdd.node(2, ZERO, ONE)


class TestAlgebra:
    def test_and_or_not(self):
        bdd = BDD(2)
        a, b = bdd.var_node(0), bdd.var_node(1)
        f = bdd.apply_and(a, b)
        g = bdd.apply_not(bdd.apply_or(bdd.apply_not(a), bdd.apply_not(b)))
        assert f == g  # De Morgan + canonicity

    def test_xor(self):
        bdd = BDD(2)
        a, b = bdd.var_node(0), bdd.var_node(1)
        f = bdd.apply_xor(a, b)
        assert bdd.eval(f, [0, 1]) == 1
        assert bdd.eval(f, [1, 1]) == 0

    def test_ite_terminal_cases(self):
        bdd = BDD(1)
        x = bdd.var_node(0)
        assert bdd.ite(ONE, x, ZERO) == x
        assert bdd.ite(ZERO, x, ONE) == ONE
        assert bdd.ite(x, ONE, ZERO) == x


class TestConversions:
    @given(tables)
    def test_truthtable_roundtrip(self, t):
        bdd = BDD(max(t.n, 1))
        f = bdd.from_truthtable(t)
        assert bdd.to_truthtable(f, t.n) == t

    @given(tables)
    def test_canonicity(self, t):
        """Structurally different constructions of equal functions unify."""
        bdd = BDD(max(t.n, 1))
        f = bdd.from_truthtable(t)
        # Rebuild via Shannon expansion on var 0.
        if t.n == 0:
            return
        x = bdd.var_node(0)
        f1 = bdd.from_truthtable(t.cofactor_keep(0, 1))
        f0 = bdd.from_truthtable(t.cofactor_keep(0, 0))
        assert bdd.ite(x, f1, f0) == f

    def test_majority_node_count(self):
        bdd = BDD(3)
        maj = TruthTable.from_function(3, lambda a, b, c: a + b + c >= 2)
        f = bdd.from_truthtable(maj)
        assert bdd.node_count(f) == 4  # classic: 3 levels, 4 internal nodes

    def test_support(self):
        bdd = BDD(4)
        t = TruthTable.var(1, 4) ^ TruthTable.var(3, 4)
        f = bdd.from_truthtable(t)
        assert bdd.support(f) == {1, 3}


class TestQueries:
    @given(tables)
    def test_sat_count_matches_table(self, t):
        bdd = BDD(max(t.n, 1))
        f = bdd.from_truthtable(t)
        expected = t.count_ones() << (max(t.n, 1) - t.n)
        assert bdd.sat_count(f) == expected

    @given(tables, st.data())
    def test_restrict_matches_cofactor(self, t, data):
        if t.n == 0:
            return
        i = data.draw(st.integers(min_value=0, max_value=t.n - 1))
        val = data.draw(st.integers(min_value=0, max_value=1))
        bdd = BDD(t.n)
        f = bdd.from_truthtable(t)
        restricted = bdd.restrict(f, i, val)
        assert bdd.to_truthtable(restricted, t.n) == t.cofactor_keep(i, val)

    def test_compose(self):
        bdd = BDD(3)
        f = bdd.apply_or(bdd.var_node(0), bdd.var_node(2))
        g = bdd.apply_and(bdd.var_node(1), bdd.var_node(2))
        h = bdd.compose(f, 0, g)
        t = bdd.to_truthtable(h, 3)
        expected = (TruthTable.var(1, 3) & TruthTable.var(2, 3)) | TruthTable.var(
            2, 3
        )
        assert t == expected

    @given(tables)
    def test_eval_pointwise(self, t):
        bdd = BDD(max(t.n, 1))
        f = bdd.from_truthtable(t)
        for idx in range(min(t.size, 32)):
            x = [(idx >> j) & 1 for j in range(t.n)] + [0] * (bdd.num_vars - t.n)
            assert bdd.eval(f, x) == t.value(idx)


class TestCutMultiplicity:
    @given(tables, st.data())
    def test_matches_truthtable_multiplicity(self, t, data):
        if t.n < 2:
            return
        b = data.draw(st.integers(min_value=1, max_value=t.n - 1))
        bdd = BDD(t.n)
        f = bdd.from_truthtable(t)
        # Bound set = vars 0..b-1, already on top of the manager order.
        assert bdd.cut_multiplicity(f, b) == t.column_multiplicity(list(range(b)))

    def test_and_chain(self):
        bdd = BDD(4)
        t = TruthTable.const(4, True)
        for i in range(4):
            t = t & TruthTable.var(i, 4)
        f = bdd.from_truthtable(t)
        assert bdd.cut_multiplicity(f, 2) == 2
