"""Algebraic-law property tests for truth tables (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfn.bdd import BDD
from repro.boolfn.truthtable import TruthTable

sized_tables = st.integers(min_value=1, max_value=6).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.integers(min_value=0, max_value=(1 << (1 << n)) - 1),
    )
)


def table(args):
    return TruthTable(*args)


class TestPermutationLaws:
    @given(sized_tables, st.randoms(use_true_random=False))
    def test_permute_inverse(self, args, rnd):
        t = table(args)
        perm = list(range(t.n))
        rnd.shuffle(perm)
        inverse = [0] * t.n
        for j, p in enumerate(perm):
            inverse[p] = j
        assert t.permute(perm).permute(inverse) == t

    @given(sized_tables, st.randoms(use_true_random=False))
    def test_permute_preserves_weight(self, args, rnd):
        t = table(args)
        perm = list(range(t.n))
        rnd.shuffle(perm)
        assert t.permute(perm).count_ones() == t.count_ones()

    @given(sized_tables, st.randoms(use_true_random=False))
    def test_permute_commutes_with_negation(self, args, rnd):
        t = table(args)
        perm = list(range(t.n))
        rnd.shuffle(perm)
        assert (~t).permute(perm) == ~(t.permute(perm))


class TestExtendLaws:
    @given(sized_tables)
    def test_extend_identity(self, args):
        t = table(args)
        assert t.extend(t.n, list(range(t.n))) == t

    @given(sized_tables, st.integers(min_value=0, max_value=3))
    def test_extend_then_shrink(self, args, pad):
        t = table(args)
        n2 = t.n + pad
        extended = t.extend(n2, list(range(t.n)))
        shrunk, sup = extended.shrink_to_support()
        lifted = shrunk.extend(t.n, list(sup)) if sup else shrunk.extend(t.n, [])
        assert lifted == t

    @given(sized_tables)
    def test_extend_support_unchanged(self, args):
        t = table(args)
        extended = t.extend(t.n + 2, list(range(t.n)))
        assert extended.support() == t.support()


class TestCofactorLaws:
    @given(sized_tables, st.data())
    def test_cofactor_idempotent(self, args, data):
        t = table(args)
        i = data.draw(st.integers(min_value=0, max_value=t.n - 1))
        v = data.draw(st.integers(min_value=0, max_value=1))
        once = t.cofactor_keep(i, v)
        assert once.cofactor_keep(i, v) == once
        assert not once.depends_on(i)

    @given(sized_tables, st.data())
    def test_compose_with_var_is_identity(self, args, data):
        t = table(args)
        i = data.draw(st.integers(min_value=0, max_value=t.n - 1))
        assert t.compose(i, TruthTable.var(i, t.n)) == t

    @given(sized_tables, st.data())
    def test_compose_with_const(self, args, data):
        t = table(args)
        i = data.draw(st.integers(min_value=0, max_value=t.n - 1))
        v = data.draw(st.integers(min_value=0, max_value=1))
        composed = t.compose(i, TruthTable.const(t.n, bool(v)))
        assert composed == t.cofactor_keep(i, v)


class TestAgainstBdd:
    @given(sized_tables, sized_tables)
    @settings(max_examples=80, deadline=None)
    def test_binary_ops_agree(self, a_args, b_args):
        n = max(a_args[0], b_args[0])
        a = table(a_args).extend(n, list(range(a_args[0])))
        b = table(b_args).extend(n, list(range(b_args[0])))
        manager = BDD(n)
        fa, fb = manager.from_truthtable(a), manager.from_truthtable(b)
        assert manager.to_truthtable(manager.apply_and(fa, fb), n) == (a & b)
        assert manager.to_truthtable(manager.apply_or(fa, fb), n) == (a | b)
        assert manager.to_truthtable(manager.apply_xor(fa, fb), n) == (a ^ b)

    @given(sized_tables)
    def test_support_agrees(self, args):
        t = table(args)
        manager = BDD(t.n)
        f = manager.from_truthtable(t)
        assert manager.support(f) == set(t.support())

    @given(sized_tables)
    def test_count_agrees(self, args):
        t = table(args)
        manager = BDD(t.n)
        f = manager.from_truthtable(t)
        assert manager.sat_count(f) == t.count_ones()
