"""Unit and property tests for packed truth tables."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compat import default_rng
from repro.boolfn.truthtable import MAX_VARS, TruthTable


def random_table(draw, max_n=6):
    n = draw(st.integers(min_value=0, max_value=max_n))
    bits = draw(st.integers(min_value=0, max_value=(1 << (1 << n)) - 1))
    return TruthTable(n, bits)


tables = st.builds(
    lambda n_and_bits: TruthTable(n_and_bits[0], n_and_bits[1]),
    st.integers(min_value=0, max_value=6).flatmap(
        lambda n: st.tuples(
            st.just(n), st.integers(min_value=0, max_value=(1 << (1 << n)) - 1)
        )
    ),
)


class TestConstructors:
    def test_const_false(self):
        t = TruthTable.const(3, False)
        assert t.bits == 0
        assert t.is_const()

    def test_const_true(self):
        t = TruthTable.const(3, True)
        assert t.bits == 0xFF
        assert t.is_const()

    def test_var_patterns(self):
        x0 = TruthTable.var(0, 2)
        x1 = TruthTable.var(1, 2)
        assert [x0.value(i) for i in range(4)] == [0, 1, 0, 1]
        assert [x1.value(i) for i in range(4)] == [0, 0, 1, 1]

    def test_var_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable.var(2, 2)

    def test_from_values_roundtrip(self):
        vals = [0, 1, 1, 0, 1, 0, 0, 1]
        t = TruthTable.from_values(vals)
        assert [t.value(i) for i in range(8)] == vals

    def test_from_values_bad_length(self):
        with pytest.raises(ValueError):
            TruthTable.from_values([0, 1, 1])

    def test_from_function_majority(self):
        maj = TruthTable.from_function(3, lambda a, b, c: a + b + c >= 2)
        assert maj.count_ones() == 4
        assert maj.eval([1, 1, 0]) == 1
        assert maj.eval([1, 0, 0]) == 0

    def test_from_array_roundtrip(self):
        pytest.importorskip("numpy")  # to_array/from_array are numpy-only
        rng = default_rng(7)
        t = TruthTable.random(5, rng)
        assert TruthTable.from_array(t.to_array()) == t

    def test_arity_bounds(self):
        with pytest.raises(ValueError):
            TruthTable(MAX_VARS + 1, 0)
        with pytest.raises(ValueError):
            TruthTable(1, 0b10000)

    def test_immutability(self):
        t = TruthTable.const(2, False)
        with pytest.raises(AttributeError):
            t.bits = 5


class TestAlgebra:
    def test_demorgan(self):
        a = TruthTable.var(0, 3)
        b = TruthTable.var(1, 3)
        assert ~(a & b) == (~a | ~b)

    def test_xor_definition(self):
        a = TruthTable.var(0, 2)
        b = TruthTable.var(1, 2)
        assert (a ^ b) == ((a & ~b) | (~a & b))

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            TruthTable.var(0, 2) & TruthTable.var(0, 3)

    def test_hash_consistency(self):
        a = TruthTable.var(0, 3) & TruthTable.var(1, 3)
        b = TruthTable.var(1, 3) & TruthTable.var(0, 3)
        assert a == b and hash(a) == hash(b)

    @given(tables)
    def test_double_negation(self, t):
        assert ~~t == t

    @given(tables)
    def test_and_or_absorption(self, t):
        assert (t & t) == t
        assert (t | t) == t
        assert (t ^ t).bits == 0


class TestCofactors:
    def test_cofactor_keep_and(self):
        f = TruthTable.var(0, 2) & TruthTable.var(1, 2)
        assert f.cofactor_keep(0, 1) == TruthTable.var(1, 2)
        assert f.cofactor_keep(0, 0).bits == 0

    def test_cofactor_removes_var(self):
        f = TruthTable.var(0, 3) | TruthTable.var(2, 3)
        g = f.cofactor(0, 0)
        assert g.n == 2
        # remaining variables shift down: old var2 -> new var1
        assert g == TruthTable.var(1, 2)

    @given(tables, st.data())
    def test_shannon_expansion(self, t, data):
        if t.n == 0:
            return
        i = data.draw(st.integers(min_value=0, max_value=t.n - 1))
        x = TruthTable.var(i, t.n)
        rebuilt = (x & t.cofactor_keep(i, 1)) | (~x & t.cofactor_keep(i, 0))
        assert rebuilt == t

    def test_remove_essential_raises(self):
        f = TruthTable.var(0, 2)
        with pytest.raises(ValueError):
            f.remove_var(0)

    def test_support(self):
        f = TruthTable.var(0, 4) ^ TruthTable.var(2, 4)
        assert f.support() == (0, 2)

    def test_shrink_to_support(self):
        f = TruthTable.var(1, 4) & TruthTable.var(3, 4)
        g, sup = f.shrink_to_support()
        assert sup == (1, 3)
        assert g == TruthTable.var(0, 2) & TruthTable.var(1, 2)


class TestPermuteExtendCompose:
    @given(tables, st.randoms(use_true_random=False))
    def test_permute_pointwise(self, t, rnd):
        perm = list(range(t.n))
        rnd.shuffle(perm)
        g = t.permute(perm)
        for idx in range(min(t.size, 64)):
            y = [(idx >> j) & 1 for j in range(t.n)]
            x = [0] * t.n
            for j in range(t.n):
                x[perm[j]] = y[j]
            assert g.eval(y) == t.eval(x)

    def test_permute_identity(self):
        t = TruthTable.var(0, 3)
        assert t.permute([0, 1, 2]) is t

    def test_permute_bad(self):
        with pytest.raises(ValueError):
            TruthTable.var(0, 2).permute([0, 0])

    def test_extend_pointwise(self):
        f = TruthTable.var(0, 2) & TruthTable.var(1, 2)
        g = f.extend(4, [3, 1])  # old var0 -> new var3, old var1 -> new var1
        for idx in range(16):
            x = [(idx >> j) & 1 for j in range(4)]
            assert g.eval(x) == (x[3] & x[1])

    def test_compose(self):
        f = TruthTable.var(0, 3) | TruthTable.var(1, 3)
        g = TruthTable.var(1, 3) & TruthTable.var(2, 3)
        h = f.compose(0, g)
        for idx in range(8):
            x = [(idx >> j) & 1 for j in range(3)]
            assert h.eval(x) == ((x[1] & x[2]) | x[1])


class TestColumns:
    def test_multiplicity_of_and(self):
        # f = (x0 & x1) & x2 : columns over bound {0,1} are {0, x2}: mu = 2
        f = (
            TruthTable.var(0, 3)
            & TruthTable.var(1, 3)
            & TruthTable.var(2, 3)
        )
        assert f.column_multiplicity([0, 1]) == 2

    def test_multiplicity_of_xor(self):
        f = TruthTable.var(0, 3) ^ TruthTable.var(1, 3) ^ TruthTable.var(2, 3)
        assert f.column_multiplicity([0, 1]) == 2

    def test_multiplicity_nondecomposable(self):
        # 2-out-of-3 majority has mu = 3 over any 2-variable bound set.
        maj = TruthTable.from_function(3, lambda a, b, c: a + b + c >= 2)
        assert maj.column_multiplicity([0, 1]) == 3

    def test_columns_are_subfunctions(self):
        f = TruthTable.from_function(3, lambda a, b, c: (a and not b) or c)
        cols = f.columns([0, 1])
        assert len(cols) == 4
        # bound assignment a=1, b=0 -> residual function of c is (1 or c)=1
        assert cols[0b01] == 0b11

    @given(tables)
    def test_multiplicity_bounds(self, t):
        if t.n < 2:
            return
        bound = [0, 1]
        mu = t.column_multiplicity(bound)
        assert 1 <= mu <= 4


class TestMisc:
    def test_value_range(self):
        t = TruthTable.const(2, True)
        with pytest.raises(ValueError):
            t.value(4)

    def test_eval_wrong_arity(self):
        with pytest.raises(ValueError):
            TruthTable.const(2, True).eval([0])

    def test_repr_small_and_large(self):
        assert "0x" in repr(TruthTable.var(0, 2))
        assert "minterms" in repr(TruthTable.const(7, True))

    def test_random_is_deterministic_per_seed(self):
        a = TruthTable.random(4, default_rng(3))
        b = TruthTable.random(4, default_rng(3))
        assert a == b
