"""Additional coverage for LUT trees and decomposition bookkeeping."""

import pytest

from repro.boolfn.decompose import Lut, LutTree, disjoint_decompose, synthesize_lut_tree
from repro.boolfn.truthtable import TruthTable


def and_of(n):
    t = TruthTable.const(n, True)
    for i in range(n):
        t = t & TruthTable.var(i, n)
    return t


class TestLutTreeApi:
    def tree_two_level(self):
        """alpha = x0 & x1; root = alpha & x2."""
        tree = LutTree(num_leaves=3)
        and2 = TruthTable.from_function(2, lambda a, b: a and b)
        tree.luts.append(Lut(and2, (0, 1)))
        tree.luts.append(Lut(and2, (-1, 2)))
        return tree

    def test_ready_times(self):
        tree = self.tree_two_level()
        assert tree.ready_times([0, 0, 0]) == [1, 2]
        assert tree.ready_times([5, 0, 0]) == [6, 7]
        assert tree.ready_times([0, 0, 9]) == [1, 10]

    def test_depth(self):
        assert self.tree_two_level().depth() == 2

    def test_max_fanin(self):
        assert self.tree_two_level().max_fanin() == 2

    def test_root_index(self):
        assert self.tree_two_level().root == 1

    def test_to_truthtable(self):
        assert self.tree_two_level().to_truthtable() == and_of(3)

    def test_arrival_length_checked(self):
        with pytest.raises(ValueError):
            self.tree_two_level().ready_times([0, 0])


class TestDecomposeEdges:
    def test_single_variable_bound_refused(self):
        f = and_of(3)
        assert disjoint_decompose(f, [0]) is None

    def test_bad_bound_indices(self):
        f = and_of(3)
        with pytest.raises(ValueError):
            f.columns([0, 5])

    def test_arrival_mismatch(self):
        with pytest.raises(ValueError):
            synthesize_lut_tree(and_of(3), [0, 0], k=3, deadline=4)

    def test_zero_arity_function(self):
        tree = synthesize_lut_tree(TruthTable.const(0, True), [], k=2, deadline=1)
        assert tree is not None
        assert tree.to_truthtable().bits == 1

    def test_identity_passthrough(self):
        f = TruthTable.var(0, 1)
        tree = synthesize_lut_tree(f, [3], k=2, deadline=4)
        assert tree is not None
        assert tree.root_ready([3]) == 4
