"""Tests for multi-output (shared-encoder) functional decomposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compat import default_rng
from repro.boolfn.modecomp import (
    best_shared_bound,
    encoder_savings,
    joint_multiplicity,
    shared_decompose,
)
from repro.boolfn.truthtable import TruthTable


def var(i, n=5):
    return TruthTable.var(i, n)


def and_block(n=5):
    """f1 = x0&x1&x2 over 5 vars; f2 = (x0&x1&x2) ^ x3."""
    conj = var(0) & var(1) & var(2)
    return conj & var(3), conj ^ var(3)


class TestJointMultiplicity:
    def test_shared_structure_small_mu(self):
        f1, f2 = and_block()
        # Both functions factor through x0&x1&x2: joint mu over that
        # bound set is 2 (columns determined by the conjunction value).
        assert joint_multiplicity([f1, f2], [0, 1, 2]) == 2

    def test_unrelated_functions_multiply(self):
        f1 = var(0) ^ var(1)
        f2 = var(0) & var(1)
        # separate mus are 2 and 2; the joint vector needs more codes
        mu = joint_multiplicity([f1, f2], [0, 1])
        assert mu == 3  # (0,0), (1,0), (0,1) ... vectors over b-assignments

    def test_single_function_matches_column_multiplicity(self):
        rng = default_rng(3)
        f = TruthTable.random(5, rng)
        assert joint_multiplicity([f], [0, 1, 2]) == f.column_multiplicity([0, 1, 2])

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            joint_multiplicity([var(0, 3), var(0, 4)], [0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            joint_multiplicity([], [0])


class TestSharedDecompose:
    def test_shared_encoders_exact(self):
        f1, f2 = and_block()
        step = shared_decompose([f1, f2], [0, 1, 2])
        assert step is not None
        assert len(step.alphas) == 1  # one shared encoder
        assert step.recompose(0, 5) == f1
        assert step.recompose(1, 5) == f2

    def test_no_gain_refused(self):
        # Joint multiplicity of two "independent" functions over a
        # 2-variable bound set needs 2 bits: no support reduction.
        f1 = var(0) ^ var(1)
        f2 = var(0) & var(1)
        assert shared_decompose([f1, f2], [0, 1]) is None

    @given(
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_recompose_exact_random(self, bits1, bits2):
        f1 = TruthTable(4, bits1)
        f2 = TruthTable(4, bits2)
        step = shared_decompose([f1, f2], [0, 1, 2])
        if step is not None:
            assert step.recompose(0, 4) == f1
            assert step.recompose(1, 4) == f2


class TestBestSharedBound:
    def test_finds_the_shared_block(self):
        f1, f2 = and_block()
        bound = best_shared_bound([f1, f2], size=3)
        assert bound == (0, 1, 2)

    def test_none_when_nothing_decomposes(self):
        rng = default_rng(1)
        f1, f2 = TruthTable.random(5, rng), TruthTable.random(5, rng)
        # random pairs almost surely have full joint multiplicity
        assert best_shared_bound([f1, f2], size=2) is None

    def test_size_exceeds_support(self):
        assert best_shared_bound([var(0)], size=6) is None


class TestOnRealisticFunctions:
    def test_fsm_output_plane_shares_encoders(self):
        """The paper's use case: multi-output planes of one controller."""
        from repro.bench.fsm import encode_fsm, random_fsm

        fsm = random_fsm("mo", 6, 3, 4, seed=21, split_depth=2)
        ns_tables, out_tables, bits = encode_fsm(fsm, "binary")
        funcs = [t for t in ns_tables + out_tables if len(t.support()) >= 3]
        assert len(funcs) >= 2
        bound = best_shared_bound(funcs[:2], size=3)
        if bound is not None:
            step = shared_decompose(funcs[:2], bound)
            assert step is not None
            for i, f in enumerate(funcs[:2]):
                assert step.recompose(i, f.n) == f

    def test_joint_at_least_single_multiplicity(self):
        """Joint multiplicity dominates each member's multiplicity."""
        rng = default_rng(7)
        f1 = TruthTable.random(5, rng)
        f2 = TruthTable.random(5, rng)
        for bound in ([0, 1, 2], [1, 3, 4], [0, 2, 4]):
            joint = joint_multiplicity([f1, f2], bound)
            assert joint >= f1.column_multiplicity(bound)
            assert joint >= f2.column_multiplicity(bound)
            assert joint <= f1.column_multiplicity(bound) * f2.column_multiplicity(
                bound
            )


class TestEncoderSavings:
    def test_sharing_saves(self):
        f1, f2 = and_block()
        saved = encoder_savings([f1, f2], [0, 1, 2])
        assert saved == 1  # two separate encoders collapse into one

    def test_incomparable_returns_none(self):
        f1 = var(0) ^ var(1)
        f2 = var(0) & var(1)
        assert encoder_savings([f1, f2], [0, 1]) is None
