"""Tests for register minimization after retiming."""

import pytest

from repro.core.turbomap import turbomap
from repro.netlist.graph import SeqCircuit
from repro.retime.leiserson import feas
from repro.retime.mdr import min_feasible_period
from repro.retime.regmin import minimize_registers, shared_register_cost
from repro.verify.equiv import simulation_equivalent
from tests.helpers import AND2, BUF, random_seq_circuit


def padded_chain():
    """x -> g0 -> g1 -> g2 -> PO with 2 FFs wastefully split."""
    c = SeqCircuit("padded")
    x = c.add_pi("x")
    g0 = c.add_gate("g0", BUF, [(x, 1)])
    g1 = c.add_gate("g1", BUF, [(g0, 1)])
    g2 = c.add_gate("g2", BUF, [(g1, 1)])
    c.add_po("y", g2, 1)
    return c


class TestSharedRegisterCost:
    def test_counts_max_per_driver(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        g1 = c.add_gate("g1", BUF, [(a, 2)])
        g2 = c.add_gate("g2", AND2, [(a, 3), (g1, 0)])
        c.add_po("o", g2)
        # driver a: max(2, 3) = 3; g1, g2: 0
        assert shared_register_cost(c, [0] * len(c)) == 3

    def test_matches_circuit_n_ffs(self):
        for seed in range(3):
            c = random_seq_circuit(3, 12, seed=seed, feedback=3)
            assert shared_register_cost(c, [0] * len(c)) == c.n_ffs


class TestMinimizeRegisters:
    def test_cost_never_increases(self):
        for seed in range(4):
            c = random_seq_circuit(3, 14, seed=seed, feedback=3)
            phi = min_feasible_period(c)
            r0 = feas(c, phi, allow_pipelining=True)
            before = shared_register_cost(c, r0)
            result = minimize_registers(c, phi, r0)
            assert shared_register_cost(c, result.r) <= before
            assert result.period <= phi

    def test_wasteful_chain_compacts(self):
        c = padded_chain()
        # period 4 is achievable with a single register level.
        result = minimize_registers(c, phi=4)
        assert result.circuit.n_ffs < c.n_ffs
        assert result.period <= 4

    def test_equivalence_preserved(self):
        c = random_seq_circuit(3, 12, seed=7, feedback=2)
        phi = min_feasible_period(c)
        result = minimize_registers(c, phi)
        assert simulation_equivalent(
            c, result.circuit, cycles=60, warmup=16, po_lags=result.po_lags
        )

    def test_infeasible_phi_rejected(self):
        c = padded_chain()
        # MDR bound of an acyclic circuit is 1, so phi=1 IS feasible with
        # pipelining; force infeasibility with a loop instead.
        loop = SeqCircuit("loop")
        x = loop.add_pi("x")
        g = loop.add_gate_placeholder("g", AND2)
        h = loop.add_gate("h", BUF, [(g, 0)])
        loop.set_fanins(g, [(x, 0), (h, 1)])
        loop.add_po("o", h)
        with pytest.raises(ValueError):
            minimize_registers(loop, phi=1)

    def test_exact_total_weight_optimum(self):
        # exact LP needs numpy + scipy; a broken numpy surfaces as a
        # bare ImportError from inside scipy, so treat that as a skip too
        pytest.importorskip("scipy.optimize", exc_type=ImportError)
        from repro.retime.regmin import minimize_registers_exact

        c = padded_chain()
        # period 4 admits a single register level: total edge weight 1
        # (plus whatever the PO pipelining keeps) is the LP optimum.
        exact = minimize_registers_exact(c, phi=4)
        assert exact.period <= 4
        heur = minimize_registers(c, phi=4)
        assert exact.circuit.total_edge_weight <= heur.circuit.total_edge_weight

    def test_exact_never_worse_than_heuristic(self):
        # exact LP needs numpy + scipy; a broken numpy surfaces as a
        # bare ImportError from inside scipy, so treat that as a skip too
        pytest.importorskip("scipy.optimize", exc_type=ImportError)
        from repro.retime.regmin import minimize_registers_exact

        for seed in range(4):
            c = random_seq_circuit(3, 14, seed=seed, feedback=3)
            phi = min_feasible_period(c)
            exact = minimize_registers_exact(c, phi)
            heur = minimize_registers(c, phi)
            assert exact.period <= phi
            assert (
                exact.circuit.total_edge_weight
                <= heur.circuit.total_edge_weight
            )

    def test_exact_strict_mode(self):
        # exact LP needs numpy + scipy; a broken numpy surfaces as a
        # bare ImportError from inside scipy, so treat that as a skip too
        pytest.importorskip("scipy.optimize", exc_type=ImportError)
        from repro.retime.regmin import minimize_registers_exact

        c = padded_chain()
        strict = minimize_registers_exact(c, phi=4, pipelined=False)
        assert strict.period <= 4
        assert strict.po_lags == {"y": 0}
        # register conservation on I/O paths: total weight unchanged
        assert strict.circuit.total_edge_weight == c.total_edge_weight

    def test_exact_infeasible_rejected(self):
        # exact LP needs numpy + scipy; a broken numpy surfaces as a
        # bare ImportError from inside scipy, so treat that as a skip too
        pytest.importorskip("scipy.optimize", exc_type=ImportError)
        from repro.retime.regmin import minimize_registers_exact

        loop = SeqCircuit("loop")
        x = loop.add_pi("x")
        g = loop.add_gate_placeholder("g", AND2)
        h = loop.add_gate("h", BUF, [(g, 0)])
        loop.set_fanins(g, [(x, 0), (h, 1)])
        loop.add_po("o", h)
        with pytest.raises(ValueError):
            minimize_registers_exact(loop, phi=1)

    def test_after_mapping(self):
        c = random_seq_circuit(3, 16, seed=5, feedback=3)
        tm = turbomap(c, k=4)
        r0 = feas(tm.mapped, tm.phi, allow_pipelining=True)
        assert r0 is not None
        start_cost = shared_register_cost(tm.mapped, r0)
        result = minimize_registers(tm.mapped, tm.phi, r0)
        assert result.period <= tm.phi
        assert shared_register_cost(tm.mapped, result.r) <= start_cost
