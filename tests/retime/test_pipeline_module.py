"""Focused tests for the pipeline wrapper module."""

import pytest

from repro.netlist.graph import SeqCircuit
from repro.retime.pipeline import PipelineResult, pipeline_and_retime
from tests.helpers import AND2, BUF


def loop_with_tail():
    c = SeqCircuit("lt")
    x = c.add_pi("x")
    g1 = c.add_gate_placeholder("g1", AND2)
    g2 = c.add_gate("g2", BUF, [(g1, 0)])
    g3 = c.add_gate("g3", BUF, [(g2, 0)])
    c.set_fanins(g1, [(x, 0), (g3, 1)])
    tail = g3
    for i in range(4):
        tail = c.add_gate(f"t{i}", BUF, [(tail, 0)])
    c.add_po("y", tail)
    c.check()
    return c


class TestPipelineResult:
    def test_fields_consistent(self):
        c = loop_with_tail()
        res = pipeline_and_retime(c)
        assert isinstance(res, PipelineResult)
        assert res.circuit.clock_period() <= res.phi
        assert res.retiming.period <= res.phi
        assert set(res.po_lags) == {"y"}

    def test_minimize_ffs_not_worse(self):
        c = loop_with_tail()
        plain = pipeline_and_retime(c)
        lean = pipeline_and_retime(c, minimize_ffs=True)
        assert lean.circuit.n_ffs <= plain.circuit.n_ffs
        assert lean.circuit.clock_period() <= plain.phi

    def test_explicit_phi_above_bound(self):
        c = loop_with_tail()
        res = pipeline_and_retime(c, phi=5)
        assert res.phi == 5
        assert res.circuit.clock_period() <= 5

    def test_phi_below_bound_raises(self):
        c = loop_with_tail()
        with pytest.raises(ValueError):
            pipeline_and_retime(c, phi=1)

    def test_lags_bound_added_latency(self):
        c = loop_with_tail()
        res = pipeline_and_retime(c)
        # the 4-gate tail at phi=3 needs at least one pipeline stage
        assert res.po_lags["y"] >= 1
