"""Tests for retiming (strict OPT1 and pipelined FEAS modes)."""

import pytest

from repro.netlist.graph import SeqCircuit
from repro.retime.leiserson import (
    STRICT_NODE_LIMIT,
    RetimingInfeasible,
    feas,
    min_period_retiming,
    retime_for_period,
)
from repro.retime.mdr import min_feasible_period
from repro.retime.pipeline import pipeline_and_retime
from tests.helpers import AND2, BUF


def broadcast_ring():
    """Ring of 6 gates, 3 FFs on one edge, PI broadcast to every gate.

    Strictly *unretimable*: the PI pins every gate's lag from below and
    the PO pins the last gate to zero, so no register can move — the
    strict optimum stays at the full ring length 6.  With pipelining the
    loop bound (6 gates / 3 FFs = 2) is achievable.
    """
    c = SeqCircuit("broadcast_ring")
    x = c.add_pi("x")
    g = [c.add_gate_placeholder(f"g{i}", AND2) for i in range(6)]
    for i in range(6):
        prev = g[(i - 1) % 6]
        weight = 3 if i == 0 else 0
        c.set_fanins(g[i], [(prev, weight), (x, 0)])
    c.add_po("y", g[5])
    c.check()
    return c


def backward_chain():
    """x -> g0 =2FF=> g1 -> g2 -> PO: strict period 1 needs a *negative*
    lag on g1 (moving a register backward off the weighted edge)."""
    c = SeqCircuit("backchain")
    x = c.add_pi("x")
    g0 = c.add_gate("g0", BUF, [(x, 0)])
    g1 = c.add_gate("g1", BUF, [(g0, 2)])
    g2 = c.add_gate("g2", BUF, [(g1, 0)])
    c.add_po("y", g2)
    return c


def balanced_ring():
    """Ring of 6 buffers with 3 FFs, I/O attached through registers so
    strict retiming can balance it to period 2."""
    c = SeqCircuit("balanced_ring")
    x = c.add_pi("x")
    g = [c.add_gate_placeholder(f"g{i}", BUF) for i in range(6)]
    c.set_fanins(g[0], [(g[5], 3)])
    for i in range(1, 6):
        c.set_fanins(g[i], [(g[i - 1], 0)])
    # Feed the ring through a registered injection point and observe
    # through a registered tap: I/O lags stay free of the balancing.
    inj = c.add_gate("inj", AND2, [(x, 0), (g[2], 1)])
    c.add_po("y", inj, 1)
    c.check()
    return c


def pipeline_chain(n):
    """Pure feed-forward chain of n gates with no registers."""
    c = SeqCircuit("chain")
    x = c.add_pi("x")
    prev = x
    for i in range(n):
        prev = c.add_gate(f"g{i}", BUF, [(prev, 0)])
    c.add_po("y", prev)
    return c


class TestStrictMode:
    def test_backward_move(self):
        c = backward_chain()
        assert c.clock_period() == 2
        r = feas(c, 1, allow_pipelining=False)
        assert r is not None
        retimed = c.apply_retiming(r)
        assert retimed.clock_period() <= 1
        # I/O lags untouched.
        assert r[c.pis[0]] == r[c.pos[0]]

    def test_broadcast_ring_is_stuck(self):
        c = broadcast_ring()
        for phi in (2, 3, 5):
            assert feas(c, phi, allow_pipelining=False) is None
        assert feas(c, 6, allow_pipelining=False) is not None

    def test_balanced_ring_reaches_loop_bound(self):
        c = balanced_ring()
        res = min_period_retiming(c, allow_pipelining=False)
        assert res.period == 2
        assert res.po_lags == {"y": 0}

    def test_size_guard(self):
        c = pipeline_chain(STRICT_NODE_LIMIT + 10)
        with pytest.raises(ValueError):
            feas(c, 3, allow_pipelining=False)

    def test_chain_cannot_pipeline(self):
        c = pipeline_chain(5)
        assert feas(c, 2, allow_pipelining=False) is None
        assert feas(c, 5, allow_pipelining=False) is not None


class TestPipelinedMode:
    def test_broadcast_ring_reaches_mdr(self):
        c = broadcast_ring()
        r = feas(c, 2, allow_pipelining=True)
        assert r is not None
        assert c.apply_retiming(r).clock_period() <= 2

    def test_below_mdr_infeasible(self):
        c = broadcast_ring()
        assert feas(c, 1, allow_pipelining=True) is None

    def test_chain_reaches_one(self):
        c = pipeline_chain(5)
        r = feas(c, 1, allow_pipelining=True)
        assert r is not None
        assert c.apply_retiming(r).clock_period() <= 1

    def test_zero_period_rejected(self):
        assert feas(pipeline_chain(2), 0) is None


class TestRetimeForPeriod:
    def test_result_fields(self):
        c = backward_chain()
        res = retime_for_period(c, 1, allow_pipelining=False)
        assert res.period <= 1
        assert res.po_lags == {"y": 0}
        assert len(res.r) == len(c)

    def test_po_lags_reported(self):
        c = pipeline_chain(4)
        res = retime_for_period(c, 1, allow_pipelining=True)
        assert res.po_lags["y"] >= 1
        assert res.period <= 1

    def test_infeasible_raises(self):
        with pytest.raises(RetimingInfeasible):
            retime_for_period(broadcast_ring(), 1)


class TestMinPeriodRetiming:
    def test_strict_optimal(self):
        res = min_period_retiming(backward_chain(), allow_pipelining=False)
        assert res.period == 1

    def test_pipelined_reaches_mdr_bound(self):
        c = broadcast_ring()
        res = min_period_retiming(c, allow_pipelining=True)
        assert res.period == min_feasible_period(c) == 2

    def test_chain_strict_stays_full_depth(self):
        c = pipeline_chain(4)
        res = min_period_retiming(c, allow_pipelining=False)
        assert res.period == 4

    def test_chain_pipelined_reaches_one(self):
        c = pipeline_chain(4)
        res = min_period_retiming(c, allow_pipelining=True)
        assert res.period == 1


class TestPipelineAndRetime:
    def test_quickpath(self):
        c = broadcast_ring()
        res = pipeline_and_retime(c)
        assert res.phi == 2
        assert res.circuit.clock_period() <= 2

    def test_explicit_phi(self):
        c = broadcast_ring()
        res = pipeline_and_retime(c, phi=3)
        assert res.circuit.clock_period() <= 3

    def test_phi_below_bound_rejected(self):
        with pytest.raises(ValueError):
            pipeline_and_retime(broadcast_ring(), phi=1)

    def test_mixed_loop_and_io(self):
        # A loop of ratio 2 plus a long feed-forward tail: pipelining
        # fixes the tail, the loop sets the period.
        c = SeqCircuit("mixed")
        x = c.add_pi("x")
        g1 = c.add_gate_placeholder("g1", AND2)
        g2 = c.add_gate_placeholder("g2", BUF)
        c.set_fanins(g1, [(x, 0), (g2, 1)])
        c.set_fanins(g2, [(g1, 0)])
        tail = g2
        for i in range(5):
            tail = c.add_gate(f"t{i}", BUF, [(tail, 0)])
        c.add_po("y", tail)
        c.check()
        res = pipeline_and_retime(c)
        assert res.phi == 2
        assert res.circuit.clock_period() <= 2
        assert res.po_lags["y"] >= 1
