"""Tests for MDR-ratio / cycle-ratio computation."""

from fractions import Fraction

import pytest

from repro.netlist.graph import SeqCircuit
from repro.retime.mdr import (
    critical_ratio_cycle,
    has_positive_cycle,
    mdr_ratio,
    min_feasible_period,
)
from tests.helpers import AND2, BUF, xor_chain


def ring(num_gates: int, num_ffs: int, name: str = "ring") -> SeqCircuit:
    """A single loop of ``num_gates`` buffers carrying ``num_ffs`` registers."""
    c = SeqCircuit(name)
    gates = [c.add_gate_placeholder(f"g{i}", BUF) for i in range(num_gates)]
    for i in range(num_gates):
        prev = gates[(i - 1) % num_gates]
        weight = num_ffs if i == 0 else 0
        c.set_fanins(gates[i], [(prev, weight)])
    c.add_po("o", gates[-1])
    c.check()
    return c


def brute_force_mdr(circuit: SeqCircuit) -> Fraction:
    """Exact MDR by enumerating all simple cycles (tiny circuits only)."""
    n = len(circuit)
    adj = {}
    for s, d, w in circuit.edges():
        adj.setdefault(s, []).append((d, w))
    best = Fraction(0, 1)

    def dfs(start, v, weight, delay, visited):
        nonlocal best
        for d, w in adj.get(v, []):
            nd = delay + circuit.node(d).delay
            if d == start:
                total_w = weight + w
                if total_w > 0:
                    best = max(best, Fraction(nd, total_w))
            elif d not in visited and d >= start:
                visited.add(d)
                dfs(start, d, weight + w, nd, visited)
                visited.remove(d)

    for start in range(n):
        dfs(start, start, 0, 0, {start})
    return best


class TestPositiveCycle:
    def test_ring_threshold(self):
        c = ring(4, 2)  # ratio 4/2 = 2
        assert has_positive_cycle(c, Fraction(1, 1))
        assert has_positive_cycle(c, Fraction(3, 2))
        assert not has_positive_cycle(c, Fraction(2, 1))

    def test_acyclic_never_positive(self):
        c = xor_chain(5)
        assert not has_positive_cycle(c, Fraction(0, 1))

    def test_negative_ratio_allowed(self):
        # Fraction normalizes signs; a negative threshold simply asks
        # whether any cycle beats it (always true for a real loop).
        c = ring(2, 1)
        assert has_positive_cycle(c, Fraction(-1, 1))


class TestMinFeasiblePeriod:
    @pytest.mark.parametrize(
        "gates,ffs,expected",
        [(4, 2, 2), (4, 1, 4), (5, 2, 3), (6, 4, 2), (3, 3, 1), (7, 3, 3)],
    )
    def test_single_ring(self, gates, ffs, expected):
        c = ring(gates, ffs)
        assert min_feasible_period(c) == expected

    def test_acyclic_is_one(self):
        assert min_feasible_period(xor_chain(6)) == 1

    def test_two_loops_max_governs(self):
        c = SeqCircuit()
        a = c.add_pi("a")
        g1 = c.add_gate_placeholder("g1", AND2)
        g2 = c.add_gate_placeholder("g2", BUF)
        g3 = c.add_gate_placeholder("g3", AND2)
        # loop1: g1 -> g2 -> g1 with 2 FFs (ratio 1); loop2: g3 self loop
        # with 1 FF through 1 gate but fed by a 3-gate path? Keep simple:
        # g3 reads g3 with weight 1 (ratio 1) and also g1.
        c.set_fanins(g1, [(a, 0), (g2, 2)])
        c.set_fanins(g2, [(g1, 0)])
        c.set_fanins(g3, [(g3, 1), (g1, 0)])
        c.add_po("o", g3)
        c.check()
        assert min_feasible_period(c) == 1

    def test_combinational_cycle_detected(self):
        c = SeqCircuit()
        g1 = c.add_gate_placeholder("g1", BUF)
        g2 = c.add_gate_placeholder("g2", BUF)
        c.node(g1).fanins.append  # no-op; wire below
        c.set_fanins(g1, [(g2, 0)])
        c.set_fanins(g2, [(g1, 0)])
        c.add_po("o", g2)
        with pytest.raises(ValueError):
            min_feasible_period(c)


class TestMdrRatio:
    @pytest.mark.parametrize("gates,ffs", [(4, 2), (5, 3), (7, 2), (3, 1)])
    def test_single_ring_exact(self, gates, ffs):
        assert mdr_ratio(ring(gates, ffs)) == Fraction(gates, ffs)

    def test_acyclic_zero(self):
        assert mdr_ratio(xor_chain(4)) == 0

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        from repro.compat import default_rng

        rng = default_rng(seed)
        c = SeqCircuit(f"rand{seed}")
        a = c.add_pi("a")
        n = 6
        gates = [c.add_gate_placeholder(f"g{i}", AND2) for i in range(n)]
        for i, g in enumerate(gates):
            src1 = gates[int(rng.integers(0, n))]
            src2 = gates[int(rng.integers(0, n))] if rng.random() < 0.7 else a
            w1 = int(rng.integers(1, 3))
            w2 = int(rng.integers(0, 2))
            if src2 is not a and w2 == 0:
                # avoid accidental combinational cycles: registered only
                w2 = 1
            c.set_fanins(g, [(src1, w1), (src2, w2)])
        c.add_po("o", gates[-1])
        c.check()
        assert mdr_ratio(c) == brute_force_mdr(c)

    def test_consistency_with_min_period(self):
        import math

        for gates, ffs in [(4, 2), (5, 2), (7, 3), (9, 4)]:
            c = ring(gates, ffs)
            ratio = mdr_ratio(c)
            assert min_feasible_period(c) == math.ceil(ratio)


class TestCriticalCycle:
    def test_ring_cycle_found(self):
        c = ring(5, 2)
        cycle = critical_ratio_cycle(c)
        assert cycle is not None
        assert len(cycle) == 5  # the whole ring

    def test_acyclic_none(self):
        assert critical_ratio_cycle(xor_chain(4)) is None

    def test_cycle_achieves_ratio(self):
        c = ring(6, 4)
        cycle = critical_ratio_cycle(c)
        # Verify the reported cycle's ratio equals the MDR.
        ratio = mdr_ratio(c)
        delay = sum(c.node(v).delay for v in cycle)
        weight = 0
        cyc = cycle + [cycle[0]]
        for u, v in zip(cyc, cyc[1:]):
            w = next(p.weight for p in c.fanins(v) if p.src == u)
            weight += w
        assert Fraction(delay, weight) == ratio
