"""Shared circuit-building helpers for the test suite."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.compat import default_rng
from repro.boolfn.truthtable import TruthTable
from repro.netlist.graph import NodeKind, SeqCircuit

AND2 = TruthTable.from_function(2, lambda a, b: a and b)
OR2 = TruthTable.from_function(2, lambda a, b: a or b)
XOR2 = TruthTable.from_function(2, lambda a, b: a != b)
NAND2 = TruthTable.from_function(2, lambda a, b: not (a and b))
NOT1 = TruthTable.from_function(1, lambda a: not a)
BUF = TruthTable.from_function(1, lambda a: a)
MAJ3 = TruthTable.from_function(3, lambda a, b, c: a + b + c >= 2)

GATE_LIB = {"and": AND2, "or": OR2, "xor": XOR2, "nand": NAND2}


def xor_chain(n: int, name: str = "xorchain") -> SeqCircuit:
    """Combinational chain: out = x0 ^ x1 ^ ... ^ x{n-1} built as a path."""
    c = SeqCircuit(name)
    pis = [c.add_pi(f"x{i}") for i in range(n)]
    acc = pis[0]
    for i in range(1, n):
        acc = c.add_gate(f"g{i}", XOR2, [(acc, 0), (pis[i], 0)])
    c.add_po("out", acc)
    return c


def and_tree(n_leaves: int, name: str = "andtree") -> SeqCircuit:
    """Balanced combinational AND tree over ``n_leaves`` inputs."""
    c = SeqCircuit(name)
    level = [c.add_pi(f"x{i}") for i in range(n_leaves)]
    counter = 0
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            g = c.add_gate(f"a{counter}", AND2, [(level[i], 0), (level[i + 1], 0)])
            counter += 1
            nxt.append(g)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    c.add_po("out", level[0])
    return c


def random_dag(
    n_inputs: int,
    n_gates: int,
    seed: int,
    k_in: int = 2,
    name: str = "randdag",
) -> SeqCircuit:
    """Random combinational 2-bounded DAG with one PO per sink gate."""
    rng = default_rng(seed)
    c = SeqCircuit(name)
    pool: List[int] = [c.add_pi(f"x{i}") for i in range(n_inputs)]
    ops = list(GATE_LIB.values())
    for i in range(n_gates):
        fan = [int(rng.integers(0, len(pool))) for _ in range(k_in)]
        func = ops[int(rng.integers(0, len(ops)))]
        g = c.add_gate(f"g{i}", func, [(pool[f], 0) for f in fan])
        pool.append(g)
    sinks = [g for g in c.gates if not c.fanouts(g)]
    for j, g in enumerate(sinks):
        c.add_po(f"out{j}", g)
    c.check()
    return c


def lfsr(n_bits: int, taps: Sequence[int], name: str = "lfsr") -> SeqCircuit:
    """A Fibonacci LFSR as a retiming graph.

    Bit 0's next value is the XOR of the tapped bits; bits shift down.
    Registers are edge weights: each stage output is the previous stage
    delayed by one.
    """
    c = SeqCircuit(name)
    en = c.add_pi("en")
    # feedback = xor of taps; represent stage i value as feedback delayed
    # by (i+1) cycles.
    fb = c.add_gate_placeholder("fb", _xor_table(len(taps) + 1))
    pins: List[Tuple[int, int]] = [(en, 0)]
    for t in taps:
        pins.append((fb, t + 1))
    c.set_fanins(fb, pins)
    c.add_po("out", fb, n_bits)
    c.check()
    return c


def _xor_table(n: int) -> TruthTable:
    t = TruthTable.const(n, False)
    for i in range(n):
        t = t ^ TruthTable.var(i, n)
    return t


def random_seq_circuit(
    n_inputs: int,
    n_gates: int,
    seed: int,
    feedback: int = 3,
    name: str = "randseq",
) -> SeqCircuit:
    """Random 2-bounded sequential circuit with registered feedback loops.

    Builds a random combinational DAG, then rewires ``feedback`` gate
    inputs to later gates through 1-2 registers, creating genuine loops
    while keeping the combinational subgraph acyclic.
    """
    rng = default_rng(seed)
    c = SeqCircuit(name)
    pool: List[int] = [c.add_pi(f"x{i}") for i in range(n_inputs)]
    ops = list(GATE_LIB.values())
    gate_ids: List[int] = []
    for i in range(n_gates):
        fan = [int(rng.integers(0, len(pool))) for _ in range(2)]
        func = ops[int(rng.integers(0, len(ops)))]
        g = c.add_gate(f"g{i}", func, [(pool[f], 0) for f in fan])
        pool.append(g)
        gate_ids.append(g)
    # Registered feedback: rewire an early gate's input to a later gate.
    for _ in range(feedback):
        if len(gate_ids) < 2:
            break
        early = int(rng.integers(0, len(gate_ids) - 1))
        late = int(rng.integers(early + 1, len(gate_ids)))
        pin_idx = int(rng.integers(0, 2))
        weight = int(rng.integers(1, 3))
        target = gate_ids[early]
        pins = [(p.src, p.weight) for p in c.fanins(target)]
        pins[pin_idx] = (gate_ids[late], weight)
        c.set_fanins(target, pins)
    sinks = [g for g in c.gates if not c.fanouts(g)]
    if not sinks:
        sinks = [gate_ids[-1]]
    for j, g in enumerate(sinks):
        c.add_po(f"out{j}", g)
    c.check()
    return c


def brute_force_min_depth(circuit: SeqCircuit, k: int) -> Dict[int, int]:
    """Exponential reference computation of FlowMap labels (tiny circuits).

    Enumerates, for every gate, all K-feasible cuts by exhaustive search
    over subsets of its fan-in cone, and computes the optimal label by
    dynamic programming over topological order.
    """
    from itertools import combinations

    from repro.comb.cone import fanin_cone

    labels: Dict[int, int] = {}
    for v in circuit.comb_topo_order():
        kind = circuit.kind(v)
        if kind is NodeKind.PI:
            labels[v] = 0
            continue
        if kind is NodeKind.PO:
            labels[v] = labels[circuit.fanins(v)[0].src]
            continue
        cone = sorted(fanin_cone(circuit, v) - {v})
        best = None
        for size in range(1, min(k, len(cone)) + 1):
            for cut in combinations(cone, size):
                if not _covers(circuit, v, set(cut)):
                    continue
                height = max(labels[u] for u in cut)
                cand = height + 1
                best = cand if best is None else min(best, cand)
        if best is None:  # constant gate
            best = 1
        labels[v] = best
    return labels


def _covers(circuit: SeqCircuit, root: int, cut: set) -> bool:
    """True when every path from outside reaches ``root`` through ``cut``."""
    stack = [root]
    seen = {root}
    while stack:
        v = stack.pop()
        for pin in circuit.fanins(v):
            src = pin.src
            if src in cut or src in seen:
                continue
            if circuit.kind(src) is NodeKind.PI:
                return False
            seen.add(src)
            stack.append(src)
    return True
