"""Shared-memory segment cleanup when probe workers die abnormally.

The probe pool (:mod:`repro.perf.parallel`) publishes the compiled CSR
once and unlinks the segment in ``shutdown`` — which also runs after a
worker was killed or crashed mid-probe.  These tests pin the owner-side
contract of :class:`repro.kernel.share.CsrHandle`:

* ``unlink`` releases the segment even when a worker exited without any
  cleanup (hard ``os._exit``) or was SIGKILLed *while attached*;
* ``unlink`` is idempotent and survives the segment already being gone;
* worker-side (pickled) handles never own the segment, so a confused
  worker calling ``unlink`` cannot yank it from under its siblings.
"""

import multiprocessing
import os
import pickle
import signal

import pytest

from repro.kernel.csr import compile_circuit
from repro.kernel.share import publish_csr
from tests.helpers import random_seq_circuit


def _shm_available() -> bool:
    try:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=8)
    except (ImportError, OSError):
        return False
    segment.close()
    segment.unlink()
    return True


pytestmark = pytest.mark.skipif(
    not _shm_available(), reason="shared memory unavailable"
)


def _segment_exists(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


def _attach_and_hard_exit(handle, code: int) -> None:
    handle.attach()
    os._exit(code)  # abnormal: no atexit, no finally, no cleanup


def _attach_and_block(name: str, ready, release) -> None:
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=name)
    ready.set()
    release.wait(30)  # parent SIGKILLs us here, mapping still open
    segment.close()


def _publish(seed: int):
    handle = publish_csr(
        compile_circuit(random_seq_circuit(3, 12, seed=seed))
    )
    if handle.transport != "shm":
        handle.unlink()
        pytest.skip("publish_csr fell back to bytes transport")
    return handle


class TestAbnormalWorkerExit:
    def test_unlink_after_worker_hard_exit(self):
        handle = _publish(seed=11)
        ctx = multiprocessing.get_context()
        worker = ctx.Process(
            target=_attach_and_hard_exit, args=(handle, 7)
        )
        worker.start()
        worker.join(30)
        assert worker.exitcode == 7
        handle.unlink()
        assert not _segment_exists(handle.shm_name)
        handle.unlink()  # idempotent after release

    def test_unlink_with_sigkilled_attached_reader(self):
        handle = _publish(seed=12)
        ctx = multiprocessing.get_context()
        ready = ctx.Event()
        release = ctx.Event()
        worker = ctx.Process(
            target=_attach_and_block,
            args=(handle.shm_name, ready, release),
        )
        worker.start()
        try:
            assert ready.wait(30), "worker never attached"
            os.kill(worker.pid, signal.SIGKILL)
            worker.join(30)
            assert worker.exitcode == -signal.SIGKILL
            # The dead reader must not block the owner's release.
            handle.unlink()
            assert not _segment_exists(handle.shm_name)
        finally:
            # Only release a *live* waiter: notifying an Event whose
            # registered sleeper was SIGKILLed deadlocks the notifier
            # (the dead waiter can never acknowledge the wakeup).
            if worker.is_alive():  # pragma: no cover - kill failed
                release.set()
                worker.terminate()
                worker.join(30)

    def test_unlink_survives_segment_already_gone(self):
        from multiprocessing import shared_memory

        handle = _publish(seed=13)
        # Another actor (e.g. a stale-segment sweeper) raced us to it.
        segment = shared_memory.SharedMemory(name=handle.shm_name)
        segment.close()
        segment.unlink()
        handle.unlink()  # FileNotFoundError is swallowed

    def test_worker_side_handle_does_not_own_the_segment(self):
        handle = _publish(seed=14)
        try:
            received = pickle.loads(pickle.dumps(handle))
            received.unlink()  # worker side: must be a no-op
            assert _segment_exists(handle.shm_name)
            assert received.attach().srcs == handle.attach().srcs
        finally:
            handle.unlink()
        assert not _segment_exists(handle.shm_name)
