"""Packed expansion / packed cut queries vs the object engine.

Differential tests: the compiled construction must classify the same
copies into the same tiers and return the same cuts as
``expand_partial`` + ``cut_on_expansion`` for every query.
"""

import pytest

from repro.bench import suite as bench_suite
from repro.core.expanded import ExpansionOverflow, expand_partial
from repro.core.kcut import cut_on_expansion
from repro.core.labels import LabelSolver
from repro.kernel.csr import KIND_GATE
from repro.kernel.expand import (
    PackedCutArena,
    cut_on_packed,
    expand_partial_packed,
)


def _solved(name, k=5):
    """A suite circuit with its labels at the smallest feasible phi."""
    circuit = bench_suite.build(name)
    phi = 1
    while True:
        outcome = LabelSolver(
            circuit, k, phi, flow="ek", kernel="object"
        ).run()
        if outcome.feasible:
            return circuit, phi, outcome.labels
        phi += 1


@pytest.fixture(scope="module")
def solved_bbara():
    return _solved("bbara")


def _copy_set(expansion, copies):
    return set(expansion.unpack_copies(copies))


class TestExpansionDifferential:
    @pytest.mark.parametrize("extra_depth", [0, 1])
    def test_tiers_and_edges_match(self, solved_bbara, extra_depth):
        circuit, phi, labels = solved_bbara
        cc = circuit.compiled()

        def height_of(u, w):
            return labels[u] - phi * w + 1

        for v in circuit.gates:
            threshold = labels[v]
            obj = expand_partial(
                circuit, v, phi, height_of, threshold, extra_depth
            )
            packed = expand_partial_packed(
                cc, v, phi, labels, threshold, extra_depth
            )
            assert packed.blocked == obj.blocked
            assert _copy_set(packed, packed.interior) == set(obj.interior)
            assert _copy_set(packed, packed.candidates) == set(obj.candidates)
            assert _copy_set(packed, packed.leaves) == set(obj.leaves)
            if packed.blocked:
                continue
            pairs = packed.unpack_copies(packed.edges)
            packed_edges = {
                (pairs[i], pairs[i + 1]) for i in range(0, len(pairs), 2)
            }
            assert packed_edges == set(obj.edges)

    def test_root_must_be_gate(self, solved_bbara):
        circuit, phi, labels = solved_bbara
        cc = circuit.compiled()
        pi = circuit.pis[0]
        with pytest.raises(ValueError, match="rooted at gates"):
            expand_partial_packed(cc, pi, phi, labels, 1)

    def test_overflow_matches_object_engine(self, solved_bbara):
        circuit, phi, labels = solved_bbara
        cc = circuit.compiled()

        def height_of(u, w):
            return labels[u] - phi * w + 1

        for v in circuit.gates:
            threshold = labels[v]
            try:
                expand_partial(
                    circuit, v, phi, height_of, threshold, max_copies=3
                )
                overflowed = False
            except ExpansionOverflow:
                overflowed = True
            if not overflowed:
                continue
            with pytest.raises(ExpansionOverflow):
                expand_partial_packed(
                    cc, v, phi, labels, threshold, max_copies=3
                )
            return
        pytest.skip("no gate overflows at max_copies=3")


class TestCutDifferential:
    @pytest.mark.parametrize("flow", ["dinic", "ek"])
    def test_cuts_match_object_engine(self, solved_bbara, flow):
        circuit, phi, labels = solved_bbara
        cc = circuit.compiled()
        k = 5

        def height_of(u, w):
            return labels[u] - phi * w + 1

        arena = PackedCutArena(flow=flow)
        compared = 0
        for v in circuit.gates:
            threshold = labels[v]
            obj = expand_partial(circuit, v, phi, height_of, threshold)
            packed = expand_partial_packed(cc, v, phi, labels, threshold)
            obj_cut = cut_on_expansion(obj, k)
            packed_cut = cut_on_packed(packed, k, arena=arena)
            if packed_cut is None:
                assert obj_cut is None
            else:
                assert packed.unpack_copies(packed_cut) == obj_cut
                compared += 1
        assert compared > 0

    def test_kcut_dispatches_packed_expansions(self, solved_bbara):
        """cut_on_expansion accepts a PackedExpansion and unpacks."""
        circuit, phi, labels = solved_bbara
        cc = circuit.compiled()
        v = circuit.gates[0]
        packed = expand_partial_packed(cc, v, phi, labels, labels[v])
        via_dispatch = cut_on_expansion(packed, 5)
        direct = cut_on_packed(packed, 5)
        expected = None if direct is None else packed.unpack_copies(direct)
        assert via_dispatch == expected

    def test_limit_agreement(self, solved_bbara):
        """Tight max_cut: both engines agree on None-vs-cut, and the
        returned cuts are identical."""
        circuit, phi, labels = solved_bbara
        cc = circuit.compiled()

        def height_of(u, w):
            return labels[u] - phi * w + 1

        for max_cut in (1, 2):
            for v in circuit.gates[:40]:
                threshold = labels[v]
                obj = expand_partial(circuit, v, phi, height_of, threshold)
                packed = expand_partial_packed(cc, v, phi, labels, threshold)
                obj_cut = cut_on_expansion(obj, max_cut)
                packed_cut = cut_on_packed(packed, max_cut)
                if obj_cut is None:
                    assert packed_cut is None
                else:
                    assert packed.unpack_copies(packed_cut) == obj_cut

    def test_bad_flow_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown flow engine"):
            PackedCutArena(flow="bogus")

    def test_ek_arena_counters_are_zero(self):
        arena = PackedCutArena(flow="ek")
        assert arena.drain_counters() == (0, 0)

    def test_gate_kind_codes_agree(self, solved_bbara):
        circuit, _, _ = solved_bbara
        cc = circuit.compiled()
        gates = {u for u in range(cc.n) if cc.kinds[u] == KIND_GATE}
        assert gates == set(circuit.gates)
