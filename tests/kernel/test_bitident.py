"""End-to-end bit-identity across the engine matrix.

The acceptance bar of the kernel layer: ``dinic+compiled`` (the new
default) must produce byte-for-byte the same labels, phi, and mappings
as ``ek+object`` (the original engine), with identical deterministic
work counters where the engines share them.
"""

import pytest

from repro.bench import suite as bench_suite
from repro.core.labels import LabelSolver
from repro.core.turbomap import turbomap
from repro.core.turbosyn import turbosyn

MATRIX = [
    ("ek", "object"),
    ("ek", "compiled"),
    ("dinic", "object"),
    ("dinic", "compiled"),
]


def _min_phi(circuit, k=5):
    phi = 1
    while True:
        if LabelSolver(circuit, k, phi, flow="ek", kernel="object").run().feasible:
            return phi
        phi += 1


class TestLabelIdentity:
    @pytest.mark.parametrize("name", ["bbara", "dk16", "s838"])
    def test_labels_identical_across_matrix(self, name):
        circuit = bench_suite.build(name)
        k = 5
        phi = _min_phi(circuit, k)
        reference = None
        for flow, kernel in MATRIX:
            outcome = LabelSolver(
                circuit, k, phi, flow=flow, kernel=kernel
            ).run()
            assert outcome.feasible
            if reference is None:
                reference = outcome
                continue
            tag = f"{flow}+{kernel}"
            assert outcome.labels == reference.labels, tag
            # The memo/guard logic is shared across kernels, so the
            # engine-independent work counters must match exactly.
            assert outcome.stats.flow_queries == reference.stats.flow_queries, tag
            assert outcome.stats.cache_hits == reference.stats.cache_hits, tag
            assert outcome.stats.updates == reference.stats.updates, tag

    def test_infeasible_phi_agrees(self):
        circuit = bench_suite.build("bbara")
        k = 5
        phi = _min_phi(circuit, k)
        if phi == 1:
            pytest.skip("already feasible at phi=1")
        for flow, kernel in MATRIX:
            outcome = LabelSolver(
                circuit, k, phi - 1, flow=flow, kernel=kernel
            ).run()
            assert not outcome.feasible, f"{flow}+{kernel}"

    def test_dinic_counters_populate_only_under_dinic(self):
        circuit = bench_suite.build("bbara")
        phi = _min_phi(circuit)
        dinic = LabelSolver(circuit, 5, phi, flow="dinic").run()
        ek = LabelSolver(circuit, 5, phi, flow="ek").run()
        assert dinic.stats.dinic_phases > 0
        assert dinic.stats.arcs_advanced > 0
        assert ek.stats.dinic_phases == 0
        assert ek.stats.arcs_advanced == 0

    def test_engines_validate_arguments(self):
        circuit = bench_suite.build("bbara")
        with pytest.raises(ValueError, match="flow"):
            LabelSolver(circuit, 5, 3, flow="bogus")
        with pytest.raises(ValueError, match="kernel"):
            LabelSolver(circuit, 5, 3, kernel="bogus")


class TestMapperIdentity:
    def test_turbomap_matches_reference_engine(self):
        new = turbomap(bench_suite.build("bbara"), 5, check=False)
        old = turbomap(
            bench_suite.build("bbara"), 5, check=False,
            flow="ek", kernel="object",
        )
        assert new.phi == old.phi
        assert new.n_luts == old.n_luts
        assert sorted(new.outcomes) == sorted(old.outcomes)

    def test_turbosyn_matches_reference_engine(self):
        new = turbosyn(bench_suite.build("dk16"), 5, check=False)
        old = turbosyn(
            bench_suite.build("dk16"), 5, check=False,
            flow="ek", kernel="object",
        )
        assert new.phi == old.phi
        assert new.n_luts == old.n_luts

    def test_rounds_engine_accepts_kernel(self):
        res = turbomap(
            bench_suite.build("bbara"), 5, check=False,
            engine="rounds", flow="dinic", kernel="compiled",
        )
        ref = turbomap(
            bench_suite.build("bbara"), 5, check=False,
            engine="rounds", flow="ek", kernel="object",
        )
        assert res.phi == ref.phi
        assert res.n_luts == ref.n_luts
