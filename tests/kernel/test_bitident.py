"""End-to-end bit-identity across the engine matrix.

The acceptance bar of the kernel layer: ``dinic+compiled`` (the new
default) must produce byte-for-byte the same labels, phi, and mappings
as ``ek+object`` (the original engine), with identical deterministic
work counters where the engines share them.
"""

import pytest

from repro.bench import suite as bench_suite
from repro.compat import HAVE_NUMPY
from repro.core.labels import LabelSolver
from repro.core.turbomap import turbomap
from repro.core.turbosyn import turbosyn

MATRIX = [
    ("ek", "object"),
    ("ek", "compiled"),
    ("dinic", "object"),
    ("dinic", "compiled"),
]

requires_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy not installed ([vector] extra)"
)


def _min_phi(circuit, k=5):
    phi = 1
    while True:
        if LabelSolver(circuit, k, phi, flow="ek", kernel="object").run().feasible:
            return phi
        phi += 1


class TestLabelIdentity:
    @pytest.mark.parametrize("name", ["bbara", "dk16", "s838"])
    def test_labels_identical_across_matrix(self, name):
        circuit = bench_suite.build(name)
        k = 5
        phi = _min_phi(circuit, k)
        reference = None
        for flow, kernel in MATRIX:
            outcome = LabelSolver(
                circuit, k, phi, flow=flow, kernel=kernel
            ).run()
            assert outcome.feasible
            if reference is None:
                reference = outcome
                continue
            tag = f"{flow}+{kernel}"
            assert outcome.labels == reference.labels, tag
            # The memo/guard logic is shared across kernels, so the
            # engine-independent work counters must match exactly.
            assert outcome.stats.flow_queries == reference.stats.flow_queries, tag
            assert outcome.stats.cache_hits == reference.stats.cache_hits, tag
            assert outcome.stats.updates == reference.stats.updates, tag

    def test_infeasible_phi_agrees(self):
        circuit = bench_suite.build("bbara")
        k = 5
        phi = _min_phi(circuit, k)
        if phi == 1:
            pytest.skip("already feasible at phi=1")
        for flow, kernel in MATRIX:
            outcome = LabelSolver(
                circuit, k, phi - 1, flow=flow, kernel=kernel
            ).run()
            assert not outcome.feasible, f"{flow}+{kernel}"

    def test_dinic_counters_populate_only_under_dinic(self):
        circuit = bench_suite.build("bbara")
        phi = _min_phi(circuit)
        dinic = LabelSolver(circuit, 5, phi, flow="dinic").run()
        ek = LabelSolver(circuit, 5, phi, flow="ek").run()
        assert dinic.stats.dinic_phases > 0
        assert dinic.stats.arcs_advanced > 0
        assert ek.stats.dinic_phases == 0
        assert ek.stats.arcs_advanced == 0

    def test_engines_validate_arguments(self):
        circuit = bench_suite.build("bbara")
        with pytest.raises(ValueError, match="flow"):
            LabelSolver(circuit, 5, 3, flow="bogus")
        with pytest.raises(ValueError, match="kernel"):
            LabelSolver(circuit, 5, 3, kernel="bogus")


class TestFullMatrixIdentity:
    """2 engines x 2 flows x 3 kernels: every combination bit-identical.

    Labels (and phi feasibility) are identical across the *whole*
    matrix; the deterministic work counters are identical within each
    label engine (worklist and rounds schedule different update
    sequences, so their counters differ from each other by design —
    but not across flows or kernels).
    """

    @requires_numpy
    @pytest.mark.parametrize("name", ["bbara", "dk16"])
    def test_engine_flow_kernel_sweep(self, name):
        circuit = bench_suite.build(name)
        k = 5
        phi = _min_phi(circuit, k)
        reference = None
        for engine in ("worklist", "rounds"):
            engine_ref = None
            for flow in ("dinic", "ek"):
                for kernel in ("compiled", "object", "vector"):
                    tag = f"{engine}/{flow}+{kernel}"
                    outcome = LabelSolver(
                        circuit, k, phi,
                        engine=engine, flow=flow, kernel=kernel,
                    ).run()
                    assert outcome.feasible, tag
                    if reference is None:
                        reference = outcome
                    assert outcome.labels == reference.labels, tag
                    if engine_ref is None:
                        engine_ref = outcome
                        continue
                    ref = engine_ref.stats
                    stats = outcome.stats
                    assert stats.rounds == ref.rounds, tag
                    assert stats.updates == ref.updates, tag
                    assert stats.flow_queries == ref.flow_queries, tag
                    assert stats.cache_hits == ref.cache_hits, tag
                    assert stats.pld_checks == ref.pld_checks, tag

    @requires_numpy
    def test_batch_counters_populate_only_under_vector(self):
        circuit = bench_suite.build("bbara")
        phi = _min_phi(circuit)
        vec = LabelSolver(circuit, 5, phi, kernel="vector").run()
        scalar = LabelSolver(circuit, 5, phi, kernel="compiled").run()
        assert vec.stats.batched_queries > 0
        assert vec.stats.batch_rounds > 0
        assert scalar.stats.batched_queries == 0
        assert scalar.stats.prefilter_hits == 0
        assert scalar.stats.batch_rounds == 0

    @requires_numpy
    def test_prefilter_hits_at_infeasible_phi(self):
        # The witness prefilter consumes re-validated witness cuts — a
        # worklist-engine path that only gets exercised while labels
        # are still climbing, i.e. at an infeasible phi.
        circuit = bench_suite.build("bbara")
        phi = _min_phi(circuit)
        assert phi > 1, "bbara must be infeasible below its optimum"
        vec = LabelSolver(circuit, 5, phi - 1, kernel="vector").run()
        ref = LabelSolver(circuit, 5, phi - 1, kernel="compiled").run()
        assert not vec.feasible and not ref.feasible
        assert vec.labels == ref.labels
        assert vec.stats.prefilter_hits > 0
        assert vec.stats.flow_queries == ref.stats.flow_queries
        assert vec.stats.cache_hits == ref.stats.cache_hits

    def test_auto_kernel_resolves_to_concrete_kernel(self):
        solver = LabelSolver(bench_suite.build("bbara"), 5, 3, kernel="auto")
        assert solver.kernel in ("compiled", "vector")

    def test_vector_without_numpy_is_still_accepted(self, monkeypatch):
        # The degradation path: "vector" resolves through the batch
        # module, which maps it to "compiled" when numpy is missing.
        import repro.kernel.batch as batch

        monkeypatch.setattr(batch, "HAVE_NUMPY", False)
        solver = LabelSolver(bench_suite.build("bbara"), 5, 3, kernel="vector")
        assert solver.kernel == "compiled"

    @requires_numpy
    def test_turbomap_vector_kernel_matches(self):
        vec = turbomap(
            bench_suite.build("bbara"), 5, check=False, kernel="vector"
        )
        ref = turbomap(bench_suite.build("bbara"), 5, check=False)
        assert vec.phi == ref.phi
        assert vec.n_luts == ref.n_luts
        assert sorted(vec.outcomes) == sorted(ref.outcomes)


class TestMapperIdentity:
    def test_turbomap_matches_reference_engine(self):
        new = turbomap(bench_suite.build("bbara"), 5, check=False)
        old = turbomap(
            bench_suite.build("bbara"), 5, check=False,
            flow="ek", kernel="object",
        )
        assert new.phi == old.phi
        assert new.n_luts == old.n_luts
        assert sorted(new.outcomes) == sorted(old.outcomes)

    def test_turbosyn_matches_reference_engine(self):
        new = turbosyn(bench_suite.build("dk16"), 5, check=False)
        old = turbosyn(
            bench_suite.build("dk16"), 5, check=False,
            flow="ek", kernel="object",
        )
        assert new.phi == old.phi
        assert new.n_luts == old.n_luts

    def test_rounds_engine_accepts_kernel(self):
        res = turbomap(
            bench_suite.build("bbara"), 5, check=False,
            engine="rounds", flow="dinic", kernel="compiled",
        )
        ref = turbomap(
            bench_suite.build("bbara"), 5, check=False,
            engine="rounds", flow="ek", kernel="object",
        )
        assert res.phi == ref.phi
        assert res.n_luts == ref.n_luts
