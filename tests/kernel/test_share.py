"""Zero-copy CSR publication and packed warm-seed transport."""

import pickle

import pytest

from repro.bench import suite as bench_suite
from repro.kernel.csr import compile_circuit
from repro.kernel.share import (
    CsrHandle,
    pack_labels,
    publish_csr,
    unpack_labels,
)
from tests.helpers import random_seq_circuit


class TestLabelPacking:
    def test_round_trip(self):
        labels = [0, 1, 5, 1000, -3, 2**30]
        assert unpack_labels(pack_labels(labels)) == labels

    def test_none_passes_through(self):
        assert pack_labels(None) is None
        assert unpack_labels(None) is None

    def test_empty(self):
        assert unpack_labels(pack_labels([])) == []

    def test_packed_is_four_bytes_per_label(self):
        blob = pack_labels(list(range(100)))
        assert len(blob) == 400

    def test_large_labels_round_trip(self):
        labels = [2**31 - 1, -(2**31)]
        assert unpack_labels(pack_labels(labels)) == labels


class TestBytesTransport:
    def test_round_trip(self):
        cc = compile_circuit(random_seq_circuit(4, 30, seed=1))
        handle = publish_csr(cc, prefer_shm=False)
        try:
            assert handle.transport == "bytes"
            clone = handle.attach()
            assert clone.srcs == cc.srcs
            assert clone.offsets == cc.offsets
            assert clone.kinds == cc.kinds
        finally:
            handle.unlink()

    def test_survives_pickling(self):
        cc = compile_circuit(random_seq_circuit(4, 30, seed=2))
        handle = publish_csr(cc, prefer_shm=False)
        try:
            received = pickle.loads(pickle.dumps(handle))
            assert received.attach().srcs == cc.srcs
        finally:
            handle.unlink()

    def test_unlink_idempotent(self):
        handle = publish_csr(
            compile_circuit(random_seq_circuit(3, 10, seed=3)),
            prefer_shm=False,
        )
        handle.unlink()
        handle.unlink()  # no-op


class TestShmTransport:
    @pytest.fixture()
    def shm_handle(self):
        cc = compile_circuit(bench_suite.build("bbara"))
        handle = publish_csr(cc)
        if handle.transport != "shm":
            handle.unlink()
            pytest.skip("shared memory unavailable on this platform")
        yield cc, handle
        handle.unlink()

    def test_round_trip(self, shm_handle):
        cc, handle = shm_handle
        clone = handle.attach()
        assert clone.srcs == cc.srcs
        assert clone.weights == cc.weights

    def test_pickled_handle_is_tiny(self, shm_handle):
        cc, handle = shm_handle
        # The whole point: the pickle stream carries a segment name, not
        # the arrays.
        assert handle.pickled_size() < 256
        assert handle.pickled_size() < len(cc.to_bytes())

    def test_attach_after_pickling(self, shm_handle):
        cc, handle = shm_handle
        received = pickle.loads(pickle.dumps(handle))
        assert received._shm is None  # never the owner
        assert received.attach().offsets == cc.offsets

    def test_unlink_releases_segment(self, shm_handle):
        cc, handle = shm_handle
        name = handle.shm_name
        handle.unlink()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestCircuitAdoption:
    def test_adopt_compiled_installs_cache(self):
        circuit = random_seq_circuit(4, 20, seed=4)
        reference = compile_circuit(circuit)
        handle = publish_csr(reference, prefer_shm=False)
        try:
            clone = pickle.loads(pickle.dumps(circuit))
            assert clone._compiled is None
            clone.adopt_compiled(handle.attach())
            assert clone.compiled().srcs == reference.srcs
        finally:
            handle.unlink()

    def test_handle_accepts_missing_payload_fields(self):
        handle = CsrHandle("bytes", payload=b"", size=0)
        state = pickle.loads(pickle.dumps(handle))
        assert state.transport == "bytes"
