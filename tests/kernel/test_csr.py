"""Tests for the compiled CSR circuit representation."""

import random

import pytest

from repro.bench import suite as bench_suite
from repro.kernel.csr import (
    KIND_GATE,
    KIND_PI,
    KIND_PO,
    CompiledCircuit,
    compile_circuit,
    pack_shift,
)
from repro.netlist.graph import NodeKind
from tests.helpers import random_seq_circuit

_KIND_CODE = {NodeKind.PI: KIND_PI, NodeKind.PO: KIND_PO, NodeKind.GATE: KIND_GATE}


class TestCompile:
    @pytest.mark.parametrize("name", ["bbara", "s838"])
    def test_matches_object_circuit(self, name):
        circuit = bench_suite.build(name)
        cc = compile_circuit(circuit)
        assert cc.n == len(circuit)
        for u in range(cc.n):
            assert cc.kinds[u] == _KIND_CODE[circuit.kind(u)]
            expected = list(
                dict.fromkeys((p.src, p.weight) for p in circuit.fanins(u))
            )
            assert cc.pins(u) == expected

    def test_dedupes_repeated_pins(self):
        circuit = random_seq_circuit(4, 30, seed=7)
        cc = compile_circuit(circuit)
        for u in range(cc.n):
            pins = cc.pins(u)
            assert len(pins) == len(set(pins))

    def test_cached_on_circuit_and_invalidated_by_mutation(self):
        circuit = random_seq_circuit(4, 20, seed=11)
        cc = circuit.compiled()
        assert circuit.compiled() is cc  # cached
        g = circuit.gates[0]
        pins = [(p.src, p.weight) for p in circuit.fanins(g)]
        circuit.set_fanins(g, pins)  # no-op rewire: cache survives
        assert circuit.compiled() is cc
        src, w = pins[0]
        pins[0] = (src, w + 1)
        circuit.set_fanins(g, pins)  # effective rewire: cache dropped
        assert circuit.compiled() is not cc

    def test_pickle_strips_compiled_cache(self):
        import pickle

        circuit = random_seq_circuit(4, 20, seed=13)
        circuit.compiled()
        clone = pickle.loads(pickle.dumps(circuit))
        assert clone._compiled is None
        assert clone.compiled().srcs == circuit.compiled().srcs


class TestSerialization:
    @pytest.mark.parametrize("name", ["bbara", "dk16"])
    def test_round_trip(self, name):
        cc = compile_circuit(bench_suite.build(name))
        clone = CompiledCircuit.from_bytes(cc.to_bytes())
        assert clone.n == cc.n
        assert clone.shift == cc.shift
        assert clone.mask == cc.mask
        assert clone.kinds == cc.kinds
        assert clone.offsets == cc.offsets
        assert clone.srcs == cc.srcs
        assert clone.weights == cc.weights

    def test_round_trip_from_memoryview(self):
        cc = compile_circuit(random_seq_circuit(4, 25, seed=3))
        blob = memoryview(cc.to_bytes())
        assert CompiledCircuit.from_bytes(blob).offsets == cc.offsets

    def test_bad_magic_rejected(self):
        cc = compile_circuit(random_seq_circuit(3, 10, seed=5))
        data = bytearray(cc.to_bytes())
        data[:4] = b"XXXX"
        with pytest.raises(ValueError, match="magic"):
            CompiledCircuit.from_bytes(bytes(data))

    def test_bad_version_rejected(self):
        cc = compile_circuit(random_seq_circuit(3, 10, seed=5))
        data = bytearray(cc.to_bytes())
        data[4] = 99
        with pytest.raises(ValueError, match="version"):
            CompiledCircuit.from_bytes(bytes(data))


class TestPacking:
    def test_pack_round_trip_property(self):
        """Seeded random property: unpack(pack(u, w)) == (u, w) and the
        packing is injective over the copy space."""
        rng = random.Random(0xC0FFEE)
        for _ in range(200):
            n = rng.randint(1, 5000)
            shift = pack_shift(n)
            cc = CompiledCircuit(n, shift, [], [0] * (n + 1), [], [])
            seen = {}
            for _ in range(50):
                u = rng.randrange(n)
                w = rng.randint(0, 1 << 16)
                p = cc.pack(u, w)
                assert cc.unpack(p) == (u, w)
                assert seen.setdefault(p, (u, w)) == (u, w)  # injective

    def test_shift_covers_node_ids(self):
        for n in (1, 2, 3, 4, 255, 256, 257, 1 << 14):
            assert (1 << pack_shift(n)) >= n
            assert pack_shift(n) >= 1

    def test_root_copy_packs_to_node_id(self):
        # (v, 0) must pack to v itself: the expansion relies on it.
        cc = CompiledCircuit(100, pack_shift(100), [], [0] * 101, [], [])
        for v in (0, 1, 42, 99):
            assert cc.pack(v, 0) == v
