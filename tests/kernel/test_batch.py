"""Vectorized batch kernel: views, lifetime, and flow differentials.

Three contracts pinned here:

* **zero-copy views** — :func:`views_from_compiled` /
  :func:`views_from_blob` alias the CSR storage byte-for-byte, and
  views attached to a shared-memory segment stay readable after the
  publisher unlinks it (the ``keepalive`` holds the mapping open);
* **batched flow identity** — :func:`solve_batch` answers every query
  with exactly the cut :func:`cut_on_packed` computes, differentially
  against both scalar Dinic and Edmonds-Karp on ~200 seeded networks;
* **kernel resolution** — ``auto`` picks vector/compiled from the
  measured microbench envelope, and ``vector`` degrades to
  ``compiled`` without numpy.

Everything numpy-dependent skips cleanly when the ``[vector]`` extra
is absent — the module itself imports fine either way.
"""

import json
import multiprocessing
import pickle
import random

import pytest

from repro.kernel import batch
from repro.kernel.batch import (
    DEFAULT_CROSSOVER_NODES,
    ENVELOPE_ENV,
    crossover_nodes,
    resolve_kernel,
    solve_batch,
)
from repro.kernel.csr import compile_circuit
from repro.kernel.expand import PackedCutArena, PackedExpansion, cut_on_packed
from repro.kernel.share import publish_csr
from repro.perf.microbench import synthetic_expansion
from tests.helpers import random_seq_circuit

requires_numpy = pytest.mark.skipif(
    not batch.HAVE_NUMPY, reason="numpy not installed ([vector] extra)"
)


def _compiled(seed=3):
    return compile_circuit(random_seq_circuit(3, 14, seed=seed))


@requires_numpy
class TestCsrViews:
    def test_views_match_compiled(self):
        cc = _compiled()
        views = batch.views_from_compiled(cc)
        assert views.n == len(cc.kinds)
        assert views.shift == cc.shift and views.mask == cc.mask
        assert list(views.kinds) == list(cc.kinds)
        assert list(views.offsets) == list(cc.offsets)
        assert list(views.srcs) == list(cc.srcs)
        assert list(views.weights) == list(cc.weights)

    def test_views_from_blob_roundtrip(self):
        cc = _compiled(seed=4)
        views = batch.views_from_blob(cc.to_bytes())
        assert list(views.srcs) == list(cc.srcs)
        assert list(views.weights) == list(cc.weights)

    def test_blob_views_are_zero_copy(self):
        blob = bytearray(_compiled(seed=5).to_bytes())
        views = batch.views_from_blob(blob)
        before = int(views.kinds[0])
        # Poke the underlying buffer (the kinds array starts right
        # after the header): an aliasing view sees the write.
        blob[batch._HEADER.size] = (before + 1) % 3
        assert int(views.kinds[0]) != before
        views.close()

    def test_close_is_idempotent(self):
        views = batch.views_from_compiled(_compiled(seed=6))
        views.close()
        views.close()
        assert views.srcs is None


@requires_numpy
class TestAttachViewsLifetime:
    def _shm_handle(self, seed):
        handle = publish_csr(compile_circuit(random_seq_circuit(3, 12, seed=seed)))
        if handle.transport != "shm":
            handle.unlink()
            pytest.skip("publish_csr fell back to bytes transport")
        return handle

    def test_bytes_transport_views(self):
        cc = _compiled(seed=7)
        handle = publish_csr(cc, prefer_shm=False)
        try:
            views = handle.attach_views()
            assert list(views.srcs) == list(cc.srcs)
        finally:
            handle.unlink()

    def test_shm_views_survive_unlink(self):
        cc = compile_circuit(random_seq_circuit(3, 12, seed=8))
        handle = publish_csr(cc)
        if handle.transport != "shm":
            handle.unlink()
            pytest.skip("publish_csr fell back to bytes transport")
        received = pickle.loads(pickle.dumps(handle))
        views = received.attach_views()
        handle.unlink()  # publisher tears down while the views live
        # POSIX keeps the unlinked segment mapped via the keepalive:
        # every array must still read the published data.
        assert list(views.srcs) == list(cc.srcs)
        assert list(views.offsets) == list(cc.offsets)
        views.close()

    def test_shm_views_with_worker(self):
        handle = self._shm_handle(seed=9)
        try:
            ctx = multiprocessing.get_context("spawn")
            result = ctx.SimpleQueue()
            worker = ctx.Process(
                target=_worker_attach_views, args=(handle, result)
            )
            worker.start()
            checksum = result.get()
            worker.join(30)
            assert worker.exitcode == 0
            cc = handle.attach()
            assert checksum == sum(cc.srcs) + sum(cc.weights)
        finally:
            handle.unlink()

    def test_leaked_array_parks_owner(self):
        handle = self._shm_handle(seed=10)
        views = handle.attach_views()
        leaked = views.srcs  # user keeps an array past the views
        parked_before = len(batch._LEAKED_OWNERS)
        views.close()
        # The still-exported buffer blocks the owner close; it is parked
        # (valid until process exit) instead of raising at teardown.
        assert len(batch._LEAKED_OWNERS) == parked_before + 1
        assert int(leaked[0]) >= 0  # still readable
        handle.unlink()


def _worker_attach_views(handle, result) -> None:
    views = handle.attach_views()
    result.put(int(views.srcs.sum()) + int(views.weights.sum()))
    views.close()


@requires_numpy
class TestBatchedFlowDifferential:
    def test_three_way_200_networks(self):
        """Scalar Dinic vs batched Dinic vs EK on ~200 seeded networks.

        The cut is unique per network (canonical source-side residual
        min-cut), so all three must agree element-for-element.
        """
        rng = random.Random(20260808)
        dinic_arena = PackedCutArena(flow="dinic")
        ek_arena = PackedCutArena(flow="ek")
        batch_arena = batch.BatchCutArena()
        trial = 0
        while trial < 200:
            width = rng.randint(1, 12)
            queries = []
            for _ in range(width):
                nodes = rng.randint(8, 80)
                exp = synthetic_expansion(nodes, seed=rng.randint(0, 1 << 30))
                queries.append((exp, rng.randint(1, 5)))
                trial += 1
            scalar = [
                cut_on_packed(exp, lim, dinic_arena) for exp, lim in queries
            ]
            ek = [cut_on_packed(exp, lim, ek_arena) for exp, lim in queries]
            batched = solve_batch(queries, batch_arena)
            assert scalar == ek, f"trial {trial}"
            assert scalar == batched, f"trial {trial}"

    def test_mixed_feasible_infeasible_batch(self):
        exp = synthetic_expansion(40, seed=1)
        wide = cut_on_packed(exp, 1 << 20)
        assert wide is not None
        tight = max(0, len(wide) - 1)
        batched = solve_batch([(exp, 1 << 20), (exp, tight)])
        assert batched[0] == wide
        assert batched[1] == cut_on_packed(exp, tight)

    def test_blocked_expansion_is_rejected_by_add(self):
        blocked = PackedExpansion(root=0, shift=20, blocked=True)
        arena = batch.BatchCutArena()
        with pytest.raises(ValueError, match="blocked"):
            arena.add(blocked, 4)
        # ... and handled as a trivial None by the convenience wrapper.
        assert solve_batch([(blocked, 4)]) == [None]

    def test_empty_frontier_is_trivial_empty_cut(self):
        closed = PackedExpansion(root=0, shift=20, interior=[0])
        assert solve_batch([(closed, 4)]) == [[]]

    def test_counters_drain(self):
        arena = batch.BatchCutArena()
        solve_batch([(synthetic_expansion(32, seed=2), 3)], arena)
        phases, arcs = arena.drain_counters()
        assert phases >= 1 and arcs >= 1
        assert arena.drain_counters() == (0, 0)


class TestKernelResolution:
    def _envelope(self, tmp_path, crossover):
        path = tmp_path / "BENCH_microbench.json"
        path.write_text(
            json.dumps(
                {"envelope": {"crossover": {"crossover_nodes": crossover}}}
            )
        )
        return str(path)

    def test_scalar_kernels_pass_through(self):
        assert resolve_kernel("compiled", 10_000) == "compiled"
        assert resolve_kernel("object", 10_000) == "object"

    def test_vector_without_numpy_degrades(self, monkeypatch):
        monkeypatch.setattr(batch, "HAVE_NUMPY", False)
        assert resolve_kernel("vector", 10_000) == "compiled"
        assert resolve_kernel("auto", 10_000) == "compiled"

    @requires_numpy
    def test_vector_with_numpy_stays_vector(self):
        assert resolve_kernel("vector", 4) == "vector"

    @requires_numpy
    def test_auto_uses_measured_crossover(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENVELOPE_ENV, self._envelope(tmp_path, 128))
        assert resolve_kernel("auto", 64) == "compiled"
        assert resolve_kernel("auto", 128) == "vector"
        assert resolve_kernel("auto", 4096) == "vector"

    @requires_numpy
    def test_auto_null_crossover_never_vectorizes(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENVELOPE_ENV, self._envelope(tmp_path, None))
        assert crossover_nodes() is None
        assert resolve_kernel("auto", 1 << 20) == "compiled"

    @requires_numpy
    def test_auto_without_envelope_uses_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENVELOPE_ENV, str(tmp_path / "missing.json"))
        assert crossover_nodes() == DEFAULT_CROSSOVER_NODES
        assert resolve_kernel("auto", DEFAULT_CROSSOVER_NODES) == "vector"
        assert resolve_kernel("auto", DEFAULT_CROSSOVER_NODES - 1) == "compiled"

    def test_malformed_envelope_uses_default(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        assert crossover_nodes(str(path)) == DEFAULT_CROSSOVER_NODES
