"""Dinic engine: API parity plus a randomized EK differential.

The min-cut *value* is unique, and the source-side residual reachable
set is the same for every max flow of a network, so the two engines
must agree exactly on both — the differential below checks ~200 random
node-split networks.
"""

import random

import pytest

from repro.comb.maxflow import FlowNetwork, SplitNetwork
from repro.kernel.dinic import INF, DinicNetwork

BIG = 1 << 20


class TestDinicNetwork:
    """Same cases the FlowNetwork unit tests pin down."""

    def test_simple_max_flow(self):
        net = DinicNetwork()
        s, a, b, t = (net.add_node() for _ in range(4))
        net.add_edge(s, a, 1)
        net.add_edge(s, b, 1)
        net.add_edge(a, t, 1)
        net.add_edge(b, t, 1)
        assert net.max_flow(s, t, limit=10) == 2

    def test_limit_cutoff_reports_more_than_limit(self):
        net = DinicNetwork()
        s, t = net.add_node(), net.add_node()
        for _ in range(5):
            m = net.add_node()
            net.add_edge(s, m, 1)
            net.add_edge(m, t, 1)
        assert net.max_flow(s, t, limit=2) > 2

    def test_zero_flow(self):
        net = DinicNetwork()
        s, t = net.add_node(), net.add_node()
        net.add_node()
        assert net.max_flow(s, t, limit=5) == 0

    def test_reset_reuses_scratch(self):
        net = DinicNetwork()
        for _ in range(3):
            net.reset()
            s, a, t = (net.add_node() for _ in range(3))
            net.add_edge(s, a, 2)
            net.add_edge(a, t, 1)
            assert net.max_flow(s, t, limit=10) == 1

    def test_counters_drain(self):
        net = DinicNetwork()
        s, a, t = (net.add_node() for _ in range(3))
        net.add_edge(s, a, 1)
        net.add_edge(a, t, 1)
        net.max_flow(s, t, limit=10)
        phases, arcs = net.drain_counters()
        assert phases >= 1 and arcs >= 1
        assert net.drain_counters() == (0, 0)  # drained

    def test_residual_reachable_is_source_side(self):
        net = DinicNetwork()
        s, a, t = (net.add_node() for _ in range(3))
        net.add_edge(s, a, 5)
        e = net.add_edge(a, t, 1)
        assert net.max_flow(s, t, limit=10) == 1
        reach = net.residual_reachable(s)
        assert s in reach and a in reach and t not in reach
        assert net.edge_flow(e) == 1


def _random_spec(rng):
    """A random node-split DAG spec: (n, edges, sources, sink)."""
    n = rng.randint(4, 12)
    edges = []
    for j in range(1, n):
        # every node gets at least one predecessor, so no node is both
        # source-attached and the sink
        preds = rng.sample(range(j), k=min(j, rng.randint(1, 3)))
        edges.extend((i, j) for i in preds)
    sources = [j for j in range(n - 1) if not any(e[1] == j for e in edges)]
    if not sources:
        sources = [0]
    return n, edges, sources, n - 1


def _build(flow, spec):
    n, edges, sources, sink = spec
    net = SplitNetwork(flow=flow)
    for x in range(n):
        net.add_dag_node(x, cuttable=(x != sink))
    for x, y in edges:
        net.add_dag_edge(x, y)
    for x in sources:
        net.attach_source(x)
    net.attach_sink(sink)
    return net


class TestDifferentialVsEK:
    def test_split_network_backends(self):
        assert isinstance(SplitNetwork(flow="dinic").net, DinicNetwork)
        assert type(SplitNetwork(flow="ek").net) is FlowNetwork
        with pytest.raises(ValueError, match="unknown flow engine"):
            SplitNetwork(flow="bogus")

    def test_random_split_networks_agree(self):
        """~200 random networks: equal flow value and cut-node sets."""
        rng = random.Random(20260806)
        for trial in range(200):
            spec = _random_spec(rng)
            ek = _build("ek", spec)
            dn = _build("dinic", spec)
            f_ek = ek.max_flow(BIG)
            f_dn = dn.max_flow(BIG)
            assert f_ek == f_dn, f"trial {trial}: flow {f_ek} != {f_dn}"
            assert ek.cut_nodes() == dn.cut_nodes(), f"trial {trial}"
            assert ek.source_side() == dn.source_side(), f"trial {trial}"

    def test_random_split_networks_limit_agreement(self):
        """Bounded contract: both engines agree on 'more than limit',
        and report the exact value when the flow fits the limit."""
        rng = random.Random(77)
        for trial in range(100):
            spec = _random_spec(rng)
            limit = rng.randint(1, 4)
            f_ek = _build("ek", spec).max_flow(limit)
            f_dn = _build("dinic", spec).max_flow(limit)
            assert (f_ek > limit) == (f_dn > limit), f"trial {trial}"
            if f_ek <= limit:
                assert f_ek == f_dn, f"trial {trial}"

    def test_unit_chain_single_phase(self):
        # A long unit-capacity chain saturates in one Dinic phase.
        net = DinicNetwork()
        nodes = [net.add_node() for _ in range(20)]
        for a, b in zip(nodes, nodes[1:]):
            net.add_edge(a, b, 1)
        assert net.max_flow(nodes[0], nodes[-1], limit=5) == 1
        phases, _ = net.drain_counters()
        assert phases == 1

    def test_inf_capacity_constant(self):
        # The INF sentinel must dominate any realistic cut bound.
        assert INF > BIG
