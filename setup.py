"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so the
PEP 517 editable path (which needs ``bdist_wheel``) is unavailable;
``pip install -e . --no-build-isolation`` falls back to this file.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
