"""Area comparison (paper's Table 1 remark + LUT reduction techniques).

The paper notes "TurboSYN loses on area as compared to TurboMap and
FlowSYN-s due to shortcomings of the single-output functional
decomposition", and lists label relaxation + low-cost K-cuts +
mpack/flow-pack as the recovery stage.  This bench reports LUT counts:

* the three mappers' raw outputs,
* TurboSYN after label relaxation + packing
  (:mod:`repro.core.area`), quantifying how much of the loss the area
  stage recovers while preserving the optimal clock period.
"""

from __future__ import annotations

import pytest

from repro.comb.pack import pack_luts
from repro.core.area import map_with_area_recovery
from repro.core.flowsyn_s import flowsyn_s
from repro.core.turbomap import turbomap
from repro.core.turbosyn import turbosyn
from repro.retime.mdr import min_feasible_period

K = 5
TABLE = "Area: LUT counts (K=5)"
NAMES = ["bbara", "bbsse", "dk16", "keyb", "sse", "s838", "s1423"]


@pytest.mark.parametrize("name", NAMES)
def test_area(benchmark, rows, circuits, name):
    circuit = circuits(name)

    def run():
        fs = flowsyn_s(circuit, K)
        tm = turbomap(circuit, K)
        ts = turbosyn(circuit, K, upper_bound=tm.phi)
        recovered = map_with_area_recovery(
            circuit, ts.phi, ts.labels, K, name=f"{name}_area"
        )
        return fs, tm, ts, recovered

    fs, tm, ts, recovered = benchmark.pedantic(run, rounds=1, iterations=1)
    assert min_feasible_period(recovered) <= ts.phi
    rows.add(TABLE, name, "flowsyn_s", pack_luts(fs.mapped, K).n_gates)
    rows.add(TABLE, name, "turbomap", pack_luts(tm.mapped, K).n_gates)
    rows.add(TABLE, name, "turbosyn", ts.n_luts)
    rows.add(TABLE, name, "turbosyn+area", recovered.n_gates)
    rows.add(TABLE, name, "ts phi", ts.phi)
