"""TurboMap vs the SeqMapII-style schedule (background of Section 1).

The paper builds on TurboMap's earlier result [11]: replacing SeqMapII's
global-round label computation with SCC-topological processing, partial
flow networks, memoization (and here PLD) cut runtimes by orders of
magnitude at identical answers.  This bench re-measures that on small
circuits — the SeqMapII schedule is quadratic on infeasible probes, so
suite-sized circuits are out of its reach, which is itself the result.
"""

from __future__ import annotations

import pytest

from repro.bench.fsm import fsm_to_circuit, random_fsm
from repro.core.seqmap2 import seqmap2_min_phi
from repro.core.turbomap import turbomap

TABLE = "TurboMap vs SeqMapII-style schedule"

_PROBES = {
    "fsm6": lambda: fsm_to_circuit(random_fsm("fsm6", 6, 3, 2, seed=21, split_depth=2)),
    "fsm9": lambda: fsm_to_circuit(random_fsm("fsm9", 9, 3, 2, seed=22, split_depth=2)),
    "fsm12": lambda: fsm_to_circuit(random_fsm("fsm12", 12, 3, 2, seed=23, split_depth=2)),
}

_cache = {}
_cpu = {}


@pytest.mark.parametrize("name", list(_PROBES))
@pytest.mark.parametrize("algo", ["turbomap", "seqmap2"])
def test_seqmap2(benchmark, rows, name, algo):
    if name not in _cache:
        _cache[name] = _PROBES[name]()
    circuit = _cache[name]

    if algo == "turbomap":
        result = benchmark.pedantic(
            lambda: turbomap(circuit, 5), rounds=1, iterations=1
        )
        phi = result.phi
    else:
        result = benchmark.pedantic(
            lambda: seqmap2_min_phi(circuit, 5), rounds=1, iterations=1
        )
        phi = result.phi
    cpu = benchmark.stats["mean"]
    rows.add(TABLE, name, "gates", circuit.n_gates)
    rows.add(TABLE, name, f"{algo} phi", phi)
    rows.add(TABLE, name, f"{algo} cpu", cpu)
    _cpu[(name, algo)] = cpu
    if (name, "turbomap") in _cpu and (name, "seqmap2") in _cpu:
        ratio = _cpu[(name, "seqmap2")] / max(_cpu[(name, "turbomap")], 1e-9)
        rows.add(TABLE, name, "speedup", f"{ratio:.1f}x")
