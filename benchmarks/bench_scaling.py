"""Scalability (paper abstract: 10^4 gates / 10^3 FFs "in reasonable time").

The authors' C implementation optimizes circuits of over 10^4 gates on a
1996 workstation.  This Python reproduction is interpreted, so the
absolute scale is reduced (see ``DESIGN.md`` Section 3); what this bench
establishes is the *trend*: TurboMap and TurboSYN runtime versus circuit
size on a geometric size sweep, reported as gates/second so the paper's
headline can be extrapolated.
"""

from __future__ import annotations

import pytest

from repro.bench.suite import large_circuit
from repro.core.turbomap import turbomap
from repro.core.turbosyn import turbosyn

K = 5
TABLE = "Scaling: runtime vs circuit size (K=5)"
SCALES = [1, 2, 4, 8]


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("algo", ["turbomap", "turbosyn"])
def test_scaling(benchmark, rows, scale, algo):
    circuit = large_circuit(scale=scale)
    run = turbomap if algo == "turbomap" else turbosyn
    result = benchmark.pedantic(lambda: run(circuit, K), rounds=1, iterations=1)
    cpu = benchmark.stats["mean"]
    label = f"scale={scale}"
    rows.add(TABLE, label, "gates", circuit.n_gates)
    rows.add(TABLE, label, "FFs", circuit.n_ffs)
    rows.add(TABLE, label, f"{algo} phi", result.phi)
    rows.add(TABLE, label, f"{algo} cpu", cpu)
    rows.add(TABLE, label, f"{algo} gates/s", f"{circuit.n_gates / max(cpu, 1e-9):.0f}")


def test_scaling_headline(benchmark, rows):
    """The abstract's headline scale: >10^4 gates and >10^3 flip-flops.

    TurboMap only in the default run (TurboSYN at this size takes tens of
    minutes in the interpreter; EXPERIMENTS.md records a one-off
    measurement).
    """
    circuit = large_circuit(scale=16)
    assert circuit.n_gates > 10_000
    assert circuit.n_ffs > 1_000
    result = benchmark.pedantic(
        lambda: turbomap(circuit, K), rounds=1, iterations=1
    )
    cpu = benchmark.stats["mean"]
    label = "scale=16 (headline)"
    rows.add(TABLE, label, "gates", circuit.n_gates)
    rows.add(TABLE, label, "FFs", circuit.n_ffs)
    rows.add(TABLE, label, "turbomap phi", result.phi)
    rows.add(TABLE, label, "turbomap cpu", cpu)
    rows.add(
        TABLE, label, "turbomap gates/s", f"{circuit.n_gates / max(cpu, 1e-9):.0f}"
    )
