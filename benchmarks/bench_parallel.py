"""Speculative parallel phi-probing: wall-clock vs the sequential search.

The probes of the Figure-4 binary search are independent label
computations, so :func:`repro.perf.parallel.parallel_search_min_phi`
runs several candidates concurrently; feasibility monotonicity makes the
losing speculative probes safe to discard.  This bench records the
sequential/parallel wall-clock ratio on the scaling circuits — on a
single-core host the ratio degrades to <1 (pure timesharing overhead),
so the table is the honest record of what the hardware allowed.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench.suite import large_circuit
from repro.core.driver import search_min_phi
from repro.perf.parallel import parallel_search_min_phi
from repro.retime.mdr import min_feasible_period

K = 5
WORKERS = 4
TABLE = f"Parallel phi search: sequential vs {WORKERS} workers (K={K})"
SCALES = [2, 4, 8]


@pytest.mark.parametrize("scale", SCALES)
def test_parallel_search_speedup(benchmark, rows, scale):
    circuit = large_circuit(scale=scale)
    ub = min_feasible_period(circuit)

    t0 = time.perf_counter()
    seq_phi, seq_out = search_min_phi(circuit, K, ub, False)
    t_seq = time.perf_counter() - t0

    def parallel():
        return parallel_search_min_phi(circuit, K, ub, False, workers=WORKERS)

    par_phi, par_out = benchmark.pedantic(parallel, rounds=1, iterations=1)
    t_par = benchmark.stats["mean"]

    # determinism: identical optimum and labels, probes are a superset
    assert par_phi == seq_phi
    assert par_out[par_phi].labels == seq_out[seq_phi].labels

    label = f"scale={scale}"
    rows.add(TABLE, label, "gates", circuit.n_gates)
    rows.add(TABLE, label, "phi", seq_phi)
    rows.add(TABLE, label, "seq probes", len(seq_out))
    rows.add(TABLE, label, "par probes", len(par_out))
    rows.add(TABLE, label, "seq s", t_seq)
    rows.add(TABLE, label, "par s", t_par)
    rows.add(TABLE, label, "speedup", f"{t_seq / max(t_par, 1e-9):.2f}x")
    rows.add(TABLE, label, "cores", len(os.sched_getaffinity(0)))
