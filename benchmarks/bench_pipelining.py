"""Pipelining's contribution (paper Section 2).

"Since pipelining can eliminate all critical I/O paths, but not critical
loops, we concentrate on FPGA synthesis to eliminate the critical loops"
— the premise of the whole paper.  This bench quantifies it: TurboMap's
optimum with pipelining (loops only, the paper's setting) versus the
original retiming-only objective (I/O paths count), per circuit.  The
ratio is the clock period pipelining buys *before* any resynthesis.
"""

from __future__ import annotations

import pytest

from repro.core.turbomap import turbomap

K = 5
TABLE = "Pipelining contribution: TurboMap retiming-only vs pipelined (K=5)"
NAMES = ["bbara", "keyb", "sse", "dk16", "s838", "s1423"]

_phis = {}


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("mode", ["retiming-only", "pipelined"])
def test_pipelining(benchmark, rows, circuits, name, mode):
    circuit = circuits(name)
    result = benchmark.pedantic(
        lambda: turbomap(circuit, K, pipelining=(mode == "pipelined")),
        rounds=1,
        iterations=1,
    )
    rows.add(TABLE, name, f"{mode} phi", result.phi)
    _phis[(name, mode)] = result.phi
    if (name, "retiming-only") in _phis and (name, "pipelined") in _phis:
        ratio = _phis[(name, "retiming-only")] / _phis[(name, "pipelined")]
        rows.add(TABLE, name, "I/O-path cost", f"{ratio:.2f}x")
