"""Ablations of TurboSYN's design choices (DESIGN.md experiment index).

Three knobs the paper fixes and this reproduction exposes:

* ``Cmax`` — the resynthesis cut bound ("set to be 15 in TurboSYN"):
  smaller bounds shrink the decomposition search space and should cost
  clock period on decomposition-limited circuits;
* ``K`` — the LUT input count (the paper uses 5);
* ``extra_depth`` — how far below the height threshold the expanded
  circuit is searched (0 = the paper's partial flow network; more depth
  exposes reconvergent deeper cuts at extra runtime).
"""

from __future__ import annotations

import pytest

from repro.core.turbosyn import turbosyn

NAMES = ["bbara", "keyb", "sse"]


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("cmax", [5, 9, 15])
def test_cmax(benchmark, rows, circuits, name, cmax):
    circuit = circuits(name)
    result = benchmark.pedantic(
        lambda: turbosyn(circuit, 5, cmax=cmax), rounds=1, iterations=1
    )
    table = "Ablation: Cmax (K=5)"
    rows.add(table, name, f"Cmax={cmax} phi", result.phi)
    rows.add(table, name, f"Cmax={cmax} cpu", benchmark.stats["mean"])


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("k", [4, 5, 6])
def test_k(benchmark, rows, circuits, name, k):
    circuit = circuits(name)
    result = benchmark.pedantic(
        lambda: turbosyn(circuit, k), rounds=1, iterations=1
    )
    table = "Ablation: LUT size K"
    rows.add(table, name, f"K={k} phi", result.phi)
    rows.add(table, name, f"K={k} luts", result.n_luts)


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("depth", [0, 1])
def test_extra_depth(benchmark, rows, circuits, name, depth):
    circuit = circuits(name)
    result = benchmark.pedantic(
        lambda: turbosyn(circuit, 5, extra_depth=depth), rounds=1, iterations=1
    )
    table = "Ablation: expanded-circuit search depth"
    rows.add(table, name, f"depth={depth} phi", result.phi)
    rows.add(table, name, f"depth={depth} cpu", benchmark.stats["mean"])
