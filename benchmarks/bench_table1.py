"""Table 1: minimum clock period and CPU time for the 16-circuit suite.

Paper columns: per circuit, GATE / FF counts and, for FlowSYN-s,
TurboMap and TurboSYN, the minimum clock period (MDR ratio) under
retiming + pipelining plus CPU seconds.  Headline numbers: TurboSYN
reduces the clock period by 1.72x vs FlowSYN-s and 1.96x vs TurboMap
on average (K = 5).

Each mapper runs once per circuit (``pedantic`` with a single round —
these are end-to-end algorithm runs, not microbenchmarks); the phi /
LUT / CPU values land in the rendered table and ``benchmarks/results/``.
The run also re-verifies that every mapped network's MDR bound does not
exceed the reported phi.
"""

from __future__ import annotations

import math

import pytest

from repro.bench.suite import SUITE
from repro.core.flowsyn_s import flowsyn_s
from repro.core.turbomap import turbomap
from repro.core.turbosyn import turbosyn
from repro.retime.mdr import min_feasible_period

K = 5
TABLE = "Table 1: clock period under retiming + pipelining (K=5)"
NAMES = [e.name for e in SUITE]

_ALGOS = {
    "flowsyn_s": lambda c: flowsyn_s(c, K),
    "turbomap": lambda c: turbomap(c, K),
    "turbosyn": lambda c: turbosyn(c, K),
}

_phi_store = {}


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("algo", list(_ALGOS))
def test_table1(benchmark, rows, circuits, name, algo):
    circuit = circuits(name)
    rows.add(TABLE, name, "GATE", circuit.n_gates)
    rows.add(TABLE, name, "FF", circuit.n_ffs)
    result = benchmark.pedantic(_ALGOS[algo], args=(circuit,), rounds=1, iterations=1)
    assert min_feasible_period(result.mapped) <= result.phi
    rows.add(TABLE, name, f"{algo} phi", result.phi)
    rows.add(TABLE, name, f"{algo} cpu", benchmark.stats["mean"])
    _phi_store[(name, algo)] = result.phi
    _maybe_summary(rows)


def _maybe_summary(rows):
    """Once every cell is measured, add the paper's geomean ratio row."""
    if len(_phi_store) != len(NAMES) * len(_ALGOS):
        return
    ratios_fs = []
    ratios_tm = []
    for name in NAMES:
        ts = _phi_store[(name, "turbosyn")]
        ratios_fs.append(_phi_store[(name, "flowsyn_s")] / ts)
        ratios_tm.append(_phi_store[(name, "turbomap")] / ts)
    geo_fs = math.exp(sum(math.log(r) for r in ratios_fs) / len(ratios_fs))
    geo_tm = math.exp(sum(math.log(r) for r in ratios_tm) / len(ratios_tm))
    rows.add(TABLE, "geomean", "flowsyn_s phi", f"{geo_fs:.2f}x")
    rows.add(TABLE, "geomean", "turbomap phi", f"{geo_tm:.2f}x")
    rows.add(TABLE, "geomean", "turbosyn phi", "1.00x")
