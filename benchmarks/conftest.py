"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` file regenerates one table/figure of the paper (see
``DESIGN.md`` Section 4).  Timings come from pytest-benchmark; the
*reported quantities* (clock periods, LUT counts, iteration counts) are
collected by the session-scoped :class:`RowCollector` and printed as a
paper-style table at the end of the run, as well as written under
``benchmarks/results/``.

Circuits are built once per session and shared across benchmarks.

Besides the human-readable tables, every table is also written as a
machine-readable ``BENCH_<table>.json`` (schema in
:mod:`repro.perf.report`) so the perf trajectory of the repo is diffable
across PRs and consumable by ``repro.perf.check``-style tooling.
"""

from __future__ import annotations

import json
import os
import re
from collections import OrderedDict
from typing import Dict, List

import pytest

from repro.bench import suite as bench_suite
from repro.perf.report import SCHEMA_VERSION

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def table_slug(table: str) -> str:
    """A filesystem-portable file stem for a table title.

    Table titles contain ``:``, ``(``, ``)`` and spaces; ``:`` alone
    makes the name illegal on Windows/NTFS and hostile to shells and
    URLs.  Keep only ``[a-z0-9._+=-]``, turn everything else into
    ``_``, and collapse the runs so the stem stays readable:

    >>> table_slug("Table 1: Clock period (K=5)")
    'table_1_clock_period_k=5'
    """
    safe = re.sub(r"[^a-z0-9._+=-]+", "_", table.lower().replace("/", "-"))
    return re.sub(r"_+", "_", safe).strip("_")


class RowCollector:
    """Collects labelled result rows per table and renders them."""

    def __init__(self) -> None:
        self.tables: "OrderedDict[str, Dict[str, OrderedDict]]" = OrderedDict()

    def add(self, table: str, row: str, column: str, value) -> None:
        rows = self.tables.setdefault(table, OrderedDict())
        cells = rows.setdefault(row, OrderedDict())
        cells[column] = value

    def render(self, table: str) -> str:
        rows = self.tables.get(table, {})
        columns: List[str] = []
        for cells in rows.values():
            for col in cells:
                if col not in columns:
                    columns.append(col)
        width = max([len(r) for r in rows] + [8])
        lines = [f"== {table} =="]
        header = " " * width + " | " + " | ".join(f"{c:>12s}" for c in columns)
        lines.append(header)
        lines.append("-" * len(header))
        for row, cells in rows.items():
            rendered = " | ".join(
                f"{_fmt(cells.get(c, '')):>12s}" for c in columns
            )
            lines.append(f"{row:<{width}s} | {rendered}")
        return "\n".join(lines)

    def as_json(self, table: str) -> dict:
        """Machine-readable twin of :meth:`render` (BENCH_*.json schema)."""
        rows = self.tables.get(table, {})
        return {
            "schema": SCHEMA_VERSION,
            "kind": "bench-table",
            "table": table,
            "rows": {row: dict(cells) for row, cells in rows.items()},
        }

    def flush(self) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        for table in self.tables:
            text = self.render(table)
            print("\n" + text)
            safe = table_slug(table)
            with open(os.path.join(RESULTS_DIR, f"{safe}.txt"), "w") as fh:
                fh.write(text + "\n")
            json_path = os.path.join(RESULTS_DIR, f"BENCH_{safe}.json")
            with open(json_path, "w") as fh:
                json.dump(self.as_json(table), fh, indent=2, default=str)
                fh.write("\n")


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


_collector = RowCollector()
_circuit_cache: Dict[str, object] = {}


@pytest.fixture(scope="session")
def rows():
    """The session row collector (rendered at the end of the run)."""
    return _collector


@pytest.fixture(scope="session")
def circuits():
    """Lazily built, session-cached suite circuits."""

    def get(name: str):
        if name not in _circuit_cache:
            _circuit_cache[name] = bench_suite.build(name)
        return _circuit_cache[name]

    return get


def pytest_sessionfinish(session, exitstatus):
    if _collector.tables:
        _collector.flush()
