"""Ablation: how much of TurboSYN's gain is plain algebraic balancing?

TurboSYN's critics could ask whether the sequential functional
decomposition just compensates for skewed input netlists.  This bench
separates the effects: for each circuit it compares

* TurboMap on the raw network,
* TurboMap after technology-independent tree balancing
  (:mod:`repro.comb.balance` — the cheap, purely combinational slice of
  resynthesis), and
* TurboSYN on the raw network.

Balancing narrows the gap on skewed chains but cannot move logic across
registers; the clock periods TurboSYN still wins below ``balance +
TurboMap`` are attributable to the paper's actual contribution.
"""

from __future__ import annotations

import pytest

from repro.comb.balance import balance_circuit
from repro.core.turbomap import turbomap
from repro.core.turbosyn import turbosyn

K = 5
TABLE = "Ablation: balancing vs sequential decomposition (K=5)"
NAMES = ["bbara", "keyb", "kirkman", "sse", "s1"]


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("mode", ["turbomap", "balance+turbomap", "turbosyn"])
def test_balance_ablation(benchmark, rows, circuits, name, mode):
    circuit = circuits(name)

    def run():
        if mode == "turbomap":
            return turbomap(circuit, K)
        if mode == "balance+turbomap":
            return turbomap(balance_circuit(circuit), K)
        return turbosyn(circuit, K)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows.add(TABLE, name, f"{mode} phi", result.phi)
    rows.add(TABLE, name, f"{mode} cpu", benchmark.stats["mean"])
