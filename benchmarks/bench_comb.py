"""Combinational background: FlowSYN beats FlowMap's depth limit.

Section 1 of the paper builds on the combinational results it extends:
FlowMap [6] is depth-optimal among structural mappings, and FlowSYN [5]
"can produce mapping solutions with even smaller depth using resynthesis
techniques by exploiting Boolean optimization".  This bench regenerates
that background claim on the combinational views of the suite circuits
(cut at registers) plus classical decomposable structures, reporting
LUT depth and area for both algorithms.
"""

from __future__ import annotations

import pytest

from repro.comb.flowmap import flowmap
from repro.comb.flowsyn import flowsyn
from repro.core.flowsyn_s import split_at_registers
from tests.helpers import xor_chain

TABLE = "Combinational background: FlowMap vs FlowSYN depth (K=5)"

_SUITE_VIEWS = ["bbara", "keyb", "sse"]


def _xor_chain_case():
    return xor_chain(17, name="xor17")


@pytest.mark.parametrize("name", _SUITE_VIEWS + ["xor17"])
@pytest.mark.parametrize("algo", ["flowmap", "flowsyn"])
def test_comb_depth(benchmark, rows, circuits, name, algo):
    if name == "xor17":
        circuit = _xor_chain_case()
    else:
        circuit = split_at_registers(circuits(name))
    run = flowmap if algo == "flowmap" else flowsyn
    result = benchmark.pedantic(lambda: run(circuit, 5), rounds=1, iterations=1)
    rows.add(TABLE, name, "gates", circuit.n_gates)
    rows.add(TABLE, name, f"{algo} depth", result.depth)
    rows.add(TABLE, name, f"{algo} luts", result.n_luts)
    rows.add(TABLE, name, f"{algo} cpu", benchmark.stats["mean"])
