"""Positive loop detection speedup (paper Section 4 / abstract claim).

The paper: replacing the conservative ``n^2``-iteration stopping rule of
[21] with predecessor-graph positive loop detection speeds the label
computation up by 10-50x on infeasible targets, which dominates the
binary search.  This bench probes circuits at an *infeasible* clock
period with PLD on and off and reports label rounds and CPU per mode,
plus the speedup factor.

The probes are deliberately small-to-medium (SCCs of ~30-150 gates): the
``n^2`` baseline is *quadratic in the SCC size*, so on the full Table-1
circuits (SCCs of 400+ gates) it does not terminate in sensible wall
time under the interpreter — which is exactly the pathology the paper's
PLD removes.  The speedup factor grows linearly with the SCC size, so
these probes bound the full-suite factor from below.
"""

from __future__ import annotations

import pytest

from repro.bench.fsm import fsm_to_circuit, random_fsm
from repro.core.labels import LabelSolver
from repro.netlist.graph import SeqCircuit
from repro.boolfn.truthtable import TruthTable

_AND2 = TruthTable.from_function(2, lambda a, b: a and b)

TABLE = "PLD speedup: infeasible-phi label computation"


def _and_ring(num_gates: int) -> SeqCircuit:
    c = SeqCircuit(f"andring{num_gates}")
    xs = [c.add_pi(f"x{i}") for i in range(num_gates)]
    g = [c.add_gate_placeholder(f"g{i}", _AND2) for i in range(num_gates)]
    for i in range(num_gates):
        c.set_fanins(g[i], [(g[(i - 1) % num_gates], 1 if i == 0 else 0), (xs[i], 0)])
    c.add_po("o", g[-1])
    c.check()
    return c


def _small_fsm(states: int, seed: int) -> SeqCircuit:
    fsm = random_fsm(f"fsm{states}", states, 3, 2, seed=seed, split_depth=2)
    return fsm_to_circuit(fsm)


#: name -> (circuit builder, K, infeasible phi)
PROBES = {
    "andring32": (lambda: _and_ring(32), 3, 2),
    "andring64": (lambda: _and_ring(64), 3, 3),
    "fsm6": (lambda: _small_fsm(6, 11), 5, 1),
    "fsm10": (lambda: _small_fsm(10, 12), 5, 1),
    "fsm14": (lambda: _small_fsm(14, 13), 5, 1),
}

_cache = {}
_results = {}


@pytest.mark.parametrize("name", list(PROBES))
@pytest.mark.parametrize("mode", ["pld", "n2bound"])
def test_pld(benchmark, rows, name, mode):
    builder, k, phi = PROBES[name]
    if name not in _cache:
        _cache[name] = builder()
    circuit = _cache[name]

    def run():
        outcome = LabelSolver(circuit, k, phi, pld=(mode == "pld")).run()
        assert not outcome.feasible
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    cpu = benchmark.stats["mean"]
    rows.add(TABLE, name, "gates", circuit.n_gates)
    rows.add(TABLE, name, f"{mode} rounds", outcome.stats.rounds)
    rows.add(TABLE, name, f"{mode} cpu", cpu)
    _results[(name, mode)] = cpu
    if (name, "pld") in _results and (name, "n2bound") in _results:
        slow = _results[(name, "n2bound")]
        fast = _results[(name, "pld")]
        rows.add(TABLE, name, "speedup", f"{slow / max(fast, 1e-9):.1f}x")
