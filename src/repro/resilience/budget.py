"""Wall-clock budgets for long-running searches.

A :class:`Budget` bounds one mapper run with an overall *deadline* and a
per-probe *timeout*, both in wall-clock seconds.  The phi searches
(:func:`repro.core.driver.search_min_phi`,
:func:`repro.perf.parallel.parallel_search_min_phi`) consult the budget
between probes and hand each probe an absolute deadline; on expiry they
return the best feasible ``phi`` found so far instead of dying, and the
budget records *why* (``reason``) so the result can be marked
``degraded`` in reports.

The budget also doubles as the run's resilience ledger: ``attempts``
counts executions of the search backend (1 + pool restarts + the
sequential fallback, if any) and ``events`` keeps a structured trace of
every recovery action, so a report can explain exactly what a degraded
run survived.

The clock is injectable (``clock=...``) so expiry paths are testable
deterministically, without real sleeps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional


class BudgetExhausted(RuntimeError):
    """The budget ran out before *any* feasible ``phi`` was found.

    Raised when there is no best-known answer to degrade to; callers
    with a fault boundary (the suite runner) record it as a structured
    error entry.
    """


class DeadlineExpired(RuntimeError):
    """Control-flow signal: the overall wall-clock deadline has passed.

    Raised by :meth:`Budget.check` between probes; the searches catch it
    and degrade to the best-known feasible answer.
    """


class ProbeTimeout(RuntimeError):
    """One label-computation probe exceeded its per-probe deadline.

    Raised cooperatively by :class:`repro.core.labels.LabelSolver` (the
    deadline is checked once per label round), in whichever process runs
    the probe; it pickles cleanly across the worker pool boundary.
    """


@dataclass
class Budget:
    """Deadline + per-probe timeout, plus the run's resilience state.

    ``deadline`` bounds the whole search in seconds from :meth:`start`
    (first consultation); ``probe_timeout`` bounds each individual label
    computation.  Either may be ``None`` (unlimited).  A fresh ``Budget``
    must be created per run — it accumulates state.
    """

    deadline: Optional[float] = None
    probe_timeout: Optional[float] = None
    clock: Callable[[], float] = time.monotonic
    # -- run state, filled in as the search executes --
    #: the budget expired (or a probe timed out) and the search returned
    #: a degraded best-known answer instead of the proven optimum
    exhausted: bool = False
    #: why: ``"deadline"`` or ``"probe_timeout"`` (``None`` when not
    #: exhausted)
    reason: Optional[str] = None
    #: executions of the search backend: 1 + pool restarts (+1 for the
    #: sequential fallback, when taken)
    attempts: int = 1
    #: structured trace of recovery actions (JSON-able dicts)
    events: List[dict] = field(default_factory=list)
    _t0: Optional[float] = field(default=None, repr=False)

    def start(self) -> "Budget":
        """Start the deadline clock (idempotent); returns ``self``."""
        if self._t0 is None:
            self._t0 = self.clock()
        return self

    def elapsed(self) -> float:
        if self._t0 is None:
            return 0.0
        return self.clock() - self._t0

    def remaining(self) -> Optional[float]:
        """Seconds left of the overall deadline; ``None`` if unlimited."""
        if self.deadline is None:
            return None
        self.start()
        return self.deadline - self.elapsed()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def check(self) -> None:
        """Raise :class:`DeadlineExpired` once the deadline has passed."""
        if self.expired():
            raise DeadlineExpired(
                f"wall-clock budget of {self.deadline}s exhausted "
                f"after {self.elapsed():.3f}s"
            )

    def begin_probe(self) -> Optional[float]:
        """Gate one probe: check the deadline, return the probe's allowance.

        Raises :class:`DeadlineExpired` when the overall deadline has
        passed; otherwise returns the seconds the probe may run for (the
        tighter of ``probe_timeout`` and the remaining deadline), or
        ``None`` when unlimited.  The allowance is relative on purpose:
        the probe anchors it to its own monotonic clock at start, which
        keeps the budget's clock injectable without leaking into the
        solver's hot path.  A single clock reading decides both the
        expiry check and the allowance, so the two never disagree.
        """
        remaining = self.remaining()
        if remaining is not None and remaining <= 0.0:
            raise DeadlineExpired(
                f"wall-clock budget of {self.deadline}s exhausted "
                f"after {self.elapsed():.3f}s"
            )
        candidates = [
            limit
            for limit in (self.probe_timeout, remaining)
            if limit is not None
        ]
        return min(candidates) if candidates else None

    def note(self, kind: str, **details: object) -> None:
        """Append a structured event to the resilience trace."""
        event: dict = {"kind": kind, "elapsed": round(self.elapsed(), 6)}
        event.update(details)
        self.events.append(event)

    def exhaust(self, exc: BaseException) -> None:
        """Record that the search degraded because of ``exc``."""
        self.exhausted = True
        self.reason = (
            "probe_timeout" if isinstance(exc, ProbeTimeout) else "deadline"
        )
        self.note("budget_exhausted", reason=self.reason, detail=str(exc))
