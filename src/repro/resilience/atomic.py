"""Atomic artifact writes: a crashed writer never corrupts the old file.

Every JSON artifact this project writes (suite reports, checkpoints,
``benchmarks/baseline.json``, lint baselines, the serve journal's
compacted snapshots) goes through :func:`atomic_write_text` or
:func:`atomic_write_bytes`: the content lands in a same-directory temp
sibling which is then :func:`os.replace`-d over the destination — an
atomic rename on POSIX.  An interruption at any point (crash, SIGKILL,
injected fault) leaves either the old complete file or the new complete
file, never a truncated hybrid.

Durability goes one step further than atomicity: after the rename the
*containing directory* is fsynced too (:func:`fsync_directory`), because
POSIX only guarantees the new directory entry survives a power loss once
the directory inode itself reaches stable storage.  Without it a crashed
machine can come back with the *old* file even though ``os.replace``
returned — fatal for a write-ahead journal that acted on the record it
believed durable.

Two fault-injection sites bracket the danger zone: ``artifact-write``
sits between the temp write and the rename (where a naive writer would
have already destroyed the previous contents), and ``artifact-dirsync``
sits between the rename and the directory fsync (where the new name is
visible but not yet guaranteed durable).
"""

from __future__ import annotations

import json
import os
from typing import Any, Union

from repro.resilience.faultinject import fault_point


def fsync_directory(path: str) -> None:
    """fsync the directory containing ``path`` (best effort).

    Needed after :func:`os.replace` for the rename itself to be durable
    across power loss.  Filesystems that cannot fsync a directory fd
    (some network/overlay mounts) raise ``OSError``; durability is then
    simply not available there, so the error is swallowed rather than
    failing an otherwise successful write.
    """
    parent = os.path.dirname(os.path.abspath(path)) or "."
    try:
        fd = os.open(parent, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write(path: str, data: Union[str, bytes], binary: bool) -> None:
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb" if binary else "w") as fh:
            fh.write(data)
            fault_point("artifact-write", tag=path)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fault_point("artifact-dirsync", tag=path)
        fsync_directory(path)
    finally:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via a temp sibling + atomic rename."""
    _atomic_write(path, text, binary=False)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Binary twin of :func:`atomic_write_text` (compiled CSR blobs)."""
    _atomic_write(path, data, binary=True)


def atomic_write_json(
    path: str, payload: Any, indent: int = 2, sort_keys: bool = False
) -> None:
    """Serialize ``payload`` and write it atomically (trailing newline)."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    atomic_write_text(path, text)
