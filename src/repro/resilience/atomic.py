"""Atomic artifact writes: a crashed writer never corrupts the old file.

Every JSON artifact this project writes (suite reports, checkpoints,
``benchmarks/baseline.json``, lint baselines) goes through
:func:`atomic_write_text`: the content lands in a same-directory temp
sibling which is then :func:`os.replace`-d over the destination — an
atomic rename on POSIX.  An interruption at any point (crash, SIGKILL,
injected fault) leaves either the old complete file or the new complete
file, never a truncated hybrid.

The ``artifact-write`` fault-injection site sits between the temp write
and the rename, which is exactly where a naive writer would have already
destroyed the previous contents.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.resilience.faultinject import fault_point


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via a temp sibling + atomic rename."""
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as fh:
            fh.write(text)
            fault_point("artifact-write", tag=path)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass


def atomic_write_json(
    path: str, payload: Any, indent: int = 2, sort_keys: bool = False
) -> None:
    """Serialize ``payload`` and write it atomically (trailing newline)."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    atomic_write_text(path, text)
