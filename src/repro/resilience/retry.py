"""Deterministic capped exponential backoff for recovery retries.

Worker-pool recovery (:mod:`repro.perf.parallel`) waits between pool
restarts so a transiently overloaded host (the usual cause of an
OOM-killed worker) gets room to recover.  The delays are *seeded and
deterministic* — a splitmix64-style hash supplies the jitter, so no
``random`` state is touched on hot paths and two runs with the same
policy back off identically (which keeps the fault-injection tests
exact).
"""

from __future__ import annotations

from dataclasses import dataclass

_MASK = (1 << 64) - 1


def _mix64(*parts: int) -> int:
    """splitmix64-style avalanche of the given integers (deterministic)."""
    x = 0x9E3779B97F4A7C15
    for part in parts:
        x = (x ^ (part & _MASK)) * 0xBF58476D1CE4E5B9 & _MASK
        x ^= x >> 27
        x = x * 0x94D049BB133111EB & _MASK
        x ^= x >> 31
    return x


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to restart a broken pool, and how long to wait.

    ``delay(attempt)`` for attempt 1, 2, 3, ... doubles from
    ``base_delay`` up to ``max_delay``, scaled by a deterministic jitter
    in ``[1 - jitter, 1 + jitter)`` derived from ``(seed, attempt)``.
    After ``max_restarts`` failed restarts the caller degrades to the
    sequential search instead of retrying forever.
    """

    max_restarts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))
        if raw <= 0.0 or self.jitter <= 0.0:
            return max(0.0, raw)
        fraction = _mix64(self.seed, attempt) / float(1 << 64)  # [0, 1)
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * fraction)
