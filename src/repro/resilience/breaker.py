"""Circuit breakers: stop hammering a failing dependency, then probe it.

A :class:`CircuitBreaker` guards one unreliable resource — in this
codebase, one worker lane of the serve scheduler dispatching jobs to a
process fleet (:mod:`repro.serve.scheduler`).  It is the classic
three-state machine:

``closed``
    Normal operation.  Failures are counted; ``failure_threshold``
    *consecutive* failures trip the breaker open (a success resets the
    count).
``open``
    The resource is presumed down.  :meth:`allow` answers ``False`` until
    a cool-down period has elapsed; callers degrade (the scheduler drops
    a lane to sequential in-process probing) instead of queueing more
    work onto a broken pool.  The cool-down reuses the existing
    :class:`~repro.resilience.retry.RetryPolicy` backoff — the Nth trip
    waits ``policy.delay(N)`` seconds, deterministically jittered, so
    repeated trips back off exponentially just like pool restarts do.
``half_open``
    The cool-down elapsed; exactly one trial call is let through.  Its
    success closes the breaker, its failure re-opens it (with the next,
    longer cool-down).

The clock is injectable, so every transition is testable without real
sleeps, and all state is in-memory by design: a breaker protects a
*live* resource, and after a process crash the replacement process
should probe the resource afresh rather than inherit stale verdicts.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.resilience.retry import RetryPolicy

#: The three breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with :class:`RetryPolicy` cool-downs."""

    def __init__(
        self,
        failure_threshold: int = 3,
        policy: Optional[RetryPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        #: Cool-down schedule: trip N waits ``policy.delay(N)`` seconds.
        self.policy = policy if policy is not None else RetryPolicy(
            max_restarts=0, base_delay=1.0, max_delay=60.0
        )
        self.clock = clock
        self._state = CLOSED
        self._failures = 0  # consecutive failures while closed
        self._trips = 0  # times the breaker has opened (backoff index)
        self._retry_at: Optional[float] = None

    # -- inspection -----------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, advancing ``open`` to ``half_open`` on expiry."""
        if self._state == OPEN:
            assert self._retry_at is not None
            if self.clock() >= self._retry_at:
                self._state = HALF_OPEN
        return self._state

    @property
    def trips(self) -> int:
        """How many times the breaker has opened so far."""
        return self._trips

    def snapshot(self) -> dict:
        """JSON-able state for events / health endpoints."""
        return {
            "state": self.state,
            "failures": self._failures,
            "trips": self._trips,
            "retry_in": (
                None
                if self._retry_at is None or self._state != OPEN
                else max(0.0, round(self._retry_at - self.clock(), 6))
            ),
        }

    # -- the protocol ---------------------------------------------------
    def allow(self) -> bool:
        """May the caller attempt the guarded operation right now?"""
        return self.state != OPEN

    def record_success(self) -> None:
        """The guarded operation succeeded; close and reset."""
        self._state = CLOSED
        self._failures = 0
        self._retry_at = None

    def record_failure(self) -> None:
        """The guarded operation failed; maybe trip (or re-trip) open."""
        if self.state == HALF_OPEN:
            self._trip()  # the trial failed: straight back to open
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._failures = 0
        self._trips += 1
        self._retry_at = self.clock() + self.policy.delay(self._trips)
