"""Deterministic fault injection: make every recovery path testable.

A :class:`FaultPlan` is a list of :class:`Fault` specs.  Instrumented
code calls :func:`fault_point` with a *site* name and a *tag*; when the
active plan has a matching fault, the fault fires — raising, delaying,
killing the process, or simulating Ctrl-C.  No plan installed means
every fault point is a no-op (one dict lookup), so production paths pay
nothing.

Sites instrumented in this codebase:

``probe``
    One phi-feasibility probe; tag ``"<circuit>:phi=<value>"``.  Fires in
    whichever process runs the probe — a ``kill`` here exercises the
    worker-pool recovery of :mod:`repro.perf.parallel`.
``suite-cell``
    One (circuit, algorithm) cell of the benchmark suite; tag
    ``"<circuit>:<algorithm>"``.  A ``raise`` here exercises the suite
    fault boundary and checkpoint/resume.
``artifact-write``
    A JSON artifact write, between writing the temp sibling and the
    atomic ``os.replace``; tag is the destination path.  A ``raise``
    here proves interrupted writes never corrupt the old file.
``artifact-dirsync``
    Between the atomic ``os.replace`` and the directory fsync that makes
    the rename durable; tag is the destination path.  A crash here must
    leave a complete (old or new) file either way.
``journal-append``
    One write-ahead journal record (:mod:`repro.serve.journal`), *after*
    the record reached stable storage (write + fsync) but before the
    service acts on it; tag ``"<type>:<job-id>"``.  A ``kill`` here is
    the canonical crash-only test: on restart the replay must redo the
    action exactly once.
``store-put``
    One content-addressed store insertion
    (:mod:`repro.serve.store`), after the BLIF text and compiled CSR
    blob landed; tag is the circuit id.  A crash here must leave the
    store readable (the entry is complete or absent, never torn).
``worker-dispatch``
    The serve scheduler handing one accepted job to a worker lane; tag
    ``"<job-id>:<circuit-id>"``.  A ``kill`` here crashes with the job
    journaled-but-unstarted; replay must re-dispatch it.
``result-commit``
    Between writing a job's result artifact and appending the terminal
    journal record; tag is the job id.  A crash here leaves a complete
    artifact with a non-terminal journal — recovery must reconcile the
    two without recomputing (or recompute bit-identically).

Plans are deterministic: matching uses :func:`fnmatch.fnmatchcase` over
the tag (no randomness), ``at`` skips the first N matching hits, and
``fires`` caps how many times a fault triggers.  Cross-process one-shot
semantics (a killed worker must *not* be killed again after the pool
restarts) use ``state_dir``: firing atomically claims a marker file with
``O_CREAT | O_EXCL``, which works across forked workers.  ``kill``
faults without a ``state_dir`` would fire on every retry forever — the
plan loader rejects them.

The ``REPRO_FAULT_PLAN`` environment variable activates a plan without
code changes: either inline JSON or ``@/path/to/plan.json``::

    {"state_dir": "chaos-state",
     "faults": [
       {"site": "probe", "match": "*:phi=3", "action": "kill"},
       {"site": "suite-cell", "match": "dk16:turbomap",
        "action": "raise", "message": "injected stage failure"}]}
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Optional

ENV_PLAN = "REPRO_FAULT_PLAN"

#: Exit status of a process killed by a ``kill`` fault (distinctive, so
#: an unexpected worker death is distinguishable from an injected one).
KILL_EXIT_CODE = 43

_ACTIONS = ("raise", "kill", "delay", "interrupt")


class InjectedFault(RuntimeError):
    """The exception raised by a ``raise`` fault (recognizable by name)."""


class FaultPlanError(ValueError):
    """A fault plan could not be parsed or is inconsistent."""


@dataclass(frozen=True)
class Fault:
    """One injected fault: *where* (site/match/at) and *what* (action)."""

    site: str
    action: str  # "raise" | "kill" | "delay" | "interrupt"
    match: str = "*"  # fnmatch glob over the full fault-point tag
    at: int = 0  # skip this many matching hits before firing
    fires: int = 1  # firings allowed (0 = unlimited)
    seconds: float = 0.0  # sleep length for "delay"
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise FaultPlanError(
                f"unknown fault action {self.action!r} (one of {_ACTIONS})"
            )
        if self.at < 0 or self.fires < 0:
            raise FaultPlanError("fault 'at' and 'fires' must be >= 0")


@dataclass
class FaultPlan:
    """A set of faults plus the per-process / on-disk firing state."""

    faults: List[Fault] = field(default_factory=list)
    #: directory for cross-process one-shot markers; required for
    #: ``kill`` faults (a restarted pool would otherwise be re-killed
    #: forever)
    state_dir: Optional[str] = None
    _hits: Dict[int, int] = field(default_factory=dict, repr=False)
    _fired: Dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for fault in self.faults:
            if fault.action == "kill" and self.state_dir is None:
                raise FaultPlanError(
                    "'kill' faults require a plan state_dir (one-shot "
                    "markers must survive the killed process)"
                )

    # -- construction ---------------------------------------------------
    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        if isinstance(data, list):
            data = {"faults": data}
        if not isinstance(data, dict) or not isinstance(data.get("faults"), list):
            raise FaultPlanError("fault plan must be a {'faults': [...]} object")
        faults = []
        for raw in data["faults"]:
            if not isinstance(raw, dict):
                raise FaultPlanError(f"malformed fault entry {raw!r}")
            unknown = set(raw) - {
                "site", "action", "match", "at", "fires", "seconds", "message",
            }
            if unknown:
                raise FaultPlanError(f"unknown fault field(s): {sorted(unknown)}")
            try:
                faults.append(Fault(**raw))
            except TypeError as exc:
                raise FaultPlanError(f"malformed fault entry {raw!r}: {exc}") from exc
        state_dir = data.get("state_dir")
        if state_dir is not None and not isinstance(state_dir, str):
            raise FaultPlanError("state_dir must be a string path")
        return cls(faults=faults, state_dir=state_dir)

    @classmethod
    def from_env(cls, value: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULT_PLAN`` value: inline JSON or ``@path``."""
        if value.startswith("@"):
            with open(value[1:]) as fh:
                return cls.from_json(fh.read())
        return cls.from_json(value)

    # -- firing ---------------------------------------------------------
    def hit(self, site: str, tag: str) -> None:
        """Record one pass through a fault point; fire matching faults."""
        for index, fault in enumerate(self.faults):
            if fault.site != site or not fnmatchcase(tag, fault.match):
                continue
            seen = self._hits.get(index, 0)
            self._hits[index] = seen + 1
            if seen < fault.at:
                continue
            if self._claim(index, fault):
                self._fire(fault)

    def _claim(self, index: int, fault: Fault) -> bool:
        """Reserve one firing of ``fault``; False when used up."""
        if fault.fires == 0:
            return True  # unlimited
        if self.state_dir is not None:
            os.makedirs(self.state_dir, exist_ok=True)
            for slot in range(fault.fires):
                marker = os.path.join(
                    self.state_dir, f"fault{index}.fired.{slot}"
                )
                try:
                    fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    continue
                os.close(fd)
                return True
            return False
        fired = self._fired.get(index, 0)
        if fired >= fault.fires:
            return False
        self._fired[index] = fired + 1
        return True

    def _fire(self, fault: Fault) -> None:
        if fault.action == "delay":
            time.sleep(fault.seconds)
            return
        if fault.action == "kill":
            os._exit(KILL_EXIT_CODE)
        if fault.action == "interrupt":
            raise KeyboardInterrupt(fault.message)
        raise InjectedFault(fault.message)


# -- the process-global active plan -------------------------------------
_PLAN: Optional[FaultPlan] = None
_ENV_CHECKED = False


def install(plan: FaultPlan) -> None:
    """Activate ``plan`` for this process (and future forked children)."""
    global _PLAN, _ENV_CHECKED
    _PLAN = plan
    _ENV_CHECKED = True


def clear() -> None:
    """Deactivate fault injection (also suppresses the env hook)."""
    global _PLAN, _ENV_CHECKED
    _PLAN = None
    _ENV_CHECKED = True


def reset() -> None:
    """Forget everything, re-enabling the lazy env-var lookup (tests)."""
    global _PLAN, _ENV_CHECKED
    _PLAN = None
    _ENV_CHECKED = False


def active() -> Optional[FaultPlan]:
    """The installed plan, lazily loading ``REPRO_FAULT_PLAN`` once."""
    global _PLAN, _ENV_CHECKED
    if _PLAN is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        raw = os.environ.get(ENV_PLAN)
        if raw:
            _PLAN = FaultPlan.from_env(raw)
    return _PLAN


def fault_point(site: str, tag: str = "") -> None:
    """Declare an injectable point; no-op unless an active plan matches."""
    plan = active()
    if plan is not None:
        plan.hit(site, tag)
