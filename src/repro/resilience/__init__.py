"""Resilience subsystem: budgets, retries, atomic writes, fault injection.

Long suite and search runs must survive partial failure instead of
discarding completed work.  This package supplies the four pieces the
rest of the codebase threads through its execution layers:

* :mod:`repro.resilience.budget` — wall-clock :class:`Budget` (overall
  deadline + per-probe timeout) consulted by the phi searches; on expiry
  they return the best-known feasible answer marked ``degraded`` instead
  of dying;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy`, seeded
  deterministic capped exponential backoff for worker-pool restarts;
* :mod:`repro.resilience.atomic` — temp-sibling + ``os.replace`` JSON
  artifact writes (a crashed writer never corrupts the old file);
* :mod:`repro.resilience.faultinject` — deterministic :class:`FaultPlan`
  injection (kill a worker, delay, raise, simulate Ctrl-C) behind
  :func:`fault_point` sites and the ``REPRO_FAULT_PLAN`` env hook, so
  every recovery path is testable in CI without flaky sleeps.
"""

from repro.resilience.atomic import atomic_write_json, atomic_write_text
from repro.resilience.budget import (
    Budget,
    BudgetExhausted,
    DeadlineExpired,
    ProbeTimeout,
)
from repro.resilience.faultinject import (
    ENV_PLAN,
    KILL_EXIT_CODE,
    Fault,
    FaultPlan,
    FaultPlanError,
    InjectedFault,
    fault_point,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "ENV_PLAN",
    "KILL_EXIT_CODE",
    "Budget",
    "BudgetExhausted",
    "DeadlineExpired",
    "Fault",
    "FaultPlan",
    "FaultPlanError",
    "InjectedFault",
    "ProbeTimeout",
    "RetryPolicy",
    "atomic_write_json",
    "atomic_write_text",
    "fault_point",
]
