"""Dinic max-flow on preallocated flat arrays.

Drop-in alternative to the Edmonds-Karp
:class:`repro.comb.maxflow.FlowNetwork` (same construction and query
API) with the classical Dinic structure:

* *level-graph phases*: one BFS per phase labels every node with its
  residual BFS depth; augmentation only follows strictly
  depth-increasing arcs, so each phase finds a blocking flow and the
  shortest augmenting-path length grows monotonically across phases;
* *current-arc optimization*: each node keeps a cursor into its
  adjacency list; an arc rejected once in a phase (saturated or not
  depth-increasing) is never rescanned in that phase, bounding a
  phase's total arc work by ``O(E)`` plus the augmenting-path lengths.

The cut queries of the label computation build node-split networks
whose internal edges have unit capacity, so every augmenting path moves
exactly one unit and Dinic's unit-capacity bound applies: at most
``O(sqrt(E))`` phases, ``O(E * sqrt(E))`` total, versus Edmonds-Karp's
``O((K+1) * E)`` with a fresh BFS per augmented unit.  In practice the
bounded queries (``limit = K``) finish in one or two phases because a
single blocking flow pushes many units.

All state lives in flat parallel lists, recycled across queries via
:meth:`DinicNetwork.reset` exactly like the Edmonds-Karp arena; the
per-query counters ``phases`` / ``arcs_advanced`` feed the
deterministic work telemetry in
:class:`repro.core.labels.LabelStats`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, Set

if TYPE_CHECKING:
    from repro.analysis.sanitize import FlowSanitizer

#: Effectively infinite capacity for non-cut edges (mirrors
#: :data:`repro.comb.maxflow.INF`).
INF = 1 << 30


class DinicNetwork:
    """A residual flow network solved by Dinic's algorithm.

    Construction API (``add_node`` / ``add_edge`` / ``edge_flow`` /
    ``reset``) matches :class:`repro.comb.maxflow.FlowNetwork`, so the
    node-split builders can back themselves with either engine.
    """

    def __init__(self) -> None:
        # Edge arrays: to[i], cap[i]; edge i^1 is the reverse of edge i.
        self._to: List[int] = []
        self._cap: List[int] = []
        self._adj: List[List[int]] = []
        self._adj_pool: List[List[int]] = []
        # Per-node scratch reused across max_flow calls (grown on
        # demand): BFS level and the current-arc cursor.
        self._level: List[int] = []
        self._cursor: List[int] = []
        self._queue: Deque[int] = deque()
        #: Level-graph phases run since construction or the last
        #: counter drain (one BFS each).
        self.phases = 0
        #: Arcs examined by the blocking-flow search since the last
        #: drain (the deterministic work measure of the DFS).
        self.arcs_advanced = 0
        # Opt-in invariant sanitizer (REPRO_SANITIZE=1 / --sanitize):
        # conservation, capacity, and level-graph checks per max_flow
        # call.  Imported lazily at construction time — the analysis
        # package imports repro.kernel, so a top-level import would
        # cycle.
        self._san: Optional["FlowSanitizer"] = None
        try:
            from repro.analysis.sanitize import flow_sanitizer
        except ImportError:  # pragma: no cover - analysis always ships
            pass
        else:
            self._san = flow_sanitizer()

    # ------------------------------------------------------------------
    # Construction (FlowNetwork-compatible)
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Empty the network in place, keeping allocations for reuse."""
        self._to.clear()
        self._cap.clear()
        if self._san is not None:
            self._san.reset()
        while self._adj:
            lst = self._adj.pop()
            lst.clear()
            self._adj_pool.append(lst)

    def add_node(self) -> int:
        self._adj.append(self._adj_pool.pop() if self._adj_pool else [])
        return len(self._adj) - 1

    def add_nodes(self, count: int) -> range:
        start = len(self._adj)
        for _ in range(count):
            self._adj.append(self._adj_pool.pop() if self._adj_pool else [])
        return range(start, start + count)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    def add_edge(self, u: int, v: int, cap: int) -> int:
        """Add a directed edge; returns its index (reverse is index+1)."""
        if not (0 <= u < len(self._adj) and 0 <= v < len(self._adj)):
            raise ValueError("edge endpoint out of range")
        if cap < 0:
            raise ValueError("capacity must be non-negative")
        idx = len(self._to)
        self._to.extend((v, u))
        self._cap.extend((cap, 0))
        if self._san is not None:
            self._san.record_edge(cap)
        self._adj[u].append(idx)
        self._adj[v].append(idx + 1)
        return idx

    def edge_flow(self, idx: int) -> int:
        """Current flow on edge ``idx`` (capacity moved to its reverse)."""
        return self._cap[idx ^ 1]

    def drain_counters(self) -> "tuple[int, int]":
        """Return and zero ``(phases, arcs_advanced)`` (per-query stats)."""
        out = (self.phases, self.arcs_advanced)
        self.phases = 0
        self.arcs_advanced = 0
        return out

    # ------------------------------------------------------------------
    # Solve
    # ------------------------------------------------------------------
    def _bfs_levels(self, source: int, sink: int) -> bool:
        """Label residual BFS depths; True when the sink is reachable."""
        level = self._level
        n = len(self._adj)
        while len(level) < n:
            level.append(-1)
        for i in range(n):
            level[i] = -1
        level[source] = 0
        queue = self._queue
        queue.clear()
        queue.append(source)
        to = self._to
        cap = self._cap
        adj = self._adj
        sink_level = -1
        while queue:
            u = queue.popleft()
            du = level[u] + 1
            if du == sink_level:
                continue  # beyond the sink: cannot lie on a shortest path
            for idx in adj[u]:
                v = to[idx]
                if level[v] < 0 and cap[idx] > 0:
                    level[v] = du
                    if v == sink:
                        sink_level = du
                    else:
                        queue.append(v)
        return sink_level >= 0

    def _augment(self, source: int, sink: int) -> int:
        """Push one augmenting path along the level graph; 0 when none.

        Walks forward through each node's current arc; a node with no
        admissible arc left is pruned from the level graph
        (``level = -1``) and the walk retreats one edge.  Every arc is
        examined at most once per phase across all calls — the cursors
        persist between calls within a phase.
        """
        to = self._to
        cap = self._cap
        adj = self._adj
        level = self._level
        cursor = self._cursor
        path: List[int] = []
        u = source
        arcs = 0
        while True:
            if u == sink:
                bottleneck = min(cap[e] for e in path)
                for e in path:
                    cap[e] -= bottleneck
                    cap[e ^ 1] += bottleneck
                self.arcs_advanced += arcs
                return bottleneck
            edges = adj[u]
            n_edges = len(edges)
            du = level[u] + 1
            advanced = False
            i = cursor[u]
            start = i
            while i < n_edges:
                e = edges[i]
                v = to[e]
                if cap[e] > 0 and level[v] == du:
                    cursor[u] = i
                    path.append(e)
                    u = v
                    advanced = True
                    break
                i += 1
            arcs += i - start + (1 if advanced else 0)
            if advanced:
                continue
            cursor[u] = n_edges
            level[u] = -1  # dead end: prune from this phase's level graph
            if not path:
                self.arcs_advanced += arcs
                return 0
            e = path.pop()
            u = to[e ^ 1]
            cursor[u] += 1  # the arc we just retreated over is exhausted

    def max_flow(self, source: int, sink: int, limit: int) -> int:
        """Dinic max-flow, stopping once the flow exceeds ``limit``.

        Same contract as the Edmonds-Karp engine: the exact max flow
        when it is at most ``limit``, any value ``> limit`` otherwise
        (on the unit-bottleneck split networks the overshoot is exactly
        ``limit + 1``).  Early exit never leaves a partial augmenting
        path behind, so :meth:`residual_reachable` after a *completed*
        run (return value ``<= limit``) is the canonical min-cut side.
        """
        if source == sink:
            raise ValueError("source equals sink")
        flow = 0
        cursor = self._cursor
        san = self._san
        while flow <= limit:
            if not self._bfs_levels(source, sink):
                if san is not None:
                    san.check_flow(self, source, sink)
                return flow
            if san is not None:
                san.check_levels(self, source, sink)
            self.phases += 1
            n = len(self._adj)
            while len(cursor) < n:
                cursor.append(0)
            for i in range(n):
                cursor[i] = 0
            while flow <= limit:
                pushed = self._augment(source, sink)
                if not pushed:
                    break
                flow += pushed
        if san is not None:
            san.check_flow(self, source, sink)
        return flow

    def residual_reachable(self, source: int) -> Set[int]:
        """Nodes reachable from ``source`` along positive-residual edges."""
        seen = {source}
        queue = deque([source])
        to = self._to
        cap = self._cap
        adj = self._adj
        while queue:
            u = queue.popleft()
            for idx in adj[u]:
                v = to[idx]
                if v not in seen and cap[idx] > 0:
                    seen.add(v)
                    queue.append(v)
        return seen
