"""Zero-copy publication of compiled circuits to worker processes.

The parallel phi search (:mod:`repro.perf.parallel`) runs one label
computation per probe in a process pool.  The structure those probes
hammer — the compiled CSR arrays — is immutable per circuit, so it is
serialized exactly once in the parent and *published* to the workers:

* ``shm`` transport: the byte payload is placed in a
  ``multiprocessing.shared_memory`` segment; the pickled handle is just
  the segment name (a few dozen bytes), and every worker attaches the
  same physical pages — zero copies of the arrays cross the process
  boundary;
* ``bytes`` transport: the payload travels inline in the handle
  (pickled once per worker, via the pool initializer) on platforms
  without usable shared memory.

:func:`publish_csr` picks the transport; the parent must call
:meth:`CsrHandle.unlink` when the pool is done (the probe pool does so
in its ``shutdown``).  Workers call :meth:`CsrHandle.attach` once, in
the pool initializer, and install the result on their circuit copy via
:meth:`~repro.netlist.graph.SeqCircuit.adopt_compiled` so no worker
ever recompiles the kernel.

Warm-start label vectors ship as packed ``int32`` bytes
(:func:`pack_labels`) instead of pickled Python lists — a fixed 4 bytes
per label, and the worker decodes them with one ``array.frombytes``
instead of one pickle opcode per element.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.kernel.csr import CompiledCircuit

if TYPE_CHECKING:
    from multiprocessing.shared_memory import SharedMemory

    from repro.kernel.batch import CsrViews


def pack_labels(labels: Optional[Sequence[int]]) -> Optional[bytes]:
    """Pack a label vector into ``int32`` bytes (``None`` passes through)."""
    if labels is None:
        return None
    return array("i", labels).tobytes()


def unpack_labels(blob: Optional[bytes]) -> Optional[List[int]]:
    """Inverse of :func:`pack_labels`."""
    if blob is None:
        return None
    out = array("i")
    out.frombytes(blob)
    return list(out)


class CsrHandle:
    """A process-portable handle to one published compiled circuit.

    Pickling the handle is the transport: an ``shm`` handle pickles to
    the segment name, a ``bytes`` handle carries the payload inline.
    ``attach`` rebuilds the :class:`CompiledCircuit` in the receiving
    process; ``unlink`` (owner side) releases the shared segment.
    """

    def __init__(
        self,
        transport: str,
        payload: Optional[bytes] = None,
        shm_name: Optional[str] = None,
        size: int = 0,
    ) -> None:
        self.transport = transport
        self.payload = payload
        self.shm_name = shm_name
        self.size = size
        #: Owner-side segment, excluded from pickling.
        self._shm: "Optional[SharedMemory]" = None

    def __getstate__(self) -> Dict[str, Any]:
        return {
            "transport": self.transport,
            "payload": self.payload,
            "shm_name": self.shm_name,
            "size": self.size,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._shm = None

    def pickled_size(self) -> int:
        """Bytes this handle adds to a pickle stream (telemetry)."""
        import pickle

        return len(pickle.dumps(self))

    def attach(self) -> CompiledCircuit:
        """Rebuild the compiled circuit in this process."""
        if self.transport == "bytes":
            assert self.payload is not None
            return CompiledCircuit.from_bytes(self.payload)
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=self.shm_name)
        try:
            return CompiledCircuit.from_bytes(segment.buf[: self.size])
        finally:
            segment.close()

    def attach_views(self) -> "CsrViews":
        """Zero-copy numpy views over the published blob.

        Unlike :meth:`attach` (which copies the arrays into Python
        lists and may close the segment immediately), the returned
        views *alias* the published buffer, so the buffer's owner must
        outlive them.  The views carry that owner in their
        ``keepalive``: for ``shm`` transport the attached
        ``SharedMemory`` segment stays referenced — and therefore
        mapped — for as long as the views live, even after the
        publisher calls :meth:`unlink` (POSIX keeps unlinked segments
        alive until the last map drops) or the worker's own handle goes
        out of scope.  Closing the segment eagerly here — the
        ``attach`` pattern — would free the pages under the live
        arrays.

        Requires numpy (the ``[vector]`` extra); raises
        :class:`repro.compat.MissingDependency` without it.
        """
        from repro.kernel.batch import views_from_blob

        if self.transport == "bytes":
            assert self.payload is not None
            return views_from_blob(self.payload, keepalive=(self.payload,))
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=self.shm_name)
        return views_from_blob(
            segment.buf[: self.size], keepalive=(segment,)
        )

    def unlink(self) -> None:
        """Owner side: release the shared segment (idempotent)."""
        shm = self._shm
        self._shm = None
        if shm is not None:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


def publish_csr(compiled: CompiledCircuit, prefer_shm: bool = True) -> CsrHandle:
    """Publish a compiled circuit for worker attachment.

    Tries a ``multiprocessing.shared_memory`` segment first (zero-copy:
    workers map the parent's pages); falls back to an inline-bytes
    handle when shared memory is unavailable (platform without
    ``/dev/shm``, sandboxed environments).
    """
    return publish_bytes(compiled.to_bytes(), prefer_shm=prefer_shm)


def publish_bytes(data: bytes, prefer_shm: bool = True) -> CsrHandle:
    """Publish an already-serialized CSR byte string.

    The serve layer stores compiled circuits as exactly these bytes
    (:meth:`CompiledCircuit.to_bytes` is the store's blob format), so a
    job dispatched to the fleet can publish the stored blob verbatim —
    no deserialize/reserialize round trip in the service process.
    """
    if prefer_shm:
        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(create=True, size=len(data))
            segment.buf[: len(data)] = data
            handle = CsrHandle(
                "shm", shm_name=segment.name, size=len(data)
            )
            handle._shm = segment
            return handle
        except (ImportError, OSError):  # pragma: no cover - no shm support
            pass
    return CsrHandle("bytes", payload=data, size=len(data))
