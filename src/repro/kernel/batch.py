"""Vectorized batch kernel: numpy level-BFS flow over stacked cut arenas.

The scalar kernels answer one K-cut query at a time: build one
node-split network (:func:`repro.kernel.expand.cut_on_packed`), run one
bounded Dinic (:class:`repro.kernel.dinic.DinicNetwork`).  The label
engines, however, produce *bursts* of independent queries — every gate
updated in one round (rounds engine) or one epoch (worklist engine)
computes its threshold from the same label snapshot.  This module
solves such a burst as one stacked problem:

* :class:`BatchCutArena` collects many node-split networks into shared
  flat edge arrays (consecutive ``idx ^ 1`` forward/reverse pairing,
  CSR adjacency by counting sort) and runs a *frontier-at-a-time*
  level-BFS: one masked numpy gather advances the BFS frontier of
  **every** active network simultaneously.  Augmentation stays scalar,
  but only on networks whose BFS actually reached the sink, and only
  along that phase's level graph.
* :func:`batch_gate_profile` and :func:`witness_feasible` are the
  vectorized height prefilter: fanin maxima (``big_l``), depth-1
  blocked detection, and recorded-witness-cut height checks are
  evaluated for the whole burst with a few array expressions, so
  trivially feasible/infeasible queries never construct a flow network
  (counted as ``prefilter_hits`` by the solver).
* :class:`CsrViews` exposes a :class:`~repro.kernel.csr.CompiledCircuit`
  (or a serialized CSR blob, including one sitting in a
  ``multiprocessing.shared_memory`` segment) as numpy arrays —
  ``np.frombuffer`` views for blobs (zero-copy, with an explicit
  ``keepalive`` so the owning buffer cannot be released under a live
  view), one-time ``np.asarray`` conversions for list-backed circuits.

Correctness contract — why batching preserves bit-identity: the cut
query's verdict depends only on the bounded max-flow *value*, and its
cut only on the residual reachability of a *completed* max flow, which
is the canonical source-side min cut — unique for a given network, for
any max-flow algorithm.  The batch solver therefore only has to honor
the scalar engine's value contract (exact when ``<= limit``, any value
``> limit`` otherwise, never a partial augmenting path left behind) and
is free to choose different augmenting paths than the scalar Dinic.
``tests/kernel`` asserts this three ways: scalar Dinic vs batched Dinic
vs Edmonds-Karp on randomized networks.

numpy is an *optional* dependency (the ``[vector]`` extra): importing
this module without it succeeds, and every public entry point either
raises :class:`repro.compat.MissingDependency` with an install hint or
— for :func:`resolve_kernel` — falls back to the scalar compiled
kernel, so ``--kernel vector``/``auto`` degrade cleanly.
"""

from __future__ import annotations

import json
import os
from functools import lru_cache
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.compat import HAVE_NUMPY, np, require_numpy
from repro.kernel.csr import _FORMAT_VERSION, _HEADER, _MAGIC, CompiledCircuit
from repro.kernel.dinic import INF
from repro.kernel.expand import PackedExpansion

#: Fallback node-count crossover used by ``--kernel auto`` when no
#: measured envelope (``BENCH_microbench.json``) is available: batches
#: over circuits smaller than this stay scalar.  The microbench sweep
#: (:mod:`repro.perf.microbench`) replaces this guess with a measured
#: value.
DEFAULT_CROSSOVER_NODES = 256

#: Environment variable naming the microbench JSON the auto kernel
#: reads its measured crossover from.
ENVELOPE_ENV = "REPRO_MICROBENCH"

#: Default on-disk location of the measured envelope, relative to the
#: working directory (where CI and the bench harness run).
ENVELOPE_PATH = os.path.join("benchmarks", "results", "BENCH_microbench.json")

#: Buffer owners whose exported views outlived their :class:`CsrViews`
#: (see :meth:`CsrViews.close`); kept referenced so teardown stays
#: silent and the pages stay valid until the process exits.
_LEAKED_OWNERS: List[Any] = []


# ----------------------------------------------------------------------
# Zero-copy CSR views
# ----------------------------------------------------------------------
class CsrViews:
    """numpy views of one compiled circuit's CSR arrays.

    ``kinds`` is ``int8``; ``offsets`` / ``srcs`` / ``weights`` are
    ``int32`` — exactly the serialized layout of
    :meth:`~repro.kernel.csr.CompiledCircuit.to_bytes`, so blob-backed
    views are ``np.frombuffer`` windows into the original buffer with
    no copy at all.

    ``keepalive`` pins whatever object owns the underlying buffer (the
    blob bytes, a ``multiprocessing.shared_memory.SharedMemory``
    segment) for as long as the views live: a zero-copy view into a
    shared segment must keep the segment's mapping referenced, or a
    worker tearing the segment down (or the owner being garbage
    collected) would free the pages under the live arrays.
    """

    __slots__ = (
        "n",
        "shift",
        "mask",
        "kinds",
        "offsets",
        "srcs",
        "weights",
        "keepalive",
    )

    def __init__(
        self,
        n: int,
        shift: int,
        kinds: Any,
        offsets: Any,
        srcs: Any,
        weights: Any,
        keepalive: Tuple[Any, ...] = (),
    ) -> None:
        self.n = n
        self.shift = shift
        self.mask = (1 << shift) - 1
        self.kinds = kinds
        self.offsets = offsets
        self.srcs = srcs
        self.weights = weights
        self.keepalive = keepalive

    def close(self) -> None:
        """Release the views, then their buffer owners, in that order.

        Buffer teardown is order-sensitive: a ``memoryview`` refuses to
        release while arrays still export from it, and a shared-memory
        segment refuses to close while any export is live.  Dropping
        the array references first, then releasing views, then closing
        closeable owners guarantees a silent teardown; called from
        ``__del__`` so plain garbage collection follows the same order
        instead of whatever order the slots happen to clear in.
        Idempotent; arrays still referenced elsewhere keep the
        underlying pages alive through their own buffer chain.
        """
        self.kinds = self.offsets = self.srcs = self.weights = None
        keepalive, self.keepalive = self.keepalive, ()
        for obj in keepalive:
            if isinstance(obj, memoryview):
                try:
                    obj.release()
                except BufferError:  # an array outlives the views
                    _LEAKED_OWNERS.append(obj)
            else:
                closer = getattr(obj, "close", None)
                if closer is None:
                    continue
                try:
                    closer()
                except BufferError:
                    # An array still exports from this owner; parking it
                    # here keeps it alive (pages stay mapped, and its
                    # __del__ never runs against the live export) until
                    # process exit.
                    _LEAKED_OWNERS.append(obj)

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass


def views_from_compiled(cc: CompiledCircuit) -> CsrViews:
    """Array views of a list-backed compiled circuit (one-time copy).

    List-backed circuits (the in-process representation) cannot be
    viewed zero-copy; the conversion happens once per solver and the
    arrays are immutable thereafter.
    """
    require_numpy("the vectorized batch kernel")
    return CsrViews(
        cc.n,
        cc.shift,
        np.asarray(cc.kinds, dtype=np.int8),
        np.asarray(cc.offsets, dtype=np.int32),
        np.asarray(cc.srcs, dtype=np.int32),
        np.asarray(cc.weights, dtype=np.int32),
    )


def views_from_blob(
    data: Any, keepalive: Tuple[Any, ...] = ()
) -> CsrViews:
    """Zero-copy views over a serialized CSR blob.

    ``data`` is any buffer holding
    :meth:`~repro.kernel.csr.CompiledCircuit.to_bytes` output — a
    ``bytes`` payload or a ``memoryview`` into a shared-memory segment.
    The returned views alias the buffer directly (``np.frombuffer``);
    pass the buffer's owner in ``keepalive`` so it outlives them.
    """
    require_numpy("the vectorized batch kernel")
    view = memoryview(data)
    magic, version, n, n_pins, shift = _HEADER.unpack_from(view, 0)
    if magic != _MAGIC:
        raise ValueError("not a compiled-circuit payload (bad magic)")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported compiled-circuit format version {version}"
        )
    pos = _HEADER.size
    kinds = np.frombuffer(view, dtype=np.int8, count=n, offset=pos)
    pos += n
    offsets = np.frombuffer(view, dtype=np.int32, count=n + 1, offset=pos)
    pos += 4 * (n + 1)
    srcs = np.frombuffer(view, dtype=np.int32, count=n_pins, offset=pos)
    pos += 4 * n_pins
    weights = np.frombuffer(view, dtype=np.int32, count=n_pins, offset=pos)
    return CsrViews(
        n, shift, kinds, offsets, srcs, weights, keepalive=(view,) + keepalive
    )


# ----------------------------------------------------------------------
# Vectorized height prefilter
# ----------------------------------------------------------------------
def _ragged_gather(starts: Any, counts: Any) -> Any:
    """Concatenated ``range(starts[i], starts[i]+counts[i])`` (int64)."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    cum = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
    return np.repeat(starts.astype(np.int64), counts) + within


def batch_gate_profile(
    views: CsrViews,
    labels: Any,
    phi: int,
    gates: Sequence[int],
    pi_kind: int,
) -> "tuple[Any, Any, Any]":
    """Vectorized fanin maxima and depth-1 blocked detection.

    For every gate in ``gates`` (over the packed ``labels`` array),
    computes ``big_l = max(l(u) - phi*w)`` over its deduplicated fanin
    pins, whether it has pins at all, and whether the expansion at
    threshold ``big_l`` is *trivially blocked*: an arg-max pin driven by
    a PI has height ``big_l + 1 > big_l``, which blocks the expansion on
    the very first traversal step — no flow network needed.

    Returns ``(big_l, has_pins, blocked)`` arrays aligned with
    ``gates``; ``big_l`` is undefined where ``has_pins`` is False.
    """
    g = np.asarray(gates, dtype=np.int64)
    starts = views.offsets[g]
    counts = (views.offsets[g + 1] - starts).astype(np.int64)
    pin_idx = _ragged_gather(starts, counts)
    qid = np.repeat(np.arange(len(g), dtype=np.int64), counts)
    pin_src = views.srcs[pin_idx].astype(np.int64)
    pin_w = views.weights[pin_idx].astype(np.int64)
    contrib = labels[pin_src] - phi * pin_w
    big_l = np.full(len(g), np.iinfo(np.int64).min, dtype=np.int64)
    np.maximum.at(big_l, qid, contrib)
    has_pins = counts > 0
    blocked = np.zeros(len(g), dtype=bool)
    hit = (views.kinds[pin_src] == pi_kind) & (contrib == big_l[qid])
    blocked[qid[hit]] = True
    return big_l, has_pins, blocked


def witness_feasible(
    labels: Any,
    phi: int,
    cut_nodes: Sequence[int],
    cut_weights: Sequence[int],
    cut_qid: Sequence[int],
    thresholds: Sequence[int],
) -> Any:
    """Vectorized witness-cut height check across a burst of queries.

    ``cut_nodes`` / ``cut_weights`` / ``cut_qid`` stack the recorded
    witness-cut members of all queries (``cut_qid[i]`` names the query
    member ``i`` belongs to); ``thresholds[q]`` is query ``q``'s height
    threshold.  Returns a boolean array over queries: True where every
    member's height ``l(u) - phi*w + 1`` still fits under the
    threshold, i.e. the recorded cut proves feasibility and the flow
    construction can be skipped outright.
    """
    thr = np.asarray(thresholds, dtype=np.int64)
    ok = np.ones(len(thr), dtype=bool)
    if not len(cut_nodes):
        return ok
    nodes = np.asarray(cut_nodes, dtype=np.int64)
    weights = np.asarray(cut_weights, dtype=np.int64)
    qid = np.asarray(cut_qid, dtype=np.int64)
    heights = labels[nodes] - phi * weights + 1
    ok[qid[heights > thr[qid]]] = False
    return ok


# ----------------------------------------------------------------------
# Stacked batch arena
# ----------------------------------------------------------------------
class _BatchNet:
    """Bookkeeping of one query inside the stacked arena."""

    __slots__ = ("expansion", "max_cut", "source", "sink", "base", "end", "index")

    def __init__(
        self,
        expansion: PackedExpansion,
        max_cut: int,
        source: int,
        sink: int,
    ) -> None:
        self.expansion = expansion
        self.max_cut = max_cut
        self.source = source
        self.sink = sink
        self.base = source
        self.end = sink + 1
        self.index: Dict[int, int] = {}


class BatchCutArena:
    """Many node-split cut networks, solved as one stacked Dinic.

    Usage: ``reset()``, then ``add(expansion, max_cut)`` per query
    (non-blocked, with a non-empty frontier), then ``solve()`` — which
    returns one entry per added query: the packed min-cut copies sorted
    by ``(u, w)`` (identical to
    :func:`repro.kernel.expand.cut_on_packed`) or ``None`` when every
    cut needs more than ``max_cut`` nodes.

    The per-phase BFS advances every active network's frontier with a
    single masked gather over the shared edge arrays; blocking-flow
    augmentation runs scalar, but only on networks whose BFS reached
    the sink in that phase.  ``phases`` / ``arcs_advanced`` mirror the
    scalar Dinic's deterministic work counters (their values measure
    the batched search, so they differ from the scalar kernel's —
    the regression gate only compares them between like kernels).
    """

    def __init__(self) -> None:
        require_numpy("the vectorized batch kernel")
        self._nets: List[_BatchNet] = []
        self._eu: List[int] = []
        self._ev: List[int] = []
        self._ecap: List[int] = []
        self._n_nodes = 0
        self.phases = 0
        self.arcs_advanced = 0

    def reset(self) -> None:
        """Empty the arena in place for the next burst."""
        self._nets.clear()
        self._eu.clear()
        self._ev.clear()
        self._ecap.clear()
        self._n_nodes = 0

    def __len__(self) -> int:
        return len(self._nets)

    def drain_counters(self) -> "tuple[int, int]":
        """Return and zero ``(phases, arcs_advanced)``."""
        out = (self.phases, self.arcs_advanced)
        self.phases = 0
        self.arcs_advanced = 0
        return out

    # -- construction ---------------------------------------------------
    def _edge(self, u: int, v: int, cap: int) -> None:
        self._eu.append(u)
        self._ev.append(v)
        self._ecap.append(cap)
        self._eu.append(v)
        self._ev.append(u)
        self._ecap.append(0)

    def add(self, expansion: PackedExpansion, max_cut: int) -> int:
        """Stack one query's node-split network; returns its slot."""
        if expansion.blocked:
            raise ValueError("blocked expansions never build a network")
        source = self._n_nodes
        sink = source + 1
        net = _BatchNet(expansion, max_cut, source, sink)
        index = net.index
        nid = sink + 1
        edge = self._edge
        for p in expansion.interior:
            index[p] = nid
            edge(nid, nid + 1, INF)
            edge(nid, sink, INF)
            nid += 2
        for p in expansion.candidates:
            index[p] = nid
            edge(nid, nid + 1, 1)
            nid += 2
        for p in expansion.leaves:
            index[p] = nid
            edge(nid, nid + 1, 1)
            edge(source, nid, INF)
            nid += 2
        edges = expansion.edges
        for i in range(0, len(edges), 2):
            # out half of the child -> inp half of the parent
            edge(index[edges[i]] + 1, index[edges[i + 1]], INF)
        net.end = nid
        self._n_nodes = nid
        self._nets.append(net)
        return len(self._nets) - 1

    # -- solve ----------------------------------------------------------
    def solve(self) -> List[Optional[List[int]]]:
        """Run every stacked network to completion; extract the cuts."""
        nets = self._nets
        if not nets:
            return []
        n_nodes = self._n_nodes
        to = np.asarray(self._ev, dtype=np.int64)
        cap = np.asarray(self._ecap, dtype=np.int64)
        tails = np.asarray(self._eu, dtype=np.int64)
        # CSR adjacency over edge ids grouped by tail node (stable, so
        # per-node edge order matches insertion order like the scalar
        # adjacency lists).
        adj_edges = np.argsort(tails, kind="stable")
        counts = np.bincount(tails, minlength=n_nodes)
        adj_start = np.zeros(n_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=adj_start[1:])
        q_n = len(nets)
        src_arr = np.asarray([net.source for net in nets], dtype=np.int64)
        snk_arr = np.asarray([net.sink for net in nets], dtype=np.int64)
        limit = np.asarray([net.max_cut for net in nets], dtype=np.int64)
        flow = np.zeros(q_n, dtype=np.int64)
        net_of = np.zeros(n_nodes, dtype=np.int64)
        for q, net in enumerate(nets):
            net_of[net.base : net.end] = q
        sink_mark = np.zeros(n_nodes, dtype=bool)
        sink_mark[snk_arr] = True
        level = np.full(n_nodes, -1, dtype=np.int64)
        cursor = np.zeros(n_nodes, dtype=np.int64)
        active = np.ones(q_n, dtype=bool)
        infeasible = np.zeros(q_n, dtype=bool)
        while active.any():
            level.fill(-1)
            sink_lv = np.full(q_n, -1, dtype=np.int64)
            frontier = src_arr[active]
            level[frontier] = 0
            depth = 0
            # Frontier-at-a-time level BFS across every active network:
            # one ragged gather expands all frontiers one level.
            while frontier.size:
                e_pos = _ragged_gather(
                    adj_start[frontier],
                    adj_start[frontier + 1] - adj_start[frontier],
                )
                eids = adj_edges[e_pos]
                tgt = to[eids]
                ok = (cap[eids] > 0) & (level[tgt] < 0)
                cand = tgt[ok]
                if not cand.size:
                    break
                depth += 1
                level[cand] = depth
                hits = cand[sink_mark[cand]]
                if hits.size:
                    sink_lv[net_of[hits]] = depth
                nxt = np.unique(cand)
                keep = (~sink_mark[nxt]) & (sink_lv[net_of[nxt]] < 0)
                frontier = nxt[keep]
            reached = sink_lv >= 0
            for q in np.nonzero(active)[0]:
                if not reached[q]:
                    # BFS failed: this network's max flow is complete
                    # (and <= its limit), the residual state canonical.
                    active[q] = False
                    continue
                self.phases += 1
                net = nets[q]
                cursor[net.base : net.end] = adj_start[net.base : net.end]
                lim = int(limit[q])
                total = int(flow[q])
                while total <= lim:
                    pushed = self._augment(
                        net.source, net.sink, to, cap, adj_edges,
                        adj_start, level, cursor,
                    )
                    if not pushed:
                        break
                    total += pushed
                flow[q] = total
                if total > lim:
                    active[q] = False
                    infeasible[q] = True
        return self._extract(to, cap, adj_edges, adj_start, infeasible)

    def _augment(
        self,
        source: int,
        sink: int,
        to: Any,
        cap: Any,
        adj_edges: Any,
        adj_start: Any,
        level: Any,
        cursor: Any,
    ) -> int:
        """One augmenting path along the level graph (scalar cursor DFS).

        The direct port of :meth:`DinicNetwork._augment` onto the
        stacked arrays: dead ends are pruned (``level = -1``), the
        retreated-over arc's cursor advances, and every arc is examined
        at most once per phase.
        """
        path: List[int] = []
        u = source
        arcs = 0
        while True:
            if u == sink:
                bottleneck = min(int(cap[e]) for e in path)
                for e in path:
                    cap[e] -= bottleneck
                    cap[e ^ 1] += bottleneck
                self.arcs_advanced += arcs
                return bottleneck
            i = int(cursor[u])
            hi = int(adj_start[u + 1])
            du = int(level[u]) + 1
            start = i
            advanced = False
            while i < hi:
                e = int(adj_edges[i])
                if cap[e] > 0 and level[to[e]] == du:
                    cursor[u] = i
                    path.append(e)
                    u = int(to[e])
                    advanced = True
                    break
                i += 1
            arcs += i - start + (1 if advanced else 0)
            if advanced:
                continue
            cursor[u] = hi
            level[u] = -1  # dead end: prune from this phase's level graph
            if not path:
                self.arcs_advanced += arcs
                return 0
            e = path.pop()
            u = int(to[e ^ 1])
            cursor[u] += 1

    def _extract(
        self,
        to: Any,
        cap: Any,
        adj_edges: Any,
        adj_start: Any,
        infeasible: Any,
    ) -> List[Optional[List[int]]]:
        """Residual reachability (vectorized multi-source BFS) + cuts."""
        nets = self._nets
        reach = np.zeros(self._n_nodes, dtype=bool)
        feas_srcs = np.asarray(
            [net.source for q, net in enumerate(nets) if not infeasible[q]],
            dtype=np.int64,
        )
        if feas_srcs.size:
            reach[feas_srcs] = True
            frontier = feas_srcs
            while frontier.size:
                e_pos = _ragged_gather(
                    adj_start[frontier],
                    adj_start[frontier + 1] - adj_start[frontier],
                )
                eids = adj_edges[e_pos]
                tgt = to[eids]
                cand = tgt[(cap[eids] > 0) & (~reach[tgt])]
                if not cand.size:
                    break
                reach[cand] = True
                frontier = np.unique(cand)
        results: List[Optional[List[int]]] = []
        for q, net in enumerate(nets):
            if infeasible[q]:
                results.append(None)
                continue
            expansion = net.expansion
            index = net.index
            cut = [
                p
                for p in expansion.candidates
                if reach[index[p]] and not reach[index[p] + 1]
            ]
            cut.extend(
                p
                for p in expansion.leaves
                if reach[index[p]] and not reach[index[p] + 1]
            )
            mask = (1 << expansion.shift) - 1
            shift = expansion.shift
            cut.sort(key=lambda p: (p & mask, p >> shift))
            results.append(cut)
        return results


def solve_batch(
    queries: Sequence[Tuple[PackedExpansion, int]],
    arena: Optional[BatchCutArena] = None,
) -> List[Optional[List[int]]]:
    """Batched twin of :func:`repro.kernel.expand.cut_on_packed`.

    Answers every ``(expansion, max_cut)`` query, handling the trivial
    cases (blocked → ``None``, empty frontier → ``[]``) inline and
    stacking the rest into one :class:`BatchCutArena` solve.
    """
    if arena is None:
        arena = BatchCutArena()
    arena.reset()
    slots: List[Optional[int]] = []
    trivial: List[Optional[List[int]]] = []
    for expansion, max_cut in queries:
        if expansion.blocked:
            slots.append(None)
            trivial.append(None)
        elif not expansion.leaves and not expansion.candidates:
            slots.append(None)
            trivial.append([])
        else:
            slots.append(arena.add(expansion, max_cut))
            trivial.append(None)
    solved = arena.solve()
    return [
        trivial[i] if slot is None else solved[slot]
        for i, slot in enumerate(slots)
    ]


# ----------------------------------------------------------------------
# Auto-kernel crossover
# ----------------------------------------------------------------------
@lru_cache(maxsize=8)
def _load_envelope(path: str) -> Optional[dict]:
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return None
    envelope = payload.get("envelope")
    return envelope if isinstance(envelope, dict) else None


def crossover_nodes(path: Optional[str] = None) -> Optional[int]:
    """The measured vector-vs-scalar crossover (nodes), or a default.

    Reads the ``envelope.crossover.crossover_nodes`` field the
    microbench sweep records in ``BENCH_microbench.json`` (path override
    via the ``REPRO_MICROBENCH`` environment variable).  Returns
    ``None`` when the measured sweep found the vectorized kernel never
    profitable, and :data:`DEFAULT_CROSSOVER_NODES` when no envelope
    has been measured at all.
    """
    candidate = path or os.environ.get(ENVELOPE_ENV) or ENVELOPE_PATH
    envelope = _load_envelope(candidate)
    if envelope is None:
        return DEFAULT_CROSSOVER_NODES
    crossover = envelope.get("crossover")
    if not isinstance(crossover, dict) or "crossover_nodes" not in crossover:
        return DEFAULT_CROSSOVER_NODES
    value = crossover["crossover_nodes"]
    return int(value) if value is not None else None


def resolve_kernel(kernel: str, n_nodes: int) -> str:
    """Resolve ``auto`` (and numpy-less ``vector``) to a concrete kernel.

    * ``vector`` without numpy installed falls back to ``compiled`` —
      the import-guarded degradation of the ``[vector]`` extra;
    * ``auto`` picks ``vector`` when numpy is present and the circuit
      is at least as large as the measured crossover
      (:func:`crossover_nodes`), else ``compiled``.

    Every choice is bit-identical in outcome; only throughput differs.
    """
    if kernel == "vector":
        return "vector" if HAVE_NUMPY else "compiled"
    if kernel != "auto":
        return kernel
    if not HAVE_NUMPY:
        return "compiled"
    threshold = crossover_nodes()
    if threshold is None or n_nodes < threshold:
        return "compiled"
    return "vector"
