"""Partial expanded circuits and cut queries on packed copies.

The compiled twin of :func:`repro.core.expanded.expand_partial` +
:func:`repro.core.kcut.cut_on_expansion`: copies of the expanded
circuit ``E_v`` are packed integers ``(w << shift) | u``
(:mod:`repro.kernel.csr`) instead of ``(u, w)`` tuples, heights are
computed inline from the label list (no per-copy callable dispatch),
and the node-split flow network is built straight into a flat-array
max-flow solver.

Both constructions traverse the circuit in the identical order and
apply the identical tier rules, so the compiled engine classifies the
same copies into the same tiers and — because the source side of the
residual min-cut is unique for a given network, independent of the
max-flow engine — returns the same cut sets.  ``tests/kernel``
asserts this differentially against the object engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.expanded import DEFAULT_MAX_COPIES, ExpansionOverflow
from repro.kernel.csr import KIND_GATE, KIND_PI, CompiledCircuit
from repro.kernel.dinic import INF, DinicNetwork

if TYPE_CHECKING:
    from repro.comb.maxflow import FlowNetwork


@dataclass
class PackedExpansion:
    """The partial expanded circuit of one height query, packed.

    Mirrors :class:`repro.core.expanded.PartialExpansion` with copies as
    packed ints under the recorded ``shift``; ``edges`` is a flat list
    of alternating ``child, parent`` packed copies (pairs at even
    offsets), oriented toward the root like the object edge list.
    """

    root: int
    shift: int
    interior: List[int] = field(default_factory=list)
    candidates: List[int] = field(default_factory=list)
    leaves: List[int] = field(default_factory=list)
    edges: List[int] = field(default_factory=list)
    blocked: bool = False

    def unpack_copies(self, packed: Sequence[int]) -> List[Tuple[int, int]]:
        """Decode a packed copy list to ``(u, w)`` tuples."""
        mask = (1 << self.shift) - 1
        shift = self.shift
        return [(p & mask, p >> shift) for p in packed]


def expand_partial_packed(
    cc: CompiledCircuit,
    v: int,
    phi: int,
    labels: Sequence[int],
    threshold: int,
    extra_depth: int = 0,
    max_copies: int = DEFAULT_MAX_COPIES,
    name_of: Optional[Callable[[int], str]] = None,
) -> PackedExpansion:
    """Partial expansion of ``E_v`` on the compiled circuit.

    Copy heights are ``labels[u] - phi*w + 1``; tier rules (interior
    above ``threshold``, expandable gate candidates down to the
    ``extra_depth`` floor, leaves below) match
    :func:`repro.core.expanded.expand_partial` exactly.  ``name_of``
    resolves the root's display name for the
    :class:`~repro.core.expanded.ExpansionOverflow` raised past
    ``max_copies``.
    """
    if cc.kinds[v] != KIND_GATE:
        raise ValueError("expanded circuits are rooted at gates")
    floor = threshold - extra_depth * phi
    shift = cc.shift
    mask = cc.mask
    kinds = cc.kinds
    offsets = cc.offsets
    srcs = cc.srcs
    weights = cc.weights
    root = v  # (v, 0) packs to v itself
    result = PackedExpansion(root=root, shift=shift)
    interior = result.interior
    candidates = result.candidates
    leaves = result.leaves
    edges = result.edges
    seen = {root}
    stack = [root]
    interior.append(root)
    count = 1
    while stack:
        p = stack.pop()
        u = p & mask
        w_base = p >> shift
        for i in range(offsets[u], offsets[u + 1]):
            src = srcs[i]
            w = w_base + weights[i]
            child = (w << shift) | src
            if child not in seen:
                height = labels[src] - phi * w + 1
                kind = kinds[src]
                if height > threshold:
                    if kind == KIND_PI:
                        result.blocked = True
                        return result
                    tier = 0  # interior
                elif kind == KIND_GATE and height > floor:
                    tier = 1  # candidate
                else:
                    tier = 2  # leaf
                count += 1
                if count > max_copies:
                    name = name_of(v) if name_of is not None else str(v)
                    raise ExpansionOverflow(name, max_copies)
                seen.add(child)
                if tier == 0:
                    interior.append(child)
                    stack.append(child)
                elif tier == 1:
                    candidates.append(child)
                    stack.append(child)
                else:
                    leaves.append(child)
            edges.append(child)
            edges.append(p)
    return result


class PackedCutArena:
    """Scratch arena for packed cut queries: one flow network, reused.

    ``flow`` selects the max-flow engine: ``"dinic"`` (the flat-array
    level-graph solver, the default) or ``"ek"`` (the Edmonds-Karp
    engine of :class:`repro.comb.maxflow.FlowNetwork`, retained for
    differential testing).  The copy-to-flow-node index map is a plain
    ``int -> int`` dict recycled across queries.
    """

    def __init__(self, flow: str = "dinic") -> None:
        self.net: "Union[DinicNetwork, FlowNetwork]"
        if flow == "dinic":
            self.net = DinicNetwork()
        elif flow == "ek":
            from repro.comb.maxflow import FlowNetwork

            self.net = FlowNetwork()
        else:
            raise ValueError(
                f"unknown flow engine {flow!r}; valid engines: dinic, ek"
            )
        self.flow = flow
        self._index: Dict[int, int] = {}

    def drain_counters(self) -> "tuple[int, int]":
        """Per-query ``(phases, arcs_advanced)`` of a Dinic backend."""
        if isinstance(self.net, DinicNetwork):
            return self.net.drain_counters()
        return (0, 0)


def cut_on_packed(
    expansion: PackedExpansion,
    max_cut: int,
    arena: Optional[PackedCutArena] = None,
) -> Optional[List[int]]:
    """Bounded-flow cut query on a packed expansion.

    Returns the packed min-cut copies sorted by ``(u, w)`` — the same
    order :func:`repro.core.kcut.cut_on_expansion` returns tuple cuts
    in — or ``None`` when the expansion is blocked or every cut needs
    more than ``max_cut`` nodes.  ``arena`` recycles a caller-owned
    :class:`PackedCutArena`.
    """
    if expansion.blocked:
        return None
    candidates = expansion.candidates
    leaves = expansion.leaves
    if not leaves and not candidates:
        return []  # the cone closes on constant generators: zero inputs
    if arena is None:
        arena = PackedCutArena()
    net = arena.net
    net.reset()
    index = arena._index
    index.clear()
    source = net.add_node()
    sink = net.add_node()
    # Node-split construction, same shape as SplitNetwork: copy j gets
    # the consecutive pair (inp, out) = (2 + 2j, 3 + 2j); interior
    # copies get an uncuttable INF split edge and collapse into the
    # sink, leaves hang off the source.
    for p in expansion.interior:
        a = net.add_node()
        b = net.add_node()
        index[p] = a
        net.add_edge(a, b, INF)
        net.add_edge(a, sink, INF)
    for p in candidates:
        a = net.add_node()
        b = net.add_node()
        index[p] = a
        net.add_edge(a, b, 1)
    for p in leaves:
        a = net.add_node()
        b = net.add_node()
        index[p] = a
        net.add_edge(a, b, 1)
        net.add_edge(source, a, INF)
    edges = expansion.edges
    for i in range(0, len(edges), 2):
        # out half of the child -> inp half of the parent
        net.add_edge(index[edges[i]] + 1, index[edges[i + 1]], INF)
    if net.max_flow(source, sink, max_cut) > max_cut:
        return None
    reach = net.residual_reachable(source)
    mask = (1 << expansion.shift) - 1
    shift = expansion.shift
    cut = [
        p
        for p in candidates
        if index[p] in reach and index[p] + 1 not in reach
    ]
    cut.extend(
        p for p in leaves if index[p] in reach and index[p] + 1 not in reach
    )
    cut.sort(key=lambda p: (p & mask, p >> shift))
    return cut
