"""Flat-array compute kernels for the hot mapping loops.

The label computation spends nearly all of its time in two inner
kernels, executed O(n*K) times per feasibility probe: the partial
expanded-circuit construction (:mod:`repro.core.expanded`) and the
bounded max-flow cut query (:mod:`repro.comb.maxflow`).  The object
engine runs both on dict-of-``(node, weight)``-tuple graphs; this
package provides the *compiled* engine that runs them end to end on
flat integer arrays:

* :mod:`repro.kernel.csr` — :class:`CompiledCircuit`: the circuit's
  fanin structure compiled once into CSR arrays (offsets, sources,
  weights, node kinds) with a packed-int copy encoding
  ``(u, w) -> (w << shift) | u`` replacing tuple keys, plus a compact
  byte serialization for cheap worker handoff;
* :mod:`repro.kernel.dinic` — :class:`DinicNetwork`: level-graph
  max-flow with the current-arc optimization on preallocated flat
  arrays (``O(E * sqrt(V))`` on the unit-capacity split networks the
  cut queries build, versus Edmonds-Karp's ``O((K+1) * E)``);
* :mod:`repro.kernel.expand` — :func:`expand_partial_packed` /
  :class:`PackedExpansion` / :class:`PackedCutArena`: the height-query
  expansion and the node-split cut computation on packed copies;
* :mod:`repro.kernel.share` — :class:`CsrHandle`: zero-copy publication
  of the compiled arrays to probe worker processes (inline bytes or
  ``multiprocessing.shared_memory``) and packed label vectors.

Engine selection is exposed as ``kernel="compiled"|"object"`` and
``flow="dinic"|"ek"`` on :class:`repro.core.labels.LabelSolver`, the
mapper entry points, and the CLI; both engines produce bit-identical
labels, cuts, and mappings (asserted by ``tests/kernel``).
"""

from repro.kernel.csr import (
    KIND_GATE,
    KIND_PI,
    KIND_PO,
    CompiledCircuit,
    compile_circuit,
)
from repro.kernel.dinic import DinicNetwork
from repro.kernel.expand import (
    PackedCutArena,
    PackedExpansion,
    cut_on_packed,
    expand_partial_packed,
)
from repro.kernel.share import (
    CsrHandle,
    pack_labels,
    publish_csr,
    unpack_labels,
)

__all__ = [
    "KIND_GATE",
    "KIND_PI",
    "KIND_PO",
    "CompiledCircuit",
    "compile_circuit",
    "DinicNetwork",
    "PackedCutArena",
    "PackedExpansion",
    "cut_on_packed",
    "expand_partial_packed",
    "CsrHandle",
    "pack_labels",
    "publish_csr",
    "unpack_labels",
]
