"""Compiled circuits: the retiming graph as flat CSR integer arrays.

:class:`CompiledCircuit` freezes the structure the hot kernels need —
per-node fanin adjacency and node kinds — into four flat arrays:

* ``offsets[u] .. offsets[u+1]`` indexes the fanin pins of node ``u``
  inside the parallel ``srcs`` / ``weights`` arrays (a standard CSR
  layout over the *deduplicated* pin list: a gate wired to the same
  driver several times through the same register count contributes one
  pin, exactly the dedup :func:`repro.core.expanded.expand_partial`
  performs per query);
* ``kinds[u]`` is the node's role as a small integer
  (:data:`KIND_PI` / :data:`KIND_PO` / :data:`KIND_GATE`).

Copies of the expanded circuit are encoded as packed integers instead of
``(node, weight)`` tuples: ``pack(u, w) = (w << shift) | u`` with
``shift`` the bit width of the node-id space.  Packing keeps the
expansion's visited set and the flow network's index maps on plain-int
keys (one hash, no tuple allocation per membership test) and makes a
copy list a flat int vector.

The arrays are held as plain Python lists — the fastest random-access
container for the interpreted inner loops — but serialize to a compact
``array('i')``-packed byte string (:meth:`CompiledCircuit.to_bytes`),
which is what the parallel probe search ships to worker processes
instead of re-pickling the circuit's object graph
(:mod:`repro.kernel.share`).

Instances are cached on the circuit (:meth:`SeqCircuit.compiled
<repro.netlist.graph.SeqCircuit.compiled>`) and invalidated by any
structural mutation, like the existing ``fanin_pairs`` mirror.
"""

from __future__ import annotations

import struct
from array import array
from typing import Dict, List, Sequence, Tuple, Union

from repro.netlist.graph import NodeKind, SeqCircuit

#: Node-kind codes of the ``kinds`` array (stable across serialization).
KIND_PI = 0
KIND_PO = 1
KIND_GATE = 2

_KIND_CODE: Dict[NodeKind, int] = {
    NodeKind.PI: KIND_PI,
    NodeKind.PO: KIND_PO,
    NodeKind.GATE: KIND_GATE,
}


def kind_code(kind: NodeKind) -> int:
    """The ``kinds``-array code for a :class:`NodeKind`."""
    return _KIND_CODE[kind]

#: Serialization header: magic, format version, node count, pin count,
#: pack shift.
_MAGIC = b"RCSR"
_HEADER = struct.Struct("<4sBiii")
_FORMAT_VERSION = 1


class CompiledCircuit:
    """Flat-array (CSR) view of a :class:`SeqCircuit` for the hot kernels.

    Attributes
    ----------
    n:
        Node count; node ids are ``0 .. n-1`` (the circuit's dense ids).
    shift / mask:
        Packed-copy encoding parameters: copy ``u^w`` packs to
        ``(w << shift) | u`` and unpacks through ``mask``.
    kinds:
        Per-node kind codes (:data:`KIND_PI` / :data:`KIND_PO` /
        :data:`KIND_GATE`).
    offsets / srcs / weights:
        Deduplicated fanin CSR: the pins of node ``u`` are
        ``(srcs[i], weights[i])`` for ``i`` in
        ``range(offsets[u], offsets[u + 1])``, in first-occurrence
        fanin order.
    """

    __slots__ = ("n", "shift", "mask", "kinds", "offsets", "srcs", "weights")

    def __init__(
        self,
        n: int,
        shift: int,
        kinds: List[int],
        offsets: List[int],
        srcs: List[int],
        weights: List[int],
    ) -> None:
        self.n = n
        self.shift = shift
        self.mask = (1 << shift) - 1
        self.kinds = kinds
        self.offsets = offsets
        self.srcs = srcs
        self.weights = weights

    # ------------------------------------------------------------------
    def pack(self, u: int, w: int) -> int:
        """Packed encoding of copy ``u^w``."""
        return (w << self.shift) | u

    def unpack(self, packed: int) -> Tuple[int, int]:
        """Inverse of :meth:`pack`: the ``(u, w)`` copy tuple."""
        return packed & self.mask, packed >> self.shift

    def pins(self, u: int) -> List[Tuple[int, int]]:
        """Deduplicated ``(src, weight)`` pins of ``u`` (convenience)."""
        lo, hi = self.offsets[u], self.offsets[u + 1]
        return list(zip(self.srcs[lo:hi], self.weights[lo:hi]))

    # ------------------------------------------------------------------
    # Delta patching (incremental remapping)
    # ------------------------------------------------------------------
    def splice_pins(self, u: int, pins: Sequence[Tuple[int, int]]) -> None:
        """Replace node ``u``'s fanin pins in place (delta CSR patch).

        ``pins`` must already be deduplicated exactly as
        :func:`compile_circuit` dedups (first-occurrence order) — the
        incremental patcher applies the same ``dict.fromkeys`` pass —
        so a patched array is indistinguishable from a fresh compile.
        A pin-count change shifts every later node's offset by the
        delta: O(pins + n) worst case, O(pins) when the count is
        unchanged (the common rewire).
        """
        lo, hi = self.offsets[u], self.offsets[u + 1]
        self.srcs[lo:hi] = [src for src, _w in pins]
        self.weights[lo:hi] = [w for _src, w in pins]
        delta = len(pins) - (hi - lo)
        if delta:
            offsets = self.offsets
            for i in range(u + 1, len(offsets)):
                offsets[i] += delta

    def append_node(self, kind: int, pins: Sequence[Tuple[int, int]]) -> None:
        """Append node ``n`` with the given kind code and (deduped) pins.

        Raises :class:`ValueError` when growing the id space would
        change :func:`pack_shift` — packed copies embedded in caller
        state would silently decode wrong, so the patcher must fall
        back to a full recompile at such boundaries.
        """
        if pack_shift(self.n + 1) != self.shift:
            raise ValueError(
                f"append crosses the pack-shift boundary at n={self.n}: "
                "recompile required"
            )
        self.kinds.append(kind)
        for src, w in pins:
            self.srcs.append(src)
            self.weights.append(w)
        self.offsets.append(len(self.srcs))
        self.n += 1

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Compact byte serialization (header + packed int arrays).

        The payload is platform-independent little-endian ``int32``;
        node counts and edge weights far exceeding ``2^31`` are not
        representable, which no realizable circuit approaches.
        """
        header = _HEADER.pack(
            _MAGIC, _FORMAT_VERSION, self.n, len(self.srcs), self.shift
        )
        return b"".join(
            (
                header,
                array("b", self.kinds).tobytes(),
                array("i", self.offsets).tobytes(),
                array("i", self.srcs).tobytes(),
                array("i", self.weights).tobytes(),
            )
        )

    @classmethod
    def from_bytes(cls, data: Union[bytes, memoryview]) -> "CompiledCircuit":
        """Rebuild a compiled circuit from :meth:`to_bytes` output.

        Accepts any buffer (``bytes``, ``memoryview`` over shared
        memory); the arrays are unpacked into plain lists, the layout
        the interpreted hot loops index fastest.
        """
        view = memoryview(data)
        magic, version, n, n_pins, shift = _HEADER.unpack_from(view, 0)
        if magic != _MAGIC:
            raise ValueError("not a compiled-circuit payload (bad magic)")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported compiled-circuit format version {version}"
            )
        pos = _HEADER.size
        kinds = array("b")
        kinds.frombytes(view[pos : pos + n])
        pos += n
        offsets = array("i")
        offsets.frombytes(view[pos : pos + 4 * (n + 1)])
        pos += 4 * (n + 1)
        srcs = array("i")
        srcs.frombytes(view[pos : pos + 4 * n_pins])
        pos += 4 * n_pins
        weights = array("i")
        weights.frombytes(view[pos : pos + 4 * n_pins])
        return cls(
            n, shift, list(kinds), list(offsets), list(srcs), list(weights)
        )


def pack_shift(n: int) -> int:
    """Bit width of the node-id space for ``n`` nodes (at least 1)."""
    return max(1, (n - 1).bit_length()) if n > 1 else 1


def compile_circuit(circuit: SeqCircuit) -> CompiledCircuit:
    """Compile a circuit's structure into a :class:`CompiledCircuit`.

    Prefer :meth:`SeqCircuit.compiled`, which caches the result on the
    circuit and invalidates it on structural mutation.
    """
    n = len(circuit)
    kinds: List[int] = [0] * n
    offsets: List[int] = [0] * (n + 1)
    srcs: List[int] = []
    weights: List[int] = []
    fanin_pairs = circuit.fanin_pairs()
    for u in range(n):
        kinds[u] = _KIND_CODE[circuit.kind(u)]
        raw = fanin_pairs[u]
        pins = list(dict.fromkeys(raw)) if len(raw) > 1 else raw
        for src, w in pins:
            srcs.append(src)
            weights.append(w)
        offsets[u + 1] = len(srcs)
    return CompiledCircuit(n, pack_shift(n), kinds, offsets, srcs, weights)
