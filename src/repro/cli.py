"""Command line interface: ``turbosyn <command>``.

Commands
--------
``map``
    Map a BLIF circuit with TurboSYN / TurboMap / FlowSYN-s, report the
    minimum clock period (MDR ratio) and LUT count, optionally write the
    mapped + pipelined/retimed network back to BLIF.
``stats``
    Print a circuit's retiming-graph statistics and MDR bound.
``gen``
    Emit one of the built-in benchmark suite circuits as BLIF.
``suite``
    Run all three mappers over the benchmark suite and print Table-1-style
    rows (the full harness with timing lives in ``benchmarks/``).
``remap``
    Incrementally re-map an edited BLIF circuit against its base: cold
    map the base, diff the two netlists into journal-equivalent edits,
    delta-patch the compiled CSR and repair only the dirty region
    (:mod:`repro.incremental`) — bit-identical to a cold run of the
    edited circuit, verifiable in-process with ``--verify-cold``.
``verify``
    Check two BLIF circuits for behavioural equivalence (lag-aligned
    random simulation; exact BDD comparison for combinational pairs).
``critical``
    Criticality analysis: exact MDR ratio, the binding loops, label
    slack distribution.
``dot``
    Export a circuit as Graphviz DOT (optionally highlighting the
    critical cycle).
``lint``
    Static analysis: run the structural rule pack over BLIF circuits and
    report diagnostics as text, JSON or SARIF 2.1.0
    (:mod:`repro.analysis`).
``serve``
    Run the crash-only mapping service (:mod:`repro.serve`): HTTP job
    intake with admission control, a write-ahead job journal, and
    ``kill -9``-safe resumption of in-flight jobs.
``serve-chaos``
    The crash-recovery differential: run a suite cold, re-run it while
    SIGKILLing the served process at a journaled fault point, restart,
    and assert every job recovers bit-identically (the CI smoke job).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.analysis.sanitize import SanitizerViolation
from repro.bench import suite as bench_suite
from repro.core.expanded import DEFAULT_MAX_COPIES
from repro.core.flowsyn_s import flowsyn_s
from repro.comb.maxflow import FLOWS
from repro.core.labels import ENGINES, KERNELS
from repro.core.turbomap import turbomap
from repro.core.turbosyn import turbosyn
from repro.netlist.blif import read_blif_file, write_blif_file
from repro.netlist.validate import ValidationError, ensure_mappable
from repro.resilience.budget import Budget, BudgetExhausted
from repro.retime.mdr import mdr_ratio, min_feasible_period
from repro.retime.pipeline import pipeline_and_retime

_ALGOS = {
    "turbosyn": lambda c, k, w, chk, b, eng, cache=None: turbosyn(
        c, k, workers=w, check=chk, budget=b, cache=cache, **eng
    ),
    "turbomap": lambda c, k, w, chk, b, eng, cache=None: turbomap(
        c, k, workers=w, check=chk, budget=b, cache=cache, **eng
    ),
    "flowsyn-s": lambda c, k, w, chk, b, eng, cache=None: flowsyn_s(
        c, k, check=chk
    ),
}


def _budget_from(args: argparse.Namespace) -> Optional[Budget]:
    """A fresh per-run Budget from ``--timeout`` / ``--probe-timeout``."""
    if args.timeout is None and args.probe_timeout is None:
        return None
    return Budget(deadline=args.timeout, probe_timeout=args.probe_timeout)


def _add_budget_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget per mapper run; on expiry the best-known "
        "feasible phi is reported, marked degraded",
    )
    parser.add_argument(
        "--probe-timeout",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget per feasibility probe (one label "
        "computation)",
    )


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache",
        metavar="DIR",
        help="persistent outcome cache directory (repro.cache): probe "
        "verdicts and labels are reused across runs and processes, "
        "bit-identical results; defaults to $REPRO_CACHE when set",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent outcome cache even when "
        "$REPRO_CACHE is set",
    )


def _cache_from(args: argparse.Namespace):
    """An :class:`repro.cache.OutcomeCache` from ``--cache``/``$REPRO_CACHE``.

    ``--no-cache`` wins over both; returns ``None`` when no cache is in
    play (the mappers then run exactly as before).
    """
    import os

    if getattr(args, "no_cache", False):
        return None
    root = getattr(args, "cache", None) or os.environ.get("REPRO_CACHE")
    if not root:
        return None
    from repro.cache import OutcomeCache

    return OutcomeCache(root)


def _maybe_sanitize(args: argparse.Namespace) -> None:
    """Arm the invariant sanitizer when ``--sanitize`` was given.

    Equivalent to running under ``REPRO_SANITIZE=1``: label solvers and
    flow arenas constructed afterwards carry the SAN0xx assertion
    hooks; a violation aborts the command with the diagnostic.
    """
    if getattr(args, "sanitize", False):
        from repro.analysis import sanitize

        sanitize.enable()


def _engine_kwargs(args: argparse.Namespace) -> dict:
    """Label-engine keyword arguments from ``--engine`` and friends."""
    return {
        "engine": args.engine,
        "warm_start": not args.cold_start,
        "max_copies": args.max_copies,
        "flow": args.flow,
        "kernel": args.kernel,
    }


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="worklist",
        help="label engine: event-driven worklist (default) or the "
        "classical round-robin sweep (identical results, for "
        "benchmarking)",
    )
    parser.add_argument(
        "--cold-start",
        action="store_true",
        help="disable cross-probe warm starts (seed every phi probe "
        "from scratch instead of the nearest feasible cached labels)",
    )
    parser.add_argument(
        "--max-copies",
        type=int,
        default=DEFAULT_MAX_COPIES,
        metavar="N",
        help="safety bound on the partial-expansion size per flow query "
        f"(default {DEFAULT_MAX_COPIES})",
    )
    parser.add_argument(
        "--flow",
        choices=FLOWS,
        default="dinic",
        help="max-flow engine for the cut queries: Dinic level-graph "
        "phases (default) or Edmonds-Karp (identical cuts, for "
        "differential testing)",
    )
    parser.add_argument(
        "--kernel",
        choices=KERNELS + ("auto",),
        default="compiled",
        help="hot-loop copy representation: compiled flat CSR arrays "
        "with packed-int copies (default), the object tuple-and-dict "
        "engine, the numpy vectorized batch kernel ('vector', needs "
        "the [vector] extra, falls back to compiled without it), or "
        "'auto' to pick vector vs compiled from the microbench-"
        "measured crossover (identical results in every case)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="arm the invariant sanitizer (SAN0xx runtime assertion "
        "hooks in the label solver and the flow engine; equivalent to "
        "REPRO_SANITIZE=1) — a violation aborts with the diagnostic",
    )


def _write_run_report(
    path: str,
    runs: list,
    k: int,
    workers: int,
    kind: str,
    engine: str = "worklist",
    warm_start: bool = True,
    flow: str = "dinic",
    kernel: str = "compiled",
) -> None:
    from repro.perf import report as perf_report

    perf_report.write_report(
        perf_report.suite_report(
            runs, k=k, workers=workers, kind=kind,
            engine=engine, warm_start=warm_start,
            flow=flow, kernel=kernel,
        ),
        path,
    )
    print(f"wrote report {path}")


def _cmd_map(args: argparse.Namespace) -> int:
    from repro.netlist.blif import BlifError

    try:
        circuit, _info = read_blif_file(args.circuit)
        ensure_mappable(circuit, args.k)
    except (OSError, BlifError, ValidationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _maybe_sanitize(args)
    cache = _cache_from(args)
    t0 = time.perf_counter()
    try:
        result = _ALGOS[args.algo](
            circuit, args.k, args.workers, not args.no_check,
            _budget_from(args), _engine_kwargs(args), cache,
        )
    except BudgetExhausted as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - t0
    verified = (
        " verified" if result.certificate and result.certificate["verified"] else ""
    )
    degraded = (
        f" DEGRADED({result.degraded_reason})" if result.degraded else ""
    )
    print(
        f"{circuit.name}: algo={args.algo} K={args.k} "
        f"phi={result.phi} luts={result.n_luts} cpu={elapsed:.2f}s"
        f"{verified}{degraded}"
    )
    if args.report:
        from repro.perf import report as perf_report

        run = perf_report.mapper_run(result, circuit, seconds=elapsed)
        _write_run_report(
            args.report, [run], args.k, args.workers, kind="map",
            engine=args.engine, warm_start=not args.cold_start,
            flow=args.flow, kernel=args.kernel,
        )
    final = result.mapped
    if args.retime:
        pipe = pipeline_and_retime(final)
        final = pipe.circuit
        lags = ", ".join(f"{n}:+{l}" for n, l in pipe.po_lags.items() if l)
        print(
            f"retimed to clock period {pipe.circuit.clock_period()}"
            + (f" (output lags: {lags})" if lags else "")
        )
    if args.out:
        write_blif_file(final, args.out)
        print(f"wrote {args.out}")
    if args.verilog:
        from repro.netlist.verilog import write_verilog_file

        write_verilog_file(final, args.verilog)
        print(f"wrote {args.verilog}")
    return 0


def _cmd_remap(args: argparse.Namespace) -> int:
    from repro.incremental.diff import circuit_edits
    from repro.incremental.fuzz import mapped_signature
    from repro.incremental.session import remap as incremental_remap
    from repro.netlist.blif import BlifError

    try:
        base, _info = read_blif_file(args.base)
        edited, _info = read_blif_file(args.edited)
        ensure_mappable(base, args.k)
        ensure_mappable(edited, args.k)
    except (OSError, BlifError, ValidationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _maybe_sanitize(args)
    engine = _engine_kwargs(args)
    check = not args.no_check
    cache = _cache_from(args)
    t0 = time.perf_counter()
    try:
        # With a warm cache the base mapping replays in O(verify): the
        # incremental repair then starts from the cached base fixpoint
        # instead of paying a full cold search for a result we already
        # certified in an earlier process.
        prev = _ALGOS[args.algo](
            base, args.k, args.workers, check, _budget_from(args), engine,
            cache,
        )
    except BudgetExhausted as exc:
        print(f"error: base mapping: {exc}", file=sys.stderr)
        return 1
    t_base = time.perf_counter() - t0
    print(
        f"{base.name}: base algo={args.algo} K={args.k} "
        f"phi={prev.phi} luts={prev.n_luts} cpu={t_base:.2f}s"
    )
    if args.no_incremental:
        edits = None
    else:
        try:
            edits = circuit_edits(base, edited)
        except ValueError as exc:
            print(
                f"warning: {exc}; falling back to a cold run",
                file=sys.stderr,
            )
            edits = None
    t0 = time.perf_counter()
    try:
        if edits is None:
            result = _ALGOS[args.algo](
                edited, args.k, args.workers, check,
                _budget_from(args), engine, cache,
            )
        else:
            result = incremental_remap(
                edited,
                prev,
                edits,
                k=args.k,
                compiled=base.compiled(),
                check=check,
                budget=_budget_from(args),
                cache=cache,
                **engine,
            )
    except BudgetExhausted as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - t0
    stats = result.total_stats
    extra = ""
    if result.incremental:
        extra = (
            f" edits={len(edits or [])} dirty={stats.dirty_nodes}"
            f"/{len(edited)} reused={stats.labels_reused}"
            f" revalidated={stats.witnesses_revalidated}"
            f" sccs_skipped={stats.sccs_skipped}"
        )
    print(
        f"{edited.name}: {'remap' if result.incremental else 'cold'} "
        f"phi={result.phi} luts={result.n_luts} cpu={elapsed:.2f}s{extra}"
    )
    status = 0
    if args.verify_cold:
        # The differential run stays cache-less on purpose: it must be
        # an independent cold derivation of the same answer.
        cold = _ALGOS[args.algo](
            edited.copy(), args.k, args.workers, check,
            _budget_from(args), engine,
        )
        identical = (
            result.phi == cold.phi
            and list(result.labels) == list(cold.labels)
            and mapped_signature(result.mapped)
            == mapped_signature(cold.mapped)
        )
        print(f"verify-cold: {'IDENTICAL' if identical else 'DIVERGED'}")
        if not identical:
            status = 1
    if args.report:
        from repro.perf import report as perf_report

        run = perf_report.mapper_run(result, edited, seconds=elapsed)
        _write_run_report(
            args.report, [run], args.k, args.workers, kind="remap",
            engine=args.engine, warm_start=not args.cold_start,
            flow=args.flow, kernel=args.kernel,
        )
    if args.out:
        write_blif_file(result.mapped, args.out)
        print(f"wrote {args.out}")
    return status


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.netlist.stats import lut_profile, profile, render_profile

    circuit, _info = read_blif_file(args.circuit)
    print(render_profile(profile(circuit)))
    print(f"MDR bound (retiming + pipelining): {min_feasible_period(circuit)}")
    print(f"exact MDR ratio: {mdr_ratio(circuit)}")
    if args.luts:
        info = lut_profile(circuit)
        print(
            f"LUT profile: fill {info['fill_histogram']}, "
            f"avg {info['average_inputs']:.2f} inputs, "
            f"{info['npn_classes']} NPN classes"
        )
    return 0


def _cmd_gen(args: argparse.Namespace) -> int:
    circuit = bench_suite.build(args.name)
    write_blif_file(circuit, args.out)
    print(f"wrote {args.out}: {circuit.stats()}")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    """Run the Table-1 sweep under the suite fault boundary.

    Every (circuit, algorithm) cell is isolated: a failing cell becomes
    a structured error entry in the report (exit status 1) instead of
    aborting the sweep, ``--report`` doubles as an incremental
    checkpoint rewritten atomically after every cell, and ``--resume``
    skips cells a previous (partial or errored) report already
    completed.
    """
    from repro.perf.report import load_report

    _maybe_sanitize(args)
    if args.circuit:
        names = list(args.circuit)
    elif args.quick:
        names = bench_suite.quick_subset()
    else:
        names = [e.name for e in bench_suite.SUITE]
    algos = args.algo or list(_ALGOS)
    resume = None
    if args.resume:
        try:
            resume = load_report(args.resume)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    header = f"{'circuit':10s} {'GATE':>6s} {'FF':>5s} | "
    header += " | ".join(f"{a:>18s}" for a in algos)
    print(header)

    row: dict = {"name": None, "cells": [], "gates": None, "ffs": None}

    def flush_row() -> None:
        if row["name"] is None:
            return
        gates = f"{row['gates']:6d}" if row["gates"] is not None else f"{'?':>6s}"
        ffs = f"{row['ffs']:5d}" if row["ffs"] is not None else f"{'?':>5s}"
        print(
            f"{row['name']:10s} {gates} {ffs} | "
            + " | ".join(f"{cell:>18s}" for cell in row["cells"])
        )
        row.update(name=None, cells=[], gates=None, ffs=None)

    def on_cell(
        name: str,
        algo: str,
        run: Optional[dict],
        error: Optional[dict],
        elapsed: float,
        cached: bool,
    ) -> None:
        if name != row["name"]:
            flush_row()
            row["name"] = name
        if run is not None:
            row["gates"] = run.get("gates", row["gates"])
            row["ffs"] = run.get("ffs", row["ffs"])
            mark = "*" if run.get("degraded") else ""
            shown = "  cached" if cached else f"{elapsed:7.1f}s"
            row["cells"].append(f"phi={run['phi']:2d}{mark} {shown}")
        else:
            assert error is not None
            row["cells"].append(f"ERR:{error['error']}")

    try:
        report = bench_suite.run_suite_report(
            names=names,
            k=args.k,
            algorithms=algos,
            workers=args.workers,
            check=not args.no_check,
            timeout=args.timeout,
            probe_timeout=args.probe_timeout,
            checkpoint=args.report,
            resume=resume,
            on_cell=on_cell,
            engine=args.engine,
            warm_start=not args.cold_start,
            max_copies=args.max_copies,
            flow=args.flow,
            kernel=args.kernel,
            cache=_cache_from(args),
        )
    except ValueError as exc:  # unknown benchmark or algorithm name
        flush_row()
        print(f"error: {exc}", file=sys.stderr)
        return 2
    flush_row()
    if args.report:
        print(f"wrote report {args.report}")
    if report["errors"]:
        for err in report["errors"]:
            print(
                f"error: {err['circuit']}/{err['algorithm']} failed at "
                f"stage {err['stage']}: {err['error']}: {err['message']}",
                file=sys.stderr,
            )
        print(
            f"{len(report['errors'])} cell(s) failed; the report is "
            "complete for the rest (re-run with --resume to retry)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify.bdd_equiv import combinational_equivalent
    from repro.verify.equiv import simulation_equivalent

    a, _ = read_blif_file(args.golden)
    b, _ = read_blif_file(args.revised)
    sequential = any(w for *_e, w in a.edges()) or any(
        w for *_e, w in b.edges()
    )
    if not sequential:
        ok = combinational_equivalent(a, b)
        print(f"combinational BDD check: {'EQUIVALENT' if ok else 'DIFFERENT'}")
        return 0 if ok else 1
    lags = {}
    if args.lag:
        for item in args.lag:
            name, _sep, value = item.partition("=")
            lags[name] = int(value)
    ok = simulation_equivalent(
        a, b, cycles=args.cycles, warmup=args.warmup, po_lags=lags
    )
    print(
        f"simulation check ({args.cycles} cycles, warmup {args.warmup}): "
        f"{'EQUIVALENT' if ok else 'DIFFERENT'}"
    )
    return 0 if ok else 1


def _cmd_critical(args: argparse.Namespace) -> int:
    from repro.core.slack import report

    circuit, _ = read_blif_file(args.circuit)
    print(report(circuit, k=args.k))
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.netlist.dot import write_dot_file
    from repro.retime.mdr import critical_ratio_cycle

    circuit, _ = read_blif_file(args.circuit)
    highlight = None
    if args.highlight_critical:
        highlight = critical_ratio_cycle(circuit)
    write_dot_file(circuit, args.out, highlight=highlight)
    print(f"wrote {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve the crash-only mapping service (``repro.serve``)."""
    from repro.serve.__main__ import main as serve_main

    argv = [
        "--state-dir", args.state_dir,
        "--host", args.host,
        "--port", str(args.port),
        "--max-active", str(args.max_active),
        "--max-queue", str(args.max_queue),
    ]
    return serve_main(argv)


def _cmd_serve_chaos(args: argparse.Namespace) -> int:
    """The crash-recovery differential as a one-shot command (CI smoke).

    Runs a small suite cold, then again under a SIGKILL fault plan with
    restarts, and exits non-zero unless every job recovers to a
    bit-identical result signature.
    """
    import json as json_mod
    import os
    import tempfile

    from repro.resilience.atomic import atomic_write_json
    from repro.serve.chaos import demo_blif, run_kill_differential

    with tempfile.TemporaryDirectory(prefix="serve-chaos-") as scratch:
        if args.circuit:
            paths = list(args.circuit)
        else:
            # Self-contained: deterministic demo circuits, quick to map
            # but with real sequential feedback and multi-probe searches.
            paths = []
            for index, seed in enumerate((5, 9)):
                path = os.path.join(scratch, f"demo{index}.blif")
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(demo_blif(args.gates, seed=seed))
                paths.append(path)
        state_root = args.state_dir or os.path.join(scratch, "state")
        report = run_kill_differential(
            state_root,
            paths,
            algorithms=tuple(args.algo) if args.algo else ("turbomap",),
            kill_site=args.kill_site,
            kill_at=args.kill_at,
            timeout=args.timeout,
            k=args.k,
        )
        if args.report:
            atomic_write_json(args.report, report, indent=2)
        if args.events_log and os.path.exists(report.get("journal", "")):
            # Preserve the structured job-event log (the chaos journal)
            # before the scratch state directory is discarded.
            with open(report["journal"], encoding="utf-8") as fh:
                with open(args.events_log, "w", encoding="utf-8") as out:
                    out.write(fh.read())
        verdict = "bit-identical" if report["ok"] else "MISMATCH"
        print(
            f"serve-chaos [{report['kill_site']}@{report['kill_at']}]: "
            f"{report['chaos']['jobs'] if 'chaos' in report else 0} jobs, "
            f"{report.get('chaos', {}).get('restarts', 0)} restart(s) "
            f"after SIGKILL -> {verdict}"
        )
        if not report["ok"]:
            print(json_mod.dumps(report.get("mismatches", report), indent=2))
        return 0 if report["ok"] else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    """Delegate to the cache CLI (``python -m repro.cache``)."""
    from repro.cache.__main__ import main as cache_main

    return cache_main(args.cache_args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="turbosyn",
        description="TurboSYN reproduction: FPGA synthesis with retiming "
        "and pipelining (Cong & Wu, DAC 1997)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_map = sub.add_parser("map", help="map a BLIF circuit onto K-LUTs")
    p_map.add_argument("circuit", help="input BLIF file")
    p_map.add_argument("--algo", choices=sorted(_ALGOS), default="turbosyn")
    p_map.add_argument("-k", type=int, default=5, help="LUT input count")
    p_map.add_argument("--out", help="write the mapped network as BLIF")
    p_map.add_argument(
        "--verilog", help="write the mapped network as structural Verilog"
    )
    p_map.add_argument(
        "--retime",
        action="store_true",
        help="pipeline + retime the mapped network before writing",
    )
    p_map.add_argument(
        "--workers",
        type=int,
        default=1,
        help="probe candidate periods with this many parallel processes",
    )
    p_map.add_argument(
        "--report", metavar="OUT.json", help="write a JSON run report"
    )
    p_map.add_argument(
        "--no-check",
        action="store_true",
        help="skip post-mapping invariant verification (repro.analysis)",
    )
    _add_budget_arguments(p_map)
    _add_engine_arguments(p_map)
    _add_cache_arguments(p_map)
    p_map.set_defaults(func=_cmd_map)

    p_remap = sub.add_parser(
        "remap",
        help="incrementally re-map an edited circuit against its base",
    )
    p_remap.add_argument("base", help="base BLIF file (pre-edit)")
    p_remap.add_argument("edited", help="edited BLIF file (post-edit)")
    p_remap.add_argument(
        "--algo",
        choices=("turbomap", "turbosyn"),
        default="turbomap",
        help="mapper to run and repair (default turbomap)",
    )
    p_remap.add_argument("-k", type=int, default=5, help="LUT input count")
    p_remap.add_argument(
        "--no-incremental",
        action="store_true",
        help="skip the incremental repair and cold-map the edited "
        "circuit instead (for comparison)",
    )
    p_remap.add_argument(
        "--verify-cold",
        action="store_true",
        help="also cold-map the edited circuit and assert the repaired "
        "result is bit-identical (phi, labels, mapped network)",
    )
    p_remap.add_argument(
        "--out", help="write the remapped network as BLIF"
    )
    p_remap.add_argument(
        "--workers",
        type=int,
        default=1,
        help="probe processes for the cold base run (the incremental "
        "repair itself is sequential)",
    )
    p_remap.add_argument(
        "--report", metavar="OUT.json", help="write a JSON run report"
    )
    p_remap.add_argument(
        "--no-check",
        action="store_true",
        help="skip post-mapping invariant verification (repro.analysis)",
    )
    _add_budget_arguments(p_remap)
    _add_engine_arguments(p_remap)
    _add_cache_arguments(p_remap)
    p_remap.set_defaults(func=_cmd_remap)

    p_stats = sub.add_parser("stats", help="show retiming-graph statistics")
    p_stats.add_argument("circuit", help="input BLIF file")
    p_stats.add_argument(
        "--luts",
        action="store_true",
        help="also print the LUT fill / NPN-class profile",
    )
    p_stats.set_defaults(func=_cmd_stats)

    p_gen = sub.add_parser("gen", help="generate a benchmark circuit")
    p_gen.add_argument(
        "name", choices=[e.name for e in bench_suite.SUITE]
    )
    p_gen.add_argument("out", help="output BLIF file")
    p_gen.set_defaults(func=_cmd_gen)

    p_suite = sub.add_parser("suite", help="run the Table-1 sweep")
    p_suite.add_argument("-k", type=int, default=5)
    p_suite.add_argument(
        "--quick", action="store_true", help="only the small circuits"
    )
    p_suite.add_argument(
        "--circuit",
        action="append",
        metavar="NAME",
        help="restrict to one benchmark (repeatable; overrides --quick)",
    )
    p_suite.add_argument(
        "--resume",
        metavar="REPORT.json",
        help="skip cells already completed in this previous report "
        "(e.g. a checkpoint left by an interrupted --report run)",
    )
    p_suite.add_argument(
        "--algo",
        action="append",
        choices=sorted(_ALGOS),
        help="restrict to an algorithm (repeatable; default: all three)",
    )
    p_suite.add_argument(
        "--workers",
        type=int,
        default=1,
        help="probe candidate periods with this many parallel processes",
    )
    p_suite.add_argument(
        "--report", metavar="OUT.json", help="write a JSON run report"
    )
    p_suite.add_argument(
        "--no-check",
        action="store_true",
        help="skip post-mapping invariant verification (repro.analysis)",
    )
    _add_budget_arguments(p_suite)
    _add_engine_arguments(p_suite)
    _add_cache_arguments(p_suite)
    p_suite.set_defaults(func=_cmd_suite)

    p_verify = sub.add_parser("verify", help="equivalence-check two BLIFs")
    p_verify.add_argument("golden", help="reference BLIF")
    p_verify.add_argument("revised", help="circuit under check")
    p_verify.add_argument("--cycles", type=int, default=128)
    p_verify.add_argument("--warmup", type=int, default=16)
    p_verify.add_argument(
        "--lag",
        action="append",
        metavar="PO=N",
        help="expected latency of an output (repeatable)",
    )
    p_verify.set_defaults(func=_cmd_verify)

    p_crit = sub.add_parser("critical", help="criticality / slack analysis")
    p_crit.add_argument("circuit", help="input BLIF file")
    p_crit.add_argument("-k", type=int, default=5)
    p_crit.set_defaults(func=_cmd_critical)

    p_dot = sub.add_parser("dot", help="export Graphviz DOT")
    p_dot.add_argument("circuit", help="input BLIF file")
    p_dot.add_argument("out", help="output .dot file")
    p_dot.add_argument(
        "--highlight-critical",
        action="store_true",
        help="fill the nodes of one MDR-critical cycle",
    )
    p_dot.set_defaults(func=_cmd_dot)

    p_serve = sub.add_parser(
        "serve",
        help="serve the crash-only mapping service over HTTP "
        "(write-ahead journal, admission control)",
    )
    p_serve.add_argument("--state-dir", required=True,
                         help="durable state: journal, store, results")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8731,
                         help="TCP port (0 picks a free one)")
    p_serve.add_argument("--max-active", type=int, default=1,
                         help="concurrent worker lanes")
    p_serve.add_argument("--max-queue", type=int, default=8,
                         help="admission-control bound on pending jobs")
    p_serve.set_defaults(func=_cmd_serve)

    p_chaos = sub.add_parser(
        "serve-chaos",
        help="crash-recovery differential: SIGKILL the service mid-suite, "
        "restart, assert bit-identical results",
    )
    p_chaos.add_argument("--circuit", action="append", default=[],
                         help="BLIF file(s); default: built-in demo circuits")
    p_chaos.add_argument("--gates", type=int, default=60,
                         help="demo-circuit size when no --circuit given")
    p_chaos.add_argument("-k", type=int, default=4, help="LUT input count")
    p_chaos.add_argument("--algo", action="append", default=[],
                         choices=sorted(_ALGOS),
                         help="algorithm(s); default turbomap")
    p_chaos.add_argument("--kill-site", default="journal-append",
                         help="fault-injection site to SIGKILL at")
    p_chaos.add_argument("--kill-at", type=int, default=3,
                         help="matching hits to skip before the kill")
    p_chaos.add_argument("--state-dir", default=None,
                         help="keep state here instead of a temp dir")
    p_chaos.add_argument("--timeout", type=float, default=300.0)
    p_chaos.add_argument("--report", default=None,
                         help="write the differential report JSON here")
    p_chaos.add_argument("--events-log", default=None,
                         help="copy the chaos journal (job-event log) here")
    p_chaos.set_defaults(func=_cmd_serve_chaos)

    p_cache = sub.add_parser(
        "cache",
        help="inspect the persistent outcome cache "
        "(stats / clear / audit / warmcheck)",
    )
    p_cache.add_argument(
        "cache_args",
        nargs=argparse.REMAINDER,
        metavar="...",
        help="arguments for `python -m repro.cache` "
        "(e.g. `stats DIR`, `clear DIR`, `audit DIR`, "
        "`warmcheck COLD.json WARM.json`)",
    )
    p_cache.set_defaults(func=_cmd_cache)

    from repro.analysis.cli import add_lint_arguments, run_lint

    p_lint = sub.add_parser(
        "lint",
        help="lint BLIF circuits (text / JSON / SARIF 2.1.0 diagnostics)",
    )
    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=run_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return int(args.func(args))
    except SanitizerViolation as exc:
        # An armed invariant hook caught corrupted engine state; the
        # diagnostic names the rule, the location, and the evidence.
        print(f"sanitizer: {exc.diagnostic.render()}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # Long-running commands (notably ``suite``) flush their
        # checkpoint before the interrupt reaches this handler, so a
        # Ctrl-C loses at most the cell in flight.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
