"""Delta CSR patching: journaled edits applied to a compiled circuit.

:func:`patch_compiled` replays a mutation journal
(:class:`repro.netlist.graph.Edit` records) onto a cached
:class:`~repro.kernel.csr.CompiledCircuit` so an edit-and-remap loop
never pays the O(circuit) recompile — a k-gate rewire costs
O(pins) per edit (plus an offset shift when a dedup changes the pin
count).

The patch must be *indistinguishable* from a fresh compile: pins go
through the same first-occurrence dedup as
:func:`repro.kernel.csr.compile_circuit`, and the analysis rule pack
(MAP007 in :mod:`repro.analysis.invariants`) asserts the patched
arrays serialize byte-identically to a fresh compile of the subject.

Node insertion can outgrow the packed-copy id space (``pack_shift``
steps up at powers of two); :meth:`CompiledCircuit.append_node` refuses
such an append and the patcher falls back to one fresh compile.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.kernel.csr import CompiledCircuit, compile_circuit, kind_code
from repro.netlist.graph import Edit, SeqCircuit


def dedup_pins(pins: Iterable[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """First-occurrence pin dedup, exactly as ``compile_circuit``."""
    out = list(pins)
    return list(dict.fromkeys(out)) if len(out) > 1 else out


def patch_compiled(
    circuit: SeqCircuit,
    compiled: CompiledCircuit,
    edits: Iterable[Edit],
) -> Tuple[CompiledCircuit, bool]:
    """Replay ``edits`` onto ``compiled``; return ``(compiled, patched)``.

    ``circuit`` is the *post-edit* circuit (used to resolve the kinds
    of appended nodes and as the recompile source on fallback);
    ``compiled`` must describe the pre-edit structure and is mutated in
    place.  The second element is True when the arrays were patched in
    place, False when a boundary condition (pack-shift growth, a
    journal that does not line up with the arrays) forced a fresh
    compile — either way the returned object matches the current
    circuit.
    """
    for edit in edits:
        pins = dedup_pins(edit.pins)
        if edit.kind == "rewire":
            if not 0 <= edit.nid < compiled.n:
                return compile_circuit(circuit), False
            compiled.splice_pins(edit.nid, pins)
        elif edit.kind == "add":
            if edit.nid != compiled.n:
                # The journal and the arrays disagree on the id space
                # (e.g. a stale journal): patching would corrupt.
                return compile_circuit(circuit), False
            try:
                compiled.append_node(kind_code(circuit.kind(edit.nid)), pins)
            except ValueError:
                # Growing past a pack_shift boundary re-encodes every
                # packed copy: recompile once instead.
                return compile_circuit(circuit), False
        else:
            raise ValueError(f"unknown journal edit kind {edit.kind!r}")
    return compiled, True
