"""Incremental remapping: edit a circuit, repair its mapping in O(cone).

The dominant real workload around a technology mapper is the
edit-and-remap loop — mutate a few gates, re-ask for the minimum clock
period.  This package makes that loop incremental end to end while
keeping the answer **bit-identical** to a cold run:

* :func:`repro.incremental.dirty.dirty_region` bounds the effect of a
  journaled k-gate edit (:meth:`repro.netlist.graph.SeqCircuit
  .begin_journal`) to the forward closure of the edited nodes — the
  only nodes whose transitive fanin cone, and therefore label, can
  change;
* :func:`repro.incremental.patch.patch_compiled` splices the edits into
  the cached :class:`~repro.kernel.csr.CompiledCircuit` CSR arrays
  instead of recompiling the whole circuit (falling back to a fresh
  compile only across ``pack_shift`` boundaries);
* :func:`repro.incremental.session.remap` re-runs the phi search with
  every clean label adopted verbatim from the previous fixpoint, clean
  SCCs (and their positive-loop detection) skipped, and only dirty cut
  witnesses revalidated (:class:`repro.core.labels.DirtySeed`);
* :mod:`repro.incremental.fuzz` is the differential gate: seeded random
  k-gate mutations over the benchmark suite, asserting the incremental
  phi / labels / mapped network bit-identical to a cold run (the CI
  ``edit-fuzz-differential`` job runs it as ``python -m
  repro.incremental.fuzz``).

:func:`repro.incremental.diff.circuit_edits` aligns two standalone
circuits (e.g. two BLIF files) into the same edit records, which is how
``repro remap`` drives this machinery from the command line.
"""

from repro.incremental.diff import circuit_edits
from repro.incremental.dirty import dirty_region
from repro.incremental.patch import patch_compiled
from repro.incremental.session import IncrementalSession, remap

__all__ = [
    "IncrementalSession",
    "circuit_edits",
    "dirty_region",
    "patch_compiled",
    "remap",
]
