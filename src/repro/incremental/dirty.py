"""Dirty-region computation: which labels can a k-gate edit change?

A node's label (:mod:`repro.core.labels`) is a function of its
*transitive fanin cone* only — the expanded circuit ``E_v`` unrolls
exactly that cone, and the fixpoint iteration reads nothing else.  So
after editing nodes ``S``, the labels that can differ from the previous
fixpoint are precisely the nodes whose fanin cone intersects ``S``:
the forward closure of ``S`` over fanout edges of *any* weight
(registers delay signals, they do not block label dependence).

Two properties the label repair relies on:

* the region is **forward-closed**, hence SCC-homogeneous: if any
  member of an SCC is dirty, every member is reachable from it inside
  the SCC and therefore dirty too — an SCC is wholly dirty or wholly
  clean, which is what lets the solver skip clean SCCs (and their
  positive-loop detection) outright;
* a **clean node's entire fanin cone is clean** (were any cone node
  dirty, the closure would have propagated forward to the node), so
  clean labels from a converged previous run are exact, not just lower
  bounds.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.netlist.graph import Edit, SeqCircuit


def dirty_region(circuit: SeqCircuit, edits: Iterable[Edit]) -> Set[int]:
    """Forward closure of the edited nodes over fanout edges.

    ``circuit`` is the *post-edit* circuit; ``edits`` the journal
    records (:meth:`~repro.netlist.graph.SeqCircuit.take_journal`).
    Returns the set of node ids whose label may differ from the
    pre-edit fixpoint — the edited nodes themselves plus everything
    downstream of them, registers included.
    """
    dirty: Set[int] = set()
    stack: List[int] = []
    for edit in edits:
        if edit.nid not in dirty:
            dirty.add(edit.nid)
            stack.append(edit.nid)
    fanouts = circuit.fanouts
    while stack:
        u = stack.pop()
        for dst, _w in fanouts(u):
            if dst not in dirty:
                dirty.add(dst)
                stack.append(dst)
    return dirty
