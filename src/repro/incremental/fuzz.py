"""Differential edit-fuzz: prove incremental remap bit-identical to cold.

The correctness gate of :mod:`repro.incremental` (and the CI
``edit-fuzz-differential`` job): apply seeded random k-gate mutations
to a benchmark circuit, repair the mapping incrementally, run the same
algorithm cold on a pristine copy of the edited circuit, and require

* identical minimum phi,
* bit-identical final labels, and
* an identical mapped network (name, kind, function bits and fanin
  pins per node — the mapping is regenerated deterministically from
  the labels, so this also pins down the chosen cuts),

while the repair counters prove work was actually reused
(``labels_reused > 0``, ``dirty_nodes < n`` for small edits).

The mutations preserve circuit validity by construction:

* bumping a pin's register count is always legal;
* dropping a register is validated against combinational-cycle
  creation and reverted when illegal;
* rewiring a pin to a random non-PO driver keeps weight >= 1, so the
  new edge can never close a combinational cycle.

Gate arity never changes, so K-boundedness and function arity are
untouched.

Run as a module for the CI job::

    python -m repro.incremental.fuzz --edits 1,4,16 --seed 0 \
        --out edit-fuzz-report.json
"""

from __future__ import annotations

import argparse
import random
import sys
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.driver import SeqMapResult
from repro.core.turbomap import turbomap
from repro.core.turbosyn import turbosyn
from repro.incremental.session import remap
from repro.netlist.graph import NodeKind, SeqCircuit

#: Node signature: (name, kind, function (arity, bits) or None, pins).
NodeSig = Tuple[
    str, str, Optional[Tuple[int, int]], Tuple[Tuple[str, int], ...]
]


def mapped_signature(circuit: SeqCircuit) -> List[NodeSig]:
    """Canonical structural signature of a mapped network.

    Names (not ids) key the fanins so two independently generated
    networks compare by content; id order still matters — the mapping
    generator is deterministic, so a reordering would itself be a
    divergence worth failing on.
    """
    sig: List[NodeSig] = []
    for nid in circuit.node_ids():
        func = circuit.func(nid)
        sig.append(
            (
                circuit.name_of(nid),
                circuit.kind(nid).value,
                None if func is None else (func.n, func.bits),
                tuple(
                    (circuit.name_of(p.src), p.weight)
                    for p in circuit.fanins(nid)
                ),
            )
        )
    return sig


def random_edits(
    circuit: SeqCircuit, rng: random.Random, count: int
) -> int:
    """Apply ``count`` random validity-preserving gate edits in place.

    Returns the number of effective edits applied (always ``count``
    unless the circuit offers too few legal moves, which the benchmark
    suite never does).  Edits go through the circuit's mutation
    helpers, so journaling and cache invalidation behave exactly as
    they would for a real caller.
    """
    gates = circuit.gates
    if not gates:
        return 0
    non_po = [
        nid
        for nid in circuit.node_ids()
        if circuit.kind(nid) is not NodeKind.PO
    ]
    applied = 0
    for _try in range(60 * count + 200):
        if applied >= count:
            break
        g = rng.choice(gates)
        pins = [(p.src, p.weight) for p in circuit.fanins(g)]
        if not pins:
            continue
        i = rng.randrange(len(pins))
        src, w = pins[i]
        roll = rng.random()
        if roll < 0.40:
            new = (src, w + 1)  # extra register: always legal
        elif roll < 0.70:
            # Rewire to a random non-PO driver through >= 1 register:
            # the edge carries a register, so no combinational cycle.
            new = (rng.choice(non_po), max(1, w))
        elif w > 0:
            new = (src, w - 1)  # may close a combinational cycle
        else:
            continue
        if new == (src, w):
            continue
        pins[i] = new
        circuit.set_fanins(g, pins)
        try:
            circuit.comb_topo_order()
        except ValueError:
            pins[i] = (src, w)
            circuit.set_fanins(g, pins)  # revert the illegal drop
            continue
        applied += 1
    return applied


def differential_remap(
    circuit: SeqCircuit,
    n_edits: int,
    seed: int,
    k: int = 5,
    algorithm: str = "turbomap",
) -> Dict[str, Any]:
    """One differential cell: mutate, remap incrementally, compare cold.

    Returns a record with the identity verdict and the cold-vs-
    incremental work counters; mutates ``circuit`` in place.
    """
    circuit.begin_journal()
    circuit.take_journal()
    run: Callable[[SeqCircuit, int], SeqMapResult] = (
        turbomap if algorithm == "turbomap" else turbosyn
    )
    prev = run(circuit, k)
    compiled = circuit.compiled()
    rng = random.Random(seed)
    applied = random_edits(circuit, rng, n_edits)
    edits = circuit.take_journal()
    inc = remap(circuit, prev, edits, k=k, compiled=compiled)
    cold = run(circuit.copy(), k)
    identical = (
        inc.phi == cold.phi
        and list(inc.labels) == list(cold.labels)
        and mapped_signature(inc.mapped) == mapped_signature(cold.mapped)
    )
    inc_stats = inc.total_stats
    cold_stats = cold.total_stats
    return {
        "circuit": circuit.name,
        "algorithm": algorithm,
        "k": k,
        "seed": seed,
        "edits_requested": n_edits,
        "edits_applied": applied,
        "n_nodes": len(circuit),
        "identical": identical,
        "phi": inc.phi,
        "cold_phi": cold.phi,
        "dirty_nodes": inc_stats.dirty_nodes,
        "labels_reused": inc_stats.labels_reused,
        "witnesses_revalidated": inc_stats.witnesses_revalidated,
        "sccs_skipped": inc_stats.sccs_skipped,
        "inc_updates": inc_stats.updates,
        "cold_updates": cold_stats.updates,
        "inc_flow_queries": inc_stats.flow_queries,
        "cold_flow_queries": cold_stats.flow_queries,
    }


def _failures(record: Dict[str, Any], small_edit_max: int = 4) -> List[str]:
    """Assertion failures of one record (empty = clean)."""
    tag = f"{record['circuit']}/{record['edits_requested']}-edit"
    problems: List[str] = []
    if not record["identical"]:
        problems.append(
            f"{tag}: incremental result differs from cold run "
            f"(phi {record['phi']} vs {record['cold_phi']})"
        )
    if record["edits_applied"] == 0:
        problems.append(f"{tag}: no effective edit was applied")
    if record["edits_requested"] <= small_edit_max:
        if record["dirty_nodes"] >= record["n_nodes"]:
            problems.append(
                f"{tag}: dirty region covers the whole circuit "
                f"({record['dirty_nodes']} of {record['n_nodes']} nodes)"
            )
        if record["labels_reused"] <= 0:
            problems.append(f"{tag}: no labels were reused")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.incremental.fuzz",
        description="differential edit-fuzz gate for incremental remapping",
    )
    parser.add_argument(
        "--circuits",
        default=None,
        help="comma-separated suite circuits (default: the quick subset)",
    )
    parser.add_argument(
        "--edits",
        default="1,4,16",
        help="comma-separated edit sizes per cell (default 1,4,16)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument("--k", type=int, default=5, help="LUT input count")
    parser.add_argument(
        "--algorithm",
        default="turbomap",
        choices=("turbomap", "turbosyn"),
        help="mapper to differentiate (default turbomap)",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON fuzz report here"
    )
    args = parser.parse_args(argv)

    from repro.bench.suite import build, quick_subset

    names = (
        [c for c in args.circuits.split(",") if c]
        if args.circuits
        else quick_subset()
    )
    sizes = [int(s) for s in args.edits.split(",") if s]
    records: List[Dict[str, Any]] = []
    problems: List[str] = []
    for name in names:
        for size in sizes:
            # crc32, not hash(): string hashing is salted per process
            # and the whole point of the gate is reproducible cells.
            cell_seed = (
                args.seed * 1_000_003
                + zlib.crc32(f"{name}:{size}".encode())
            )
            record = differential_remap(
                build(name),
                size,
                cell_seed,
                k=args.k,
                algorithm=args.algorithm,
            )
            records.append(record)
            problems.extend(_failures(record))
            print(
                f"{record['circuit']:>8} edits={size:<3} "
                f"{'OK ' if record['identical'] else 'DIFF'} "
                f"phi={record['phi']} dirty={record['dirty_nodes']}"
                f"/{record['n_nodes']} reused={record['labels_reused']} "
                f"updates {record['cold_updates']}->{record['inc_updates']} "
                f"flow {record['cold_flow_queries']}"
                f"->{record['inc_flow_queries']}"
            )
    if args.out:
        from repro.resilience.atomic import atomic_write_json

        atomic_write_json(
            args.out,
            {
                "schema": 1,
                "kind": "edit-fuzz",
                "algorithm": args.algorithm,
                "k": args.k,
                "seed": args.seed,
                "runs": records,
            },
            indent=2,
        )
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    print(
        f"{len(records)} cell(s), {len(problems)} failure(s): "
        + ("FAIL" if problems else "OK")
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
