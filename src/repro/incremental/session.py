"""The incremental edit-and-remap entry points.

:func:`remap` repairs a previous mapping result after a k-gate edit:
it bounds the dirty region, delta-patches the compiled CSR kernel, and
re-runs the phi search with every clean label adopted verbatim from the
previous fixpoint.  The answer — phi, labels, and the regenerated
mapped network — is **bit-identical** to a cold run on the edited
circuit; only the work drops from O(circuit) to O(cone) per probe.

:class:`IncrementalSession` packages the loop for interactive callers
(and the batch service of ROADMAP item 1): it owns the mutation
journal, the previous result, and the compiled CSR across edits, so
the caller just mutates the circuit and calls :meth:`remap`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence

from repro.core.driver import SeqMapResult
from repro.core.labels import LabelOutcome
from repro.core.turbomap import turbomap
from repro.core.turbosyn import turbosyn
from repro.incremental.dirty import dirty_region
from repro.incremental.patch import patch_compiled
from repro.kernel.csr import CompiledCircuit
from repro.netlist.graph import Edit, SeqCircuit


def _padded(prev: SeqMapResult, n: int) -> SeqMapResult:
    """Pad the previous outcome labels to ``n`` nodes (node insertion).

    Appended nodes are edit seeds and therefore dirty, so their padded
    labels are never read — padding only satisfies the solver's length
    check.  The previous result itself is left untouched.
    """
    if all(len(o.labels) == n for o in prev.outcomes.values()):
        return prev
    outcomes: Dict[int, LabelOutcome] = {}
    for phi, o in prev.outcomes.items():
        labels: List[int] = list(o.labels)
        labels.extend([0] * (n - len(labels)))
        outcomes[phi] = LabelOutcome(
            o.feasible, labels, o.stats, list(o.failed_scc)
        )
    return dataclasses.replace(prev, outcomes=outcomes)


def remap(
    circuit: SeqCircuit,
    prev_result: SeqMapResult,
    edits: Sequence[Edit],
    k: int = 5,
    compiled: Optional[CompiledCircuit] = None,
    **mapper_kwargs: Any,
) -> SeqMapResult:
    """Re-map ``circuit`` after ``edits``, reusing ``prev_result``.

    ``circuit`` is the *post-edit* circuit; node ids must align with
    the circuit ``prev_result`` was computed on (in-place mutation
    under a journal, or :func:`repro.incremental.diff.circuit_edits`
    alignment), and ``edits`` must cover every structural mutation
    since.  ``compiled`` is the pre-edit compiled CSR (e.g. captured
    from ``circuit.compiled()`` before editing); when given it is
    delta-patched in place and adopted, so no O(circuit) recompile
    happens.  The algorithm (turbomap / turbosyn) follows
    ``prev_result.algorithm``; extra keyword arguments go to it
    verbatim and must match the previous run's configuration for the
    reuse preconditions to hold.

    Returns a result bit-identical to a cold run of the same algorithm
    on the edited circuit, with ``incremental=True`` and the repair
    counters (``dirty_nodes`` / ``labels_reused`` /
    ``witnesses_revalidated`` / ``sccs_skipped``) in its stats.
    """
    dirty = dirty_region(circuit, edits)
    if compiled is not None:
        patched, _in_place = patch_compiled(circuit, compiled, edits)
        circuit.adopt_compiled(patched)
    prev = _padded(prev_result, len(circuit))
    algorithm = prev_result.algorithm
    if algorithm == "turbomap":
        result = turbomap(circuit, k, prev_result=prev, dirty=dirty, **mapper_kwargs)
    elif algorithm == "turbosyn":
        result = turbosyn(circuit, k, prev_result=prev, dirty=dirty, **mapper_kwargs)
    else:
        raise ValueError(
            f"cannot remap a {algorithm!r} result; "
            "expected algorithm 'turbomap' or 'turbosyn'"
        )
    if mapper_kwargs.get("check", True):
        _audit_repair(circuit, prev, result, edits, dirty, compiled)
    return result


def _audit_repair(
    circuit: SeqCircuit,
    prev: SeqMapResult,
    result: SeqMapResult,
    edits: Sequence[Edit],
    dirty: "set[int] | frozenset[int]",
    compiled: Optional[CompiledCircuit],
) -> None:
    """Run the incremental rule pack over one repair's evidence.

    Folds the findings into ``result.certificate`` (under
    ``"incremental_audit"``) and raises
    :class:`~repro.analysis.VerificationError` on any ERROR — the same
    contract as the mapping verifier, so a broken repair never reports
    success.  Only called on checked runs (``check=True``).
    """
    from repro.analysis import (
        IncrementalContext,
        audit_incremental,
        raise_on_errors,
    )

    ctx = IncrementalContext(
        circuit,
        edits,
        dirty,
        prev_outcomes=prev.outcomes,
        outcomes=result.outcomes,
        # The adopted kernel is the delta-patched CSR; audit that one.
        compiled=circuit.compiled() if compiled is not None else None,
    )
    diags = audit_incremental(ctx)
    if result.certificate is not None:
        result.certificate["incremental_audit"] = {
            "rules": ["INC001", "INC002", "INC003"],
            "findings": [d.as_dict() for d in diags],
        }
    raise_on_errors(diags, circuit.name, result.algorithm)


class IncrementalSession:
    """An edit-and-remap loop over one circuit.

    Typical use::

        session = IncrementalSession(circuit, k=5)
        result = session.map()            # cold run
        circuit.rewire_pin(g, 0, u, 1)    # journaled automatically
        result = session.remap()          # O(cone) repair, bit-identical

    The session starts the circuit's mutation journal on construction
    and drains it on every :meth:`remap`, so any mutation made through
    the circuit's helpers between calls is accounted for.  Keyword
    arguments are forwarded to the mapper on every run and must stay
    fixed across the session (the reuse preconditions require an
    identical engine configuration).
    """

    def __init__(
        self,
        circuit: SeqCircuit,
        k: int = 5,
        algorithm: str = "turbomap",
        **mapper_kwargs: Any,
    ) -> None:
        if algorithm not in ("turbomap", "turbosyn"):
            raise ValueError(
                f"unknown algorithm {algorithm!r}; "
                "expected 'turbomap' or 'turbosyn'"
            )
        self.circuit = circuit
        self.k = k
        self.algorithm = algorithm
        self.mapper_kwargs = mapper_kwargs
        self.result: Optional[SeqMapResult] = None
        self._compiled: Optional[CompiledCircuit] = None
        circuit.begin_journal()

    def map(self) -> SeqMapResult:
        """Cold run; (re)establishes the baseline for later repairs."""
        self.circuit.take_journal()  # discard pre-baseline edits
        if self.algorithm == "turbomap":
            result = turbomap(self.circuit, self.k, **self.mapper_kwargs)
        else:
            result = turbosyn(self.circuit, self.k, **self.mapper_kwargs)
        self.result = result
        self._compiled = self.circuit.compiled()
        return result

    def remap(self) -> SeqMapResult:
        """Repair the mapping after the journaled edits (cold on first use)."""
        if self.result is None:
            return self.map()
        edits = self.circuit.take_journal()
        result = remap(
            self.circuit,
            self.result,
            edits,
            k=self.k,
            compiled=self._compiled,
            **self.mapper_kwargs,
        )
        self.result = result
        self._compiled = self.circuit.compiled()
        return result
