"""Structural diff of two aligned circuits into journal-equivalent edits.

``repro remap BASE.blif EDITED.blif`` has no in-process mutation
journal to drain — the two netlists arrive as independent files — so
:func:`circuit_edits` reconstructs the journal: for every shared node
id whose fanin pins differ, one ``rewire`` record; for every appended
node, one ``add`` record.  The circuits must be *alignable*: node ids
(creation order), names and kinds of the shared prefix must agree, and
nodes may only be appended, never deleted — exactly the shape an
edit-and-remap loop produces.

Node-function changes that leave the pin structure intact produce no
edit record on purpose: labels depend only on structure, and the
mapping regeneration re-reads every function from the edited circuit,
so a function-only change flows into the remapped network without
dirtying anything.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.netlist.graph import Edit, SeqCircuit


def _pins(circuit: SeqCircuit, nid: int) -> Tuple[Tuple[int, int], ...]:
    return tuple((p.src, p.weight) for p in circuit.fanins(nid))


def circuit_edits(base: SeqCircuit, edited: SeqCircuit) -> List[Edit]:
    """Journal-equivalent edits transforming ``base`` into ``edited``.

    Raises :class:`ValueError` when the circuits are not alignable
    (shrunk node set, or a shared id whose name or kind differs) —
    such inputs need a cold run, not an incremental repair.
    """
    if len(edited) < len(base):
        raise ValueError(
            f"{edited.name}: node set shrank ({len(base)} -> "
            f"{len(edited)}); circuits are not incrementally alignable"
        )
    for nid in range(len(base)):
        if (
            base.name_of(nid) != edited.name_of(nid)
            or base.kind(nid) is not edited.kind(nid)
        ):
            raise ValueError(
                f"node {nid} differs in name or kind "
                f"({base.name_of(nid)!r}/{base.kind(nid).value} vs "
                f"{edited.name_of(nid)!r}/{edited.kind(nid).value}); "
                "circuits are not incrementally alignable"
            )
    edits: List[Edit] = []
    for nid in range(len(base)):
        new = _pins(edited, nid)
        if _pins(base, nid) != new:
            edits.append(Edit("rewire", nid, new))
    for nid in range(len(base), len(edited)):
        edits.append(Edit("add", nid, _pins(edited, nid)))
    return edits
