"""Roth-Karp disjoint functional decomposition and LUT-tree synthesis.

This module implements the Boolean-resynthesis engine that powers both
FlowSYN's combinational decomposition [5] and TurboSYN's *sequential*
functional decomposition: given a cone function ``f`` whose inputs become
available at different (integer) arrival times, realize ``f`` as a small
network of K-input LUTs whose root output is ready no later than a given
deadline.

Two layers:

* :func:`disjoint_decompose` — one classical Roth-Karp step.  For a bound
  set ``B`` it computes the column multiplicity ``mu`` of the chart, and if
  ``mu`` fits in ``t = ceil(log2(mu)) < |B|`` code bits, produces encoder
  functions ``alpha_1..alpha_t`` over ``B`` and the image function
  ``g(alpha codes, free)`` with ``f == g(alpha(B), free)`` exactly.

* :func:`synthesize_lut_tree` — the scheduling loop used inside the label
  computation.  Inputs are sorted by increasing arrival (the paper sorts by
  ``l(u_i) - phi * w_i``); the earliest inputs are grouped into bound sets
  and collapsed through encoders until the residual image fits in a single
  K-LUT, respecting per-input arrival times and the root deadline.

Every produced structure is exact: ``LutTree.to_truthtable`` recomposes the
original function bit-for-bit (property-tested in
``tests/boolfn/test_decompose.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.boolfn.truthtable import TruthTable

#: Safety valve: maximum number of column-multiplicity evaluations a single
#: ``synthesize_lut_tree`` call may spend before giving up.
MAX_ATTEMPTS = 96


@dataclass(frozen=True)
class Decomposition:
    """One Roth-Karp step ``f(B, F) = image(alpha_1(B)..alpha_t(B), F)``.

    Attributes
    ----------
    bound:
        Indices (into ``f``'s variables) of the bound set ``B``.
    free:
        Indices of the free set ``F`` (ascending).
    alphas:
        Encoder functions, each over ``len(bound)`` variables ordered as in
        ``bound``.
    image:
        Image function ``g`` over ``len(alphas) + len(free)`` variables:
        code bits first (alpha ``j`` is variable ``j``), then the free
        variables in ``free`` order.
    """

    bound: Tuple[int, ...]
    free: Tuple[int, ...]
    alphas: Tuple[TruthTable, ...]
    image: TruthTable

    def recompose(self, n: int) -> TruthTable:
        """Rebuild the original function over ``n`` variables (for checks)."""
        t = len(self.alphas)
        # Lift alphas and image back to n-variable space and substitute.
        g = self.image.extend(
            n + t, list(range(n, n + t)) + [f for f in self.free]
        )
        for j, alpha in enumerate(self.alphas):
            lifted = alpha.extend(n + t, list(self.bound))
            g = g.compose(n + j, lifted)
        # Drop the now-unused code variables.
        for j in reversed(range(t)):
            g = g.remove_var(n + j)
        return g


def disjoint_decompose(
    f: TruthTable, bound: Sequence[int]
) -> Optional[Decomposition]:
    """One disjoint Roth-Karp decomposition step, or ``None`` if no gain.

    Returns ``None`` when the column multiplicity needs ``t >= len(bound)``
    code bits (the step would not reduce the support of the image).
    """
    bound = tuple(bound)
    free = tuple(i for i in range(f.n) if i not in bound)
    cols = f.columns(bound)
    code_of: Dict[int, int] = {}
    codes: List[int] = []
    for col in cols:
        if col not in code_of:
            code_of[col] = len(code_of)
        codes.append(code_of[col])
    mu = len(code_of)
    t = max(1, (mu - 1).bit_length())
    if t >= len(bound):
        return None

    b = len(bound)
    alphas = []
    for j in range(t):
        bits = 0
        for assignment, code in enumerate(codes):
            if (code >> j) & 1:
                bits |= 1 << assignment
        alphas.append(TruthTable(b, bits))

    # Image: variables are [code_0..code_{t-1}, free...].  For unused codes
    # the image value is a don't-care; reuse column 0 so the table stays
    # completely specified.
    column_of_code: List[int] = [0] * (1 << t)
    for col, code in code_of.items():
        column_of_code[code] = col
    nf = len(free)
    image_bits = 0
    for code in range(1 << t):
        col = column_of_code[code] if code < (1 << t) else 0
        # Variable layout: code bits are the LOW variables of the image,
        # free variables above them -> row index = code + (a << t).
        for a in range(1 << nf):
            if (col >> a) & 1:
                image_bits |= 1 << (code + (a << t))
    image = TruthTable(t + nf, image_bits)
    return Decomposition(bound, free, tuple(alphas), image)


# ----------------------------------------------------------------------
# LUT trees with arrival times
# ----------------------------------------------------------------------
@dataclass
class Lut:
    """One LUT of a :class:`LutTree`.

    ``inputs`` are references: non-negative integers index the tree's
    external leaves, negative integers ``-1-j`` reference the output of the
    tree's LUT ``j``.
    """

    func: TruthTable
    inputs: Tuple[int, ...]


@dataclass
class LutTree:
    """A DAG of K-LUTs realizing one function of the external leaves.

    ``luts`` is in topological order (a LUT only references earlier LUTs);
    the last LUT is the root.  ``num_leaves`` is the arity of the realized
    function.
    """

    num_leaves: int
    luts: List[Lut] = field(default_factory=list)

    @property
    def root(self) -> int:
        return len(self.luts) - 1

    def ready_times(self, arrival: Sequence[int]) -> List[int]:
        """Output ready time of every LUT (input arrival + 1 per level)."""
        if len(arrival) != self.num_leaves:
            raise ValueError("arrival vector length mismatch")
        ready: List[int] = []
        for lut in self.luts:
            worst = None
            for ref in lut.inputs:
                t = arrival[ref] if ref >= 0 else ready[-1 - ref]
                worst = t if worst is None else max(worst, t)
            ready.append((worst if worst is not None else 0) + 1)
        return ready

    def root_ready(self, arrival: Sequence[int]) -> int:
        return self.ready_times(arrival)[self.root]

    def depth(self) -> int:
        """LUT levels from any leaf to the root."""
        return self.root_ready([0] * self.num_leaves)

    def max_fanin(self) -> int:
        return max((len(l.inputs) for l in self.luts), default=0)

    def to_truthtable(self) -> TruthTable:
        """Recompose the realized function over the external leaves."""
        n = self.num_leaves
        values: List[TruthTable] = []
        leaves = [TruthTable.var(i, n) for i in range(n)]
        for lut in self.luts:
            args = [
                leaves[ref] if ref >= 0 else values[-1 - ref] for ref in lut.inputs
            ]
            values.append(_apply(lut.func, args, n))
        return values[self.root]


def _apply(func: TruthTable, args: List[TruthTable], n: int) -> TruthTable:
    """Compose ``func`` over argument functions, all over ``n`` variables."""
    if len(args) != func.n:
        raise ValueError("argument count mismatch")
    result = func.extend(n + func.n, list(range(n, n + func.n)))
    for j, arg in enumerate(args):
        lifted = arg.extend(n + func.n, list(range(n)))
        result = result.compose(n + j, lifted)
    for j in reversed(range(func.n)):
        result = result.remove_var(n + j)
    return result


def synthesize_lut_tree(
    f: TruthTable,
    arrival: Sequence[int],
    k: int,
    deadline: int,
) -> Optional[LutTree]:
    """Realize ``f`` as K-LUTs meeting a root deadline, or ``None``.

    Parameters
    ----------
    f:
        The cone function; variable ``i`` corresponds to external leaf ``i``.
    arrival:
        Integer ready time of each leaf (TurboSYN passes
        ``l(u_i) - phi * w_i``; values may be negative).
    k:
        LUT input bound.
    deadline:
        Latest allowed root ready time (TurboSYN passes the tentative label
        ``L(v)``); each LUT level adds one unit.

    The strategy follows FlowSYN/TurboSYN: leaves are sorted by increasing
    arrival, the earliest ones are grouped into a bound set of size up to
    ``k`` and collapsed through Roth-Karp encoders (one extra level for the
    encoder LUTs), repeating until the image fits one K-LUT.  Bound sets
    that do not reduce support are retried with smaller sizes and shifted
    windows, within a fixed attempt budget.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    if len(arrival) != f.n:
        raise ValueError("arrival vector length mismatch")

    tree = LutTree(num_leaves=f.n)
    # Current working function over "signals": each signal is a leaf index
    # (>= 0) or a LUT output (< 0).  ``current`` has one variable per signal.
    signals: List[int] = list(range(f.n))
    ready: List[int] = list(arrival)
    current, sup = f.shrink_to_support()
    signals = [signals[i] for i in sup]
    ready = [ready[i] for i in sup]
    attempts = 0

    while True:
        if current.n == 0:
            # Constant function: emit one zero-input LUT.
            tree.luts.append(Lut(current, ()))
            return tree if 1 <= deadline else None
        worst = max(ready)
        if current.n <= k:
            if worst + 1 > deadline:
                return None
            tree.luts.append(
                Lut(current, tuple(signals))
            )
            return tree
        # Need to shrink the support: pick a bound set among the earliest
        # arriving signals.  Encoder outputs are ready at max(bound)+1 and
        # must still pass through at least one more LUT (the image), so
        # they need max(bound)+1 <= deadline-1.
        order = sorted(range(current.n), key=lambda i: (ready[i], i))
        found = None
        for size in range(min(k, current.n - 1), 1, -1):
            for start in range(0, current.n - size + 1):
                if attempts >= MAX_ATTEMPTS:
                    return None
                window = [order[start + j] for j in range(size)]
                bound_ready = max(ready[i] for i in window) + 1
                if bound_ready > deadline - 1:
                    break  # windows only get later from here
                attempts += 1
                step = disjoint_decompose(current, window)
                if step is not None:
                    found = (step, bound_ready)
                    break
            if found:
                break
        if not found:
            return None
        step, bound_ready = found
        bound_signals = tuple(signals[i] for i in step.bound)
        code_refs: List[int] = []
        for alpha in step.alphas:
            shrunk, alpha_sup = alpha.shrink_to_support()
            tree.luts.append(
                Lut(shrunk, tuple(bound_signals[i] for i in alpha_sup))
            )
            code_refs.append(-len(tree.luts))
        # New working function: code vars first, then surviving free vars.
        signals = code_refs + [signals[i] for i in step.free]
        ready = [bound_ready] * len(code_refs) + [ready[i] for i in step.free]
        current = step.image
        current, sup = current.shrink_to_support()
        signals = [signals[i] for i in sup]
        ready = [ready[i] for i in sup]
