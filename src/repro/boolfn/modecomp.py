"""Multiple-output functional decomposition (the paper's future work).

The paper closes: *"the multi-output functional decomposition [26] will
be useful for area minimization.  However, multi-output functional
decomposition is more difficult and takes much longer time.  We are going
to incorporate new logic synthesis methods into our TurboSYN algorithm
for area minimization."*  This module implements that extension in the
Wurth-Eckl-Antreich [26] single-bound-set form:

for functions ``f_1 .. f_m`` over the same variables and a common bound
set ``B``, the *joint* column multiplicity is the number of distinct
**vector** columns ``(f_1(b, .), ..., f_m(b, .))``; if it fits ``t``
code bits with ``t < |B|``, one shared encoder bank ``alpha_1..alpha_t``
serves every function:

    f_i(B, F) = g_i(alpha_1(B) .. alpha_t(B), F)      for all i.

Compared to decomposing each output alone, the encoders are built once —
the area saving the paper anticipates.  :func:`shared_decompose` performs
one joint step; :func:`best_shared_bound` searches bound sets by joint
multiplicity.  Exactness is property-tested (every output recomposes
bit-for-bit).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.boolfn.truthtable import TruthTable


@dataclass(frozen=True)
class SharedDecomposition:
    """A joint Roth-Karp step for several functions with shared encoders."""

    bound: Tuple[int, ...]
    free: Tuple[int, ...]
    alphas: Tuple[TruthTable, ...]  # over len(bound) vars, shared
    images: Tuple[TruthTable, ...]  # one per function: code bits + free

    def recompose(self, index: int, n: int) -> TruthTable:
        """Rebuild function ``index`` over ``n`` variables (for checks)."""
        t = len(self.alphas)
        g = self.images[index].extend(
            n + t, list(range(n, n + t)) + list(self.free)
        )
        for j, alpha in enumerate(self.alphas):
            lifted = alpha.extend(n + t, list(self.bound))
            g = g.compose(n + j, lifted)
        for j in reversed(range(t)):
            g = g.remove_var(n + j)
        return g


def joint_multiplicity(
    funcs: Sequence[TruthTable], bound: Sequence[int]
) -> int:
    """Number of distinct vector columns over the bound set."""
    if not funcs:
        raise ValueError("need at least one function")
    n = funcs[0].n
    if any(f.n != n for f in funcs):
        raise ValueError("functions must share one variable space")
    per_func = [f.columns(bound) for f in funcs]
    vectors = set(zip(*per_func))
    return len(vectors)


def shared_decompose(
    funcs: Sequence[TruthTable], bound: Sequence[int]
) -> Optional[SharedDecomposition]:
    """One joint decomposition step, or ``None`` when there is no gain.

    Gain requires the joint code width ``t = ceil(log2(mu))`` to be
    smaller than the bound set, exactly as in the single-output case —
    but ``mu`` here is the *joint* multiplicity, so a step that pays off
    for the vector can be refused for each function alone and vice versa.
    """
    bound = tuple(bound)
    if not funcs:
        raise ValueError("need at least one function")
    n = funcs[0].n
    free = tuple(i for i in range(n) if i not in bound)
    per_func = [f.columns(bound) for f in funcs]
    vectors = list(zip(*per_func))
    code_of: Dict[Tuple[int, ...], int] = {}
    codes: List[int] = []
    for vec in vectors:
        if vec not in code_of:
            code_of[vec] = len(code_of)
        codes.append(code_of[vec])
    mu = len(code_of)
    t = max(1, (mu - 1).bit_length())
    if t >= len(bound):
        return None

    b = len(bound)
    alphas = []
    for j in range(t):
        bits = 0
        for assignment, code in enumerate(codes):
            if (code >> j) & 1:
                bits |= 1 << assignment
        alphas.append(TruthTable(b, bits))

    vector_of_code: List[Tuple[int, ...]] = [
        (0,) * len(funcs)
    ] * (1 << t)
    for vec, code in code_of.items():
        vector_of_code[code] = vec
    nf = len(free)
    images = []
    for func_idx in range(len(funcs)):
        bits = 0
        for code in range(1 << t):
            col = vector_of_code[code][func_idx]
            for a in range(1 << nf):
                if (col >> a) & 1:
                    bits |= 1 << (code + (a << t))
        images.append(TruthTable(t + nf, bits))
    return SharedDecomposition(bound, free, tuple(alphas), tuple(images))


def best_shared_bound(
    funcs: Sequence[TruthTable],
    size: int,
    max_candidates: int = 64,
) -> Optional[Tuple[int, ...]]:
    """The bound set of the given size with the smallest joint multiplicity.

    Exhaustive over at most ``max_candidates`` size-``size`` subsets of
    the common support (ordered lexicographically); ``None`` when no
    candidate decomposes with gain.
    """
    if not funcs:
        raise ValueError("need at least one function")
    n = funcs[0].n
    support = sorted(set().union(*(f.support() for f in funcs)))
    if size > len(support):
        return None
    best: Optional[Tuple[int, ...]] = None
    best_mu = None
    for count, cand in enumerate(combinations(support, size)):
        if count >= max_candidates:
            break
        mu = joint_multiplicity(funcs, cand)
        t = max(1, (mu - 1).bit_length())
        if t >= size:
            continue
        if best_mu is None or mu < best_mu:
            best_mu = mu
            best = tuple(cand)
    return best


def encoder_savings(
    funcs: Sequence[TruthTable], bound: Sequence[int]
) -> Optional[int]:
    """Encoder LUTs saved by sharing vs per-function decomposition.

    Positive when the joint step uses fewer total encoder functions than
    decomposing every output separately; ``None`` when the joint step
    does not exist.
    """
    joint = shared_decompose(funcs, bound)
    if joint is None:
        return None
    separate = 0
    from repro.boolfn.decompose import disjoint_decompose

    for f in funcs:
        step = disjoint_decompose(f, bound)
        if step is None:
            return None  # not comparable: single-output refuses
        separate += len(step.alphas)
    return separate - len(joint.alphas)
