"""P- and NPN-canonical forms for small Boolean functions.

Two LUTs compute "the same function" in a mapping sense when one's truth
table becomes the other's under input permutation (P-equivalence) —
possibly with input/output complementation (NPN-equivalence, free only
when inverters are free, which LUT inputs are not).  Canonical forms let
the packer share LUTs that a syntactic comparison misses
(:func:`repro.comb.pack.pack_luts` uses :func:`p_canonical_with_pins`)
and power function-profile statistics over mapped netlists.

Exhaustive enumeration over the ``n!`` permutations (times ``2^{n+1}``
complementations for NPN) with memoization; intended for LUT-sized
functions (``n <= 6`` guarded).
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations
from typing import Dict, Sequence, Tuple

from repro.boolfn.truthtable import TruthTable

#: Enumeration bound: 7! permutations would already be 5040 per call.
MAX_NPN_VARS = 6


def _check(func: TruthTable) -> None:
    if func.n > MAX_NPN_VARS:
        raise ValueError(
            f"canonical forms are enumerated exhaustively; arity "
            f"{func.n} exceeds {MAX_NPN_VARS}"
        )


@lru_cache(maxsize=65536)
def _perm_variants(n: int, bits: int) -> Tuple[Tuple[int, Tuple[int, ...]], ...]:
    """All ``(permuted_bits, perm)`` pairs of the function."""
    table = TruthTable(n, bits)
    out = []
    for perm in permutations(range(n)):
        out.append((table.permute(list(perm)).bits, perm))
    return tuple(out)


def p_canonical(func: TruthTable) -> TruthTable:
    """The P-canonical representative (minimum bits over permutations)."""
    _check(func)
    if func.n <= 1:
        return func
    best = min(bits for bits, _perm in _perm_variants(func.n, func.bits))
    return TruthTable(func.n, best)


def p_equivalent(a: TruthTable, b: TruthTable) -> bool:
    """True when some input permutation maps ``a`` onto ``b``."""
    if a.n != b.n:
        return False
    return p_canonical(a) == p_canonical(b)


def p_canonical_with_pins(
    func: TruthTable, pins: Sequence[Tuple[int, int]]
) -> Tuple[int, Tuple[Tuple[int, int], ...]]:
    """Joint canonical key of a LUT: function *and* fanin list.

    Returns ``(canonical_bits, canonical_pins)`` where the pins are
    reordered by the same permutation that canonicalizes the table (ties
    broken toward the lexicographically smallest pin tuple).  Two LUTs
    with equal keys compute identical functions of identical sources and
    can be merged.
    """
    _check(func)
    if func.n != len(pins):
        raise ValueError("pin count must match the function arity")
    if func.n <= 1:
        return func.bits, tuple(pins)
    best_bits = None
    best_pins = None
    for bits, perm in _perm_variants(func.n, func.bits):
        # permute([p0..]) maps new var j <- old var perm[j]; the new pin
        # list must present old pin perm[j] at position j.
        candidate = tuple(pins[perm[j]] for j in range(func.n))
        key = (bits, candidate)
        if best_bits is None or key < (best_bits, best_pins):
            best_bits, best_pins = key
    return best_bits, best_pins


def _flip_input(table: TruthTable, i: int) -> TruthTable:
    """Complement input ``i`` (swap its cofactor blocks)."""
    mask_hi = TruthTable.var(i, table.n).bits
    full = (1 << table.size) - 1
    mask_lo = full ^ mask_hi
    shift = 1 << i
    hi = table.bits & mask_hi
    lo = table.bits & mask_lo
    return TruthTable(table.n, (hi >> shift) | ((lo << shift) & full))


def npn_canonical(func: TruthTable) -> TruthTable:
    """The NPN-canonical representative.

    Minimum table over all input permutations, input complementations and
    output complementation.  Used for function-profile statistics (e.g.
    "how many distinct 5-input functions does this mapping use?").
    """
    _check(func)
    best = None
    for bits, _perm in _perm_variants(func.n, func.bits):
        table = TruthTable(func.n, bits)
        for mask in range(1 << func.n):
            flipped = table
            for i in range(func.n):
                if (mask >> i) & 1:
                    flipped = _flip_input(flipped, i)
            for out_bits in (flipped.bits, (~flipped).bits):
                if best is None or out_bits < best:
                    best = out_bits
    return TruthTable(func.n, best)


def npn_classes(funcs: Sequence[TruthTable]) -> Dict[TruthTable, int]:
    """Histogram of NPN classes over a function collection."""
    counts: Dict[TruthTable, int] = {}
    for f in funcs:
        canon = npn_canonical(f)
        counts[canon] = counts.get(canon, 0) + 1
    return counts
