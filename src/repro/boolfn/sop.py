"""Cube covers (sum-of-products) and light two-level minimization.

The benchmark-circuit generator synthesizes finite state machines into
gate networks through a classical two-level step: every next-state bit and
output bit becomes a sum-of-products cover, which is then factored into a
K-bounded gate network (:mod:`repro.bench.fsm`,
:mod:`repro.comb.gatedecomp`).  BLIF ``.names`` bodies are also cube covers.

A :class:`Cube` is a pair of integer bit masks ``(care, polarity)`` over
``n`` variables: the cube contains an assignment ``x`` iff
``x & care == polarity``.  A :class:`Cover` is a list of cubes interpreted
as their OR.

The minimizer is intentionally modest (this project needs *reasonable*
covers for circuit generation, not an espresso replacement): exact
Quine-McCluskey prime generation with a greedy set cover for functions of
up to ``QM_MAX_VARS`` variables, and a cube-merging heuristic beyond that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.boolfn.truthtable import TruthTable

#: Exact Quine-McCluskey is used up to this arity; above it the greedy
#: merge heuristic keeps runtime bounded.
QM_MAX_VARS = 10


@dataclass(frozen=True)
class Cube:
    """A product term over ``n`` variables as ``(care, polarity)`` masks."""

    care: int
    polarity: int

    def __post_init__(self) -> None:
        if self.polarity & ~self.care:
            raise ValueError("polarity bits outside the care mask")

    def contains(self, assignment: int) -> bool:
        """True when the assignment lies inside the cube."""
        return (assignment & self.care) == self.polarity

    def literal(self, i: int) -> str:
        """Literal of variable ``i``: ``'0'``, ``'1'`` or ``'-'``."""
        if not (self.care >> i) & 1:
            return "-"
        return "1" if (self.polarity >> i) & 1 else "0"

    def to_string(self, n: int) -> str:
        """BLIF-style cube string, variable 0 first."""
        return "".join(self.literal(i) for i in range(n))

    @classmethod
    def from_string(cls, text: str) -> "Cube":
        """Parse a BLIF-style cube string (variable 0 first)."""
        care = polarity = 0
        for i, ch in enumerate(text):
            if ch == "1":
                care |= 1 << i
                polarity |= 1 << i
            elif ch == "0":
                care |= 1 << i
            elif ch != "-":
                raise ValueError(f"bad cube character {ch!r}")
        return cls(care, polarity)

    def num_literals(self) -> int:
        return bin(self.care).count("1")

    def table(self, n: int) -> TruthTable:
        """The characteristic function of the cube over ``n`` variables."""
        result = TruthTable.const(n, True)
        for i in range(n):
            if (self.care >> i) & 1:
                var = TruthTable.var(i, n)
                result = result & (var if (self.polarity >> i) & 1 else ~var)
        return result


class Cover:
    """An OR of cubes over ``n`` variables."""

    def __init__(self, n: int, cubes: Iterable[Cube] = ()) -> None:
        self.n = n
        self.cubes: List[Cube] = list(cubes)

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self):
        return iter(self.cubes)

    def add(self, cube: Cube) -> None:
        self.cubes.append(cube)

    def num_literals(self) -> int:
        """Total literal count — the classical two-level cost measure."""
        return sum(c.num_literals() for c in self.cubes)

    def to_truthtable(self) -> TruthTable:
        table = TruthTable.const(self.n, False)
        for cube in self.cubes:
            table = table | cube.table(self.n)
        return table

    def to_strings(self) -> List[str]:
        return [c.to_string(self.n) for c in self.cubes]

    @classmethod
    def from_strings(cls, n: int, lines: Iterable[str]) -> "Cover":
        return cls(n, (Cube.from_string(line) for line in lines))

    @classmethod
    def from_truthtable(cls, table: TruthTable) -> "Cover":
        """A two-level cover of ``table`` (see :func:`minimize_cover`)."""
        return minimize_cover(table)


# ----------------------------------------------------------------------
# Quine-McCluskey prime generation + greedy cover
# ----------------------------------------------------------------------
def _combine(a: Tuple[int, int], b: Tuple[int, int]) -> "Tuple[int, int] | None":
    """Merge two implicants differing in exactly one cared bit."""
    care_a, pol_a = a
    care_b, pol_b = b
    if care_a != care_b:
        return None
    diff = pol_a ^ pol_b
    if bin(diff).count("1") != 1:
        return None
    return (care_a & ~diff, pol_a & ~diff)


def prime_implicants(table: TruthTable) -> List[Cube]:
    """All prime implicants of the function (exact, QM iteration)."""
    n = table.n
    full = (1 << n) - 1
    current: Set[Tuple[int, int]] = {
        (full, m) for m in range(1 << n) if table.value(m)
    }
    primes: Set[Tuple[int, int]] = set()
    while current:
        merged: Set[Tuple[int, int]] = set()
        used: Set[Tuple[int, int]] = set()
        items = sorted(current)
        by_care: Dict[int, List[Tuple[int, int]]] = {}
        for imp in items:
            by_care.setdefault(imp[0], []).append(imp)
        for care, group in by_care.items():
            group_set = set(group)
            for care_, pol in group:
                for bit in range(n):
                    mask = 1 << bit
                    if not care & mask:
                        continue
                    partner = (care, pol ^ mask)
                    if partner in group_set:
                        used.add((care, pol))
                        used.add(partner)
                        merged.add((care & ~mask, pol & ~mask & (care & ~mask)))
        primes |= current - used
        current = merged
    return [Cube(c, p) for c, p in sorted(primes)]


def minimize_cover(table: TruthTable) -> Cover:
    """A small two-level cover of ``table``.

    Uses exact prime implicant generation with a greedy minterm set cover
    for arities up to :data:`QM_MAX_VARS`, otherwise a one-pass merge
    heuristic over the minterm list.  The result always evaluates exactly
    to ``table`` (verified by the caller-facing invariant tests).
    """
    n = table.n
    if table.bits == 0:
        return Cover(n, [])
    if table.is_const():
        return Cover(n, [Cube(0, 0)])
    if n <= QM_MAX_VARS:
        primes = prime_implicants(table)
        minterms = [m for m in range(1 << n) if table.value(m)]
        uncovered = set(minterms)
        chosen: List[Cube] = []
        # Essential primes first.
        coverage: Dict[int, List[int]] = {m: [] for m in minterms}
        for idx, cube in enumerate(primes):
            for m in minterms:
                if cube.contains(m):
                    coverage[m].append(idx)
        essential = {ids[0] for ids in coverage.values() if len(ids) == 1}
        for idx in sorted(essential):
            chosen.append(primes[idx])
            uncovered -= {m for m in uncovered if primes[idx].contains(m)}
        while uncovered:
            best = max(
                range(len(primes)),
                key=lambda idx: sum(1 for m in uncovered if primes[idx].contains(m)),
            )
            gained = {m for m in uncovered if primes[best].contains(m)}
            if not gained:  # pragma: no cover - primes always cover minterms
                raise AssertionError("prime cover failure")
            chosen.append(primes[best])
            uncovered -= gained
        return Cover(n, chosen)
    return _greedy_cover(table)


def _greedy_cover(table: TruthTable) -> Cover:
    """Merge-adjacent heuristic for arities above :data:`QM_MAX_VARS`."""
    n = table.n
    full = (1 << n) - 1
    remaining = [m for m in range(1 << n) if table.value(m)]
    remaining_set = set(remaining)
    cover = Cover(n)
    covered: Set[int] = set()
    for m in remaining:
        if m in covered:
            continue
        care, pol = full, m
        # Try to widen the cube one variable at a time.
        for bit in range(n):
            mask = 1 << bit
            trial_care = care & ~mask
            trial_pol = pol & ~mask
            trial = Cube(trial_care, trial_pol)
            if _cube_inside(trial, table):
                care, pol = trial_care, trial_pol
        cube = Cube(care, pol)
        cover.add(cube)
        covered |= {x for x in remaining_set if cube.contains(x)}
    return cover


def _cube_inside(cube: Cube, table: TruthTable) -> bool:
    """True when every minterm of the cube satisfies the function."""
    cube_bits = cube.table(table.n).bits
    off_set = ((1 << table.size) - 1) ^ table.bits
    return cube_bits & off_set == 0
