"""A from-scratch ROBDD (reduced ordered binary decision diagram) manager.

The paper performs its functional decomposition on OBDDs (following FlowSYN
[5] and Lai-Pan-Pedram [14]).  This module provides the OBDD substrate:

* a :class:`BDD` manager with a unique table and memoized ``apply``/``ite``,
* conversions to and from :class:`repro.boolfn.truthtable.TruthTable`,
* cofactor/compose/satcount/support queries,
* :meth:`BDD.cut_multiplicity`, the OBDD formulation of Roth-Karp column
  multiplicity: with the bound variables ordered on top, the number of
  distinct sub-functions hanging below the cut level equals the column
  multiplicity of the decomposition chart.

Nodes are referenced by integer handles; handles ``0`` and ``1`` are the
terminals.  The variable order is the identity over ``range(num_vars)``
(callers permute their functions instead of reordering the manager, which is
sufficient for the bounded-support cones TurboSYN resynthesizes).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.boolfn.truthtable import TruthTable

ZERO = 0
ONE = 1


class BDD:
    """A reduced ordered BDD manager over ``num_vars`` variables."""

    def __init__(self, num_vars: int) -> None:
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = num_vars
        # Node storage: parallel lists indexed by handle.  Terminals use
        # variable index ``num_vars`` so that ``var(u) < var(terminal)``.
        self._var: List[int] = [num_vars, num_vars]
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def node(self, var: int, low: int, high: int) -> int:
        """The canonical node ``(var ? high : low)``."""
        if not 0 <= var < self.num_vars:
            raise ValueError(f"variable index {var} outside [0, {self.num_vars})")
        if low == high:
            return low
        key = (var, low, high)
        handle = self._unique.get(key)
        if handle is None:
            handle = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = handle
        return handle

    def var_node(self, i: int) -> int:
        """The BDD of the projection ``x_i``."""
        return self.node(i, ZERO, ONE)

    def var_of(self, u: int) -> int:
        """Decision variable of node ``u`` (``num_vars`` for terminals)."""
        return self._var[u]

    def low(self, u: int) -> int:
        return self._low[u]

    def high(self, u: int) -> int:
        return self._high[u]

    def is_terminal(self, u: int) -> bool:
        return u <= ONE

    def __len__(self) -> int:
        """Total number of live nodes including terminals."""
        return len(self._var)

    # ------------------------------------------------------------------
    # Core algorithm: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """``f ? g : h`` — the universal ROBDD operator."""
        if f == ONE:
            return g
        if f == ZERO:
            return h
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(self._var[f], self._var[g], self._var[h])
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        h0, h1 = self._cofactors(h, top)
        result = self.node(top, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        self._ite_cache[key] = result
        return result

    def _cofactors(self, u: int, var: int) -> Tuple[int, int]:
        if self._var[u] == var:
            return self._low[u], self._high[u]
        return u, u

    # ------------------------------------------------------------------
    # Boolean algebra
    # ------------------------------------------------------------------
    def apply_not(self, f: int) -> int:
        return self.ite(f, ZERO, ONE)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, ZERO)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, ONE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def restrict(self, f: int, var: int, value: int) -> int:
        """Cofactor of ``f`` with respect to ``x_var = value``."""
        if self.is_terminal(f):
            return f
        fvar = self._var[f]
        if fvar > var:
            return f
        if fvar == var:
            return self._high[f] if value else self._low[f]
        lo = self.restrict(self._low[f], var, value)
        hi = self.restrict(self._high[f], var, value)
        return self.node(fvar, lo, hi)

    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute ``g`` for variable ``var`` in ``f``."""
        f1 = self.restrict(f, var, 1)
        f0 = self.restrict(f, var, 0)
        return self.ite(g, f1, f0)

    def support(self, f: int) -> Set[int]:
        """The set of variables ``f`` depends on."""
        seen: Set[int] = set()
        out: Set[int] = set()
        stack = [f]
        while stack:
            u = stack.pop()
            if u in seen or self.is_terminal(u):
                continue
            seen.add(u)
            out.add(self._var[u])
            stack.append(self._low[u])
            stack.append(self._high[u])
        return out

    def sat_count(self, f: int) -> int:
        """Number of satisfying assignments over all ``num_vars`` variables."""
        if f == ZERO:
            return 0
        if f == ONE:
            return 1 << self.num_vars
        memo: Dict[int, int] = {}

        def count(u: int) -> int:
            """Assignments over the suffix variables ``var(u) .. num_vars-1``."""
            if u == ZERO:
                return 0
            if u == ONE:
                return 1
            cached = memo.get(u)
            if cached is not None:
                return cached
            v = self._var[u]
            lo, hi = self._low[u], self._high[u]
            total = (count(lo) << (self._var[lo] - v - 1)) + (
                count(hi) << (self._var[hi] - v - 1)
            )
            memo[u] = total
            return total

        return count(f) << self._var[f]

    def eval(self, f: int, inputs: Sequence[int]) -> int:
        """Evaluate ``f`` on an explicit input vector."""
        if len(inputs) != self.num_vars:
            raise ValueError("wrong number of inputs")
        u = f
        while not self.is_terminal(u):
            u = self._high[u] if inputs[self._var[u]] else self._low[u]
        return u

    def node_count(self, f: int) -> int:
        """Number of distinct internal nodes reachable from ``f``."""
        seen: Set[int] = set()
        stack = [f]
        while stack:
            u = stack.pop()
            if u in seen or self.is_terminal(u):
                continue
            seen.add(u)
            stack.append(self._low[u])
            stack.append(self._high[u])
        return len(seen)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def from_truthtable(self, table: TruthTable) -> int:
        """Build the ROBDD of a packed truth table (Shannon expansion).

        Table variable ``j`` maps to manager variable ``j``; since the
        manager keeps variable 0 on top, the recursion splits on the least
        significant index bit first.
        """
        if table.n > self.num_vars:
            raise ValueError("table arity exceeds manager width")
        if table.n == 0:
            return ONE if table.bits else ZERO
        # Reverse the variable order once so that splitting on the
        # recursion variable is a contiguous halving of the packed bits
        # (low half = var 0, exactly the old even/odd stride split).
        n = table.n
        reversed_bits = table.permute(list(range(n - 1, -1, -1))).bits
        memo: Dict[Tuple[int, int], int] = {}

        def build(bits: int, size: int, var: int) -> int:
            if size == 1:
                return ONE if bits else ZERO
            key = (var, bits)
            cached = memo.get(key)
            if cached is not None:
                return cached
            half = size >> 1
            lo = build(bits & ((1 << half) - 1), half, var + 1)
            hi = build(bits >> half, half, var + 1)
            result = self.node(var, lo, hi) if lo != hi else lo
            memo[key] = result
            return result

        return build(reversed_bits, 1 << n, 0)

    def to_truthtable(self, f: int, n: "int | None" = None) -> TruthTable:
        """Expand ``f`` into a packed truth table over ``n`` variables."""
        width = self.num_vars if n is None else n
        sup = self.support(f)
        if sup and max(sup) >= width:
            raise ValueError("requested arity smaller than the support")
        memo: Dict[Tuple[int, int], int] = {}

        def expand(u: int, var: int) -> int:
            """Packed column of ``u`` over variables ``var .. width-1``.

            Variable ``var`` sits in the most significant position of the
            returned ``2**(width - var)``-bit block; a final permute
            restores the table's LSB-first variable order.
            """
            if var == width:
                return 1 if u == ONE else 0
            key = (u, var)
            cached = memo.get(key)
            if cached is not None:
                return cached
            half = 1 << (width - var - 1)
            if self.is_terminal(u) or self._var[u] > var:
                sub = expand(u, var + 1)
                out = sub | (sub << half)
            else:  # self._var[u] == var, ordering forbids smaller
                out = expand(self._low[u], var + 1) | (
                    expand(self._high[u], var + 1) << half
                )
            memo[key] = out
            return out

        reversed_table = TruthTable(width, expand(f, 0))
        if width == 0:
            return reversed_table
        return reversed_table.permute(list(range(width - 1, -1, -1)))

    # ------------------------------------------------------------------
    # Decomposition support
    # ------------------------------------------------------------------
    def cut_multiplicity(self, f: int, cut_level: int) -> int:
        """Column multiplicity through the OBDD cut below ``cut_level``.

        The manager keeps variable 0 on top, so a caller with bound set
        ``B`` permutes its function to place the bound variables at indices
        ``0 .. |B|-1``.  Every bound-set assignment then selects, by
        following ``|B|`` decision levels, one node at or below the cut;
        that node canonically represents the sub-function
        ``f(bound := assignment, free)``.  The number of distinct nodes
        reachable across the cut therefore equals the Roth-Karp column
        multiplicity ``mu`` (Lai-Pan-Pedram [14]).
        """
        if not 0 <= cut_level <= self.num_vars:
            raise ValueError("cut level out of range")
        boundary: Set[int] = set()
        seen: Set[int] = set()
        stack = [f]
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            if self.is_terminal(u) or self._var[u] >= cut_level:
                boundary.add(u)
                continue
            stack.append(self._low[u])
            stack.append(self._high[u])
        return len(boundary)
