"""Packed truth tables for Boolean functions of a bounded number of variables.

A :class:`TruthTable` represents a completely specified Boolean function of
``n`` ordered variables as ``2**n`` bits packed into a Python integer.  Bit
``i`` of :attr:`TruthTable.bits` is the function value on the input
assignment encoded by ``i``, with variable 0 in the least significant
position (``x0 = i & 1``, ``x1 = (i >> 1) & 1``, ...).

Truth tables are the workhorse function representation of this project: the
cones resynthesized by TurboSYN are bounded to ``Cmax = 15`` inputs, so a
dense table (at most ``2**15`` bits, i.e. 4 KiB) is both exact and fast.
Tables are immutable and hashable; bulk operations run on Python big-int
bit algebra (delta-swaps, periodic masks), so the module has no hard
numpy dependency — only the explicit :meth:`TruthTable.from_array` /
:meth:`TruthTable.to_array` ndarray conversions require the ``[vector]``
extra.

The companion :mod:`repro.boolfn.bdd` module provides a ROBDD engine used to
cross-check decompositions and for equivalence checking of larger functions.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence, Tuple

from repro.compat import require_numpy

#: Hard cap on the number of variables of a dense table.  ``2**MAX_VARS``
#: bits must stay cheap to copy; 20 variables is a 128 KiB table.
MAX_VARS = 20


def _check_nvars(n: int) -> None:
    if not 0 <= n <= MAX_VARS:
        raise ValueError(f"truth table arity {n} outside [0, {MAX_VARS}]")


def _periodic_mask(block: int, period: int, total: int) -> int:
    """``block`` replicated with ``period`` bits of stride across ``total``."""
    mask = block
    width = period
    while width < total:
        mask |= mask << width
        width <<= 1
    return mask & ((1 << total) - 1)


def _swap_vars_bits(bits: int, n: int, i: int, j: int) -> int:
    """Table bits with variables ``i`` and ``j`` exchanged (delta-swap).

    Assignment indices with ``x_i = 1, x_j = 0`` trade places with their
    ``x_i = 0, x_j = 1`` partners ``delta = 2**j - 2**i`` positions up —
    one masked xor-swap over the whole table, no arrays.
    """
    if i == j:
        return bits
    if i > j:
        i, j = j, i
    total = 1 << n
    mask_i = _periodic_mask(((1 << (1 << i)) - 1) << (1 << i), 1 << (i + 1), total)
    mask_j = _periodic_mask(((1 << (1 << j)) - 1) << (1 << j), 1 << (j + 1), total)
    mask = mask_i & ~mask_j
    delta = (1 << j) - (1 << i)
    t = ((bits >> delta) ^ bits) & mask
    return bits ^ t ^ (t << delta)


def eval_gate_columns(func: "TruthTable", child_cols: Sequence[int], width: int) -> int:
    """Bit-parallel gate evaluation over packed assignment columns.

    ``child_cols[j]`` packs the value of fanin ``j`` on each of the
    ``2**width`` assignments (bit ``a`` = value on assignment ``a``).
    Returns the equally packed output column of ``func`` — the pure-int
    minterm expansion the cycle simulator uses, shared here so cone
    evaluation needs no numpy.
    """
    full = (1 << (1 << width)) - 1
    out = 0
    for m in range(func.size):
        if not (func.bits >> m) & 1:
            continue
        term = full
        for j, col in enumerate(child_cols):
            term &= col if (m >> j) & 1 else (~col & full)
            if not term:
                break
        out |= term
        if out == full:
            break
    return out


class TruthTable:
    """An immutable, completely specified Boolean function of ``n`` variables.

    Parameters
    ----------
    n:
        Number of input variables (0 to :data:`MAX_VARS`).
    bits:
        The ``2**n`` function bits packed into an int (bit ``i`` is the value
        on assignment ``i``).  Bits above ``2**n`` must be zero.
    """

    __slots__ = ("n", "bits", "_hash")

    def __init__(self, n: int, bits: int) -> None:
        _check_nvars(n)
        size = 1 << n
        if bits < 0 or bits >> size:
            raise ValueError("bits outside table range")
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "bits", bits)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("TruthTable is immutable")

    def __reduce__(self) -> Tuple[type, Tuple[int, int]]:
        # The default slots protocol restores via setattr, which the
        # immutability guard rejects; rebuild through the constructor so
        # tables survive pickling (spawn-start worker processes receive
        # circuits that way).
        return (type(self), (self.n, self.bits))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def const(cls, n: int, value: bool) -> "TruthTable":
        """The constant-``value`` function of ``n`` variables."""
        _check_nvars(n)
        bits = ((1 << (1 << n)) - 1) if value else 0
        return cls(n, bits)

    @classmethod
    def var(cls, i: int, n: int) -> "TruthTable":
        """The projection function ``f(x) = x_i`` over ``n`` variables."""
        _check_nvars(n)
        if not 0 <= i < n:
            raise ValueError(f"variable index {i} outside [0, {n})")
        period = 1 << (i + 1)
        half = 1 << i
        block = ((1 << half) - 1) << half  # one period: low half 0, high half 1
        table = 0
        width = period
        # Double the pattern until it spans the full table.
        full = 1 << n
        table = block
        while width < full:
            table |= table << width
            width <<= 1
        return cls(n, table)

    @classmethod
    def from_values(cls, values: Sequence[int]) -> "TruthTable":
        """Build a table from an explicit output column of length ``2**n``."""
        size = len(values)
        n = size.bit_length() - 1
        if 1 << n != size:
            raise ValueError("length of values must be a power of two")
        bits = 0
        for i, v in enumerate(values):
            if v:
                bits |= 1 << i
        return cls(n, bits)

    @classmethod
    def from_function(cls, n: int, fn: Callable[..., bool]) -> "TruthTable":
        """Build a table by evaluating ``fn(x0, x1, ..., x{n-1})`` everywhere."""
        _check_nvars(n)
        bits = 0
        for i in range(1 << n):
            args = [(i >> j) & 1 for j in range(n)]
            if fn(*args):
                bits |= 1 << i
        return cls(n, bits)

    @classmethod
    def from_array(cls, arr: Any) -> "TruthTable":
        """Build a table from a numpy 0/1 vector of length ``2**n``.

        Requires the ``[vector]`` extra; :meth:`from_values` is the
        dependency-free equivalent for plain sequences.
        """
        np = require_numpy("TruthTable.from_array")
        arr = np.asarray(arr, dtype=np.uint8).ravel()
        packed = np.packbits(arr, bitorder="little")
        return cls(len(arr).bit_length() - 1, int.from_bytes(packed.tobytes(), "little"))

    @classmethod
    def random(cls, n: int, rng: Any) -> "TruthTable":
        """A uniformly random function of ``n`` variables."""
        _check_nvars(n)
        nbytes = max(1, (1 << n) // 8) if n >= 3 else 1
        raw = int.from_bytes(rng.bytes(nbytes), "little")
        return cls(n, raw & ((1 << (1 << n)) - 1))

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of rows (``2**n``)."""
        return 1 << self.n

    def value(self, assignment: int) -> int:
        """Function value on the assignment encoded as an integer."""
        if not 0 <= assignment < self.size:
            raise ValueError("assignment out of range")
        return (self.bits >> assignment) & 1

    def eval(self, inputs: Sequence[int]) -> int:
        """Function value on an explicit 0/1 input vector."""
        if len(inputs) != self.n:
            raise ValueError(f"expected {self.n} inputs, got {len(inputs)}")
        idx = 0
        for j, v in enumerate(inputs):
            if v:
                idx |= 1 << j
        return (self.bits >> idx) & 1

    def is_const(self) -> bool:
        """True when the function is constant 0 or constant 1."""
        return self.bits == 0 or self.bits == (1 << self.size) - 1

    def count_ones(self) -> int:
        """Number of satisfying assignments (minterm count)."""
        return bin(self.bits).count("1")

    def depends_on(self, i: int) -> bool:
        """True when the function essentially depends on variable ``i``."""
        return self.cofactor_keep(i, 0).bits != self.cofactor_keep(i, 1).bits

    def support(self) -> Tuple[int, ...]:
        """Indices of the variables the function essentially depends on."""
        return tuple(i for i in range(self.n) if self.depends_on(i))

    def to_array(self) -> Any:
        """Output column as a numpy uint8 vector of length ``2**n``.

        Requires the ``[vector]`` extra; iterate :meth:`value` (or use
        the bits directly) for a dependency-free column.
        """
        np = require_numpy("TruthTable.to_array")
        nbytes = (self.size + 7) // 8
        raw = np.frombuffer(self.bits.to_bytes(nbytes, "little"), dtype=np.uint8)
        return np.unpackbits(raw, bitorder="little")[: self.size]

    # ------------------------------------------------------------------
    # Boolean algebra
    # ------------------------------------------------------------------
    def _binop(self, other: "TruthTable", fn: Callable[[int, int], int]) -> "TruthTable":
        if not isinstance(other, TruthTable):
            return NotImplemented  # type: ignore[return-value]
        if other.n != self.n:
            raise ValueError("arity mismatch in truth table operation")
        return TruthTable(self.n, fn(self.bits, other.bits) & ((1 << self.size) - 1))

    def __and__(self, other: "TruthTable") -> "TruthTable":
        return self._binop(other, lambda a, b: a & b)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        return self._binop(other, lambda a, b: a | b)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        return self._binop(other, lambda a, b: a ^ b)

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.n, self.bits ^ ((1 << self.size) - 1))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TruthTable)
            and other.n == self.n
            and other.bits == self.bits
        )

    def __hash__(self) -> int:
        h = object.__getattribute__(self, "_hash")
        if h is None:
            h = hash((self.n, self.bits))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        if self.n <= 6:
            digits = (self.size + 3) // 4
            return f"TruthTable({self.n}, 0x{self.bits:0{digits}x})"
        return f"TruthTable({self.n} vars, {self.count_ones()} minterms)"

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def cofactor_keep(self, i: int, val: int) -> "TruthTable":
        """Cofactor w.r.t. ``x_i = val`` keeping the original arity.

        Rows where ``x_i != val`` are overwritten by their mirror rows, so
        the result no longer depends on ``x_i``.
        """
        if not 0 <= i < self.n:
            raise ValueError(f"variable index {i} outside [0, {self.n})")
        mask = TruthTable.var(i, self.n).bits
        full = (1 << self.size) - 1
        if val:
            high = self.bits & mask
            return TruthTable(self.n, high | (high >> (1 << i)))
        low = self.bits & (full ^ mask)
        return TruthTable(self.n, low | ((low << (1 << i)) & full))

    def cofactor(self, i: int, val: int) -> "TruthTable":
        """Cofactor w.r.t. ``x_i = val`` with variable ``i`` removed.

        Variables above ``i`` shift down by one position.
        """
        kept = self.cofactor_keep(i, val)
        return kept.remove_var(i)

    def remove_var(self, i: int) -> "TruthTable":
        """Drop variable ``i`` (which must be non-essential)."""
        if self.depends_on(i):
            raise ValueError(f"variable {i} is essential; cannot remove")
        # Keep the x_i = 0 rows (blocks of 2**i bits at stride 2**(i+1)),
        # then close the gaps by doubling the block size each pass.
        block = 1 << i
        total = 1 << self.n
        bits = self.bits & _periodic_mask((1 << block) - 1, 2 * block, total)
        size = block
        while size < total >> 1:
            even = _periodic_mask((1 << size) - 1, 4 * size, total)
            bits = (bits & even) | ((bits >> size) & (even << size))
            size <<= 1
        return TruthTable(self.n - 1, bits)

    def permute(self, perm: Sequence[int]) -> "TruthTable":
        """Reorder variables: new variable ``j`` is old variable ``perm[j]``.

        ``perm`` must be a permutation of ``range(n)``.  The resulting table
        ``g`` satisfies ``g(y0..y{n-1}) = f(x)`` with ``x[perm[j]] = y[j]``.
        """
        if sorted(perm) != list(range(self.n)):
            raise ValueError("perm must be a permutation of range(n)")
        if list(perm) == list(range(self.n)):
            return self
        # Cycle-sort the variables into place; each transposition is one
        # delta-swap over the packed bits (no array materialization).
        n = self.n
        bits = self.bits
        pos = list(range(n))  # pos[old_var] = its current table position
        cur = list(range(n))  # cur[position] = the old var sitting there
        for j in range(n):
            want = perm[j]
            p = pos[want]
            if p != j:
                bits = _swap_vars_bits(bits, n, j, p)
                other = cur[j]
                cur[j], cur[p] = want, other
                pos[want], pos[other] = j, p
        return TruthTable(n, bits)

    def extend(self, n: int, placement: Sequence[int]) -> "TruthTable":
        """Embed into a larger arity ``n``: old var ``j`` becomes ``placement[j]``."""
        if n < self.n:
            raise ValueError("cannot extend to a smaller arity")
        if len(set(placement)) != self.n or any(not 0 <= p < n for p in placement):
            raise ValueError("placement must be distinct indices below n")
        # Replicate up to arity n (new high variables are don't-care),
        # then permute old var j into position placement[j].
        bits = self.bits
        size = self.size
        while size < (1 << n):
            bits |= bits << size
            size <<= 1
        perm = [-1] * n
        for j, p in enumerate(placement):
            perm[p] = j
        extra = iter(range(self.n, n))
        for q in range(n):
            if perm[q] < 0:
                perm[q] = next(extra)
        return TruthTable(n, bits).permute(perm)

    def compose(self, i: int, g: "TruthTable") -> "TruthTable":
        """Substitute function ``g`` (same arity) for variable ``i``."""
        if g.n != self.n:
            raise ValueError("compose requires matching arities")
        f1 = self.cofactor_keep(i, 1)
        f0 = self.cofactor_keep(i, 0)
        return (g & f1) | (~g & f0)

    def shrink_to_support(self) -> Tuple["TruthTable", Tuple[int, ...]]:
        """Project onto the essential support.

        Returns ``(g, support)`` where ``g`` has arity ``len(support)`` and
        ``g(x[support[0]], ...) == f(x)``.
        """
        sup = self.support()
        table = self
        removed = 0
        for i in range(self.n):
            if i not in sup:
                table = table.remove_var(i - removed)
                removed += 1
        return table, sup

    # ------------------------------------------------------------------
    # Decomposition support
    # ------------------------------------------------------------------
    def columns(self, bound: Sequence[int]) -> List[int]:
        """Decomposition chart columns for a bound set of variables.

        For the (disjoint) partition ``bound`` / ``free = rest``, returns a
        list of Python ints of length ``2**|bound|`` where
        entry ``b`` packs the sub-function ``f(bound := b, free)`` as
        ``2**|free|`` bits (free variables in ascending original order).
        The number of distinct entries is the classical Roth-Karp *column
        multiplicity* ``mu``: ``f`` has a disjoint decomposition
        ``f = g(alpha_1(bound) .. alpha_t(bound), free)`` iff
        ``mu <= 2**t``.
        """
        bound = list(bound)
        if len(set(bound)) != len(bound) or any(not 0 <= b < self.n for b in bound):
            raise ValueError("bound set must be distinct variable indices")
        free = [i for i in range(self.n) if i not in bound]
        perm = free + bound  # new var j <- old var perm[j]: free vars low
        reordered = self.permute(perm)
        chunk = 1 << len(free)
        mask = (1 << chunk) - 1
        bits = reordered.bits
        return [
            (bits >> (b * chunk)) & mask for b in range(1 << len(bound))
        ]

    def column_multiplicity(self, bound: Sequence[int]) -> int:
        """Roth-Karp column multiplicity for the given bound set."""
        return len(set(self.columns(bound)))
