"""Packed truth tables for Boolean functions of a bounded number of variables.

A :class:`TruthTable` represents a completely specified Boolean function of
``n`` ordered variables as ``2**n`` bits packed into a Python integer.  Bit
``i`` of :attr:`TruthTable.bits` is the function value on the input
assignment encoded by ``i``, with variable 0 in the least significant
position (``x0 = i & 1``, ``x1 = (i >> 1) & 1``, ...).

Truth tables are the workhorse function representation of this project: the
cones resynthesized by TurboSYN are bounded to ``Cmax = 15`` inputs, so a
dense table (at most ``2**15`` bits, i.e. 4 KiB) is both exact and fast.
Tables are immutable and hashable; bulk operations use numpy internally.

The companion :mod:`repro.boolfn.bdd` module provides a ROBDD engine used to
cross-check decompositions and for equivalence checking of larger functions.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

#: Hard cap on the number of variables of a dense table.  ``2**MAX_VARS``
#: bits must stay cheap to copy; 20 variables is a 128 KiB table.
MAX_VARS = 20


def _check_nvars(n: int) -> None:
    if not 0 <= n <= MAX_VARS:
        raise ValueError(f"truth table arity {n} outside [0, {MAX_VARS}]")


class TruthTable:
    """An immutable, completely specified Boolean function of ``n`` variables.

    Parameters
    ----------
    n:
        Number of input variables (0 to :data:`MAX_VARS`).
    bits:
        The ``2**n`` function bits packed into an int (bit ``i`` is the value
        on assignment ``i``).  Bits above ``2**n`` must be zero.
    """

    __slots__ = ("n", "bits", "_hash")

    def __init__(self, n: int, bits: int) -> None:
        _check_nvars(n)
        size = 1 << n
        if bits < 0 or bits >> size:
            raise ValueError("bits outside table range")
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "bits", bits)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("TruthTable is immutable")

    def __reduce__(self) -> Tuple[type, Tuple[int, int]]:
        # The default slots protocol restores via setattr, which the
        # immutability guard rejects; rebuild through the constructor so
        # tables survive pickling (spawn-start worker processes receive
        # circuits that way).
        return (type(self), (self.n, self.bits))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def const(cls, n: int, value: bool) -> "TruthTable":
        """The constant-``value`` function of ``n`` variables."""
        _check_nvars(n)
        bits = ((1 << (1 << n)) - 1) if value else 0
        return cls(n, bits)

    @classmethod
    def var(cls, i: int, n: int) -> "TruthTable":
        """The projection function ``f(x) = x_i`` over ``n`` variables."""
        _check_nvars(n)
        if not 0 <= i < n:
            raise ValueError(f"variable index {i} outside [0, {n})")
        period = 1 << (i + 1)
        half = 1 << i
        block = ((1 << half) - 1) << half  # one period: low half 0, high half 1
        table = 0
        width = period
        # Double the pattern until it spans the full table.
        full = 1 << n
        table = block
        while width < full:
            table |= table << width
            width <<= 1
        return cls(n, table)

    @classmethod
    def from_values(cls, values: Sequence[int]) -> "TruthTable":
        """Build a table from an explicit output column of length ``2**n``."""
        size = len(values)
        n = size.bit_length() - 1
        if 1 << n != size:
            raise ValueError("length of values must be a power of two")
        bits = 0
        for i, v in enumerate(values):
            if v:
                bits |= 1 << i
        return cls(n, bits)

    @classmethod
    def from_function(cls, n: int, fn: Callable[..., bool]) -> "TruthTable":
        """Build a table by evaluating ``fn(x0, x1, ..., x{n-1})`` everywhere."""
        _check_nvars(n)
        bits = 0
        for i in range(1 << n):
            args = [(i >> j) & 1 for j in range(n)]
            if fn(*args):
                bits |= 1 << i
        return cls(n, bits)

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "TruthTable":
        """Build a table from a numpy 0/1 vector of length ``2**n``."""
        arr = np.asarray(arr, dtype=np.uint8).ravel()
        packed = np.packbits(arr, bitorder="little")
        return cls(len(arr).bit_length() - 1, int.from_bytes(packed.tobytes(), "little"))

    @classmethod
    def random(cls, n: int, rng: "np.random.Generator") -> "TruthTable":
        """A uniformly random function of ``n`` variables."""
        _check_nvars(n)
        nbytes = max(1, (1 << n) // 8) if n >= 3 else 1
        raw = int.from_bytes(rng.bytes(nbytes), "little")
        return cls(n, raw & ((1 << (1 << n)) - 1))

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of rows (``2**n``)."""
        return 1 << self.n

    def value(self, assignment: int) -> int:
        """Function value on the assignment encoded as an integer."""
        if not 0 <= assignment < self.size:
            raise ValueError("assignment out of range")
        return (self.bits >> assignment) & 1

    def eval(self, inputs: Sequence[int]) -> int:
        """Function value on an explicit 0/1 input vector."""
        if len(inputs) != self.n:
            raise ValueError(f"expected {self.n} inputs, got {len(inputs)}")
        idx = 0
        for j, v in enumerate(inputs):
            if v:
                idx |= 1 << j
        return (self.bits >> idx) & 1

    def is_const(self) -> bool:
        """True when the function is constant 0 or constant 1."""
        return self.bits == 0 or self.bits == (1 << self.size) - 1

    def count_ones(self) -> int:
        """Number of satisfying assignments (minterm count)."""
        return bin(self.bits).count("1")

    def depends_on(self, i: int) -> bool:
        """True when the function essentially depends on variable ``i``."""
        return self.cofactor_keep(i, 0).bits != self.cofactor_keep(i, 1).bits

    def support(self) -> Tuple[int, ...]:
        """Indices of the variables the function essentially depends on."""
        return tuple(i for i in range(self.n) if self.depends_on(i))

    def to_array(self) -> np.ndarray:
        """Output column as a numpy uint8 vector of length ``2**n``."""
        nbytes = (self.size + 7) // 8
        raw = np.frombuffer(self.bits.to_bytes(nbytes, "little"), dtype=np.uint8)
        return np.unpackbits(raw, bitorder="little")[: self.size]

    # ------------------------------------------------------------------
    # Boolean algebra
    # ------------------------------------------------------------------
    def _binop(self, other: "TruthTable", fn: Callable[[int, int], int]) -> "TruthTable":
        if not isinstance(other, TruthTable):
            return NotImplemented  # type: ignore[return-value]
        if other.n != self.n:
            raise ValueError("arity mismatch in truth table operation")
        return TruthTable(self.n, fn(self.bits, other.bits) & ((1 << self.size) - 1))

    def __and__(self, other: "TruthTable") -> "TruthTable":
        return self._binop(other, lambda a, b: a & b)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        return self._binop(other, lambda a, b: a | b)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        return self._binop(other, lambda a, b: a ^ b)

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.n, self.bits ^ ((1 << self.size) - 1))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TruthTable)
            and other.n == self.n
            and other.bits == self.bits
        )

    def __hash__(self) -> int:
        h = object.__getattribute__(self, "_hash")
        if h is None:
            h = hash((self.n, self.bits))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        if self.n <= 6:
            digits = (self.size + 3) // 4
            return f"TruthTable({self.n}, 0x{self.bits:0{digits}x})"
        return f"TruthTable({self.n} vars, {self.count_ones()} minterms)"

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def cofactor_keep(self, i: int, val: int) -> "TruthTable":
        """Cofactor w.r.t. ``x_i = val`` keeping the original arity.

        Rows where ``x_i != val`` are overwritten by their mirror rows, so
        the result no longer depends on ``x_i``.
        """
        if not 0 <= i < self.n:
            raise ValueError(f"variable index {i} outside [0, {self.n})")
        mask = TruthTable.var(i, self.n).bits
        full = (1 << self.size) - 1
        if val:
            high = self.bits & mask
            return TruthTable(self.n, high | (high >> (1 << i)))
        low = self.bits & (full ^ mask)
        return TruthTable(self.n, low | ((low << (1 << i)) & full))

    def cofactor(self, i: int, val: int) -> "TruthTable":
        """Cofactor w.r.t. ``x_i = val`` with variable ``i`` removed.

        Variables above ``i`` shift down by one position.
        """
        kept = self.cofactor_keep(i, val)
        return kept.remove_var(i)

    def remove_var(self, i: int) -> "TruthTable":
        """Drop variable ``i`` (which must be non-essential)."""
        if self.depends_on(i):
            raise ValueError(f"variable {i} is essential; cannot remove")
        arr = self.to_array().reshape([2] * self.n)
        # numpy axis 0 corresponds to the most significant variable.
        axis = self.n - 1 - i
        sub = np.take(arr, 0, axis=axis)
        return TruthTable.from_array(sub.ravel())

    def permute(self, perm: Sequence[int]) -> "TruthTable":
        """Reorder variables: new variable ``j`` is old variable ``perm[j]``.

        ``perm`` must be a permutation of ``range(n)``.  The resulting table
        ``g`` satisfies ``g(y0..y{n-1}) = f(x)`` with ``x[perm[j]] = y[j]``.
        """
        if sorted(perm) != list(range(self.n)):
            raise ValueError("perm must be a permutation of range(n)")
        if list(perm) == list(range(self.n)):
            return self
        arr = self.to_array().reshape([2] * self.n)
        # arr axes are ordered most-significant-first: axis a <-> var n-1-a.
        # We want out[idx with y_j at position j] = f(x with x_perm[j]=y_j),
        # i.e. axis for new var j must be the old axis of var perm[j].
        axes = [self.n - 1 - perm[self.n - 1 - a] for a in range(self.n)]
        out = np.transpose(arr, axes)
        return TruthTable.from_array(out.ravel())

    def extend(self, n: int, placement: Sequence[int]) -> "TruthTable":
        """Embed into a larger arity ``n``: old var ``j`` becomes ``placement[j]``."""
        if n < self.n:
            raise ValueError("cannot extend to a smaller arity")
        if len(set(placement)) != self.n or any(not 0 <= p < n for p in placement):
            raise ValueError("placement must be distinct indices below n")
        arr = self.to_array()
        idx = np.arange(1 << n)
        small_idx = np.zeros(1 << n, dtype=np.int64)
        for j, p in enumerate(placement):
            small_idx |= (((idx >> p) & 1) << j).astype(np.int64)
        return TruthTable.from_array(arr[small_idx])

    def compose(self, i: int, g: "TruthTable") -> "TruthTable":
        """Substitute function ``g`` (same arity) for variable ``i``."""
        if g.n != self.n:
            raise ValueError("compose requires matching arities")
        f1 = self.cofactor_keep(i, 1)
        f0 = self.cofactor_keep(i, 0)
        return (g & f1) | (~g & f0)

    def shrink_to_support(self) -> Tuple["TruthTable", Tuple[int, ...]]:
        """Project onto the essential support.

        Returns ``(g, support)`` where ``g`` has arity ``len(support)`` and
        ``g(x[support[0]], ...) == f(x)``.
        """
        sup = self.support()
        table = self
        removed = 0
        for i in range(self.n):
            if i not in sup:
                table = table.remove_var(i - removed)
                removed += 1
        return table, sup

    # ------------------------------------------------------------------
    # Decomposition support
    # ------------------------------------------------------------------
    def columns(self, bound: Sequence[int]) -> np.ndarray:
        """Decomposition chart columns for a bound set of variables.

        For the (disjoint) partition ``bound`` / ``free = rest``, returns a
        1-D object array of Python ints of shape ``(2**|bound|,)`` where
        entry ``b`` packs the sub-function ``f(bound := b, free)`` as
        ``2**|free|`` bits (free variables in ascending original order).
        The number of distinct entries is the classical Roth-Karp *column
        multiplicity* ``mu``: ``f`` has a disjoint decomposition
        ``f = g(alpha_1(bound) .. alpha_t(bound), free)`` iff
        ``mu <= 2**t``.
        """
        bound = list(bound)
        if len(set(bound)) != len(bound) or any(not 0 <= b < self.n for b in bound):
            raise ValueError("bound set must be distinct variable indices")
        free = [i for i in range(self.n) if i not in bound]
        perm = free + bound  # new var j <- old var perm[j]: free vars low
        reordered = self.permute(perm)
        chunk = 1 << len(free)
        mask = (1 << chunk) - 1
        bits = reordered.bits
        out = np.empty(1 << len(bound), dtype=object)
        for b in range(1 << len(bound)):
            out[b] = (bits >> (b * chunk)) & mask
        return out

    def column_multiplicity(self, bound: Sequence[int]) -> int:
        """Roth-Karp column multiplicity for the given bound set."""
        cols = self.columns(bound)
        return len(set(cols.tolist()))
