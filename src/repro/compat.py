"""Optional-dependency shims: numpy as an opt-in accelerator.

numpy moved from a hard dependency to the ``[vector]`` extra when the
vectorized batch kernel landed (:mod:`repro.kernel.batch`).  Everything
the paper reproduction *needs* — labels, cuts, mapping, retiming,
verification — runs on pure-Python integer kernels; numpy buys speed
(the ``--kernel vector`` stacked-arena flow solver, the vectorized
Bellman-Ford in :mod:`repro.retime.mdr`) and the exact benchmark-suite
generator streams (``numpy.random.Generator``).

This module centralizes the import guard:

``HAVE_NUMPY`` / ``np``
    ``np`` is the numpy module when importable, else ``None``.  Hot
    modules branch on ``HAVE_NUMPY`` once instead of re-trying the
    import.

``require_numpy(feature)``
    Raise a :class:`MissingDependency` naming the feature and the
    install command, for APIs that are numpy-only by contract
    (``TruthTable.from_array`` and friends).

``default_rng(seed)``
    ``numpy.random.default_rng`` when numpy is present — so the
    benchmark suite circuits are bit-identical to the published
    baselines — and a deterministic pure-Python stand-in otherwise.
    The two streams differ; code that needs cross-environment identical
    artifacts must not mix environments, which is why the committed
    ``benchmarks/baseline.json`` is always regenerated with numpy.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Union

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as _numpy

    np: Any = _numpy
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None
    HAVE_NUMPY = False


class MissingDependency(RuntimeError):
    """An optional dependency is required for the requested feature."""


def require_numpy(feature: str) -> Any:
    """Return the numpy module or raise a :class:`MissingDependency`.

    ``feature`` names what the caller was trying to do, so the error
    points at the fix (``pip install 'repro[vector]'``) instead of a
    bare ImportError deep inside a kernel.
    """
    if not HAVE_NUMPY:
        raise MissingDependency(
            f"{feature} requires numpy; install the vector extra: "
            "pip install 'repro[vector]'"
        )
    return np


class PureRng:
    """Deterministic stand-in for ``numpy.random.Generator``.

    Backed by :class:`random.Random` (Mersenne Twister).  Implements the
    small Generator surface the suite generators and simulators use:
    ``random``, ``integers``, ``choice``, ``bytes``.  The stream differs
    from numpy's PCG64, so circuits generated without numpy are valid
    but not bit-identical to the numpy-generated ones; all differential
    tests compare within one environment, never across.
    """

    def __init__(self, seed: int) -> None:
        import random

        self._rng = random.Random(seed)

    def random(self) -> float:
        return self._rng.random()

    def integers(self, low: int, high: Optional[int] = None) -> int:
        if high is None:
            low, high = 0, low
        if high <= low:
            raise ValueError("high must exceed low")
        return self._rng.randrange(low, high)

    def choice(
        self,
        a: Union[int, Sequence[Any]],
        size: Optional[int] = None,
        replace: bool = True,
    ) -> Any:
        pool: List[Any] = list(range(a)) if isinstance(a, int) else list(a)
        if size is None:
            return pool[self._rng.randrange(len(pool))]
        if replace:
            return [pool[self._rng.randrange(len(pool))] for _ in range(size)]
        return self._rng.sample(pool, size)

    def bytes(self, length: int) -> bytes:
        return self._rng.getrandbits(8 * length).to_bytes(length, "little")


def default_rng(seed: int) -> Any:
    """``numpy.random.default_rng`` or the pure fallback (see module doc)."""
    if HAVE_NUMPY:
        return np.random.default_rng(seed)
    return PureRng(seed)
