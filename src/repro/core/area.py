"""Area stage: label relaxation + packing (paper Section "LUT reduction").

TurboSYN pays for its clock-period wins with duplicated logic (every
resynthesized node becomes a small LUT tree).  The paper lists three
recovery techniques; this module implements them on top of the recorded
realizations:

* **label relaxation** — "not using the resynthesized results of some
  nodes and increasing their labels if no positive loops will occur": a
  resynthesized node ``v`` whose consumers have slack (their cut heights
  sit strictly below their labels) may take a *higher* effective label,
  at which a plain single-LUT K-cut often exists again.  Respecting the
  per-use invariant ``l_eff(u) - phi*w + 1 <= l_eff(c)`` keeps every
  mapped cycle at ``d(C) <= phi * w(C)``, so no positive loop can appear.
* **low-cost cuts** — the max-volume min-cut choice of
  :mod:`repro.core.kcut` maximizes input sharing per LUT.
* **mpack/flow-pack** — :func:`repro.comb.pack.pack_luts` merges duplicate
  LUTs and absorbs single-fanout predecessors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.comb.pack import pack_luts
from repro.core.kcut import find_height_cut
from repro.core.mapping import (
    MappingError,
    Realization,
    generate_mapping,
    realize_node,
)
from repro.core.seqdecomp import DEFAULT_CMAX
from repro.netlist.graph import NodeKind, SeqCircuit

#: Relaxation never raises a label by more than this many levels (the
#: useful window is small: one or two levels usually restores a K-cut).
MAX_RELAX = 8


def relaxed_realizations(
    circuit: SeqCircuit,
    phi: int,
    labels: List[int],
    k: int,
    cmax: int = DEFAULT_CMAX,
    extra_depth: int = 0,
) -> Tuple[Dict[int, Realization], Dict[int, int]]:
    """Realize all needed nodes, relaxing resynthesized ones where possible.

    Returns ``(realizations, effective_labels)``; feed the realizations to
    :func:`repro.core.mapping.generate_mapping`.
    """
    eff: List[int] = list(labels)
    chosen: Dict[int, Realization] = {}
    needed: List[int] = []
    seen = set()

    def require(src: int) -> None:
        if circuit.kind(src) is NodeKind.GATE and src not in seen:
            seen.add(src)
            needed.append(src)

    def height_fn(u: int, w: int) -> int:
        return eff[u] - phi * w + 1

    def slack_of(v: int) -> int:
        """How far ``l_eff(v)`` may rise without breaking a realized use."""
        slack = MAX_RELAX
        for c, real in chosen.items():
            for (u, w) in real.cut:
                if u == v:
                    slack = min(slack, eff[c] - (eff[v] - phi * w + 1))
                    if slack <= 0:
                        return 0
        return max(slack, 0)

    def consumers_settled(v: int) -> bool:
        """True when every potential reader of ``v`` is already realized.

        In cyclic regions the BFS can reach a producer before one of its
        consumers; raising the producer then would invalidate a cut that
        has not been accounted yet, so relaxation is limited to nodes
        whose gate fanouts are all settled (POs never constrain —
        pipelining absorbs their latency).
        """
        for dst, _w in circuit.fanouts(v):
            if circuit.kind(dst) is NodeKind.GATE and dst not in chosen:
                return False
        return True

    # Consumers are discovered (and usually finalized) before their
    # inputs, so a raise here only loosens constraints computed later;
    # ``consumers_settled`` guards the cyclic exceptions.  Self-uses stay
    # valid automatically: a self copy carries w >= 1 registers, so its
    # height grows by at most the threshold raise.
    for po in circuit.pos:
        require(circuit.fanins(po)[0].src)
    idx = 0
    while idx < len(needed):
        v = needed[idx]
        idx += 1
        real = realize_node(
            circuit, v, phi, eff, k, cmax, allow_resyn=True,
            extra_depth=extra_depth,
        )
        if real.resyn is not None and consumers_settled(v):
            for t in range(1, slack_of(v) + 1):
                cut = find_height_cut(
                    circuit, v, phi, height_fn, eff[v] + t, max_cut=k,
                    extra_depth=extra_depth,
                )
                if cut is not None:
                    eff[v] += t
                    real = Realization(cut=tuple(cut))
                    break
        chosen[v] = real
        for (u, _w) in real.cut:
            require(u)
    return chosen, {v: eff[v] for v in needed}


def map_with_area_recovery(
    circuit: SeqCircuit,
    phi: int,
    labels: List[int],
    k: int,
    cmax: int = DEFAULT_CMAX,
    extra_depth: int = 0,
    name: Optional[str] = None,
    relax: bool = True,
    pack: bool = True,
) -> SeqCircuit:
    """Mapping generation with the full area stage applied.

    Label relaxation is best-effort: raising a node's effective label can,
    through deep reconvergence in the expanded circuits, invalidate the
    realization of a not-yet-visited *transitive* consumer.  When that
    happens the relaxation pass is abandoned and the plain (unrelaxed)
    mapping is generated instead — never a worse clock period, only a
    missed area opportunity.
    """
    realizations = None
    if relax:
        try:
            realizations, _eff = relaxed_realizations(
                circuit, phi, labels, k, cmax, extra_depth
            )
        except MappingError:
            realizations = None
    mapped = generate_mapping(
        circuit,
        phi,
        labels,
        k,
        cmax=cmax,
        allow_resyn=True,
        extra_depth=extra_depth,
        name=name,
        realizations=realizations,
    )
    if pack:
        mapped = pack_luts(mapped, k)
    return mapped
