"""TurboSYN: FPGA synthesis with retiming and pipelining (the paper).

The complete algorithm of Figure 4:

1. run TurboMap to obtain an upper bound ``UB`` of the minimum MDR ratio;
2. binary search ``phi`` in ``[1, UB]``; each probe runs the label
   computation with **sequential functional decomposition** — when no
   K-feasible cut of height ``L(v)`` exists, wider min-cuts (up to
   ``Cmax = 15`` inputs) of decreasing height are Roth-Karp-decomposed
   into K-LUT trees whose root still meets the label
   (:mod:`repro.core.seqdecomp`) — and positive loop detection
   (:mod:`repro.core.labels`);
3. regenerate the mapping at the optimum, resynthesizing only the nodes
   that need it, and leave clock-period realization to pipelining +
   retiming (:mod:`repro.retime.pipeline`).

Compared to TurboMap the clock period drops (the paper reports 1.96x on
average) at some LUT-count cost, which the area stage
(:mod:`repro.core.area`, :mod:`repro.comb.pack`) partially recovers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.core.driver import SeqMapResult, run_mapper
from repro.core.expanded import DEFAULT_MAX_COPIES
from repro.core.seqdecomp import DEFAULT_CMAX
from repro.core.turbomap import turbomap
from repro.netlist.graph import SeqCircuit
from repro.resilience.budget import Budget

if TYPE_CHECKING:
    from repro.core.labels import LabelOutcome


def turbosyn(
    circuit: SeqCircuit,
    k: int = 5,
    cmax: int = DEFAULT_CMAX,
    pld: bool = True,
    extra_depth: int = 0,
    upper_bound: Optional[int] = None,
    name: Optional[str] = None,
    workers: int = 1,
    check: bool = True,
    budget: Optional[Budget] = None,
    engine: str = "worklist",
    warm_start: bool = True,
    max_copies: int = DEFAULT_MAX_COPIES,
    flow: str = "dinic",
    kernel: str = "compiled",
    prev_result: Optional[SeqMapResult] = None,
    dirty: Optional[Set[int]] = None,
    outcomes: Optional[Dict[int, "LabelOutcome"]] = None,
    csr_handle: Optional[object] = None,
    cache: Optional[object] = None,
) -> SeqMapResult:
    """Map ``circuit`` onto K-LUTs minimizing the MDR ratio with
    sequential functional decomposition.

    ``upper_bound`` defaults to a fresh TurboMap run's optimum, exactly as
    the paper's Figure 4 prescribes; pass a known value to skip that run.
    ``workers > 1`` probes candidate periods in parallel (both for the
    TurboMap bound and the TurboSYN search).  ``check`` verifies the
    final mapping against the paper's invariants (:mod:`repro.analysis`);
    the intermediate TurboMap bound run is never re-verified.
    ``budget`` is shared across the bound computation and the main
    search: its deadline covers both, and its resilience state (degraded
    marker, attempt count) accumulates over the whole pipeline.
    ``engine``, ``warm_start`` and ``max_copies`` select the label engine
    (see :class:`repro.core.labels.LabelSolver`), cross-probe label
    seeding, and the partial-expansion safety bound; ``flow`` and
    ``kernel`` select the max-flow engine and copy representation
    (:mod:`repro.kernel`).  All of them apply to the TurboMap bound run
    too and leave the results bit-identical.

    ``prev_result`` + ``dirty`` repair a previous TurboSYN result of
    this circuit incrementally after a k-gate edit (prefer
    :func:`repro.incremental.remap`).  The TurboMap bound run stays
    cold — exactly what a cold TurboSYN would execute — so the main
    search sees the same upper bound and probes the same phi set.

    ``outcomes`` seeds the probe cache of the *main* (resynthesizing)
    search only — bound-run probes answer a different question, so a
    resuming caller (:mod:`repro.serve`) journals the bound separately
    and passes it back as ``upper_bound``.  ``csr_handle`` reuses an
    already-published compiled-circuit handle for both stages' fleets.

    ``cache`` (a persistent :class:`repro.cache.OutcomeCache`) warms
    both stages across processes: the bound run's probes answer under
    the TurboMap key (``resynthesize=False``), the main search under
    the TurboSYN key, and an exact full hit on the latter replays the
    verified result without searching (the bound run is then skipped
    along with the search).
    """
    if budget is not None:
        budget.start()  # the deadline clock covers the TurboMap bound too
    if upper_bound is None and cache is not None and check:
        # An exact cached final for this key replays without searching,
        # making the bound run pointless work — probe the cache first.
        from repro.cache.store import cache_key as build_cache_key

        ckey = build_cache_key(
            circuit, k, True, cmax=cmax, pld=pld, extra_depth=extra_depth,
            io_constrained=False, max_copies=max_copies,
        )
        final = cache.get_final(ckey)
        if final is not None:
            # Any feasible period works as the search bound, and the
            # recorded optimum is one (run_mapper still re-verifies the
            # replayed result before trusting it).
            upper_bound = int(final["phi"])
    if upper_bound is None:
        upper_bound = turbomap(
            circuit, k, pld=pld, extra_depth=extra_depth, workers=workers,
            check=False, budget=budget,
            engine=engine, warm_start=warm_start, max_copies=max_copies,
            flow=flow, kernel=kernel, csr_handle=csr_handle, cache=cache,
        ).phi
    return run_mapper(
        circuit,
        k,
        algorithm="turbosyn",
        resynthesize=True,
        upper_bound=upper_bound,
        cmax=cmax,
        pld=pld,
        extra_depth=extra_depth,
        name=name or f"{circuit.name}_turbosyn",
        workers=workers,
        check=check,
        budget=budget,
        engine=engine,
        warm_start=warm_start,
        max_copies=max_copies,
        flow=flow,
        kernel=kernel,
        prev_result=prev_result,
        dirty=dirty,
        outcomes=outcomes,
        csr_handle=csr_handle,
        cache=cache,
    )
