"""Height-constrained K-feasible cuts on expanded circuits.

The TurboMap label update [11] asks: *does ``E_v`` have a K-feasible cut
of height at most ``L``?*  Following the paper, the partial expansion
(copies above the height threshold collapsed into the sink, copies at or
below it as unit-capacity candidates) turns the question into a bounded
max-flow: a cut of at most ``K`` nodes exists iff the max flow is at most
``K``, and the residual min-cut *is* the LUT input set.

The same machinery with the looser bound ``Cmax`` produces the wider
min-cuts that TurboSYN's sequential functional decomposition resynthesizes
(:mod:`repro.core.seqdecomp`).

The returned min-cut is the max-volume one (closest to the source), which
makes each LUT swallow as much logic as possible — the low-cost choice
the paper uses for area.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

from repro.comb.maxflow import SplitNetwork
from repro.core.expanded import Copy, PartialExpansion, expand_partial
from repro.kernel.expand import PackedCutArena, PackedExpansion, cut_on_packed
from repro.netlist.graph import SeqCircuit


def find_height_cut(
    circuit: SeqCircuit,
    v: int,
    phi: int,
    height_of: Callable[[int, int], int],
    threshold: int,
    max_cut: int,
    extra_depth: int = 0,
    max_copies: Optional[int] = None,
) -> Optional[List[Copy]]:
    """A cut of ``E_v`` with height ``<= threshold`` and at most
    ``max_cut`` nodes, or ``None``.

    ``height_of(u, w)`` must return ``l(u) - phi*w + 1`` under the current
    label lower bounds.  The expansion itself certifies height feasibility
    (every candidate or leaf copy is at or below the threshold); the flow
    bounds the cut size.  ``extra_depth`` expands through candidate copies
    below the threshold (see :mod:`repro.core.expanded`).
    """
    kwargs = {} if max_copies is None else {"max_copies": max_copies}
    expansion = expand_partial(
        circuit, v, phi, height_of, threshold, extra_depth=extra_depth,
        **kwargs,
    )
    return cut_on_expansion(expansion, max_cut)


def cut_on_expansion(
    expansion: Union[PartialExpansion, PackedExpansion],
    max_cut: int,
    arena: Optional[Union[SplitNetwork, PackedCutArena]] = None,
) -> Optional[List[Copy]]:
    """Run the bounded flow on a prepared partial expansion.

    ``arena`` recycles a caller-owned :class:`SplitNetwork` (reset in
    place) instead of allocating a fresh one — the label solver reuses
    one arena across all of its flow queries.

    Accepts either engine's expansion: a
    :class:`~repro.kernel.expand.PackedExpansion` (compiled kernel) is
    routed to :func:`~repro.kernel.expand.cut_on_packed` and its cut
    decoded back to ``(u, w)`` tuples, so callers downstream of the
    label solver (sequential decomposition, mapping replay) see one cut
    type regardless of kernel.
    """
    if isinstance(expansion, PackedExpansion):
        packed_arena = arena if isinstance(arena, PackedCutArena) else None
        packed = cut_on_packed(expansion, max_cut, packed_arena)
        if packed is None:
            return None
        return expansion.unpack_copies(packed)
    if isinstance(arena, PackedCutArena):
        raise TypeError("PackedCutArena cannot back a tuple-copy expansion")
    if expansion.blocked:
        return None
    assert len(expansion.edges) == len(set(expansion.edges)), (
        "partial expansion carries duplicate (child, parent) edges"
    )
    if not expansion.leaves and not expansion.candidates:
        return []  # the cone closes on constant generators: zero inputs
    if arena is None:
        net = SplitNetwork()
    else:
        net = arena
        net.reset()
    for copy in expansion.interior:
        net.add_dag_node(copy, cuttable=False)
        net.attach_sink(copy)
    for copy in expansion.candidates:
        net.add_dag_node(copy, cuttable=True)
    for copy in expansion.leaves:
        net.add_dag_node(copy, cuttable=True)
        net.attach_source(copy)
    for child, parent in expansion.edges:
        net.add_dag_edge(child, parent)
    if net.max_flow(max_cut) > max_cut:
        return None
    cut = net.cut_nodes()
    cut.sort()
    return cut
