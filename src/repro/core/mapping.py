"""Mapping generation: turn converged labels into a LUT network.

After the label computation converges for the minimum feasible ``phi``,
every needed gate is realized by one LUT (or, for TurboSYN-resynthesized
nodes, a small LUT tree): its inputs are the copies ``u^w`` of a cut of
``E_v`` with height ``<= l(v)``, its function is the exact sequential cone
function between the cut and ``v``, and each input edge carries the copy's
register count ``w``.  Needed gates are discovered from the POs through
the chosen cuts (Pan-Liu / TurboMap mapping generation); the resulting
network has MDR ratio at most ``phi`` by the label invariants, which the
callers re-verify with :func:`repro.retime.mdr.min_feasible_period`.

The max-volume min-cut choice in :mod:`repro.core.kcut` plus the packing
pass of :mod:`repro.comb.pack` stand in for the paper's "label relaxation
+ low-cost K-cut + mpack/flowpack" area stage; the extra label-relaxation
move is implemented in :mod:`repro.core.area`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.expanded import Copy, ExpansionOverflow, sequential_cone_function
from repro.core.kcut import find_height_cut
from repro.core.seqdecomp import SeqResyn, find_seq_resynthesis
from repro.netlist.graph import NodeKind, SeqCircuit


class MappingError(RuntimeError):
    """The converged labels admit no realization (internal inconsistency)."""


@dataclass
class Realization:
    """How one subject gate is implemented in the mapped network."""

    cut: Tuple[Copy, ...]
    resyn: Optional[SeqResyn] = None  # set when a LUT tree realizes the node


def realize_node(
    circuit: SeqCircuit,
    v: int,
    phi: int,
    labels: List[int],
    k: int,
    cmax: int,
    allow_resyn: bool,
    extra_depth: int = 0,
    threshold: Optional[int] = None,
) -> Realization:
    """Choose the cut (or decomposition) realizing ``l(v)`` for gate ``v``."""

    def height_of(u: int, w: int) -> int:
        return labels[u] - phi * w + 1

    target = labels[v] if threshold is None else threshold
    cut = find_height_cut(
        circuit, v, phi, height_of, target, max_cut=k, extra_depth=extra_depth
    )
    if cut is not None:
        return Realization(cut=tuple(cut))
    if allow_resyn:
        entry = find_seq_resynthesis(
            circuit, v, phi, labels, target, k, cmax, extra_depth
        )
        if entry is not None:
            return Realization(cut=entry.cut, resyn=entry)
    # The worklist label engine re-anchors recorded cut witnesses at later
    # thresholds: the witness is a structural separator, so it certifies
    # the label as long as its member heights fit — even when it lies
    # *below* the extra_depth=0 expansion frontier (heights are not
    # monotone along register-crossing paths).  Such a label is genuine
    # but invisible to the frontier query above, so retry with the floor
    # dropped to zero or below: that expansion reaches every copy a
    # witness can name, and the witness itself bounds its flow by K.
    deep = max(extra_depth + 1, -(-target // phi))
    try:
        cut = find_height_cut(
            circuit, v, phi, height_of, target, max_cut=k, extra_depth=deep
        )
    except ExpansionOverflow:
        cut = None
    if cut is not None:
        return Realization(cut=tuple(cut))
    raise MappingError(
        f"no realization for {circuit.name_of(v)!r} at label {target} "
        f"(phi={phi}): label computation and mapping disagree"
    )


def generate_mapping(
    circuit: SeqCircuit,
    phi: int,
    labels: List[int],
    k: int,
    cmax: int = 15,
    allow_resyn: bool = False,
    extra_depth: int = 0,
    name: Optional[str] = None,
    realizations: Optional[Dict[int, Realization]] = None,
    realizations_out: Optional[Dict[int, Realization]] = None,
) -> SeqCircuit:
    """Materialize the LUT network selected by the converged labels.

    ``realizations`` may pre-seed choices (the area stage uses this to
    replace resynthesized realizations with relaxed plain cuts); remaining
    nodes are realized on demand.  ``realizations_out`` (when given)
    receives the realization actually chosen for every needed gate — the
    invariant verifier uses it to tell resynthesized LUT trees from plain
    cuts.
    """
    chosen: Dict[int, Realization] = dict(realizations or {})
    needed: List[int] = []
    seen = set()

    def require(src: int) -> None:
        if circuit.kind(src) is NodeKind.GATE and src not in seen:
            seen.add(src)
            needed.append(src)

    for po in circuit.pos:
        require(circuit.fanins(po)[0].src)
    idx = 0
    while idx < len(needed):
        v = needed[idx]
        idx += 1
        if v not in chosen:
            chosen[v] = realize_node(
                circuit, v, phi, labels, k, cmax, allow_resyn, extra_depth
            )
        for (u, _w) in chosen[v].cut:
            require(u)

    mapped = SeqCircuit(name or f"{circuit.name}_{'syn' if allow_resyn else 'map'}{phi}")
    new_id: Dict[int, int] = {}
    for pi in circuit.pis:
        new_id[pi] = mapped.add_pi(circuit.name_of(pi))

    # Phase 1: create all LUT nodes (placeholders allow feedback).
    tree_refs: Dict[int, List[int]] = {}
    for v in needed:
        real = chosen[v]
        base = circuit.name_of(v)
        if real.resyn is None:
            func = sequential_cone_function(circuit, v, list(real.cut))
            new_id[v] = mapped.add_gate_placeholder(base, func)
        else:
            refs = []
            luts = real.resyn.tree.luts
            for j, lut in enumerate(luts):
                is_root = j == len(luts) - 1
                gate_name = base if is_root else f"{base}~s{j}"
                refs.append(mapped.add_gate_placeholder(gate_name, lut.func))
            tree_refs[v] = refs
            new_id[v] = refs[-1]

    # Phase 2: wire fanins.
    for v in needed:
        real = chosen[v]
        if real.resyn is None:
            mapped.set_fanins(
                new_id[v], [(new_id[u], w) for (u, w) in real.cut]
            )
        else:
            refs = tree_refs[v]
            cut = real.resyn.cut
            for j, lut in enumerate(real.resyn.tree.luts):
                pins: List[Tuple[int, int]] = []
                for ref in lut.inputs:
                    if ref >= 0:
                        u, w = cut[ref]
                        pins.append((new_id[u], w))
                    else:
                        pins.append((refs[-1 - ref], 0))
                mapped.set_fanins(refs[j], pins)
    for po in circuit.pos:
        pin = circuit.fanins(po)[0]
        mapped.add_po(circuit.name_of(po), new_id[pin.src], pin.weight)
    mapped.check()
    if realizations_out is not None:
        realizations_out.update(chosen)
    return mapped
