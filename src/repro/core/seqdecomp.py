"""Sequential functional decomposition (TurboSYN's label-update extension).

When TurboMap's label update finds no K-feasible cut of height ``L(v)``,
TurboSYN does not give up on the label: following the paper's
``LabelUpdateSYN`` (Figure 3), it computes a *sequence of min-cuts*
``(X_h, X-bar_h)`` of heights ``L(v) - h`` for ``h = 0, 1, ...`` — wider
than ``K`` but bounded by ``Cmax = 15`` — composes the exact sequential
cone function ``f(u1^w1, ..., um^wm)`` of each cut, and tries to realize
it as a tree of K-LUTs whose root is still ready by ``L(v)``.  Cut inputs
are sorted by increasing ``l(u) - phi*w`` (the paper's Section 3.3), which
:func:`repro.boolfn.decompose.synthesize_lut_tree` does internally: the
earliest-arriving inputs are folded through Roth-Karp encoder LUTs.

A success means ``l(v) = L(v)`` is achievable with resynthesis; the
recorded cut + LUT tree is replayed by :mod:`repro.core.mapping`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.boolfn.decompose import LutTree, synthesize_lut_tree
from repro.core.expanded import Copy, PartialExpansion, sequential_cone_function
from repro.core.kcut import cut_on_expansion, find_height_cut
from repro.netlist.graph import SeqCircuit

#: The paper's cut-size bound for resynthesis ("set to be 15 in TurboSYN").
DEFAULT_CMAX = 15

#: Safety bound on how far below ``L(v)`` the min-cut sequence descends.
MAX_DESCENT = 64


@dataclass(frozen=True)
class SeqResyn:
    """A recorded sequential resynthesis for one node."""

    cut: Tuple[Copy, ...]
    tree: LutTree


def find_seq_resynthesis(
    circuit: SeqCircuit,
    v: int,
    phi: int,
    labels: List[int],
    deadline: int,
    k: int,
    cmax: int = DEFAULT_CMAX,
    extra_depth: int = 0,
    first_expansion: Optional[PartialExpansion] = None,
    max_copies: Optional[int] = None,
) -> Optional[SeqResyn]:
    """Try to realize label ``deadline`` for ``v`` through decomposition.

    Returns the cut and LUT tree on success, ``None`` when no cut of at
    most ``cmax`` inputs decomposes in time.

    ``first_expansion`` is an optional pre-built partial expansion of
    ``E_v`` at height ``deadline`` (under the *current* labels): the
    label solver hands over the expansion its just-failed K-cut check
    built — from either kernel; :func:`cut_on_expansion` dispatches on
    the expansion type — so the ``h = 0`` min-cut query skips the
    identical re-expansion (the expansion depends only on ``v``, the
    threshold and the label heights — not on the cut-size bound).

    ``max_copies`` bounds both the deeper re-expansions and the cone
    evaluations (``None``: the module default).
    """
    cone_kwargs = {} if max_copies is None else {"max_copies": max_copies}

    def height_of(u: int, w: int) -> int:
        return labels[u] - phi * w + 1

    previous_cut: Optional[Tuple[Copy, ...]] = None
    for h in range(MAX_DESCENT):
        threshold = deadline - h
        if h == 0 and first_expansion is not None:
            cut = cut_on_expansion(first_expansion, cmax)
        else:
            cut = find_height_cut(
                circuit, v, phi, height_of, threshold, max_cut=cmax,
                extra_depth=extra_depth, max_copies=max_copies,
            )
        if cut is None:
            return None  # blocked or wider than Cmax: deeper only grows
        cut_t = tuple(cut)
        if cut_t == previous_cut:
            continue  # same cut as the previous height: already failed
        previous_cut = cut_t
        if not cut:
            # Constant cone: a zero-input LUT always meets any deadline >= 1.
            func = sequential_cone_function(circuit, v, [], **cone_kwargs)
            tree = synthesize_lut_tree(func, [], k, deadline)
            return SeqResyn((), tree) if tree is not None else None
        func = sequential_cone_function(circuit, v, cut, **cone_kwargs)
        arrival = [labels[u] - phi * w for (u, w) in cut]
        tree = synthesize_lut_tree(func, arrival, k, deadline)
        if tree is not None:
            return SeqResyn(cut_t, tree)
    return None
