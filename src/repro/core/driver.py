"""Shared driver: binary search of the minimum feasible clock period.

Implements the skeleton of the paper's Figure 4: obtain an upper bound
``UB`` on the minimum MDR ratio, binary search integer ``phi`` in
``[1, UB]`` running the label computation per candidate, then regenerate
the mapping at the optimum.  Feasibility is monotone in ``phi`` (any
mapping for ``phi`` is a mapping for ``phi + 1``), which justifies the
search.

``turbomap`` uses the MDR ratio of the *unmapped* network (the identity
mapping) as its upper bound; ``turbosyn`` starts from TurboMap's optimum,
exactly as the paper prescribes.

Each candidate ``phi`` is answered by :func:`probe_phi`, a module-level
function so worker processes can run probes too: the speculative
parallel search in :mod:`repro.perf.parallel` probes several candidates
concurrently and :func:`run_mapper` dispatches to it when ``workers > 1``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.core.expanded import DEFAULT_MAX_COPIES
from repro.core.labels import (
    DirtySeed,
    LabelOutcome,
    LabelSolver,
    LabelStats,
    ResynHook,
)
from repro.core.mapping import Realization, generate_mapping
from repro.core.seqdecomp import DEFAULT_CMAX, find_seq_resynthesis
from repro.netlist.graph import SeqCircuit
from repro.netlist.validate import ensure_mappable
from repro.resilience.budget import (
    Budget,
    BudgetExhausted,
    DeadlineExpired,
    ProbeTimeout,
)
from repro.resilience.faultinject import fault_point
from repro.retime.mdr import min_feasible_period

if TYPE_CHECKING:  # pragma: no cover - typing only (no runtime cycle)
    from repro.cache.store import CacheKey, OutcomeCache


@dataclass
class SeqMapResult:
    """Result of a sequential mapping run (TurboMap or TurboSYN)."""

    algorithm: str
    phi: int  # minimum feasible MDR ratio / clock period found
    mapped: SeqCircuit
    labels: "list[int]"
    #: label outcome per phi probed during the binary search
    outcomes: Dict[int, LabelOutcome] = field(default_factory=dict)
    #: wall-clock seconds spent searching phi / regenerating the mapping /
    #: verifying the invariants of the produced mapping
    t_search: float = 0.0
    t_mapping: float = 0.0
    t_verify: float = 0.0
    #: probe processes used by the phi search (1 = sequential)
    workers: int = 1
    #: the search budget expired: ``phi`` is the best *known* feasible
    #: period, an upper bound on (not necessarily equal to) the optimum
    degraded: bool = False
    #: why the run degraded (``"deadline"`` / ``"probe_timeout"``)
    degraded_reason: Optional[str] = None
    #: executions of the search backend: 1 + worker-pool restarts
    #: (+1 when the search fell back to sequential probing)
    attempts: int = 1
    #: structured trace of recovery events (:class:`Budget` ``events``)
    resilience_events: "list[dict]" = field(default_factory=list)
    #: machine-readable verification summary
    #: (:func:`repro.analysis.certificate`); ``None`` when verification
    #: was opted out of.
    certificate: Optional[dict] = None
    #: the phi search repaired a previous result incrementally
    #: (:mod:`repro.incremental`) instead of probing cold
    incremental: bool = False

    @property
    def n_luts(self) -> int:
        return self.mapped.n_gates

    @property
    def t_total(self) -> float:
        return self.t_search + self.t_mapping + self.t_verify

    @property
    def total_stats(self) -> LabelStats:
        total = LabelStats()
        for outcome in self.outcomes.values():
            total.merge(outcome.stats)
        return total


def make_resyn_hook(cmax: int = DEFAULT_CMAX) -> ResynHook:
    """A TurboSYN resynthesis hook bound to a ``Cmax`` input budget.

    The hook runs right after a failed K-cut check at threshold
    ``big_l``, so the solver's cached partial expansion for ``(v,
    big_l)`` is still valid — it is handed to the resynthesis search,
    whose first (``h = 0``) min-cut query would otherwise rebuild the
    identical expansion.
    """

    def hook(solver: LabelSolver, v: int, big_l: int) -> bool:
        expansion = solver.expansion_for(v, big_l)
        if expansion is not None:
            solver.stats.expansions_reused += 1
        entry = find_seq_resynthesis(
            solver.circuit,
            v,
            solver.phi,
            solver.labels,
            big_l,
            solver.k,
            cmax,
            solver.extra_depth,
            first_expansion=expansion,
            max_copies=solver.max_copies,
        )
        return entry is not None

    return hook


def nearest_warm_seed(
    outcomes: Dict[int, LabelOutcome], phi: int
) -> Optional[List[int]]:
    """Labels of the nearest feasible cached outcome at a period above
    ``phi``, or ``None``.

    Labels are antitone in phi (a smaller target period can only raise
    them), so a *converged* label set at ``phi2 > phi`` is a valid lower
    bound for the probe at ``phi`` — the descending binary search seeds
    each probe from the tightest such outcome instead of cold-starting
    every gate at ``l = 1``.
    """
    best: Optional[int] = None
    for cached_phi, outcome in outcomes.items():
        if cached_phi > phi and outcome.feasible:
            if best is None or cached_phi < best:
                best = cached_phi
    return outcomes[best].labels if best is not None else None


def probe_phi(
    circuit: SeqCircuit,
    k: int,
    phi: int,
    resynthesize: bool,
    cmax: int = DEFAULT_CMAX,
    pld: bool = True,
    extra_depth: int = 0,
    io_constrained: bool = False,
    timeout: Optional[float] = None,
    engine: str = "worklist",
    seed_labels: Optional[List[int]] = None,
    max_copies: int = DEFAULT_MAX_COPIES,
    flow: str = "dinic",
    kernel: str = "compiled",
    dirty_seed: Optional[DirtySeed] = None,
) -> LabelOutcome:
    """One feasibility query: run the label computation at ``phi``.

    Self-contained (no closures) so it can execute in a worker process.
    ``timeout`` (seconds, measured from the start of this call) bounds
    the label computation cooperatively; on expiry
    :class:`ProbeTimeout` is raised in whichever process runs the probe.
    ``seed_labels`` warm-starts the solver from a converged label set of
    a larger period (see :func:`nearest_warm_seed`); ``engine`` selects
    the worklist or round-robin label engine, ``max_copies`` bounds
    each partial expansion, and ``flow`` / ``kernel`` select the
    max-flow engine and copy representation (bit-identical outcomes,
    see :mod:`repro.kernel`).  ``dirty_seed`` repairs a previous
    fixpoint at the same phi incrementally
    (:class:`repro.core.labels.DirtySeed`) — still bit-identical to a
    cold probe.
    """
    fault_point("probe", tag=f"{circuit.name}:phi={phi}")
    deadline = time.monotonic() + timeout if timeout is not None else None
    hook: Optional[ResynHook] = make_resyn_hook(cmax) if resynthesize else None
    solver = LabelSolver(
        circuit,
        k,
        phi,
        resyn_hook=hook,
        pld=pld,
        extra_depth=extra_depth,
        io_constrained=io_constrained,
        deadline=deadline,
        engine=engine,
        seed_labels=seed_labels,
        max_copies=max_copies,
        flow=flow,
        kernel=kernel,
        dirty_seed=dirty_seed,
    )
    return solver.run()


def default_upper_bound(circuit: SeqCircuit) -> int:
    """The Figure-4 search's default bound: ``max(1, ceil(MDR))``.

    Computed by one exact Karp maximum-cycle-mean pass on the condensed
    register graph (:func:`repro.analysis.certify.exact_mdr_period`,
    the RET003 machinery) instead of
    :func:`~repro.retime.mdr.min_feasible_period`'s ``O(log n)``
    Bellman-Ford probes; the two are equal by construction (asserted
    bit-identical over the suite in the tests), so the search
    trajectory is unchanged.  Oversized condensed graphs fall back to
    the Bellman-Ford search.

    Note ``ceil(MDR)`` of the *unmapped* network bounds the optimum
    from **above** (the identity mapping achieves it; mapping only
    compresses cycle delay), which is why it seeds ``hi``.  The
    search's verified *floor* comes from cached infeasible probe
    verdicts instead (see ``floor`` in :func:`search_min_phi`).
    """
    from repro.analysis.certify import exact_mdr_period

    period = exact_mdr_period(circuit)
    if period is None:  # condensed graph over the Karp size budget
        period = min_feasible_period(circuit)
    return period


def search_bounds(
    circuit: SeqCircuit, upper_bound: int, io_constrained: bool
) -> "tuple[int, int]":
    """Initial ``(hi, ceiling)`` of the phi search (shared with parallel)."""
    hi = max(1, upper_bound)
    ceiling = max(1, circuit.n_gates)
    if io_constrained:
        # I/O paths count: the unretimed identity mapping's clock period
        # is always attainable, so it bounds the search (and the optimum
        # can exceed the loop-only MDR bound).
        hi = max(hi, circuit.clock_period())
        ceiling = max(ceiling, hi)
    return hi, ceiling


def infeasible_error(circuit: SeqCircuit, phi: int) -> RuntimeError:
    return RuntimeError(
        f"{circuit.name}: labels infeasible even at phi={phi}; "
        "the input may contain a combinational cycle"
    )


def search_min_phi(
    circuit: SeqCircuit,
    k: int,
    upper_bound: int,
    resynthesize: bool,
    cmax: int = DEFAULT_CMAX,
    pld: bool = True,
    extra_depth: int = 0,
    io_constrained: bool = False,
    budget: Optional[Budget] = None,
    outcomes: Optional[Dict[int, LabelOutcome]] = None,
    engine: str = "worklist",
    warm_start: bool = True,
    max_copies: int = DEFAULT_MAX_COPIES,
    flow: str = "dinic",
    kernel: str = "compiled",
    prev_outcomes: Optional[Dict[int, LabelOutcome]] = None,
    dirty: Optional[Set[int]] = None,
    cache: Optional["OutcomeCache"] = None,
    cache_key: Optional["CacheKey"] = None,
    floor: int = 1,
) -> "tuple[int, Dict[int, LabelOutcome]]":
    """Binary search the minimum feasible integer ``phi``.

    Returns ``(phi_min, outcomes)``; raises ``RuntimeError`` if even the
    gate count (a trivially sufficient period) is infeasible, which would
    indicate a solver bug rather than a hard instance.

    ``budget`` bounds the search in wall-clock time: it is consulted
    before every uncached probe and hands each probe its deadline.  On
    expiry the search returns the best *known* feasible ``phi`` (an
    upper bound on the optimum) with ``budget.exhausted`` set, or raises
    :class:`BudgetExhausted` when no feasible period was found yet.

    ``outcomes`` seeds the probe cache (used by the parallel search's
    sequential fallback so completed probes are never re-run); it is
    mutated in place and returned.

    ``warm_start`` (default on) seeds every probe from the nearest
    feasible cached outcome at a larger period — labels are antitone in
    phi, so those labels are valid lower bounds and the probe skips the
    raises a cold start would recompute.  The returned ``phi_min`` and
    its labels are identical either way; only the per-probe work drops.

    ``prev_outcomes`` + ``dirty`` enable incremental repair
    (:mod:`repro.incremental`): when a probe lands on a phi whose
    previous outcome was *feasible*, the solver is handed a
    :class:`DirtySeed` so every label outside the dirty region is
    adopted verbatim and clean SCCs are skipped.  Verdicts and labels
    stay bit-identical, so the search trajectory matches a cold run.

    ``cache`` + ``cache_key`` consult the persistent outcome store
    (:mod:`repro.cache`) exactly where the in-run ``outcomes`` dict is
    consulted: a cached verdict is adopted instead of probing
    (``outcome_cache_hits`` / ``cache_probes_skipped``), a cached
    feasible outcome at a larger phi competes with in-run outcomes as
    the warm seed (``cache_seeds``), every fresh probe is written
    through, and cached *infeasible* verdicts raise the binary search's
    starting floor.  Feasibility being monotone in phi makes all of
    this trajectory-preserving: phi and its labels stay bit-identical
    to a cold run.

    ``floor`` (default 1) starts the binary search's lower bound above
    1.  Soundness requires a *verified* floor — one backed by actual
    infeasible probe verdicts (the cache floor is; cached entries are
    checksummed and every verdict in them was computed by a real
    probe).  It is clamped to the best known feasible phi, so even an
    inconsistent floor cannot push the result above a feasible probe.
    """
    ensure_mappable(circuit, k)
    if budget is not None:
        budget.start()
    if outcomes is None:
        outcomes = {}

    use_cache = cache is not None and cache_key is not None

    def probe(phi: int) -> bool:
        # Consult the in-run cache: the doubling phase may already have
        # answered a value the binary search lands on again (e.g. the
        # original upper bound after it proved infeasible).
        if phi not in outcomes:
            if use_cache:
                cached = cache.get_outcome(cache_key, phi)
                if cached is not None:
                    # Adopt the persisted verdict instead of probing.
                    # The synthesized stats carry only the saved-work
                    # counters — never the solver counters of the run
                    # that wrote the entry.
                    cached.stats.outcome_cache_hits = 1
                    cached.stats.cache_probes_skipped = 1
                    outcomes[phi] = cached
                    return cached.feasible
            allowance = budget.begin_probe() if budget is not None else None
            seed = nearest_warm_seed(outcomes, phi) if warm_start else None
            seed_from_cache = False
            if warm_start and use_cache:
                # The persistent store competes with in-run outcomes
                # for the tightest feasible seed above phi (labels are
                # antitone in phi, so tighter is strictly less work).
                in_run_best = min(
                    (
                        p
                        for p, o in outcomes.items()
                        if p > phi and o.feasible
                    ),
                    default=None,
                )
                if in_run_best is None or in_run_best > phi + 1:
                    found = cache.nearest_seed(cache_key, phi)
                    if found is not None and (
                        in_run_best is None or found[0] < in_run_best
                    ):
                        seed = found[1]
                        seed_from_cache = True
            dirty_seed: Optional[DirtySeed] = None
            if dirty is not None and prev_outcomes:
                prev = prev_outcomes.get(phi)
                if prev is not None and prev.feasible:
                    # Only a *converged* (feasible) previous outcome is a
                    # fixpoint; an infeasible run aborted early and its
                    # labels for later SCCs are not trustworthy seeds.
                    dirty_seed = DirtySeed(prev.labels, dirty)
            outcome = probe_phi(
                circuit,
                k,
                phi,
                resynthesize,
                cmax=cmax,
                pld=pld,
                extra_depth=extra_depth,
                io_constrained=io_constrained,
                timeout=allowance,
                engine=engine,
                seed_labels=seed,
                max_copies=max_copies,
                flow=flow,
                kernel=kernel,
                dirty_seed=dirty_seed,
            )
            if seed_from_cache:
                outcome.stats.cache_seeds = 1
            outcomes[phi] = outcome
            if use_cache:
                cache.put_outcome(cache_key, phi, outcome)
        return outcomes[phi].feasible

    hi, ceiling = search_bounds(circuit, upper_bound, io_constrained)
    start_lo = max(1, floor)
    if use_cache:
        # Every cached infeasible verdict was probe-verified by the run
        # that wrote it; monotonicity puts the optimum strictly above
        # all of them.
        start_lo = max(start_lo, cache.verified_floor(cache_key))
    best: Optional[int] = None  # smallest phi known feasible
    try:
        while not probe(hi):
            if hi >= ceiling:
                raise infeasible_error(circuit, hi)
            hi = min(2 * hi, ceiling)
        best = hi
        lo = min(start_lo, best)
        while lo < best:
            mid = (lo + best) // 2
            if probe(mid):
                best = mid
            else:
                lo = mid + 1
    except (DeadlineExpired, ProbeTimeout) as exc:
        if budget is None or best is None:
            raise BudgetExhausted(
                f"{circuit.name}: budget exhausted before any feasible "
                f"phi was found ({exc})"
            ) from exc
        budget.exhaust(exc)
    return best, outcomes


def verify_result(
    circuit: SeqCircuit,
    result: SeqMapResult,
    k: int,
    resyn_roots: Optional[Set[str]] = None,
    compiled: Optional[object] = None,
) -> SeqMapResult:
    """Certify a mapping result in place: verify, attach the certificate.

    Runs the invariant rule pack of :mod:`repro.analysis.invariants`
    (retiming legality surrogates, per-LUT K-feasibility, label/cut-height
    consistency, the phi >= MDR-ratio bound, cone-function equality) plus
    a structural pass over the mapped network.  ``resyn_roots`` carries
    the exact set of subject gates realized by resynthesis trees (their
    cone invariants do not apply).  ``compiled`` (an incrementally
    patched :class:`~repro.kernel.csr.CompiledCircuit`) additionally
    runs the CSR round-trip rules — the patched arrays must serialize
    byte-identically to a fresh compile of the subject.  Raises
    :class:`repro.analysis.VerificationError` on any ERROR finding —
    a malformed mapping must never reach a report as a success.
    """
    from repro.analysis import certificate, raise_on_errors, verify_mapping
    from repro.analysis.certify import (
        build_cycle_certificate,
        build_schedule_certificate,
    )

    t0 = time.perf_counter()
    # Independent second opinions, built once and handed both to the
    # rules (RET002/RET003 check them instead of rebuilding) and to the
    # certificate blob (machine-readable evidence on the result).
    schedule_cert = build_schedule_certificate(result.mapped, result.phi)
    cycle_cert = build_cycle_certificate(result.mapped, result.phi)
    diags = verify_mapping(
        circuit,
        result.mapped,
        result.phi,
        result.labels,
        k,
        result.algorithm,
        resyn_roots=resyn_roots,
        compiled=compiled,
        schedule_cert=schedule_cert,
        cycle_cert=cycle_cert,
    )
    result.t_verify = time.perf_counter() - t0
    result.certificate = certificate(
        diags,
        result.phi,
        result.algorithm,
        t_verify=result.t_verify,
        schedule_certificate=schedule_cert,
        cycle_certificate=cycle_cert,
    )
    raise_on_errors(diags, circuit.name, result.algorithm)
    return result


def run_mapper(
    circuit: SeqCircuit,
    k: int,
    algorithm: str,
    resynthesize: bool,
    upper_bound: Optional[int] = None,
    cmax: int = DEFAULT_CMAX,
    pld: bool = True,
    extra_depth: int = 0,
    io_constrained: bool = False,
    name: Optional[str] = None,
    workers: int = 1,
    check: bool = True,
    budget: Optional[Budget] = None,
    engine: str = "worklist",
    warm_start: bool = True,
    max_copies: int = DEFAULT_MAX_COPIES,
    flow: str = "dinic",
    kernel: str = "compiled",
    prev_result: Optional[SeqMapResult] = None,
    dirty: Optional[Set[int]] = None,
    outcomes: Optional[Dict[int, LabelOutcome]] = None,
    csr_handle: Optional[object] = None,
    cache: Optional["OutcomeCache"] = None,
) -> SeqMapResult:
    """Full mapper pipeline: search ``phi``, regenerate the mapping.

    ``workers > 1`` probes candidate periods speculatively in parallel
    (:func:`repro.perf.parallel.parallel_search_min_phi`); the result is
    identical to the sequential search, only the wall clock differs.

    ``budget`` bounds the phi search in wall-clock time; on expiry the
    result carries the best-known feasible period with
    ``degraded=True`` / ``degraded_reason`` set instead of raising (the
    mapping regeneration itself is not interrupted).  The budget also
    records worker-pool recovery: ``attempts`` counts search-backend
    executions.

    ``check=True`` (the default) verifies the produced mapping against
    the paper's invariants with :func:`verify_result` and attaches the
    certificate; pass ``check=False`` to opt out (e.g. in tight inner
    benchmark loops).

    ``engine`` selects the label engine (``"worklist"`` event-driven,
    ``"rounds"`` classical sweep), ``warm_start`` toggles cross-probe
    label seeding, ``max_copies`` bounds each partial expansion, and
    ``flow`` / ``kernel`` select the max-flow engine
    (``"dinic"``/``"ek"``) and copy representation (``"compiled"`` /
    ``"object"`` / the numpy-batched ``"vector"``, plus ``"auto"``
    which resolves to vector or compiled from the microbench-measured
    crossover, see :func:`repro.kernel.batch.resolve_kernel`) — all of
    them leave ``phi`` and the labels bit-identical.

    ``outcomes`` seeds (and collects) the probe cache across *calls*:
    a mapping interrupted mid-search can resume from its journaled
    probe outcomes and follow the identical search trajectory — every
    cached probe is adopted verbatim, every missing one recomputed, and
    the final ``phi``/labels are bit-identical to an uninterrupted run
    (this is the crash-recovery contract of :mod:`repro.serve`).  The
    dict is mutated in place, so an observing mapping (e.g. a
    write-ahead journal) sees each probe outcome as it lands.
    ``csr_handle`` hands the parallel search an already-published
    compiled-circuit handle (:func:`repro.kernel.share.publish_bytes`);
    the caller retains ownership (it is not unlinked by the search),
    which lets a long-running service publish a stored CSR blob once
    and reuse it across jobs and pool restarts.

    ``prev_result`` + ``dirty`` run the search as an incremental repair
    of a previous mapping of the *same circuit before the edits in
    the dirty region* (see :func:`repro.incremental.remap`, the
    intended entry point): probes landing on previously feasible phis
    adopt every clean label verbatim and skip clean SCCs.  The repaired
    search is forced sequential — worker processes would re-pickle the
    mutated circuit and probe a different phi set, defeating the
    reuse — and the result is bit-identical to a cold sequential run.

    ``cache`` (an :class:`repro.cache.OutcomeCache`) makes the search
    warm across *processes*: probe verdicts are adopted from and
    written through to the persistent store, cached infeasible
    verdicts floor the binary search, and a recorded final for this
    exact ``(circuit, options)`` key replays the whole result without
    searching at all.  A replayed result is **never trusted blind**:
    it still runs the full default-on verifier plus a stored-signature
    comparison against the freshly regenerated mapping, and any
    disagreement heals the cache entry and falls back to a cold
    search.  Exact-hit replay therefore only engages when
    ``check=True`` (and never for incremental repairs); plain probe
    adoption works everywhere.
    """
    ub = upper_bound if upper_bound is not None else default_upper_bound(circuit)
    if budget is None:
        budget = Budget()
    budget.start()
    ckey: Optional["CacheKey"] = None
    if cache is not None:
        from repro.cache.store import cache_key as build_cache_key

        ckey = build_cache_key(
            circuit,
            k,
            resynthesize,
            cmax=cmax,
            pld=pld,
            extra_depth=extra_depth,
            io_constrained=io_constrained,
            max_copies=max_copies,
        )
    t0 = time.perf_counter()
    if prev_result is not None:
        workers = 1
    replay_final: Optional[dict] = None
    if cache is not None and check and prev_result is None:
        replay_final = cache.get_final(ckey)
    if replay_final is not None:
        # Exact full hit: adopt the optimum's verdict (and its
        # minimality witness at phi - 1) from the store and skip the
        # search.  Verification below re-establishes every invariant
        # on the freshly regenerated mapping.
        phi = int(replay_final["phi"])
        at = cache.get_outcome(ckey, phi)
        below = cache.get_outcome(ckey, phi - 1) if phi > 1 else None
        if (
            at is None
            or not at.feasible
            or (phi > 1 and (below is None or below.feasible))
        ):
            replay_final = None  # entry raced away / incoherent: miss
        else:
            if outcomes is None:
                outcomes = {}
            at.stats.outcome_cache_hits = 1
            at.stats.cache_probes_skipped = 1
            outcomes[phi] = at
            if below is not None:
                below.stats.outcome_cache_hits = 1
                below.stats.cache_probes_skipped = 1
                outcomes[phi - 1] = below
    if replay_final is not None:
        pass  # search skipped entirely
    elif workers > 1:
        # Imported lazily: repro.perf.parallel imports probe_phi from here.
        from repro.perf.parallel import parallel_search_min_phi

        phi, outcomes = parallel_search_min_phi(
            circuit,
            k,
            ub,
            resynthesize,
            workers=workers,
            cmax=cmax,
            pld=pld,
            extra_depth=extra_depth,
            io_constrained=io_constrained,
            budget=budget,
            engine=engine,
            warm_start=warm_start,
            max_copies=max_copies,
            flow=flow,
            kernel=kernel,
            outcomes=outcomes,
            csr_handle=csr_handle,
            cache=cache,
            cache_key=ckey,
        )
    else:
        phi, outcomes = search_min_phi(
            circuit,
            k,
            ub,
            resynthesize,
            cmax=cmax,
            pld=pld,
            extra_depth=extra_depth,
            io_constrained=io_constrained,
            budget=budget,
            engine=engine,
            warm_start=warm_start,
            max_copies=max_copies,
            flow=flow,
            kernel=kernel,
            outcomes=outcomes,
            prev_outcomes=(
                prev_result.outcomes if prev_result is not None else None
            ),
            dirty=dirty if prev_result is not None else None,
            cache=cache,
            cache_key=ckey,
        )
    t_search = time.perf_counter() - t0
    labels = outcomes[phi].labels
    t0 = time.perf_counter()
    chosen: Dict[int, Realization] = {}
    mapped = generate_mapping(
        circuit,
        phi,
        labels,
        k,
        cmax=cmax,
        allow_resyn=resynthesize,
        extra_depth=extra_depth,
        name=name,
        realizations_out=chosen,
    )
    t_mapping = time.perf_counter() - t0
    result = SeqMapResult(
        algorithm=algorithm,
        phi=phi,
        mapped=mapped,
        labels=labels,
        outcomes=outcomes,
        t_search=t_search,
        t_mapping=t_mapping,
        workers=max(1, workers),
        degraded=budget.exhausted,
        degraded_reason=budget.reason,
        attempts=budget.attempts,
        resilience_events=list(budget.events),
        incremental=prev_result is not None,
    )
    if check:
        from repro.analysis import VerificationError

        resyn_roots = {
            circuit.name_of(v)
            for v, real in chosen.items()
            if real.resyn is not None
        }
        try:
            verify_result(
                circuit,
                result,
                k,
                resyn_roots=resyn_roots,
                # Incremental runs probed on a delta-patched CSR: hand it
                # to the verifier so the round-trip rules certify the
                # patch.
                compiled=(
                    circuit.compiled() if prev_result is not None else None
                ),
            )
            if replay_final is not None:
                from repro.cache.store import final_signature
                from repro.netlist.blif import write_blif

                fresh = final_signature(phi, labels, write_blif(mapped))
                if fresh != replay_final["signature"]:
                    raise VerificationError(
                        f"{circuit.name}: replayed cache result does not "
                        "reproduce the stored signature",
                        [],
                    )
        except VerificationError:
            if replay_final is None:
                raise
            # A replayed result failed re-verification: the entry is
            # poison.  Heal it and fall back to a cold search — the
            # cache must never make a run fail that would have
            # succeeded cold.
            cache.invalidate(ckey)
            for stale in (phi, phi - 1):
                outcomes.pop(stale, None)
            return run_mapper(
                circuit,
                k,
                algorithm,
                resynthesize,
                upper_bound=upper_bound,
                cmax=cmax,
                pld=pld,
                extra_depth=extra_depth,
                io_constrained=io_constrained,
                name=name,
                workers=workers,
                check=check,
                budget=None,
                engine=engine,
                warm_start=warm_start,
                max_copies=max_copies,
                flow=flow,
                kernel=kernel,
                outcomes=outcomes,
                csr_handle=csr_handle,
                cache=cache,
            )
    if (
        cache is not None
        and check
        and replay_final is None
        and prev_result is None
        and not result.degraded
    ):
        # Record the verified end of a completed search: exact hits on
        # this key now replay in O(verify).  Degraded searches never
        # finalize (their phi is only an upper bound on the optimum).
        from repro.cache.store import final_signature
        from repro.netlist.blif import write_blif

        cert = result.certificate or {}
        cache.put_final(
            ckey,
            result.phi,
            final_signature(result.phi, labels, write_blif(mapped)),
            schedule_certificate=cert.get("schedule_certificate"),
            cycle_certificate=cert.get("cycle_certificate"),
        )
    return result
