"""Shared driver: binary search of the minimum feasible clock period.

Implements the skeleton of the paper's Figure 4: obtain an upper bound
``UB`` on the minimum MDR ratio, binary search integer ``phi`` in
``[1, UB]`` running the label computation per candidate, then regenerate
the mapping at the optimum.  Feasibility is monotone in ``phi`` (any
mapping for ``phi`` is a mapping for ``phi + 1``), which justifies the
search.

``turbomap`` uses the MDR ratio of the *unmapped* network (the identity
mapping) as its upper bound; ``turbosyn`` starts from TurboMap's optimum,
exactly as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.labels import LabelOutcome, LabelSolver, LabelStats, ResynHook
from repro.core.mapping import generate_mapping
from repro.core.seqdecomp import DEFAULT_CMAX, find_seq_resynthesis
from repro.netlist.graph import SeqCircuit
from repro.netlist.validate import ensure_mappable
from repro.retime.mdr import min_feasible_period


@dataclass
class SeqMapResult:
    """Result of a sequential mapping run (TurboMap or TurboSYN)."""

    algorithm: str
    phi: int  # minimum feasible MDR ratio / clock period found
    mapped: SeqCircuit
    labels: List[int]
    #: label outcome per phi probed during the binary search
    outcomes: Dict[int, LabelOutcome] = field(default_factory=dict)

    @property
    def n_luts(self) -> int:
        return self.mapped.n_gates

    @property
    def total_stats(self) -> LabelStats:
        total = LabelStats()
        for outcome in self.outcomes.values():
            s = outcome.stats
            total.rounds += s.rounds
            total.updates += s.updates
            total.flow_queries += s.flow_queries
            total.cache_hits += s.cache_hits
            total.pld_checks += s.pld_checks
            total.resyn_calls += s.resyn_calls
            total.resyn_wins += s.resyn_wins
        return total


def search_min_phi(
    circuit: SeqCircuit,
    k: int,
    upper_bound: int,
    resynthesize: bool,
    cmax: int = DEFAULT_CMAX,
    pld: bool = True,
    extra_depth: int = 0,
    io_constrained: bool = False,
) -> "tuple[int, Dict[int, LabelOutcome]]":
    """Binary search the minimum feasible integer ``phi``.

    Returns ``(phi_min, outcomes)``; raises ``RuntimeError`` if even the
    gate count (a trivially sufficient period) is infeasible, which would
    indicate a solver bug rather than a hard instance.
    """
    ensure_mappable(circuit, k)
    outcomes: Dict[int, LabelOutcome] = {}

    def probe(phi: int) -> bool:
        hook: Optional[ResynHook] = None
        if resynthesize:

            def hook(solver: LabelSolver, v: int, big_l: int) -> bool:
                entry = find_seq_resynthesis(
                    solver.circuit,
                    v,
                    solver.phi,
                    solver.labels,
                    big_l,
                    solver.k,
                    cmax,
                    solver.extra_depth,
                )
                return entry is not None

        solver = LabelSolver(
            circuit,
            k,
            phi,
            resyn_hook=hook,
            pld=pld,
            extra_depth=extra_depth,
            io_constrained=io_constrained,
        )
        outcome = solver.run()
        outcomes[phi] = outcome
        return outcome.feasible

    hi = max(1, upper_bound)
    ceiling = max(1, circuit.n_gates)
    if io_constrained:
        # I/O paths count: the unretimed identity mapping's clock period
        # is always attainable, so it bounds the search (and the optimum
        # can exceed the loop-only MDR bound).
        hi = max(hi, circuit.clock_period())
        ceiling = max(ceiling, hi)
    while not probe(hi):
        if hi >= ceiling:
            raise RuntimeError(
                f"{circuit.name}: labels infeasible even at phi={hi}; "
                "the input may contain a combinational cycle"
            )
        hi = min(2 * hi, ceiling)
    lo = 1
    while lo < hi:
        mid = (lo + hi) // 2
        if probe(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo, outcomes


def run_mapper(
    circuit: SeqCircuit,
    k: int,
    algorithm: str,
    resynthesize: bool,
    upper_bound: Optional[int] = None,
    cmax: int = DEFAULT_CMAX,
    pld: bool = True,
    extra_depth: int = 0,
    io_constrained: bool = False,
    name: Optional[str] = None,
) -> SeqMapResult:
    """Full mapper pipeline: search ``phi``, regenerate the mapping."""
    ub = upper_bound if upper_bound is not None else min_feasible_period(circuit)
    phi, outcomes = search_min_phi(
        circuit,
        k,
        ub,
        resynthesize,
        cmax=cmax,
        pld=pld,
        extra_depth=extra_depth,
        io_constrained=io_constrained,
    )
    labels = outcomes[phi].labels
    mapped = generate_mapping(
        circuit,
        phi,
        labels,
        k,
        cmax=cmax,
        allow_resyn=resynthesize,
        extra_depth=extra_depth,
        name=name,
    )
    return SeqMapResult(
        algorithm=algorithm,
        phi=phi,
        mapped=mapped,
        labels=labels,
        outcomes=outcomes,
    )
