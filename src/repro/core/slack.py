"""Criticality analysis: which loops actually bind the clock period.

A mapped-or-not sequential circuit rarely has *one* bottleneck; designers
want to know which cycles sit at the MDR bound and how much slack the
rest has.  This module reports exactly that, built on the same machinery
as the mappers:

* :func:`critical_sccs` — the SCCs whose best achievable cycle ratio
  equals the circuit's bound (found by re-running the feasibility label
  computation at ``phi* - 1`` and collecting the SCCs whose positive
  loops fire);
* :func:`node_slacks` — per-gate slack at the optimum: how much a gate's
  label may rise before some consumer's cut constraint breaks (the same
  quantity the area stage's label relaxation exploits);
* :func:`report` — a human-readable summary used by the CLI and the
  examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.labels import LabelSolver
from repro.netlist.graph import NodeKind, SeqCircuit
from repro.retime.mdr import mdr_ratio, min_feasible_period


@dataclass
class CriticalityReport:
    """Structural timing summary of a sequential circuit."""

    phi: int  # minimum clock period achievable by K-LUT mapping
    identity_phi: int  # MDR bound of the circuit as given (no remapping)
    mdr: object  # exact rational MDR ratio of the given circuit
    critical_sccs: List[List[int]] = field(default_factory=list)
    labels: Optional[List[int]] = None
    slacks: Dict[int, int] = field(default_factory=dict)


def critical_sccs(circuit: SeqCircuit, k: int, phi: int) -> List[List[int]]:
    """SCCs that make ``phi - 1`` infeasible (the binding loops).

    Runs the label computation at ``phi - 1`` repeatedly, removing the
    offending SCC's positive-loop pressure by treating it as found, until
    the run either completes or every failure is collected.  With the
    SCC-topological schedule a single run reports the first binding SCC;
    re-running after masking is unnecessary here because label solving
    stops at the first failure — so the list contains the *earliest*
    binding SCCs in topological order, one per run, up to a small cap.
    """
    if phi <= 1:
        return []
    found: List[List[int]] = []
    outcome = LabelSolver(circuit, k, phi - 1).run()
    if not outcome.feasible and outcome.failed_scc:
        found.append(sorted(outcome.failed_scc))
    return found


def node_slacks(
    circuit: SeqCircuit, k: int, phi: int, labels: List[int]
) -> Dict[int, int]:
    """Per-gate label slack against every consumer's cut height budget.

    ``slack(v) = min over consumer edges e(v, c) of
    (l(c) - (l(v) - phi*w(e) + 1))`` — how far ``l(v)`` could rise before
    the tightest consumer's height budget is violated.  POs do not
    constrain (pipelining absorbs their latency); unconsumed gates get a
    sentinel slack of ``phi`` (they can always move a full level).
    """
    slacks: Dict[int, int] = {}
    for v in circuit.gates:
        best: Optional[int] = None
        for dst, w in circuit.fanouts(v):
            if circuit.kind(dst) is not NodeKind.GATE:
                continue
            margin = labels[dst] - (labels[v] - phi * w + 1)
            best = margin if best is None else min(best, margin)
        slacks[v] = phi if best is None else max(best, 0)
    return slacks


def analyze(circuit: SeqCircuit, k: int = 5) -> CriticalityReport:
    """Full structural timing analysis at the K-LUT mapping optimum.

    ``phi`` is the TurboMap optimum (binary-searched label feasibility);
    the binding loops are the SCCs that make ``phi - 1`` infeasible.
    """
    from repro.core.driver import search_min_phi

    identity_phi = min_feasible_period(circuit)
    phi, outcomes = search_min_phi(
        circuit, k, identity_phi, resynthesize=False
    )
    labels = outcomes[phi].labels
    report = CriticalityReport(
        phi=phi,
        identity_phi=identity_phi,
        mdr=mdr_ratio(circuit),
        critical_sccs=critical_sccs(circuit, k, phi),
        labels=labels,
    )
    if labels is not None:
        report.slacks = node_slacks(circuit, k, phi, labels)
    return report


def report(circuit: SeqCircuit, k: int = 5, max_nodes: int = 10) -> str:
    """Human-readable criticality summary."""
    result = analyze(circuit, k)
    lines = [
        f"{circuit.name}: MDR ratio {result.mdr} as given "
        f"(bound {result.identity_phi}); best K={k} mapping: "
        f"phi = {result.phi}"
    ]
    if not result.critical_sccs:
        lines.append("no binding loop below the bound (feed-forward or phi=1)")
    for i, comp in enumerate(result.critical_sccs):
        names = [circuit.name_of(v) for v in comp[:max_nodes]]
        more = "" if len(comp) <= max_nodes else f" (+{len(comp) - max_nodes} more)"
        lines.append(
            f"binding loop #{i + 1}: {len(comp)} gates: "
            + ", ".join(names)
            + more
        )
    if result.slacks:
        zero = sum(1 for s in result.slacks.values() if s == 0)
        lines.append(
            f"{zero}/{len(result.slacks)} gates have zero label slack "
            f"at phi={result.phi}"
        )
    return "\n".join(lines)
