"""TurboMap [11]: optimal LUT mapping with retiming, no resynthesis.

The baseline of the paper's Table 1 and the producer of TurboSYN's upper
bound: binary search over the target clock period with the iterative
label computation of :mod:`repro.core.labels` (K-feasible cuts on
expanded circuits, SCC-topological processing, positive loop detection).

Under retiming + pipelining, the resulting network's clock period equals
the minimum MDR ratio over all *structural* mappings of the subject graph;
TurboSYN (:mod:`repro.core.turbosyn`) goes below it with Boolean
resynthesis.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.core.driver import SeqMapResult, run_mapper
from repro.core.expanded import DEFAULT_MAX_COPIES
from repro.netlist.graph import SeqCircuit
from repro.resilience.budget import Budget

if TYPE_CHECKING:
    from repro.core.labels import LabelOutcome


def turbomap(
    circuit: SeqCircuit,
    k: int = 5,
    pld: bool = True,
    extra_depth: int = 0,
    upper_bound: Optional[int] = None,
    pipelining: bool = True,
    name: Optional[str] = None,
    workers: int = 1,
    check: bool = True,
    budget: Optional[Budget] = None,
    engine: str = "worklist",
    warm_start: bool = True,
    max_copies: int = DEFAULT_MAX_COPIES,
    flow: str = "dinic",
    kernel: str = "compiled",
    prev_result: Optional[SeqMapResult] = None,
    dirty: Optional[Set[int]] = None,
    outcomes: Optional[Dict[int, "LabelOutcome"]] = None,
    csr_handle: Optional[object] = None,
    cache: Optional[object] = None,
) -> SeqMapResult:
    """Map ``circuit`` onto K-LUTs minimizing the MDR ratio (no resynthesis).

    Parameters
    ----------
    circuit:
        A K-bounded sequential circuit (retiming graph).
    k:
        LUT input count (the paper uses 5).
    pld:
        Use predecessor-graph positive loop detection (paper Section 4);
        ``False`` falls back to the conservative ``n^2`` iteration bound
        of [21] — kept for the speedup benchmark.
    extra_depth:
        Expanded-circuit search depth below the height threshold; 0 is
        the paper's partial flow network.
    upper_bound:
        Optional known bound on the optimum (defaults to the MDR ratio of
        the unmapped network, i.e. the identity mapping).
    pipelining:
        ``True`` is the paper's setting: I/O paths are pipelined away and
        only loops constrain the clock period.  ``False`` is the original
        ICCD'96 TurboMap objective (retiming only): primary outputs must
        meet the period too, so the optimum can be larger — the paper's
        Section 2 argues exactly this difference.
    workers:
        Probe processes for the phi search; ``>1`` probes candidate
        periods speculatively in parallel (same result, lower wall
        clock — see :mod:`repro.perf.parallel`).
    check:
        Verify the produced mapping against the paper's invariants and
        attach a certificate (:mod:`repro.analysis`); ``False`` opts out.
    budget:
        Wall-clock :class:`~repro.resilience.budget.Budget` for the phi
        search; on expiry the result is the best-known feasible period,
        marked ``degraded``.
    engine:
        Label engine: ``"worklist"`` (event-driven, the default) or
        ``"rounds"`` (classical sweep); identical results either way.
    warm_start:
        Seed descending probes from converged larger-phi labels
        (identical results; far fewer label updates / flow queries).
    max_copies:
        Per-query safety bound on the partial-expansion size
        (:class:`repro.core.expanded.ExpansionOverflow` on excess).
    flow:
        Max-flow engine for the cut queries: ``"dinic"`` (level-graph
        phases, the default) or ``"ek"`` (Edmonds-Karp); identical cuts
        either way (:mod:`repro.kernel`).
    kernel:
        Copy representation of the hot loops: ``"compiled"`` (flat CSR
        arrays + packed ints, the default) or ``"object"``
        (tuple-and-dict); identical labels and mappings either way.
    prev_result / dirty:
        Incremental repair of a previous TurboMap result of this circuit
        after a k-gate edit; prefer the :func:`repro.incremental.remap`
        entry point, which journals the edits, patches the compiled CSR
        and computes ``dirty`` itself.  Bit-identical to a cold run.
    outcomes / csr_handle:
        Resume/serve hooks (see :func:`repro.core.driver.run_mapper`):
        ``outcomes`` seeds the probe cache so an interrupted search
        resumes bit-identically, ``csr_handle`` reuses an already-
        published compiled-circuit handle for the worker fleet.
    cache:
        A persistent :class:`repro.cache.OutcomeCache`: probe verdicts
        are adopted/written through across processes and an exact
        full hit replays the result in O(verify) (see
        :func:`repro.core.driver.run_mapper`).
    """
    return run_mapper(
        circuit,
        k,
        algorithm="turbomap",
        resynthesize=False,
        upper_bound=upper_bound,
        pld=pld,
        extra_depth=extra_depth,
        io_constrained=not pipelining,
        name=name or f"{circuit.name}_turbomap",
        workers=workers,
        check=check,
        budget=budget,
        engine=engine,
        warm_start=warm_start,
        max_copies=max_copies,
        flow=flow,
        kernel=kernel,
        prev_result=prev_result,
        dirty=dirty,
        outcomes=outcomes,
        csr_handle=csr_handle,
        cache=cache,
    )
