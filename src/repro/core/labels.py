"""Iterative label computation for a target clock period (TurboMap core).

For a target integer clock period ``phi``, every node gets a label
``l(v)`` — intuitively its phi-normalized sequential arrival time in the
best mapping.  Following TurboMap [11] (and Pan-Liu [19]), labels are
computed as monotonically increasing lower bounds:

* ``l(PI) = 0`` (fixed); every gate starts at 1;
* one *update* of gate ``v`` computes ``L(v) = max(l(u) - phi * w(e))``
  over its fanin edges and raises ``l(v)`` to ``L(v)`` if the expanded
  circuit ``E_v`` has a K-feasible cut of height ``<= L(v)``, and to
  ``L(v) + 1`` otherwise; TurboSYN additionally tries sequential
  functional decomposition before accepting ``L(v) + 1``
  (:mod:`repro.core.seqdecomp`);
* updates repeat until a fixpoint.  The target is feasible iff a fixpoint
  is reached; labels of nodes on *positive loops* (cycles with
  ``d(C) > phi * w(C)``) grow forever instead.

Two mechanisms bound the iteration, reproducing the paper's Section 4:

* SCCs are processed in topological order (upstream labels freeze first);
* within an SCC, either the conservative ``n^2`` round bound of [21]
  (``pld=False``) or the paper's predecessor-graph **positive loop
  detection** with its ``6n`` round bound (``pld=True``, Theorem 2): after
  every round the justification graph
  ``pi[v] = {u : l(u) - phi*w(e) + 1 >= l(v)}`` is built and the SCC is
  declared infeasible as soon as no member label is *grounded* — justified
  transitively from outside the SCC (or by the trivial bound
  ``l(v) <= 1``).

A per-node memo keyed on the labels actually read by the last flow query
skips unchanged re-checks, which is what makes whole-suite runs practical
in Python.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from repro.core.expanded import expand_partial
from repro.core.kcut import cut_on_expansion
from repro.core.pld import grounded_members
from repro.netlist.graph import NodeKind, SeqCircuit
from repro.resilience.budget import ProbeTimeout


@dataclass
class LabelStats:
    """Counters describing one feasibility run (used by the PLD bench).

    The ``t_*`` fields are wall-clock seconds spent in each stage of the
    label computation (the run telemetry serialized by
    :mod:`repro.perf.report`): total run time, expanded-circuit
    construction, max-flow cut queries, and positive-loop-detection
    checks.
    """

    rounds: int = 0
    updates: int = 0
    flow_queries: int = 0
    cache_hits: int = 0
    pld_checks: int = 0
    resyn_calls: int = 0
    resyn_wins: int = 0
    t_total: float = 0.0
    t_expand: float = 0.0
    t_flow: float = 0.0
    t_pld: float = 0.0

    def merge(self, other: "LabelStats") -> None:
        """Accumulate another run's counters and timers into this one."""
        self.rounds += other.rounds
        self.updates += other.updates
        self.flow_queries += other.flow_queries
        self.cache_hits += other.cache_hits
        self.pld_checks += other.pld_checks
        self.resyn_calls += other.resyn_calls
        self.resyn_wins += other.resyn_wins
        self.t_total += other.t_total
        self.t_expand += other.t_expand
        self.t_flow += other.t_flow
        self.t_pld += other.t_pld


@dataclass
class LabelOutcome:
    """Result of one feasibility run at a fixed ``phi``."""

    feasible: bool
    labels: List[int]
    stats: LabelStats
    #: members of the SCC on which infeasibility was detected (empty when
    #: feasible).
    failed_scc: List[int] = field(default_factory=list)


#: Signature of a resynthesis hook: ``(solver, v, big_l) -> bool`` — may
#: consult solver labels; returns True when the node can still make label
#: ``big_l`` through decomposition.
ResynHook = Callable[["LabelSolver", int, int], bool]


class LabelSolver:
    """Label computation for one ``(circuit, k, phi)`` query."""

    #: An SCC is declared infeasible once its justification graph stays
    #: isolated from the outside for this many consecutive changed rounds.
    #: A genuinely positive loop is isolated forever, so patience costs a
    #: constant; a converging SCC can look isolated on the single round
    #: where a zero-gain cycle settles, which patience rides out.
    PLD_PATIENCE = 3

    def __init__(
        self,
        circuit: SeqCircuit,
        k: int,
        phi: int,
        resyn_hook: Optional[ResynHook] = None,
        pld: bool = True,
        extra_depth: int = 0,
        io_constrained: bool = False,
        deadline: Optional[float] = None,
    ) -> None:
        if phi < 1:
            raise ValueError("target clock period must be at least 1")
        self.circuit = circuit
        self.k = k
        self.phi = phi
        self.resyn_hook = resyn_hook
        self.pld = pld
        self.extra_depth = extra_depth
        #: Absolute ``time.monotonic()`` value by which the run must
        #: finish; checked cooperatively once per label round, raising
        #: :class:`repro.resilience.budget.ProbeTimeout` on expiry.
        self.deadline = deadline
        #: When True, primary outputs must also meet the period (the
        #: retiming-only objective of TurboMap/SeqMapII [11, 19]); the
        #: paper's setting is False — pipelining absorbs I/O paths and
        #: only loops constrain feasibility.
        self.io_constrained = io_constrained
        self.stats = LabelStats()
        n = len(circuit)
        self.labels: List[int] = [0] * n
        for g in circuit.gates:
            self.labels[g] = 1
        # Memoization: when a node's label last changed, and per node the
        # set of nodes its last flow query looked at.
        self._change_stamp: List[int] = [0] * n
        self._clock = 0
        self._check_stamp: List[int] = [-1] * n
        self._check_l: List[Optional[int]] = [None] * n
        self._check_result: List[Optional[bool]] = [None] * n
        self._check_cone: List[Optional[List[int]]] = [None] * n

    # ------------------------------------------------------------------
    def height_of(self, u: int, w: int) -> int:
        """Height contribution ``l(u) - phi*w + 1`` of copy ``u^w``."""
        return self.labels[u] - self.phi * w + 1

    def _has_kcut(self, v: int, threshold: int) -> bool:
        """Memoized K-cut existence test at the given height threshold."""
        if (
            self._check_l[v] == threshold
            and self._check_cone[v] is not None
            and all(
                self._change_stamp[u] <= self._check_stamp[v]
                for u in self._check_cone[v]
            )
        ):
            self.stats.cache_hits += 1
            return bool(self._check_result[v])
        t0 = time.perf_counter()
        expansion = expand_partial(
            self.circuit,
            v,
            self.phi,
            self.height_of,
            threshold,
            extra_depth=self.extra_depth,
        )
        t1 = time.perf_counter()
        self.stats.t_expand += t1 - t0
        self.stats.flow_queries += 1
        cut = cut_on_expansion(expansion, self.k)
        self.stats.t_flow += time.perf_counter() - t1
        cone_nodes = {v}
        for u, _w in expansion.interior:
            cone_nodes.add(u)
        for u, _w in expansion.candidates:
            cone_nodes.add(u)
        for u, _w in expansion.leaves:
            cone_nodes.add(u)
        self._check_l[v] = threshold
        self._check_stamp[v] = self._clock
        self._check_result[v] = cut is not None
        self._check_cone[v] = list(cone_nodes)
        return cut is not None

    def _update(self, v: int) -> bool:
        """One label update; returns True when ``l(v)`` increased."""
        self.stats.updates += 1
        pins = self.circuit.fanins(v)
        if not pins:
            return False  # constant generators keep label 1
        big_l = max(self.labels[p.src] - self.phi * p.weight for p in pins)
        if big_l < self.labels[v]:
            return False  # cannot raise the label
        if self._has_kcut(v, big_l):
            new = big_l
        elif self.resyn_hook is not None:
            self.stats.resyn_calls += 1
            if self.resyn_hook(self, v, big_l):
                self.stats.resyn_wins += 1
                new = big_l
            else:
                new = big_l + 1
        else:
            new = big_l + 1
        if new > self.labels[v]:
            self.labels[v] = new
            self._clock += 1
            self._change_stamp[v] = self._clock
            return True
        return False

    # ------------------------------------------------------------------
    def _grounded(self, members: List[int], member_set: Set[int]) -> bool:
        """PLD signal: is any SCC label still justified from outside?

        See :mod:`repro.core.pld` for the predecessor-graph construction.
        """
        self.stats.pld_checks += 1
        t0 = time.perf_counter()
        result = bool(
            grounded_members(self.circuit, self.labels, self.phi, members, member_set)
        )
        self.stats.t_pld += time.perf_counter() - t0
        return result

    # ------------------------------------------------------------------
    def _check_deadline(self) -> None:
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise ProbeTimeout(
                f"{self.circuit.name}: label computation at phi={self.phi} "
                "exceeded its probe budget"
            )

    # ------------------------------------------------------------------
    def run(self) -> LabelOutcome:
        """Compute all labels or detect infeasibility (timed)."""
        t0 = time.perf_counter()
        try:
            return self._run()
        finally:
            self.stats.t_total += time.perf_counter() - t0

    def _run(self) -> LabelOutcome:
        """Compute all labels or detect infeasibility."""
        order_pos = {nid: i for i, nid in enumerate(self.circuit.comb_topo_order())}
        for component in self.circuit.sccs():
            self._check_deadline()
            members = [
                v for v in component if self.circuit.kind(v) is NodeKind.GATE
            ]
            if not members:
                continue
            members.sort(key=lambda nid: order_pos[nid])
            member_set = set(members)
            n_scc = len(members)
            self_looped = any(
                pin.src in member_set
                for v in members
                for pin in self.circuit.fanins(v)
            )
            if n_scc == 1 and not self_looped:
                self.stats.rounds += 1
                self._update(members[0])
                continue
            max_rounds = 6 * n_scc + self.PLD_PATIENCE if self.pld else n_scc * n_scc + 2
            converged = False
            isolated_streak = 0
            for _round in range(max_rounds):
                self._check_deadline()
                self.stats.rounds += 1
                changed = False
                for v in members:
                    if self._update(v):
                        changed = True
                if not changed:
                    converged = True
                    break
                if self.pld:
                    if self._grounded(members, member_set):
                        isolated_streak = 0
                    else:
                        isolated_streak += 1
                        if isolated_streak >= self.PLD_PATIENCE:
                            return LabelOutcome(
                                feasible=False,
                                labels=self.labels,
                                stats=self.stats,
                                failed_scc=members,
                            )
            if not converged:
                return LabelOutcome(
                    feasible=False,
                    labels=self.labels,
                    stats=self.stats,
                    failed_scc=members,
                )
        if self.io_constrained:
            # Retiming-only feasibility additionally requires every PO's
            # sequential arrival to fit one period: l(u) - phi*w <= phi
            # for the PO edge e(u, po) (Pan-Liu [19]).
            for po in self.circuit.pos:
                pin = self.circuit.fanins(po)[0]
                if self.labels[pin.src] - self.phi * pin.weight > self.phi:
                    return LabelOutcome(
                        feasible=False,
                        labels=self.labels,
                        stats=self.stats,
                        failed_scc=[po],
                    )
        return LabelOutcome(feasible=True, labels=self.labels, stats=self.stats)
